//! # eml-serve — the multi-tenant serving executor
//!
//! `eml-core`'s RTM and `eml-sim`'s simulator are *planners*: they
//! decide knob settings (width, precision, cores, DVFS) from an
//! analytic latency model. This crate **executes** those decisions
//! against the real `eml_nn` kernels and closes the loop with measured
//! latency:
//!
//! - [`Executor`] — one serving thread per registered
//!   [`eml_dnn::DynamicDnn`]; per-app *bounded* request queues (typed
//!   [`ServeError::QueueFull`] rejection, never a block, never a silent
//!   drop); deadline-aware micro-batching onto the batch>1 forward
//!   path; worker-band budgets ([`eml_nn::workers::with_band_cap`])
//!   derived from each app's allocated cores; allocations actuated
//!   through the core knob surfaces
//!   ([`eml_core::knobs::apply_app_command`]).
//! - [`ServeController`] — the control loop: measured p50 vs predicted
//!   latency feeds [`eml_core::feedback::LatencyFeedback`]; sustained
//!   deadline misses ([`eml_core::feedback::MissTracker`]) trigger
//!   [`eml_core::rtm::Rtm::allocate_with_feedback`] re-allocation on
//!   the corrected model.
//! - [`ExecutedReplay`] — plugs the executor into
//!   [`eml_sim::Simulator::run_executed`], so scenario traces report
//!   measured rather than analytic latencies.
//! - [`testbed`] — deterministic fixtures (an optimistic single-cluster
//!   SoC, seeded real models) for closed-loop tests and examples.
//!
//! ## Shape of the loop
//!
//! ```text
//!  requests ──► Executor (queues → micro-batches → real kernels)
//!                  │ measured latency, deadline outcomes
//!                  ▼
//!          ServeController ──feedback──► Rtm::allocate_with_feedback
//!                  ▲                             │ knob commands
//!                  └────── apply_allocation ◄────┘
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod error;
pub mod executor;
pub mod replay;
pub mod stats;
pub mod testbed;

pub use control::{ControllerConfig, EpochOutcome, ServeController};
pub use error::{Result, ServeError};
pub use executor::{Completion, Executor, ExecutorConfig, Ticket};
pub use replay::ExecutedReplay;
pub use stats::AppStatsSnapshot;
