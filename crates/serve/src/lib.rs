//! # eml-serve — the multi-tenant serving executor
//!
//! `eml-core`'s RTM and `eml-sim`'s simulator are *planners*: they
//! decide knob settings (width, precision, cores, DVFS) from an
//! analytic latency model. This crate **executes** those decisions
//! against the real `eml_nn` kernels and closes the loop with measured
//! latency:
//!
//! - [`Executor`] — a fixed shared pool of driver threads
//!   ([`ExecutorConfig::pool_workers`], independent of the tenant
//!   count) serving every registered [`eml_dnn::DynamicDnn`] from a
//!   weighted earliest-deadline-first ready order; a *bounded* app
//!   registry (typed [`ServeError::OverCapacity`] refusal) and per-app
//!   *bounded* request queues (typed [`ServeError::QueueFull`]
//!   rejection, never a block, never a silent drop); deadline-aware
//!   micro-batching onto the batch>1 forward path; worker-band budgets
//!   ([`eml_nn::workers::with_band_cap`]) derived from each app's
//!   allocated cores; allocations actuated through the core knob
//!   surfaces ([`eml_core::knobs::apply_app_command`]).
//! - [`ServeController`] — the control loop: measured p50 vs predicted
//!   latency feeds [`eml_core::feedback::LatencyFeedback`]; sustained
//!   deadline misses ([`eml_core::feedback::MissTracker`]) trigger
//!   [`eml_core::rtm::Rtm::allocate_with_feedback`] re-allocation on
//!   the corrected model.
//! - [`HealthMonitor`] — per-app 0–100 health scores folded from the
//!   counters the executor already keeps (windowed miss rate, queue
//!   pressure, fresh sheds/restarts/stalls/knob faults), a worst-tenant
//!   aggregate, and a hand-rolled JSON export for offline policy.
//! - [`PressurePolicy`] — the graceful-degradation ladder: between
//!   allocation epochs it consumes the same health score — degrading
//!   (f32→int8, then width one level at a time) when an app's score
//!   falls below the pressure line, and hysteretically restoring rungs
//!   once the score stays high.
//! - [`FaultPlan`] — deterministic, seeded fault injection (forward
//!   panics, thread crashes, latency spikes, knob failures, queue
//!   storms) keyed to request sequence numbers; serving threads are
//!   supervised by a watchdog (heartbeats, typed batch failure,
//!   bounded-backoff restart) and expired requests are shed at dequeue
//!   with a typed [`ServeError::DeadlineExpired`].
//! - [`ExecutedReplay`] — plugs the executor into
//!   [`eml_sim::Simulator::run_executed`], so scenario traces report
//!   measured rather than analytic latencies.
//! - [`testbed`] — deterministic fixtures (an optimistic single-cluster
//!   SoC, seeded real models) for closed-loop tests and examples.
//!
//! ## Shape of the loop
//!
//! ```text
//!  requests ──► Executor (queues → micro-batches → real kernels)
//!                  │ measured latency, deadline outcomes
//!                  ▼
//!          ServeController ──feedback──► Rtm::allocate_with_feedback
//!                  ▲                             │ knob commands
//!                  └────── apply_allocation ◄────┘
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod error;
pub mod executor;
pub mod fault;
pub mod health;
pub mod replay;
pub mod stats;
pub mod testbed;

pub use control::{
    ControllerConfig, EpochOutcome, LadderStep, PressureAction, PressureConfig, PressurePolicy,
    PressureStats, ServeController,
};
pub use error::{Result, ServeError};
pub use executor::{Completion, Executor, ExecutorConfig, KnobRoute, Ticket};
pub use fault::{Fault, FaultKind, FaultPlan};
pub use health::{
    AppHealth, EventWatermark, FreshEvents, HealthBand, HealthConfig, HealthMonitor, HealthReport,
};
pub use replay::{ExecutedReplay, RetiredTotals};
pub use stats::{AppStatsSnapshot, PoolSnapshot};
