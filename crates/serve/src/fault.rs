//! Deterministic fault injection for the serving executor.
//!
//! A [`FaultPlan`] is a seeded, fully explicit schedule of hostile
//! events — forward panics, serving-thread crashes, latency spikes,
//! knob-actuation failures, queue storms — keyed to per-app request
//! *sequence numbers* rather than wall-clock time, so the same plan
//! replayed against the same request schedule produces bit-identical
//! counter trajectories. Plans are injected through
//! [`crate::ExecutorConfig::fault_plan`]; the default (`None`) costs
//! nothing on the hot path — the serving loop consults the plan only
//! when the per-app slice captured at registration is non-empty.
//!
//! Each scheduled fault fires exactly once: on the first dispatched
//! batch whose highest sequence number reaches the fault's `at_seq`
//! (fired state lives in the shared queue state, so a fault does not
//! re-fire after a supervised thread restart). Runtime one-shot
//! injection — the path the simulator's chaos hooks use — goes through
//! [`crate::Executor::inject_fault`].

use eml_platform::units::TimeSpan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One kind of injected fault.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Panic inside the batched forward pass, within the executor's
    /// containment: every rider of the batch receives a typed
    /// [`crate::ServeError::Inference`] error and the thread keeps
    /// serving.
    PanicForward,
    /// Panic *outside* the forward's containment — kills the serving
    /// thread mid-batch, exercising the watchdog's supervised restart
    /// (the in-flight batch is failed with a typed error and the
    /// restart is counted in [`crate::AppStatsSnapshot::restarts`]).
    CrashThread,
    /// Spin-delays the batched forward by the given span (a synthetic
    /// interference burst). The injected delay is excluded from the
    /// micro-batcher's service-time estimate so batch coalescing stays
    /// deterministic across a spike.
    LatencySpike(TimeSpan),
    /// Fails the app's next knob actuation (counted in
    /// [`crate::AppStatsSnapshot::knob_faulted`]; the knob is dropped,
    /// the model's operating point is left untouched).
    KnobFailure,
    /// Enqueues this many synthetic copies of the triggering batch's
    /// first sample behind it (an overload burst). Injection stops at
    /// queue capacity; injected requests are counted in
    /// [`crate::AppStatsSnapshot::storm_injected`].
    QueueStorm(usize),
}

/// One scheduled fault: fires once, on the first dispatched batch of
/// `app` whose highest sequence number is at least `at_seq`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// The targeted application.
    pub app: String,
    /// The per-app request sequence number that triggers the fault.
    pub at_seq: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults. See the module docs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (add faults with [`FaultPlan::with_fault`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one scheduled fault.
    #[must_use]
    pub fn with_fault(mut self, app: impl Into<String>, at_seq: u64, kind: FaultKind) -> Self {
        self.faults.push(Fault {
            app: app.into(),
            at_seq,
            kind,
        });
        self
    }

    /// Generates `count` faults over `apps`, kinds and trigger
    /// sequences drawn from a seeded generator — the property suite's
    /// "arbitrary hostile schedule". The same `(seed, apps, count,
    /// seqs)` always yields the same plan.
    pub fn seeded(seed: u64, apps: &[&str], count: usize, seqs: std::ops::Range<u64>) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = Self::new();
        if apps.is_empty() {
            return plan;
        }
        for _ in 0..count {
            let app = apps[rng.gen_range(0..apps.len())];
            let at_seq = if seqs.is_empty() {
                seqs.start
            } else {
                rng.gen_range(seqs.clone())
            };
            let kind = match rng.gen_range(0u32..5) {
                0 => FaultKind::PanicForward,
                1 => FaultKind::CrashThread,
                2 => FaultKind::LatencySpike(TimeSpan::from_micros(rng.gen_range(50.0..500.0))),
                3 => FaultKind::KnobFailure,
                _ => FaultKind::QueueStorm(rng.gen_range(1usize..8)),
            };
            plan = plan.with_fault(app, at_seq, kind);
        }
        plan
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan schedules anything at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The subset of faults targeting `app` (captured once at
    /// registration, so the hot path never scans foreign apps' faults).
    pub(crate) fn for_app(&self, app: &str) -> Vec<Fault> {
        self.faults
            .iter()
            .filter(|f| f.app == app)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let a = FaultPlan::seeded(42, &["cam", "det"], 10, 0..100);
        let b = FaultPlan::seeded(42, &["cam", "det"], 10, 0..100);
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.faults().len(), 10);
        for f in a.faults() {
            assert!(f.at_seq < 100);
            assert!(f.app == "cam" || f.app == "det");
        }
        let c = FaultPlan::seeded(43, &["cam", "det"], 10, 0..100);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn empty_inputs_degrade_gracefully() {
        assert!(FaultPlan::seeded(1, &[], 5, 0..10).is_empty());
        let p = FaultPlan::seeded(1, &["a"], 3, 7..7);
        assert!(p.faults().iter().all(|f| f.at_seq == 7));
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn per_app_slices_partition_the_plan() {
        let p = FaultPlan::new()
            .with_fault("cam", 0, FaultKind::PanicForward)
            .with_fault("det", 1, FaultKind::KnobFailure)
            .with_fault("cam", 2, FaultKind::QueueStorm(3));
        assert_eq!(p.for_app("cam").len(), 2);
        assert_eq!(p.for_app("det").len(), 1);
        assert!(p.for_app("ghost").is_empty());
    }
}
