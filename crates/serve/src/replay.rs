//! Executed-mode scenario replay: the adapter that plugs the real
//! executor into [`eml_sim::Simulator::run_executed`].
//!
//! The simulator stays the clock and the policy engine (arrivals,
//! thermal governor, RTM decisions); [`ExecutedReplay`] actuates every
//! decision on a live [`Executor`] and answers latency samples by
//! timing a real inference request — so a scenario trace reports what
//! the kernels measurably delivered at each decided operating point,
//! not what the analytic model predicted.
//!
//! With an app builder ([`ExecutedReplay::with_app_builder`]) the
//! replay also drives the executor's *lifecycle*: scenario arrivals
//! register live apps (rigid tenants too), departures call
//! [`Executor::deregister_dnn`], and the final counters of every
//! departed lifetime are folded into a [`RetiredTotals`] ledger — so
//! the extended accounting invariant can be asserted across churn, not
//! just over apps that survive to the end of the run.

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use eml_core::rtm::{Allocation, AppSpec, DnnAppSpec};
use eml_dnn::DynamicDnn;
use eml_platform::units::TimeSpan;
use eml_sim::{ChaosFault, ExecutionBackend};

use crate::error::ServeError;
use crate::executor::Executor;
use crate::fault::FaultKind;

/// Accumulated final counters of every app lifetime ended by a
/// scenario departure (the snapshot [`Executor::deregister_dnn`]
/// returns). Together with the live apps' snapshots and the replay's
/// [`attempt`](ExecutedReplay::attempts) counters, these close the
/// extended accounting invariant across churn:
/// `attempts + storm_injected == completed + errors + rejected + shed`
/// summed over live *and* retired lifetimes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RetiredTotals {
    /// Lifetimes retired (one per successful deregistration).
    pub lifetimes: u64,
    /// Requests completed across retired lifetimes.
    pub completed: u64,
    /// Typed errors across retired lifetimes (includes the stranded
    /// tickets each deregistration settled).
    pub errors: u64,
    /// Queue-full / not-admitted rejections across retired lifetimes.
    pub rejected: u64,
    /// Expired requests shed across retired lifetimes.
    pub shed: u64,
    /// Synthetic storm requests injected across retired lifetimes.
    pub storm_injected: u64,
}

impl RetiredTotals {
    fn absorb(&mut self, snap: &crate::stats::AppStatsSnapshot) {
        self.lifetimes += 1;
        self.completed += snap.completed;
        self.errors += snap.errors;
        self.rejected += snap.rejected;
        self.shed += snap.shed;
        self.storm_injected += snap.storm_injected;
    }
}

type AppBuilder<'a> = Box<dyn FnMut(&DnnAppSpec) -> DynamicDnn + 'a>;

/// Replays allocation decisions and latency samples through a live
/// executor. Apps without a registered probe input sample analytically
/// (the backend returns `None` for them).
pub struct ExecutedReplay<'a> {
    exec: &'a Executor,
    probes: HashMap<String, Vec<f32>>,
    timeout: Duration,
    builder: Option<AppBuilder<'a>>,
    attempts: HashMap<String, u64>,
    retired: RetiredTotals,
}

impl fmt::Debug for ExecutedReplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutedReplay")
            .field("exec", &self.exec)
            .field("probes", &self.probes.len())
            .field("timeout", &self.timeout)
            .field("builder", &self.builder.is_some())
            .field("retired", &self.retired)
            .finish()
    }
}

impl<'a> ExecutedReplay<'a> {
    /// Creates a replay backend over `exec` with a 30 s per-measurement
    /// safety timeout (a hung measurement falls back to analytic
    /// sampling instead of wedging the scenario).
    pub fn new(exec: &'a Executor) -> Self {
        Self {
            exec,
            probes: HashMap::new(),
            timeout: Duration::from_secs(30),
            builder: None,
            attempts: HashMap::new(),
            retired: RetiredTotals::default(),
        }
    }

    /// Registers the probe input (one flattened sample) measured for
    /// `app` at every trace sample point.
    #[must_use]
    pub fn with_probe(mut self, app: impl Into<String>, sample: Vec<f32>) -> Self {
        self.probes.insert(app.into(), sample);
        self
    }

    /// Overrides the per-measurement timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Enables lifecycle-driving replay: every scenario arrival of a
    /// DNN app calls `build` for a live model and registers it (with
    /// the spec's requirements) on the executor, auto-deriving a
    /// deterministic probe from the model's input shape; rigid
    /// arrivals call [`Executor::register_rigid`]; departures call
    /// [`Executor::deregister_dnn`] and fold the final snapshot into
    /// [`ExecutedReplay::retired`]. Re-arrivals of a live name are
    /// ignored ([`ServeError::DuplicateApp`] is not an error here —
    /// the scenario's re-`Arrive` after an `Update` is a spec change,
    /// not a lifecycle event). Rigid departures only affect the
    /// allocation side; the executor keeps the rigid registration for
    /// bookkeeping.
    #[must_use]
    pub fn with_app_builder(mut self, build: impl FnMut(&DnnAppSpec) -> DynamicDnn + 'a) -> Self {
        self.builder = Some(Box::new(build));
        self
    }

    /// Requests this replay has attempted for `app` (submissions that
    /// obtained a ticket, plus typed queue-full / not-admitted
    /// rejections — exactly the submissions the executor's accounting
    /// invariant counts). Cumulative across churned lifetimes.
    pub fn attempts(&self, app: &str) -> u64 {
        self.attempts.get(app).copied().unwrap_or(0)
    }

    /// Total attempted requests across every app this replay touched.
    pub fn total_attempts(&self) -> u64 {
        self.attempts.values().sum()
    }

    /// The accumulated final counters of departed app lifetimes.
    pub fn retired(&self) -> RetiredTotals {
        self.retired
    }
}

/// A fixed, seed-free probe pattern: deterministic bytes any two
/// same-schedule runs derive identically.
fn deterministic_probe(len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| ((i * 37 + 11) % 101) as f32 / 101.0)
        .collect()
}

impl ExecutionBackend for ExecutedReplay<'_> {
    fn on_allocation(&mut self, _at_secs: f64, allocation: &Allocation) {
        self.exec.apply_allocation(allocation);
    }

    fn measure(&mut self, app: &str, _predicted: TimeSpan) -> Option<TimeSpan> {
        let probe = self.probes.get(app)?;
        match self.exec.submit(app, probe) {
            Ok(ticket) => {
                *self.attempts.entry(app.to_string()).or_insert(0) += 1;
                let done = ticket.wait_timeout(self.timeout).ok()?;
                Some(done.latency)
            }
            Err(ServeError::QueueFull { .. } | ServeError::NotAdmitted { .. }) => {
                // The executor counted a rejection for this submission:
                // it is an attempt for accounting purposes.
                *self.attempts.entry(app.to_string()).or_insert(0) += 1;
                None
            }
            // Refusals (stopped, deregistered, unknown, bad shape)
            // never enter the executor's ledger — not attempts.
            Err(_) => None,
        }
    }

    fn on_chaos(&mut self, _at_secs: f64, app: &str, fault: &ChaosFault) {
        // Scenario chaos → a one-shot armed fault on the live executor
        // (consumed by the app's next dispatched batch). Unknown apps
        // and chaos kinds this serving layer has no surface for are
        // ignored, like unknown apps in `measure`.
        let kind = match fault {
            ChaosFault::PanicForward => FaultKind::PanicForward,
            ChaosFault::CrashThread => FaultKind::CrashThread,
            ChaosFault::LatencySpike(t) => FaultKind::LatencySpike(*t),
            ChaosFault::KnobFailure => FaultKind::KnobFailure,
            ChaosFault::QueueStorm(n) => FaultKind::QueueStorm(*n),
            _ => return,
        };
        let _ = self.exec.inject_fault(app, kind);
    }

    fn on_arrive(&mut self, _at_secs: f64, spec: &AppSpec) {
        match spec {
            AppSpec::Dnn(d) => {
                let Some(build) = self.builder.as_mut() else {
                    return;
                };
                let dnn = build(d);
                let sample_len: usize = dnn.network().input_shape().iter().product();
                // On DuplicateApp (re-Arrive of a running app) the
                // freshly built model is dropped and serving
                // continues uninterrupted.
                if self
                    .exec
                    .register_dnn(&d.name, dnn, &d.requirements)
                    .is_ok()
                {
                    self.probes
                        .entry(d.name.clone())
                        .or_insert_with(|| deterministic_probe(sample_len));
                }
            }
            AppSpec::Rigid(r) => {
                if self.builder.is_some() {
                    let _ = self.exec.register_rigid(&r.name);
                }
            }
        }
    }

    fn on_depart(&mut self, _at_secs: f64, app: &str) {
        if self.builder.is_none() {
            return;
        }
        if let Ok(snap) = self.exec.deregister_dnn(app) {
            self.retired.absorb(&snap);
        }
    }
}
