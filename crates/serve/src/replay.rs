//! Executed-mode scenario replay: the adapter that plugs the real
//! executor into [`eml_sim::Simulator::run_executed`].
//!
//! The simulator stays the clock and the policy engine (arrivals,
//! thermal governor, RTM decisions); [`ExecutedReplay`] actuates every
//! decision on a live [`Executor`] and answers latency samples by
//! timing a real inference request — so a scenario trace reports what
//! the kernels measurably delivered at each decided operating point,
//! not what the analytic model predicted.

use std::collections::HashMap;
use std::time::Duration;

use eml_core::rtm::Allocation;
use eml_platform::units::TimeSpan;
use eml_sim::{ChaosFault, ExecutionBackend};

use crate::executor::Executor;
use crate::fault::FaultKind;

/// Replays allocation decisions and latency samples through a live
/// executor. Apps without a registered probe input sample analytically
/// (the backend returns `None` for them).
#[derive(Debug)]
pub struct ExecutedReplay<'a> {
    exec: &'a Executor,
    probes: HashMap<String, Vec<f32>>,
    timeout: Duration,
}

impl<'a> ExecutedReplay<'a> {
    /// Creates a replay backend over `exec` with a 30 s per-measurement
    /// safety timeout (a hung measurement falls back to analytic
    /// sampling instead of wedging the scenario).
    pub fn new(exec: &'a Executor) -> Self {
        Self {
            exec,
            probes: HashMap::new(),
            timeout: Duration::from_secs(30),
        }
    }

    /// Registers the probe input (one flattened sample) measured for
    /// `app` at every trace sample point.
    #[must_use]
    pub fn with_probe(mut self, app: impl Into<String>, sample: Vec<f32>) -> Self {
        self.probes.insert(app.into(), sample);
        self
    }

    /// Overrides the per-measurement timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }
}

impl ExecutionBackend for ExecutedReplay<'_> {
    fn on_allocation(&mut self, _at_secs: f64, allocation: &Allocation) {
        self.exec.apply_allocation(allocation);
    }

    fn measure(&mut self, app: &str, _predicted: TimeSpan) -> Option<TimeSpan> {
        let probe = self.probes.get(app)?;
        let ticket = self.exec.submit(app, probe).ok()?;
        let done = ticket.wait_timeout(self.timeout).ok()?;
        Some(done.latency)
    }

    fn on_chaos(&mut self, _at_secs: f64, app: &str, fault: &ChaosFault) {
        // Scenario chaos → a one-shot armed fault on the live executor
        // (consumed by the app's next dispatched batch). Unknown apps
        // and chaos kinds this serving layer has no surface for are
        // ignored, like unknown apps in `measure`.
        let kind = match fault {
            ChaosFault::PanicForward => FaultKind::PanicForward,
            ChaosFault::CrashThread => FaultKind::CrashThread,
            ChaosFault::LatencySpike(t) => FaultKind::LatencySpike(*t),
            ChaosFault::KnobFailure => FaultKind::KnobFailure,
            ChaosFault::QueueStorm(n) => FaultKind::QueueStorm(*n),
            _ => return,
        };
        let _ = self.exec.inject_fault(app, kind);
    }
}
