//! The multi-tenant serving executor.
//!
//! [`Executor`] owns a **fixed pool of driver threads** (sized by
//! [`ExecutorConfig::pool_workers`], *not* by the tenant count) that
//! serves every registered dynamic-DNN application from a shared
//! ready-"queue": each driver scans the app roster and claims the most
//! urgent runnable app under weighted earliest-deadline-first order —
//! the virtual deadline of an app's oldest queued request is its
//! arrival time plus the app's latency budget scaled down by its RTM
//! band allocation (more allocated cores ⇒ less slack ⇒ served
//! sooner). A claimed app is marked *busy* so exactly one driver works
//! it at a time, which preserves per-app FIFO completion order and
//! keeps per-app results bit-identical whether the app runs solo or
//! among a hundred co-tenants.
//!
//! Per claim, the driver drains the app's bounded request queue into a
//! deadline-aware micro-batch (up to [`ExecutorConfig::batch_cap`],
//! shrunk when the estimated batch service time would blow the oldest
//! request's deadline) and runs it through the real
//! [`eml_dnn::DynamicDnn`] kernels — the batch>1 forward path of
//! `eml_nn`, under a per-app [`eml_nn::workers::with_band_cap`] budget
//! derived from the cores the RTM allocated. An
//! [`eml_core::rtm::Allocation`] is *actuated*, not interpreted:
//! [`Executor::apply_allocation`] translates it through
//! [`eml_core::knobs::commands_for`] and a pool driver executes the
//! application-layer commands with
//! [`eml_core::knobs::apply_app_command`] (width switches re-plan the
//! int8 chain automatically; precision switches re-select the
//! backend).
//!
//! Requests complete through per-request tickets; queue overflow is a
//! typed [`crate::ServeError::QueueFull`] at submission, never a block
//! and never a silent drop. Every admitted request produces exactly one
//! completion (success or a typed error) in FIFO order per app, a
//! property the stress and property suites pin.
//!
//! ## Bounded registry
//!
//! Tenant state is a *capped* registry: registrations past
//! [`ExecutorConfig::max_apps`] are refused with the typed
//! [`crate::ServeError::OverCapacity`] — a whole-tenant refusal,
//! distinct from the per-request [`crate::ServeError::QueueFull`].
//! Deregistered tombstones do not count against the cap, so tenant
//! churn does not leak capacity.
//!
//! ## Fault tolerance
//!
//! Pool drivers are *supervised*: each driver stores a heartbeat
//! beacon before every scan and every forward pass, and a watchdog
//! thread (one per executor, ticking every
//! [`ExecutorConfig::watchdog_interval`]) checks every driver. A
//! driver that died (a panic escaping the forward's containment) has
//! the claimed app's in-flight batch failed with a typed
//! [`crate::ServeError::Inference`] error, the app's busy mark
//! cleared (so the surviving drivers can serve it), and is restarted
//! with bounded exponential backoff
//! ([`ExecutorConfig::restart_backoff`] .. `restart_backoff_max`,
//! doubling per consecutive crash); restarts surface in
//! [`AppStatsSnapshot::restarts`] of the app whose batch died. A
//! driver that *wedged* — heartbeat stale past
//! [`ExecutorConfig::stall_timeout`] with work in flight — has its
//! batch confiscated and failed the same way
//! ([`AppStatsSnapshot::stalls`]); if the forward later recovers, its
//! results are discarded (the riders were already answered).
//!
//! At dequeue time, requests whose deadline already expired in the
//! queue are **shed** with a typed
//! [`crate::ServeError::DeadlineExpired`] instead of burning a forward
//! pass on a doomed request — the biggest overload amplifier in a
//! deadline-driven server. Shed counts keep the extended accounting
//! invariant exact:
//! `submitted + storm_injected == completed + errors + rejected + shed`.
//!
//! ## Lifecycle
//!
//! Registration is interior-mutable (`&self`): the app map lives
//! behind its own ranked lock (`eml_core::sync::rank::EXEC_APPS`,
//! below every per-app lock), so apps arrive and depart *mid-stream* —
//! from a scenario replay or a control thread — without exclusive
//! access to the executor, and without touching the driver pool.
//! [`Executor::deregister_dnn`] is the lifecycle inverse of
//! [`Executor::register_dnn`]: new submissions are refused with the
//! typed [`crate::ServeError::AppDeregistered`], the pool drains what
//! the app already admitted, anything stranded while no driver is
//! alive is failed with the same typed error (never a lost ticket),
//! and the app's band is released. A tombstone keeps the final
//! statistics readable and the refusal distinct from
//! [`crate::ServeError::UnknownApp`] until the name is registered
//! again. The extended accounting invariant holds across the
//! transition.
//!
//! Deterministic hostile schedules come from a seeded
//! [`crate::FaultPlan`] ([`ExecutorConfig::fault_plan`], off by
//! default and free when absent) or one-shot
//! [`Executor::inject_fault`] calls (the simulator's chaos hooks).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use eml_core::knobs::{apply_app_command, commands_for, KnobCommand};
use eml_core::requirements::Requirements;
use eml_core::rtm::Allocation;
use eml_core::sync::{rank, RankedGuard, RankedMutex};
use eml_dnn::DynamicDnn;
use eml_nn::tensor::Tensor;
use eml_platform::soc::ClusterId;
use eml_platform::units::TimeSpan;

use crate::error::{Result, ServeError};
use crate::fault::{Fault, FaultKind, FaultPlan};
use crate::stats::{AppStats, AppStatsSnapshot, PoolSnapshot};

/// Virtual-deadline budget (seconds) for apps registered without a
/// latency requirement: tight enough that best-effort tenants are not
/// starved behind every deadline-bearing tenant, loose enough that
/// real deadlines still dominate the EDF order.
const DEFAULT_EDF_BUDGET_SECS: f64 = 0.1;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Bounded per-app queue capacity; submissions beyond it are
    /// rejected with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batched forward pass.
    pub batch_cap: usize,
    /// Sliding-window length of the per-app latency statistics.
    pub stats_window: usize,
    /// Number of shared pool driver threads. Fixed at construction and
    /// **independent of the tenant count**: registering the hundredth
    /// app spawns nothing. Clamped to at least 1.
    pub pool_workers: usize,
    /// Bounded app-registry capacity (DNN and rigid tenants together);
    /// registrations past it are refused with the typed
    /// [`ServeError::OverCapacity`]. Deregistered tombstones do not
    /// count.
    pub max_apps: usize,
    /// Cadence of the supervisor watchdog tick (dead/wedged-driver
    /// detection and restart scheduling).
    pub watchdog_interval: Duration,
    /// An in-flight batch whose driver heartbeat is older than this is
    /// declared wedged: the watchdog fails it with a typed error.
    pub stall_timeout: Duration,
    /// Base delay before restarting a dead pool driver; doubles per
    /// consecutive crash (without an intervening completed batch).
    pub restart_backoff: Duration,
    /// Upper bound of the exponential restart backoff.
    pub restart_backoff_max: Duration,
    /// Deterministic fault schedule (`None` — the default — injects
    /// nothing and costs nothing on the hot path).
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            batch_cap: 8,
            stats_window: 256,
            pool_workers: 2,
            max_apps: 256,
            watchdog_interval: Duration::from_millis(5),
            stall_timeout: Duration::from_secs(5),
            restart_backoff: Duration::from_millis(10),
            restart_backoff_max: Duration::from_secs(2),
            fault_plan: None,
        }
    }
}

/// Where [`Executor::route_command`] sent a knob command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobRoute {
    /// Queued to the addressed app; a pool driver actuates it before
    /// the app's next batch, and the result lands in the app's stats
    /// ([`AppStatsSnapshot::knob_rejected`] on a model refusal).
    Queued,
    /// A device-layer knob (DVFS, core gating, placement) the executor
    /// does not own; untouched.
    DeviceKnob,
}

/// One completed request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request's per-app FIFO sequence number.
    pub seq: u64,
    /// The sample's logits row.
    pub logits: Vec<f32>,
    /// Argmax class of the logits.
    pub pred: usize,
    /// End-to-end latency: submission to completion (queueing +
    /// batched inference).
    pub latency: TimeSpan,
    /// Duration of the batched forward pass this request rode.
    pub service: TimeSpan,
    /// Number of requests coalesced into that pass.
    pub batch_size: usize,
    /// Whether `latency` met the app's deadline (`None` when the app
    /// has no latency requirement).
    pub deadline_met: Option<bool>,
}

/// A handle to one submitted request.
#[derive(Debug)]
pub struct Ticket {
    app: String,
    seq: u64,
    rx: mpsc::Receiver<Result<Completion>>,
}

impl Ticket {
    /// The application this request was submitted to.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// The request's per-app FIFO sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Blocks until the request completes.
    ///
    /// # Errors
    ///
    /// Returns the batch's [`ServeError::Inference`] error if the
    /// forward pass failed (or the supervisor failed a dead/wedged
    /// driver's batch), [`ServeError::DeadlineExpired`] if the request
    /// was shed past its deadline, or [`ServeError::AppStopped`] if
    /// the executor shut down before completing this request.
    pub fn wait(&self) -> Result<Completion> {
        self.rx.recv().map_err(|_| ServeError::AppStopped {
            app: self.app.clone(),
        })?
    }

    /// [`Ticket::wait`] with an upper bound on *this wait*, not on the
    /// request: a timeout returns a typed
    /// [`ServeError::WaitTimeout`] and leaves the request **in
    /// flight** — it may still complete later (landing in the app's
    /// statistics like any other completion) and a subsequent
    /// `wait`/`wait_timeout` on the same ticket can still receive it.
    /// There is no lost-ticket accounting hole: timing out a wait
    /// never removes the request from the queue or the batch.
    ///
    /// # Errors
    ///
    /// As [`Ticket::wait`], plus [`ServeError::WaitTimeout`] when the
    /// bound elapses first.
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> Result<Completion> {
        match self.rx.recv_timeout(timeout) {
            Ok(done) => done,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::WaitTimeout {
                app: self.app.clone(),
            }),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::AppStopped {
                app: self.app.clone(),
            }),
        }
    }
}

struct PendingRequest {
    seq: u64,
    input: Box<[f32]>,
    submitted: Instant,
    tx: mpsc::Sender<Result<Completion>>,
}

/// Queue state shared between submitters, the pool drivers, the
/// watchdog and the control plane. Never held across an inference.
struct QueueState {
    pending: VecDeque<PendingRequest>,
    /// The batch currently being served. It stays *here* (not on the
    /// driver's stack) so the supervisor can fail it with a typed
    /// error when the driver dies or wedges; the driver takes it back
    /// after the forward and discards its results if the supervisor
    /// got there first.
    inflight: Vec<PendingRequest>,
    /// Application-layer knob commands awaiting execution on a pool
    /// driver (which holds the model lock to actuate).
    knobs: Vec<KnobCommand>,
    /// Runtime-armed one-shot faults ([`Executor::inject_fault`]),
    /// consumed by the next dispatched batch.
    armed: Vec<FaultKind>,
    /// Fired flags of the app's [`FaultPlan`] slice (index-aligned).
    /// Shared state, not thread-local: a plan fault must not re-fire
    /// after a supervised restart.
    fired: Vec<bool>,
    /// Injected knob-actuation failures not yet consumed by a command.
    knob_fault_budget: u32,
    next_seq: u64,
    rejected: u64,
    errors: u64,
    shed: u64,
    storm_injected: u64,
    max_depth: usize,
    band_cap: usize,
    predicted: Option<TimeSpan>,
    cluster: Option<ClusterId>,
    admitted: bool,
    paused: bool,
    /// Claimed by a pool driver: exactly one driver serves an app at a
    /// time, which is what preserves per-app FIFO completion order on
    /// a shared pool. Cleared on release — or by the watchdog when the
    /// claiming driver dies.
    busy: bool,
    /// EWMA of per-sample service time (seconds), for deadline-aware
    /// batch sizing. Lives in shared state (not on a driver's stack)
    /// because on a shared pool *different* drivers serve consecutive
    /// batches of the same app; injected spike delays are excluded so
    /// coalescing stays deterministic across a fault.
    ewma: Option<f64>,
    /// Active `drain_app` calls; submissions are refused while the
    /// queue is being drained so the drain terminates.
    draining: u32,
    /// Set (together with `stopping`) by `deregister_dnn`, so raced
    /// submissions surface the distinct [`ServeError::AppDeregistered`]
    /// rather than shutdown's [`ServeError::AppStopped`].
    departing: bool,
    stopping: bool,
}

struct AppShared {
    /// Queue state, ranked: the serve path's completion section nests
    /// `EXEC_STATS` inside this lock (the crate's one sanctioned
    /// nesting); the debug-build rank check keeps every other path
    /// honest about the queue-state→stats order.
    state: RankedMutex<QueueState>,
    /// Signalled when the queue empties and nothing is in flight.
    idle: Condvar,
}

fn lock_state(shared: &AppShared) -> RankedGuard<'_, QueueState> {
    // Poisoning is recovered inside `RankedMutex`: the state is only
    // mutated by short, panic-free critical sections; a poisoned lock
    // means a pool driver died mid-batch, which the watchdog turns
    // into typed errors and a supervised restart.
    shared.state.lock()
}

/// Restart bookkeeping, owned by the watchdog and reset by a pool
/// driver on every completed batch.
#[derive(Default)]
struct Supervision {
    /// Consecutive restarts without an intervening completed batch —
    /// the exponent of the restart backoff.
    streak: u32,
    /// When the next restart may happen (set at death detection).
    restart_at: Option<Instant>,
}

/// Everything the pool drivers, the watchdog and the control plane
/// share about one app. The model lives *here* (not on a driver's
/// stack) so any driver — including one freshly restarted — serves
/// the same model.
struct AppRuntime {
    name: String,
    shared: AppShared,
    stats: RankedMutex<AppStats>,
    model: RankedMutex<DynamicDnn>,
    /// The shared driver pool this app is scheduled on (rung after
    /// every enqueue so a sleeping driver rescans).
    pool: Arc<PoolShared>,
    /// Registration order, the deterministic EDF tie-break: equal
    /// virtual deadlines are served in registration order, never by
    /// hash order or thread race.
    reg_index: u64,
    batch_cap: usize,
    deadline: Option<TimeSpan>,
    queue_capacity: usize,
    /// This app's slice of the executor's fault plan (empty ⇒ the
    /// dispatch path never looks at faults).
    plan: Vec<Fault>,
}

impl AppRuntime {
    fn lock_stats(&self) -> RankedGuard<'_, AppStats> {
        self.stats.lock()
    }

    fn lock_model(&self) -> RankedGuard<'_, DynamicDnn> {
        // A panic mid-forward (injected or organic) poisons this lock;
        // recovery (inside `RankedMutex`) is safe because the model's
        // scratch is resize-then-overwrite — no torn state survives
        // into the next forward.
        self.model.lock()
    }
}

struct DnnApp {
    rt: Arc<AppRuntime>,
    sample_len: usize,
    sample_shape: Vec<usize>,
}

enum AppEntry {
    Dnn(Arc<DnnApp>),
    /// Rigid apps run outside the executor (a GPU renderer, a codec);
    /// registration only makes allocation bookkeeping visible.
    Rigid,
    /// Tombstone left by [`Executor::deregister_dnn`]: keeps the final
    /// statistics readable, makes late lookups fail with the distinct
    /// typed refusal, and frees the name for re-registration.
    Departed(Arc<DnnApp>),
}

/// The pool scheduler's shared state: the roster of registered DNN
/// apps the EDF scan walks, and the pool-wide stop flag.
struct PoolState {
    roster: Vec<Arc<DnnApp>>,
    stopping: bool,
}

/// What every pool driver shares: the scheduler state, the wakeup
/// condvar, the live-driver census and the EDF epoch.
struct PoolShared {
    /// Ranked *below* every per-app lock (`EXEC_POOL` < `EXEC_QUEUE`)
    /// so a driver may hold the scheduler across its scan while
    /// peeking at each app's queue state.
    sched: RankedMutex<PoolState>,
    /// Signalled on submit / knob push / resume / release / stop.
    work: Condvar,
    /// Drivers currently alive (spawned minus reaped-dead). Lifecycle
    /// paths consult it so a fully-dead pool cannot hang a drain.
    live_drivers: AtomicUsize,
    /// The EDF time origin: virtual deadlines are offsets from here,
    /// so they are totally ordered plain `Duration`s.
    epoch: Instant,
}

impl PoolShared {
    /// Wakes every driver for a rescan, without losing a wakeup: a
    /// scanning driver holds the scheduler lock continuously from its
    /// scan until its condvar wait (which releases atomically), so
    /// taking the lock here guarantees the notify lands after the
    /// driver either saw the new state or started waiting.
    fn ring(&self) {
        drop(self.sched.lock());
        self.work.notify_all();
    }
}

/// One pool driver: its thread handle, its claim slot (which app it
/// is serving right now — the watchdog confiscates through it), its
/// supervision record and its heartbeat beacon.
struct Driver {
    index: usize,
    pool: Arc<PoolShared>,
    /// The app this driver currently has claimed (`busy` set). The
    /// watchdog reads it to know whose batch to fail when this driver
    /// dies or wedges.
    current: RankedMutex<Option<Arc<DnnApp>>>,
    thread: RankedMutex<Option<JoinHandle<()>>>,
    supervision: RankedMutex<Supervision>,
    /// Liveness beacon: nanoseconds since `epoch`, stored by the
    /// driver before every scan and every forward.
    heartbeat: AtomicU64,
    epoch: Instant,
}

impl Driver {
    fn beat(&self) {
        self.heartbeat
            .store(self.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn heartbeat_age(&self) -> Duration {
        let last = Duration::from_nanos(self.heartbeat.load(Ordering::Relaxed));
        self.epoch.elapsed().saturating_sub(last)
    }
}

/// Watchdog timing knobs, copied out of [`ExecutorConfig`] at spawn.
#[derive(Clone, Copy)]
struct WatchdogCfg {
    interval: Duration,
    stall: Duration,
    backoff: Duration,
    backoff_max: Duration,
}

/// The supervisor's view: the fixed driver set (immutable after
/// construction — supervision never needs a registry lock), plus the
/// stop signal of the watchdog thread itself.
struct Watchdog {
    drivers: Vec<Arc<Driver>>,
    stop: RankedMutex<bool>,
    bell: Condvar,
}

/// The multi-tenant serving executor. See the module docs.
pub struct Executor {
    cfg: ExecutorConfig,
    /// The app map, ranked *below* every per-app lock so lifecycle
    /// paths may resolve a name and then touch its queue state while
    /// still holding the map.
    apps: RankedMutex<HashMap<String, AppEntry>>,
    pool: Arc<PoolShared>,
    drivers: Vec<Arc<Driver>>,
    next_reg_index: AtomicU64,
    watchdog: Arc<Watchdog>,
    watchdog_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Executor({} apps, {} drivers, queue {}, batch cap {})",
            self.apps.lock().len(),
            self.drivers.len(),
            self.cfg.queue_capacity,
            self.cfg.batch_cap
        )
    }
}

impl Executor {
    /// Creates an executor, spawns its fixed driver pool
    /// ([`ExecutorConfig::pool_workers`] threads, at least one) and
    /// starts the supervisor watchdog.
    pub fn new(cfg: ExecutorConfig) -> Self {
        let pool = Arc::new(PoolShared {
            sched: RankedMutex::new(
                rank::EXEC_POOL,
                "exec-pool",
                PoolState {
                    roster: Vec::new(),
                    stopping: false,
                },
            ),
            work: Condvar::new(),
            live_drivers: AtomicUsize::new(0),
            epoch: Instant::now(),
        });
        let drivers: Vec<Arc<Driver>> = (0..cfg.pool_workers.max(1))
            .map(|index| {
                Arc::new(Driver {
                    index,
                    pool: Arc::clone(&pool),
                    current: RankedMutex::new(rank::EXEC_DRIVER, "exec-driver-current", None),
                    thread: RankedMutex::new(rank::EXEC_THREAD, "exec-thread", None),
                    supervision: RankedMutex::new(
                        rank::EXEC_SUPERVISION,
                        "exec-supervision",
                        Supervision::default(),
                    ),
                    heartbeat: AtomicU64::new(0),
                    epoch: Instant::now(),
                })
            })
            .collect();
        for drv in &drivers {
            let handle = spawn_driver_thread(drv).expect("spawn pool driver thread");
            *drv.thread.lock() = Some(handle);
            pool.live_drivers.fetch_add(1, Ordering::SeqCst);
        }
        let watchdog = Arc::new(Watchdog {
            drivers: drivers.clone(),
            stop: RankedMutex::new(rank::EXEC_WATCHDOG, "exec-watchdog-stop", false),
            bell: Condvar::new(),
        });
        let wd_cfg = WatchdogCfg {
            interval: cfg.watchdog_interval.max(Duration::from_millis(1)),
            stall: cfg.stall_timeout.max(Duration::from_millis(1)),
            backoff: cfg.restart_backoff,
            backoff_max: cfg.restart_backoff_max.max(cfg.restart_backoff),
        };
        let watchdog_thread = {
            let wd = Arc::clone(&watchdog);
            std::thread::Builder::new()
                .name("eml-serve-watchdog".into())
                .spawn(move || watchdog_loop(&wd, wd_cfg))
                .expect("spawn watchdog thread")
        };
        Self {
            cfg,
            apps: RankedMutex::new(rank::EXEC_APPS, "exec-apps", HashMap::new()),
            pool,
            drivers,
            next_reg_index: AtomicU64::new(0),
            watchdog,
            watchdog_thread: Some(watchdog_thread),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.cfg
    }

    /// Registered application names (DNN and rigid), **sorted** — a
    /// deterministic order, so health reports and scenario digests
    /// built from it are bit-stable run to run. Deregistered
    /// tombstones are excluded.
    pub fn app_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .apps
            .lock()
            .iter()
            .filter(|(_, e)| !matches!(e, AppEntry::Departed(_)))
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// A pool-level snapshot: driver census and the aggregate queue
    /// depth across every registered app. The control plane keys
    /// pool-pressure off this; tests assert the driver count is
    /// independent of the tenant count through it.
    pub fn pool_stats(&self) -> PoolSnapshot {
        // Registry occupancy first (rank EXEC_APPS below EXEC_POOL),
        // then the roster scan under the scheduler lock.
        let apps = {
            let apps = self.apps.lock();
            apps.values()
                .filter(|e| !matches!(e, AppEntry::Departed(_)))
                .count()
        };
        let ps = self.pool.sched.lock();
        let mut queue_depth = 0;
        let mut in_flight = 0;
        for app in &ps.roster {
            let st = lock_state(&app.rt.shared);
            queue_depth += st.pending.len();
            in_flight += st.inflight.len();
        }
        PoolSnapshot {
            drivers: self.drivers.len(),
            live_drivers: self.pool.live_drivers.load(Ordering::SeqCst),
            apps,
            serving: ps.roster.len(),
            max_apps: self.cfg.max_apps,
            queue_depth,
            in_flight,
            queue_capacity: self.cfg.queue_capacity,
        }
    }

    /// Aggregate queue pressure of the shared pool in `0.0..=1.0`:
    /// total queued requests over total queue capacity across the
    /// registered DNN apps (0 when none are registered). Feeds the
    /// health score's pool term.
    pub fn pool_pressure(&self) -> f32 {
        let snap = self.pool_stats();
        if snap.serving == 0 || snap.queue_capacity == 0 {
            return 0.0;
        }
        let cap = (snap.queue_capacity * snap.serving) as f32;
        (snap.queue_depth as f32 / cap).clamp(0.0, 1.0)
    }

    /// Registers a dynamic-DNN application on the shared pool. No
    /// thread is spawned — the fixed driver pool picks the app up from
    /// the roster. The deadline, when `requirements` carries a latency
    /// budget, drives per-request `deadline_met` accounting, the
    /// micro-batcher's coalescing bound, deadline-expiry shedding at
    /// dequeue, and the app's EDF urgency on the shared pool.
    ///
    /// Registration is interior-mutable (`&self`): apps can arrive
    /// while other threads are serving, observing or deregistering. A
    /// name left behind by [`Executor::deregister_dnn`] may be
    /// registered again — the tombstone (and its final statistics) is
    /// replaced by the fresh app.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DuplicateApp`] if the name is taken, or
    /// [`ServeError::OverCapacity`] if the bounded registry is full
    /// (nothing is registered in that case).
    pub fn register_dnn(
        &self,
        name: impl Into<String>,
        dnn: DynamicDnn,
        requirements: &Requirements,
    ) -> Result<()> {
        let name = name.into();
        // Hold the map for the whole registration so a concurrent
        // register/deregister of the same name serialises cleanly.
        let mut apps = self.apps.lock();
        match apps.get(&name) {
            None | Some(AppEntry::Departed(_)) => {}
            Some(_) => return Err(ServeError::DuplicateApp { app: name }),
        }
        let live = apps
            .values()
            .filter(|e| !matches!(e, AppEntry::Departed(_)))
            .count();
        if live >= self.cfg.max_apps {
            return Err(ServeError::OverCapacity {
                app: name,
                capacity: self.cfg.max_apps,
            });
        }
        let sample_shape: Vec<usize> = dnn.network().input_shape().to_vec();
        let sample_len = sample_shape.iter().product();
        let deadline = requirements.max_latency();
        let plan = self
            .cfg
            .fault_plan
            .as_ref()
            .map(|p| p.for_app(&name))
            .unwrap_or_default();
        let stats = AppStats::new(self.cfg.stats_window, dnn.level().index(), dnn.precision());
        let rt = Arc::new(AppRuntime {
            name: name.clone(),
            shared: AppShared {
                state: RankedMutex::new(
                    rank::EXEC_QUEUE,
                    "exec-queue-state",
                    QueueState {
                        pending: VecDeque::new(),
                        inflight: Vec::new(),
                        knobs: Vec::new(),
                        armed: Vec::new(),
                        fired: vec![false; plan.len()],
                        knob_fault_budget: 0,
                        next_seq: 0,
                        rejected: 0,
                        errors: 0,
                        shed: 0,
                        storm_injected: 0,
                        max_depth: 0,
                        band_cap: 0,
                        predicted: None,
                        cluster: None,
                        admitted: true,
                        paused: false,
                        busy: false,
                        ewma: None,
                        draining: 0,
                        departing: false,
                        stopping: false,
                    },
                ),
                idle: Condvar::new(),
            },
            stats: RankedMutex::new(rank::EXEC_STATS, "exec-stats", stats),
            model: RankedMutex::new(rank::EXEC_MODEL, "exec-model", dnn),
            pool: Arc::clone(&self.pool),
            reg_index: self.next_reg_index.fetch_add(1, Ordering::Relaxed),
            batch_cap: self.cfg.batch_cap.max(1),
            deadline,
            queue_capacity: self.cfg.queue_capacity,
            plan,
        });
        let app = Arc::new(DnnApp {
            rt,
            sample_len,
            sample_shape,
        });
        // Onto the scheduler roster (ranks: EXEC_APPS 190 < EXEC_POOL
        // 215 — legal while holding the map). No ring needed: a fresh
        // app has no work yet.
        self.pool.sched.lock().roster.push(Arc::clone(&app));
        apps.insert(name, AppEntry::Dnn(app));
        Ok(())
    }

    /// Registers a rigid (non-DNN) application for allocation
    /// bookkeeping. Rigid tenants occupy registry capacity like DNN
    /// tenants — the cap bounds the *registry*, not just the pool's
    /// serving roster.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DuplicateApp`] if the name is taken, or
    /// [`ServeError::OverCapacity`] if the bounded registry is full.
    pub fn register_rigid(&self, name: impl Into<String>) -> Result<()> {
        let name = name.into();
        let mut apps = self.apps.lock();
        match apps.get(&name) {
            None | Some(AppEntry::Departed(_)) => {}
            Some(_) => return Err(ServeError::DuplicateApp { app: name }),
        }
        let live = apps
            .values()
            .filter(|e| !matches!(e, AppEntry::Departed(_)))
            .count();
        if live >= self.cfg.max_apps {
            return Err(ServeError::OverCapacity {
                app: name,
                capacity: self.cfg.max_apps,
            });
        }
        apps.insert(name, AppEntry::Rigid);
        Ok(())
    }

    /// Deregisters a dynamic-DNN application — the lifecycle inverse of
    /// [`Executor::register_dnn`]. In order: new submissions start
    /// refusing with the typed [`ServeError::AppDeregistered`]; the
    /// pool drains every request the app already admitted; requests
    /// stranded with no live driver left to drain them (every driver
    /// dead awaiting backoff) are failed with the same typed error —
    /// never a lost ticket; the app leaves the scheduler roster and
    /// its band is released (`band_cap` 0, not admitted). The extended
    /// accounting invariant holds across the transition, and the final
    /// statistics snapshot is returned to the caller. A tombstone
    /// keeps late lookups typed (distinct from
    /// [`ServeError::UnknownApp`]) until the name is registered again.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownApp`] for unregistered or rigid names,
    /// [`ServeError::AppDeregistered`] when the app was already
    /// deregistered.
    pub fn deregister_dnn(&self, app: &str) -> Result<AppStatsSnapshot> {
        let d = {
            let mut apps = self.apps.lock();
            match apps.remove(app) {
                Some(AppEntry::Dnn(d)) => {
                    apps.insert(app.to_string(), AppEntry::Departed(Arc::clone(&d)));
                    d
                }
                Some(entry) => {
                    let refusal = match &entry {
                        AppEntry::Departed(_) => ServeError::AppDeregistered { app: app.into() },
                        _ => ServeError::UnknownApp { app: app.into() },
                    };
                    apps.insert(app.to_string(), entry);
                    return Err(refusal);
                }
                None => return Err(ServeError::UnknownApp { app: app.into() }),
            }
        };
        // Stop admissions, typed. The pool still drains what the app
        // already admitted: a stopping app with queued work keeps its
        // EDF key until the queue empties.
        {
            let mut st = lock_state(&d.rt.shared);
            st.departing = true;
            st.stopping = true;
        }
        d.rt.pool.ring();
        // Wait for the pool to finish the app's admitted work. A
        // bounded re-check (not a pure condvar wait) because two of
        // the signals that end the wait are not the app's own idle
        // notification: the claiming driver dying (busy stays set
        // until the watchdog clears it) and the whole pool being dead
        // (no drain will ever come — the stranded work is settled
        // below).
        {
            let mut st = lock_state(&d.rt.shared);
            loop {
                let drained = st.pending.is_empty() && st.inflight.is_empty() && !st.busy;
                if drained || d.rt.pool.live_drivers.load(Ordering::SeqCst) == 0 {
                    break;
                }
                let (got, _timed_out) =
                    d.rt.shared
                        .state
                        .wait_timeout(&d.rt.shared.idle, st, Duration::from_millis(5));
                st = got;
            }
        }
        // Anything left had no live driver to drain it. Fail it loud,
        // keep the accounting exact, release the band.
        let stranded = {
            let mut st = lock_state(&d.rt.shared);
            st.busy = false;
            let mut stranded: Vec<PendingRequest> = st.inflight.drain(..).collect();
            stranded.extend(st.pending.drain(..));
            st.errors += stranded.len() as u64;
            st.band_cap = 0;
            st.admitted = false;
            stranded
        };
        for req in stranded {
            let _ = req.tx.send(Err(ServeError::AppDeregistered {
                app: d.rt.name.clone(),
            }));
        }
        // Off the scheduler roster: no driver will claim it again.
        d.rt.pool
            .sched
            .lock()
            .roster
            .retain(|a| !Arc::ptr_eq(a, &d));
        d.rt.shared.idle.notify_all();
        Ok(snapshot_of(&d))
    }

    /// Resolves a *live* DNN app. A departed name gets the distinct
    /// typed refusal; rigid and unknown names are `UnknownApp`.
    fn dnn_app(&self, app: &str) -> Result<Arc<DnnApp>> {
        match self.apps.lock().get(app) {
            Some(AppEntry::Dnn(d)) => Ok(Arc::clone(d)),
            Some(AppEntry::Departed(_)) => Err(ServeError::AppDeregistered { app: app.into() }),
            _ => Err(ServeError::UnknownApp { app: app.into() }),
        }
    }

    /// Resolves a DNN app for *observation*, alive or departed — final
    /// statistics stay readable after deregistration.
    fn dnn_app_any(&self, app: &str) -> Result<Arc<DnnApp>> {
        match self.apps.lock().get(app) {
            Some(AppEntry::Dnn(d) | AppEntry::Departed(d)) => Ok(Arc::clone(d)),
            _ => Err(ServeError::UnknownApp { app: app.into() }),
        }
    }

    /// Submits one sample (the model's per-sample input, flattened) for
    /// inference. Non-blocking: the request is queued and served by the
    /// driver pool; the returned [`Ticket`] yields the completion.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity,
    /// [`ServeError::NotAdmitted`] when the current allocation left the
    /// app unplaced, [`ServeError::AppStopped`] after `shutdown()` or
    /// while a [`Executor::drain_app`] is in progress,
    /// [`ServeError::AppDeregistered`] during or after a
    /// [`Executor::deregister_dnn`],
    /// [`ServeError::ShapeMismatch`] / [`ServeError::UnknownApp`] as
    /// named.
    pub fn submit(&self, app: &str, sample: &[f32]) -> Result<Ticket> {
        let entry = self.dnn_app(app)?;
        if sample.len() != entry.sample_len {
            return Err(ServeError::ShapeMismatch {
                app: app.into(),
                expected: entry.sample_len,
                actual: sample.len(),
            });
        }
        let shared = &entry.rt.shared;
        let mut st = lock_state(shared);
        // `departing` before `stopping`: a submitter that resolved the
        // app just before the tombstone swap still gets the distinct
        // deregistration refusal, not shutdown's.
        if st.departing {
            return Err(ServeError::AppDeregistered { app: app.into() });
        }
        if st.stopping || st.draining > 0 {
            return Err(ServeError::AppStopped { app: app.into() });
        }
        if !st.admitted {
            st.rejected += 1;
            return Err(ServeError::NotAdmitted { app: app.into() });
        }
        if st.pending.len() >= self.cfg.queue_capacity {
            st.rejected += 1;
            return Err(ServeError::QueueFull {
                app: app.into(),
                capacity: self.cfg.queue_capacity,
            });
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let (tx, rx) = mpsc::channel();
        st.pending.push_back(PendingRequest {
            seq,
            input: sample.into(),
            submitted: Instant::now(),
            tx,
        });
        st.max_depth = st.max_depth.max(st.pending.len());
        drop(st);
        entry.rt.pool.ring();
        Ok(Ticket {
            app: app.into(),
            seq,
            rx,
        })
    }

    /// Actuates an RTM allocation on the registered applications:
    /// application-layer knob commands ([`commands_for`]) are queued to
    /// each addressed app, each placed app's band cap is set to its
    /// allocated core count (which is also its EDF weight on the
    /// shared pool) and its predicted latency/cluster recorded for the
    /// feedback loop, and apps the allocation left unplaced stop
    /// admitting new requests until a later allocation re-admits them.
    /// Registered apps absent from the allocation entirely (not
    /// placed, not unplaced) are untouched.
    ///
    /// Knob execution is asynchronous — a pool driver applies the
    /// commands before the app's next batch, so an in-flight batch
    /// finishes on the old operating point. Failures surface in
    /// [`AppStatsSnapshot::knob_errors`].
    pub fn apply_allocation(&self, alloc: &Allocation) {
        let cmds = commands_for(alloc);
        {
            let apps = self.apps.lock();
            for (name, entry) in apps.iter() {
                let AppEntry::Dnn(app) = entry else { continue };
                let placed = alloc.dnn(name);
                let unplaced = alloc.unplaced.iter().any(|u| u == name);
                if placed.is_none() && !unplaced {
                    continue;
                }
                let mut st = lock_state(&app.rt.shared);
                if let Some(d) = placed {
                    st.band_cap = d.point.op.cores as usize;
                    st.predicted = Some(d.point.latency);
                    st.cluster = Some(d.point.op.cluster);
                    st.admitted = true;
                    st.knobs.extend(
                        cmds.iter()
                            .filter(|c| {
                                matches!(c,
                            KnobCommand::SetWidth { app, .. }
                            | KnobCommand::SetPrecision { app, .. } if app == name)
                            })
                            .cloned(),
                    );
                } else {
                    st.admitted = false;
                }
            }
        }
        // One pool-wide ring after all apps are updated: every driver
        // rescans against the new weights and knob queues.
        self.pool.ring();
    }

    /// Routes one knob command to the addressed application (the
    /// direct actuation path an RTM policy — or the degradation
    /// ladder — uses for knobs the allocator does not place, e.g.
    /// [`KnobCommand::SetPrecision`]). The typed result distinguishes
    /// "this command is not the executor's to apply"
    /// ([`KnobRoute::DeviceKnob`]) from "the addressed app does not
    /// exist" ([`ServeError::UnknownApp`]); actual actuation happens
    /// asynchronously on a pool driver, with failures counted per
    /// cause in [`AppStatsSnapshot::knob_rejected`] /
    /// [`AppStatsSnapshot::knob_faulted`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownApp`] when an app-layer command addresses
    /// an unregistered (or rigid) name.
    pub fn route_command(&self, cmd: &KnobCommand) -> Result<KnobRoute> {
        let name = match cmd {
            KnobCommand::SetWidth { app, .. } | KnobCommand::SetPrecision { app, .. } => app,
            _ => return Ok(KnobRoute::DeviceKnob),
        };
        let entry = self.dnn_app(name)?;
        let mut st = lock_state(&entry.rt.shared);
        st.knobs.push(cmd.clone());
        drop(st);
        entry.rt.pool.ring();
        Ok(KnobRoute::Queued)
    }

    /// Arms a one-shot fault against `app`, consumed by its next
    /// dispatched batch (the runtime twin of a scheduled
    /// [`FaultPlan`] entry; the simulator's chaos hooks land here).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownApp`] for unregistered or rigid names.
    pub fn inject_fault(&self, app: &str, fault: FaultKind) -> Result<()> {
        let entry = self.dnn_app(app)?;
        let mut st = lock_state(&entry.rt.shared);
        st.armed.push(fault);
        drop(st);
        entry.rt.pool.ring();
        Ok(())
    }

    /// Pauses an app after its current batch: the pool stops claiming
    /// it (queued requests stay queued; submissions still admit up to
    /// capacity). Deterministic test hook and maintenance valve.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownApp`] for unregistered or rigid names.
    pub fn pause(&self, app: &str) -> Result<()> {
        let entry = self.dnn_app(app)?;
        lock_state(&entry.rt.shared).paused = true;
        Ok(())
    }

    /// Resumes a paused app.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownApp`] for unregistered or rigid names.
    pub fn resume(&self, app: &str) -> Result<()> {
        let entry = self.dnn_app(app)?;
        lock_state(&entry.rt.shared).paused = false;
        entry.rt.pool.ring();
        Ok(())
    }

    /// The app's deadline (from its registration requirements).
    /// Readable on a departed app too.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownApp`] for unregistered or rigid names.
    pub fn deadline(&self, app: &str) -> Result<Option<TimeSpan>> {
        Ok(self.dnn_app_any(app)?.rt.deadline)
    }

    /// A consistent statistics snapshot for one app. A *departed* app's
    /// final statistics remain readable until its name is registered
    /// again.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownApp`] for unregistered or rigid names.
    pub fn stats(&self, app: &str) -> Result<AppStatsSnapshot> {
        let entry = self.dnn_app_any(app)?;
        Ok(snapshot_of(&entry))
    }

    /// Blocks until `app`'s queue is empty and nothing is in flight.
    /// Submissions arriving *during* the drain are refused with a typed
    /// [`ServeError::AppStopped`] so the drain terminates. A paused app
    /// with queued work never drains — resume it first.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownApp`] for unregistered or rigid names.
    pub fn drain_app(&self, app: &str) -> Result<()> {
        let entry = self.dnn_app(app)?;
        let mut st = lock_state(&entry.rt.shared);
        st.draining += 1;
        while !(st.pending.is_empty() && st.inflight.is_empty()) {
            st = entry.rt.shared.state.wait(&entry.rt.shared.idle, st);
        }
        st.draining -= 1;
        Ok(())
    }

    /// [`Executor::drain_app`] over every registered DNN app.
    pub fn drain(&self) {
        let names: Vec<String> = {
            let apps = self.apps.lock();
            apps.iter()
                .filter(|(_, e)| matches!(e, AppEntry::Dnn(_)))
                .map(|(n, _)| n.clone())
                .collect()
        };
        for name in names {
            let _ = self.drain_app(&name);
        }
    }

    /// Stops the watchdog and the driver pool (each driver after the
    /// pool drains every app's admitted queue), and joins them all.
    /// Requests stranded by a dead pool (no supervisor left to restart
    /// it) are failed with a typed [`ServeError::AppStopped`]. Called
    /// by `Drop`; explicit calls make shutdown ordering visible in
    /// tests.
    pub fn shutdown(&mut self) {
        // Watchdog first: no restarts may race the driver joins below.
        *self.watchdog.stop.lock() = true;
        self.watchdog.bell.notify_all();
        if let Some(t) = self.watchdog_thread.take() {
            let _ = t.join();
        }
        // Mark every app stopping (drivers drain queued work but take
        // nothing new), then stop the pool itself.
        {
            let apps = self.apps.lock();
            for entry in apps.values() {
                if let AppEntry::Dnn(app) = entry {
                    lock_state(&app.rt.shared).stopping = true;
                }
            }
        }
        {
            self.pool.sched.lock().stopping = true;
        }
        self.pool.work.notify_all();
        for drv in &self.drivers {
            let handle = drv.thread.lock().take();
            if let Some(t) = handle {
                let _ = t.join();
            }
        }
        // A live pool drained every queue before exiting; anything
        // left was stranded by dead drivers. Fail it loud and keep the
        // accounting exact.
        let apps = self.apps.lock();
        for entry in apps.values() {
            let AppEntry::Dnn(app) = entry else { continue };
            let mut st = lock_state(&app.rt.shared);
            st.busy = false;
            let mut stranded: Vec<PendingRequest> = st.inflight.drain(..).collect();
            stranded.extend(st.pending.drain(..));
            st.errors += stranded.len() as u64;
            drop(st);
            for req in stranded {
                let _ = req.tx.send(Err(ServeError::AppStopped {
                    app: app.rt.name.clone(),
                }));
            }
            app.rt.shared.idle.notify_all();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A consistent statistics snapshot of one app (shared by
/// [`Executor::stats`] and the final snapshot
/// [`Executor::deregister_dnn`] returns).
fn snapshot_of(entry: &DnnApp) -> AppStatsSnapshot {
    // Lock order everywhere: queue state before stats (the serve
    // path's completion section nests them in that order).
    struct QueueView {
        rejected: u64,
        errors: u64,
        shed: u64,
        storm_injected: u64,
        depth: usize,
        max_depth: usize,
        in_flight: usize,
        band_cap: usize,
        predicted: Option<TimeSpan>,
        cluster: Option<ClusterId>,
        admitted: bool,
    }
    let q = {
        let st = lock_state(&entry.rt.shared);
        QueueView {
            rejected: st.rejected,
            errors: st.errors,
            shed: st.shed,
            storm_injected: st.storm_injected,
            depth: st.pending.len(),
            max_depth: st.max_depth,
            in_flight: st.inflight.len(),
            band_cap: st.band_cap,
            predicted: st.predicted,
            cluster: st.cluster,
            admitted: st.admitted,
        }
    };
    let stats = entry.rt.lock_stats();
    let win = stats.snapshot();
    AppStatsSnapshot {
        completed: stats.completed,
        rejected: q.rejected,
        errors: q.errors,
        shed: q.shed,
        storm_injected: q.storm_injected,
        missed: stats.missed,
        queue_depth: q.depth,
        max_queue_depth: q.max_depth,
        in_flight: q.in_flight,
        batches: stats.batches,
        batched_samples: stats.batched_samples,
        p50: win.p50,
        p99: win.p99,
        window_len: win.window_len,
        window_outcomes: win.window_outcomes,
        window_miss_rate: win.window_miss_rate,
        knob_errors: stats.knob_errors,
        knob_rejected: stats.knob_rejected,
        knob_faulted: stats.knob_faulted,
        last_knob_error: stats.last_knob_error.clone(),
        out_of_order: stats.out_of_order,
        restarts: stats.restarts,
        stalls: stats.stalls,
        level: stats.level,
        precision: stats.precision,
        predicted: q.predicted,
        cluster: q.cluster,
        band_cap: q.band_cap,
        admitted: q.admitted,
    }
}

fn spawn_driver_thread(drv: &Arc<Driver>) -> std::io::Result<JoinHandle<()>> {
    let drv = Arc::clone(drv);
    drv.beat(); // fresh beacon: a just-spawned driver is never "stale"
    std::thread::Builder::new()
        .name(format!("eml-serve-driver-{}", drv.index))
        .spawn(move || driver_loop(&drv))
}

/// The supervisor tick loop: scan every pool driver for death or
/// wedge until told to stop.
fn watchdog_loop(wd: &Watchdog, cfg: WatchdogCfg) {
    loop {
        {
            let stop = wd.stop.lock();
            if *stop {
                return;
            }
            let (stop, _timed_out) = wd.stop.wait_timeout(&wd.bell, stop, cfg.interval);
            if *stop {
                return;
            }
        }
        for drv in &wd.drivers {
            supervise_driver(drv, &cfg);
        }
    }
}

/// One supervision pass over one pool driver: join+restart a dead
/// driver (failing its claimed app's batch and freeing the claim),
/// confiscate a wedged driver's batch, or respawn after backoff.
fn supervise_driver(drv: &Arc<Driver>, cfg: &WatchdogCfg) {
    if drv.pool.sched.lock().stopping {
        return; // shutdown owns the drivers now
    }
    let mut th = drv.thread.lock();
    match th.as_ref() {
        Some(handle) if handle.is_finished() => {
            // The driver died (a panic escaped the forward's
            // containment). Collect it, fail the claimed app's
            // in-flight batch with a typed error, free the claim so
            // the surviving drivers can serve the app, and schedule a
            // bounded-backoff restart.
            if let Some(handle) = th.take() {
                let _ = handle.join();
            }
            drop(th);
            drv.pool.live_drivers.fetch_sub(1, Ordering::SeqCst);
            let victim = drv.current.lock().take();
            if let Some(app) = victim {
                fail_inflight(
                    &app.rt,
                    "pool driver died mid-batch; supervised restart pending",
                );
                {
                    let mut st = lock_state(&app.rt.shared);
                    st.busy = false;
                }
                // The restart is charged to the app whose batch killed
                // the driver — the per-tenant signal the control plane
                // and the chaos suites key off.
                app.rt.lock_stats().restarts += 1;
            }
            drv.pool.ring();
            let mut sup = drv.supervision.lock();
            let delay = cfg
                .backoff
                .saturating_mul(2u32.saturating_pow(sup.streak.min(16)))
                .min(cfg.backoff_max);
            sup.restart_at = Some(Instant::now() + delay);
            sup.streak = sup.streak.saturating_add(1);
        }
        None => {
            // Dead and waiting out the backoff: respawn when due.
            let due = {
                let mut sup = drv.supervision.lock();
                if sup.restart_at.is_some_and(|at| Instant::now() >= at) {
                    sup.restart_at = None;
                    true
                } else {
                    false
                }
            };
            if due {
                match spawn_driver_thread(drv) {
                    Ok(handle) => {
                        *th = Some(handle);
                        drop(th);
                        drv.pool.live_drivers.fetch_add(1, Ordering::SeqCst);
                        drv.pool.ring();
                    }
                    Err(_) => {
                        // The OS refused the thread (descriptor or
                        // thread exhaustion): re-arm the backoff and
                        // retry on a later watchdog tick instead of
                        // taking the supervisor down.
                        drop(th);
                        let mut sup = drv.supervision.lock();
                        let delay = cfg
                            .backoff
                            .saturating_mul(2u32.saturating_pow(sup.streak.min(16)))
                            .min(cfg.backoff_max);
                        sup.restart_at = Some(Instant::now() + delay);
                        sup.streak = sup.streak.saturating_add(1);
                    }
                }
            }
        }
        Some(_) => {
            drop(th);
            // Alive but possibly wedged: a claim in flight with a
            // stale heartbeat means the forward has been stuck past
            // the stall budget. Confiscate the batch; if the forward
            // later recovers, the driver finds the in-flight set
            // empty and discards its results. (An *idle* driver's
            // heartbeat also goes stale while it waits for work — but
            // idle drivers hold no claim, so `current` is `None` and
            // nothing is confiscated.)
            if drv.heartbeat_age() > cfg.stall {
                let current = drv.current.lock().clone();
                if let Some(app) = current {
                    let confiscated = {
                        let st = lock_state(&app.rt.shared);
                        !st.inflight.is_empty()
                    };
                    if confiscated {
                        fail_inflight(&app.rt, "forward pass stalled past the stall timeout");
                        app.rt.lock_stats().stalls += 1;
                    }
                }
            }
        }
    }
}

/// Fails the app's in-flight batch with a typed inference error (the
/// supervisor's path for dead and wedged drivers).
fn fail_inflight(rt: &AppRuntime, reason: &str) {
    let batch = {
        let mut st = lock_state(&rt.shared);
        let batch = std::mem::take(&mut st.inflight);
        st.errors += batch.len() as u64;
        batch
    };
    for req in batch {
        let _ = req.tx.send(Err(ServeError::Inference {
            app: rt.name.clone(),
            reason: reason.into(),
        }));
    }
    let st = lock_state(&rt.shared);
    if st.pending.is_empty() && st.inflight.is_empty() {
        rt.shared.idle.notify_all();
    }
}

/// Applies queued knob commands on a pool driver (which holds the
/// model lock) via the core knob executor, recording the resulting
/// level/precision — and any failure, counted per cause — in the app's
/// stats. `faulted` is the number of leading commands an injected
/// actuation fault drops.
fn apply_knobs(
    name: &str,
    dnn: &mut DynamicDnn,
    knobs: &[KnobCommand],
    stats: &RankedMutex<AppStats>,
    mut faulted: u32,
) {
    for cmd in knobs {
        if faulted > 0 {
            faulted -= 1;
            let mut s = stats.lock();
            s.knob_errors += 1;
            s.knob_faulted += 1;
            s.last_knob_error = Some("injected knob-actuation fault".into());
            continue;
        }
        let applied = apply_app_command(cmd, name, dnn);
        let mut s = stats.lock();
        match applied {
            Ok(_) => {
                let (level, precision) = (dnn.level().index(), dnn.precision());
                if level != s.level || precision != s.precision {
                    // A new operating point: the latency window now
                    // describes stale behaviour.
                    s.reset_window();
                }
                s.level = level;
                s.precision = precision;
            }
            Err(e) => {
                s.knob_errors += 1;
                s.knob_rejected += 1;
                s.last_knob_error = Some(e.to_string());
            }
        }
    }
}

/// Sheds the expired prefix of the queue: FIFO order means the oldest
/// request is at the front, so once the front is within deadline the
/// whole remainder is too. Each shed request completes immediately
/// with a typed error — no forward pass is spent on it.
fn shed_expired(st: &mut QueueState, deadline: TimeSpan, app: &str) {
    while st
        .pending
        .front()
        .is_some_and(|front| front.submitted.elapsed().as_secs_f64() > deadline.as_secs())
    {
        let Some(req) = st.pending.pop_front() else {
            break;
        };
        st.shed += 1;
        let _ = req.tx.send(Err(ServeError::DeadlineExpired {
            app: app.into(),
            seq: req.seq,
        }));
    }
}

/// Enqueues `n` synthetic copies of the queue's front sample (the
/// triggering batch's first request) behind it, stopping at capacity.
/// Synthetic requests have no ticket; their completions land in the
/// stats like any other request.
fn inject_storm(st: &mut QueueState, n: usize, capacity: usize) {
    let Some(template) = st.pending.front().map(|r| r.input.clone()) else {
        return;
    };
    for _ in 0..n {
        if st.pending.len() >= capacity {
            break;
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let (tx, _rx) = mpsc::channel();
        st.pending.push_back(PendingRequest {
            seq,
            input: template.clone(),
            submitted: Instant::now(),
            tx,
        });
        st.storm_injected += 1;
    }
    st.max_depth = st.max_depth.max(st.pending.len());
}

/// The shared pool's scheduling key, in *ascending* urgency order:
/// pending knob work first (cheap, and the control plane's actuation
/// latency rides on it), then weighted-EDF virtual deadlines —
/// smaller is sooner. Ties break on registration index, so the order
/// is total and deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SchedKey {
    /// The app has queued knob commands (and is claimable): actuate
    /// before any batch work, in registration order.
    Knob(u64),
    /// Weighted earliest-deadline-first: the virtual deadline of the
    /// app's oldest pending request (offset from the pool epoch),
    /// then the registration-order tie-break.
    Edf(Duration, u64),
}

/// The claimability and urgency of one app, computed under its queue
/// lock during a driver's roster scan. `None` means not claimable:
/// already claimed (`busy`), paused, stopped-and-empty, or simply
/// idle.
///
/// The virtual deadline is `arrival + budget / weight`: an app's
/// latency budget (its deadline requirement, or
/// [`DEFAULT_EDF_BUDGET_SECS`] for best-effort apps) scaled down by
/// its RTM band allocation. A fatter band means less slack added to
/// the arrival time — the pool serves better-allocated tenants
/// sooner, which is exactly the weighted share the starvation
/// regression pins.
fn sched_key(st: &QueueState, rt: &AppRuntime, pool_epoch: Instant) -> Option<SchedKey> {
    if st.busy {
        return None;
    }
    if st.stopping && st.pending.is_empty() {
        return None;
    }
    if !st.knobs.is_empty() {
        return Some(SchedKey::Knob(rt.reg_index));
    }
    if (st.paused && !st.stopping) || st.pending.is_empty() {
        return None;
    }
    let oldest = st.pending.front()?;
    let budget = rt
        .deadline
        .map_or(DEFAULT_EDF_BUDGET_SECS, |d| d.as_secs().max(0.0));
    let weight = st.band_cap.max(1) as f64;
    let virtual_deadline = oldest.submitted.saturating_duration_since(pool_epoch)
        + Duration::from_secs_f64(budget / weight);
    Some(SchedKey::Edf(virtual_deadline, rt.reg_index))
}

/// Claims the most urgent runnable app for this driver, or blocks
/// until one appears. Returns `None` only when the pool is stopping
/// and nothing is left to drain — the driver's exit condition.
///
/// The scan holds the pool scheduler lock throughout (ranks: the
/// scheduler at `EXEC_POOL` below each app's `EXEC_QUEUE`, so peeking
/// at queue state inside the scan is rank-legal), and the condvar
/// wait releases it atomically — with [`PoolShared::ring`] taking the
/// same lock before notifying, a wakeup can never fall between a
/// driver's decision to sleep and its sleep.
fn next_app(drv: &Driver) -> Option<Arc<DnnApp>> {
    let pool = &drv.pool;
    let mut ps = pool.sched.lock();
    loop {
        drv.beat();
        let mut best: Option<(SchedKey, Arc<DnnApp>)> = None;
        for app in &ps.roster {
            let key = {
                let st = lock_state(&app.rt.shared);
                sched_key(&st, &app.rt, pool.epoch)
            };
            if let Some(key) = key {
                // `match`, not `map_or`: the strict-less comparison
                // keeps the earliest key and the earliest-registered
                // app on ties.
                match &best {
                    Some((b, _)) if *b <= key => {}
                    _ => best = Some((key, Arc::clone(app))),
                }
            }
        }
        if let Some((_, app)) = best {
            // Re-verify under the app lock before claiming: another
            // actor (watchdog confiscation, a racing drain) may have
            // changed the queue between the scan's peek and now.
            {
                let mut st = lock_state(&app.rt.shared);
                if sched_key(&st, &app.rt, pool.epoch).is_none() {
                    continue;
                }
                st.busy = true;
            }
            return Some(app);
        }
        if ps.stopping {
            return None;
        }
        ps = pool.sched.wait(&pool.work, ps);
    }
}

/// One unit of serving work handed from the locked dispatch section to
/// the (unlocked) execution section of a driver's claim. The batch
/// itself stays in `QueueState::inflight`; only the flattened input
/// data travels.
struct Dispatch {
    k: usize,
    data: Vec<f32>,
    band_cap: usize,
    knobs: Vec<KnobCommand>,
    knob_faults: u32,
    delay: Duration,
    panic_forward: bool,
    crash: bool,
}

/// The locked half of serving one claim: shed expired requests,
/// evaluate fault triggers, and move a batch into the in-flight slot.
/// Returns `None` when the claim has nothing to do (everything shed,
/// or the app stopped between claim and dispatch) — the caller just
/// releases the claim.
fn build_dispatch(rt: &AppRuntime) -> Option<Dispatch> {
    let mut st = lock_state(&rt.shared);
    let pausing = st.paused && !st.stopping;
    if !pausing {
        if let Some(d) = rt.deadline {
            shed_expired(&mut st, d, &rt.name);
            if st.pending.is_empty() && st.inflight.is_empty() {
                rt.shared.idle.notify_all();
            }
        }
    }
    let knobs: Vec<KnobCommand> = st.knobs.drain(..).collect();
    if st.stopping && st.pending.is_empty() {
        return None;
    }
    if pausing || st.pending.is_empty() {
        // Knob-only claim (or everything shed): no batch dispatched.
        if knobs.is_empty() {
            return None;
        }
        let knob_faults = st.knob_fault_budget.min(knobs.len() as u32);
        st.knob_fault_budget -= knob_faults;
        return Some(Dispatch {
            k: 0,
            data: Vec::new(),
            band_cap: 0,
            knobs,
            knob_faults,
            delay: Duration::ZERO,
            panic_forward: false,
            crash: false,
        });
    }
    // Deadline-aware coalescing: take up to `batch_cap` requests, but
    // no more than the oldest request's remaining budget is estimated
    // to cover — batching amortises per-pass overhead only while it
    // does not itself cause the miss.
    let mut k = st.pending.len().min(rt.batch_cap);
    if let (Some(d), Some(s)) = (rt.deadline, st.ewma) {
        let oldest = st
            .pending
            .front()
            .map_or(0.0, |r| r.submitted.elapsed().as_secs_f64());
        while k > 1 && oldest + s * k as f64 > d.as_secs() {
            k -= 1;
        }
    }
    // Fault triggers for this batch: scheduled plan entries whose
    // sequence threshold the batch reaches (each fires once, flag kept
    // in shared state so restarts do not re-fire), plus any
    // runtime-armed one-shots.
    let mut triggered: Vec<FaultKind> = Vec::new();
    if !rt.plan.is_empty() {
        let max_seq = st.pending[k - 1].seq;
        for (i, f) in rt.plan.iter().enumerate() {
            if !st.fired[i] && f.at_seq <= max_seq {
                st.fired[i] = true;
                triggered.push(f.kind.clone());
            }
        }
    }
    triggered.append(&mut st.armed);
    let mut delay = Duration::ZERO;
    let mut panic_forward = false;
    let mut crash = false;
    for kind in triggered {
        match kind {
            FaultKind::PanicForward => panic_forward = true,
            FaultKind::CrashThread => crash = true,
            FaultKind::LatencySpike(t) => {
                delay += Duration::from_secs_f64(t.as_secs().max(0.0));
            }
            FaultKind::KnobFailure => st.knob_fault_budget += 1,
            FaultKind::QueueStorm(n) => inject_storm(&mut st, n, rt.queue_capacity),
        }
    }
    let knob_faults = st.knob_fault_budget.min(knobs.len() as u32);
    st.knob_fault_budget -= knob_faults;
    // Move the batch into the supervised in-flight slot, copying its
    // inputs into one contiguous buffer for the batched forward.
    let batch: Vec<PendingRequest> = st.pending.drain(..k).collect();
    let mut data = Vec::with_capacity(batch.iter().map(|r| r.input.len()).sum());
    for r in &batch {
        data.extend_from_slice(&r.input);
    }
    st.inflight = batch;
    Some(Dispatch {
        k,
        data,
        band_cap: st.band_cap,
        knobs,
        knob_faults,
        delay,
        panic_forward,
        crash,
    })
}

/// Burns CPU for `d` — an injected interference spike. A sleep would
/// free the core and understate the interference; the spin models a
/// co-tenant actually occupying it.
fn spin_for(d: Duration) {
    let t0 = Instant::now();
    while t0.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// Releases a driver's claim on an app: clears `busy`, signals idle
/// watchers if the app has fully drained, and rings the pool — other
/// drivers may have gone to sleep seeing the app claimed, and its
/// queue may hold more work.
fn release(rt: &AppRuntime, pool: &PoolShared) {
    let mut st = lock_state(&rt.shared);
    st.busy = false;
    if st.pending.is_empty() && st.inflight.is_empty() {
        rt.shared.idle.notify_all();
    }
    drop(st);
    pool.ring();
}

/// The pool driver loop: claim the most urgent runnable app, publish
/// the claim (so the watchdog knows whose batch to fail if this
/// driver dies), serve one dispatch, release, repeat.
fn driver_loop(drv: &Arc<Driver>) {
    loop {
        drv.beat();
        let Some(app) = next_app(drv) else {
            return;
        };
        *drv.current.lock() = Some(Arc::clone(&app));
        serve_app(drv, &app);
        drv.current.lock().take();
    }
}

/// Serves one claimed app: one knob drain and/or one micro-batch
/// forward, then release. The claim (`busy`) is held throughout, so
/// per-app batches never interleave across drivers.
fn serve_app(drv: &Driver, app: &DnnApp) {
    let rt = &app.rt;
    let Some(d) = build_dispatch(rt) else {
        release(rt, &drv.pool);
        return;
    };
    if !d.knobs.is_empty() {
        let mut model = rt.lock_model();
        apply_knobs(&rt.name, &mut model, &d.knobs, &rt.stats, d.knob_faults);
    }
    if d.k == 0 {
        release(rt, &drv.pool);
        return;
    }
    if d.crash {
        // Deliberately *outside* the forward's containment: this
        // kills the pool driver mid-batch, which is exactly the
        // failure the watchdog supervises.
        panic!("injected fault: serving thread crash (`{}`)", rt.name);
    }

    let k = d.k;
    let mut shape = Vec::with_capacity(1 + app.sample_shape.len());
    shape.push(k);
    shape.extend_from_slice(&app.sample_shape);
    let data = d.data;
    drv.beat();
    let t0 = Instant::now();
    // A panicking model (poisoned weights, a debug assertion in a
    // kernel) must not wedge the tenant: contain the unwind, turn
    // it into a typed error for every rider, and keep serving.
    // The model's internal scratch is resize-then-overwrite, so a
    // mid-forward unwind leaves no state a later forward reads.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if !d.delay.is_zero() {
            spin_for(d.delay);
        }
        if d.panic_forward {
            panic!("injected fault: forward panic");
        }
        Tensor::from_vec(&shape, data).and_then(|input| {
            eml_nn::workers::with_band_cap(d.band_cap, || {
                rt.lock_model().network_mut().forward(&input, false)
            })
        })
    }))
    .unwrap_or_else(|panic| {
        let reason = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".into());
        Err(eml_nn::NnError::InvalidConfig {
            reason: format!("forward pass panicked: {reason}"),
        })
    });
    drv.beat();
    let service = t0.elapsed();
    let service_span = TimeSpan::from_secs(service.as_secs_f64());

    // Take the batch back from the supervised slot and settle its
    // accounting inside the same critical section. To a concurrent
    // observer (`drain_app` watching for idle, `stats()` reading a
    // snapshot) every request is either still in flight or already
    // counted — there is no instant where the queue looks empty
    // while the batch's outcomes are still unrecorded. An empty
    // slot means the watchdog declared this pass wedged and
    // already answered the riders — discard the (stale) results
    // and keep serving.
    let mut st = lock_state(&rt.shared);
    let batch = std::mem::take(&mut st.inflight);
    if batch.is_empty() {
        drop(st);
        release(rt, &drv.pool);
        return;
    }
    let k = batch.len();

    match result {
        Ok(logits) => {
            let classes = logits.shape()[1];
            let rows = logits.data();
            // `st` (queue) then `stats` is the crate's lock order.
            let mut sends = Vec::with_capacity(k);
            {
                let mut s = rt.lock_stats();
                s.batches += 1;
                s.batched_samples += k as u64;
                for (i, req) in batch.into_iter().enumerate() {
                    let row = rows[i * classes..(i + 1) * classes].to_vec();
                    // Total order: a NaN logit (a client-submitted
                    // NaN sample propagates on the f32 path) must
                    // yield *a* prediction, not a panic — the NaN
                    // is visible to the caller in the logits row.
                    let pred = row
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map_or(0, |(c, _)| c);
                    let latency_s = req.submitted.elapsed().as_secs_f64();
                    let met = rt.deadline.map(|dl| latency_s <= dl.as_secs());
                    s.record(req.seq, latency_s, met);
                    sends.push((
                        req.tx,
                        Completion {
                            seq: req.seq,
                            logits: row,
                            pred,
                            latency: TimeSpan::from_secs(latency_s),
                            service: service_span,
                            batch_size: k,
                            deadline_met: met,
                        },
                    ));
                }
            }
            // The operating point's cost, not the fault's: exclude
            // injected spike time from the coalescing estimate.
            let modelled = service.saturating_sub(d.delay);
            let per_sample = modelled.as_secs_f64() / k as f64;
            st.ewma = Some(match st.ewma {
                None => per_sample,
                Some(prev) => 0.7 * prev + 0.3 * per_sample,
            });
            drop(st);
            for (tx, completion) in sends {
                let _ = tx.send(Ok(completion));
            }
        }
        Err(e) => {
            // Loud failure: every rider gets the typed error, and
            // the error counter keeps the extended accounting
            // invariant balanced.
            st.errors += k as u64;
            drop(st);
            for req in batch {
                let _ = req.tx.send(Err(ServeError::Inference {
                    app: rt.name.clone(),
                    reason: e.to_string(),
                }));
            }
        }
    }
    // A completed pass (even a typed failure) proves the driver
    // healthy: reset the restart-backoff streak.
    drv.supervision.lock().streak = 0;
    release(rt, &drv.pool);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;
    use eml_dnn::{Precision, WidthLevel};
    use std::time::Duration;

    const TIMEOUT: Duration = Duration::from_secs(20);

    fn tiny_executor(cfg: ExecutorConfig) -> Executor {
        let exec = Executor::new(cfg);
        exec.register_dnn(
            "cam",
            testbed::tiny_dnn(1),
            &Requirements::new().with_max_latency(TimeSpan::from_millis(50.0)),
        )
        .unwrap();
        exec
    }

    fn sample(v: f32) -> Vec<f32> {
        vec![v; 3 * 8 * 8]
    }

    /// The extended accounting invariant, asserted from a snapshot and
    /// the caller-side submit-attempt count.
    fn assert_accounting(s: &AppStatsSnapshot, attempts: u64) {
        assert_eq!(
            attempts + s.storm_injected,
            s.completed + s.errors + s.rejected + s.shed,
            "extended accounting: {s:?}"
        );
    }

    #[test]
    fn submit_completes_with_logits_and_stats() {
        let exec = tiny_executor(ExecutorConfig::default());
        let t = exec.submit("cam", &sample(0.2)).unwrap();
        let done = t.wait_timeout(TIMEOUT).unwrap();
        assert_eq!(done.logits.len(), 4);
        assert!(done.pred < 4);
        assert!(done.latency.as_secs() > 0.0);
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!(s.completed, 1);
        assert_eq!(s.rejected + s.errors + s.shed + s.out_of_order, 0);
        assert_eq!(s.window_len, 1);
        assert!(s.admitted);
        assert_eq!(s.restarts + s.stalls, 0);
        assert_accounting(&s, 1);
    }

    #[test]
    fn unknown_app_and_bad_shape_are_typed() {
        let exec = tiny_executor(ExecutorConfig::default());
        assert!(matches!(
            exec.submit("ghost", &sample(0.0)),
            Err(ServeError::UnknownApp { .. })
        ));
        assert!(matches!(
            exec.submit("cam", &[1.0, 2.0]),
            Err(ServeError::ShapeMismatch {
                expected,
                actual: 2,
                ..
            }) if expected == 3 * 8 * 8
        ));
    }

    #[test]
    fn overflow_rejects_with_queue_full_and_recovers() {
        let exec = tiny_executor(ExecutorConfig {
            queue_capacity: 3,
            batch_cap: 2,
            ..ExecutorConfig::default()
        });
        exec.pause("cam").unwrap();
        // The paused app is never claimed: exactly `capacity` fit.
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| exec.submit("cam", &sample(i as f32 * 0.1)).unwrap())
            .collect();
        let err = exec.submit("cam", &sample(0.9)).unwrap_err();
        assert_eq!(
            err,
            ServeError::QueueFull {
                app: "cam".into(),
                capacity: 3
            }
        );
        exec.resume("cam").unwrap();
        for t in &tickets {
            t.wait_timeout(TIMEOUT).unwrap();
        }
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!(s.completed, 3);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.max_queue_depth, 3);
        assert!(s.max_queue_depth <= exec.config().queue_capacity);
        // The claim serialises per-app batches even on a multi-driver
        // pool, so the resumed app coalesced: fewer batches than
        // requests.
        assert!(s.batches <= 2, "batch cap 2 over 3 queued: {s:?}");
        assert_accounting(&s, 4);
    }

    #[test]
    fn knob_commands_actuate_on_the_serving_thread() {
        let exec = tiny_executor(ExecutorConfig::default());
        assert_eq!(
            exec.route_command(&KnobCommand::SetWidth {
                app: "cam".into(),
                level: WidthLevel(1),
            }),
            Ok(KnobRoute::Queued)
        );
        assert_eq!(
            exec.route_command(&KnobCommand::SetPrecision {
                app: "cam".into(),
                precision: Precision::Int8,
            }),
            Ok(KnobRoute::Queued)
        );
        // Device knobs and unknown apps are not ours — and unlike the
        // retired boolean shim, the two refusals are distinguishable.
        assert_eq!(
            exec.route_command(&KnobCommand::SetOpp {
                cluster: ClusterId::from_index(0),
                opp_index: 0,
            }),
            Ok(KnobRoute::DeviceKnob)
        );
        assert_eq!(
            exec.route_command(&KnobCommand::SetWidth {
                app: "ghost".into(),
                level: WidthLevel(0),
            }),
            Err(ServeError::UnknownApp {
                app: "ghost".into()
            })
        );
        // A request forces the knob queue to drain before it runs.
        exec.submit("cam", &sample(0.3))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .unwrap();
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!(s.level, 1);
        assert_eq!(s.precision, Precision::Int8);
        assert_eq!(s.knob_errors, 0);
        // An out-of-range width fails loud in the stats, not silently —
        // and counts as a model *rejection*, not an injected fault.
        exec.route_command(&KnobCommand::SetWidth {
            app: "cam".into(),
            level: WidthLevel(9),
        })
        .unwrap();
        exec.submit("cam", &sample(0.3))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .unwrap();
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!(s.knob_errors, 1);
        assert_eq!((s.knob_rejected, s.knob_faulted), (1, 0));
        assert!(s.last_knob_error.is_some());
        assert_eq!(s.level, 1, "failed switch leaves the level alone");
    }

    #[test]
    fn route_command_distinguishes_unknown_app_from_device_knob() {
        let exec = tiny_executor(ExecutorConfig::default());
        assert_eq!(
            exec.route_command(&KnobCommand::SetWidth {
                app: "cam".into(),
                level: WidthLevel(2),
            }),
            Ok(KnobRoute::Queued)
        );
        assert_eq!(
            exec.route_command(&KnobCommand::SetOpp {
                cluster: ClusterId::from_index(0),
                opp_index: 0,
            }),
            Ok(KnobRoute::DeviceKnob)
        );
        assert!(matches!(
            exec.route_command(&KnobCommand::SetWidth {
                app: "ghost".into(),
                level: WidthLevel(0),
            }),
            Err(ServeError::UnknownApp { .. })
        ));
    }

    /// A hostile sample (NaN) must not wedge the tenant: the request
    /// completes (NaN visible in the logits on the f32 path, or a
    /// typed inference error if a kernel guard trips), and the pool
    /// keeps serving clean requests afterwards.
    #[test]
    fn nan_sample_does_not_wedge_the_serving_thread() {
        let exec = tiny_executor(ExecutorConfig::default());
        let poisoned = vec![f32::NAN; 3 * 8 * 8];
        let t = exec.submit("cam", &poisoned).unwrap();
        match t.wait_timeout(TIMEOUT) {
            Ok(done) => assert_eq!(done.logits.len(), 4, "a prediction, not a panic"),
            Err(ServeError::Inference { .. }) => {} // kernel guard: typed, loud
            Err(e) => panic!("unexpected: {e}"),
        }
        // The pool is alive and the queue drains.
        let done = exec
            .submit("cam", &sample(0.5))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .expect("serving continues after a poisoned request");
        assert!(done.logits.iter().all(|l| l.is_finite()));
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!(s.completed + s.errors, 2, "{s:?}");
    }

    #[test]
    fn shutdown_drains_then_rejects() {
        let mut exec = tiny_executor(ExecutorConfig::default());
        let tickets: Vec<Ticket> = (0..5)
            .map(|_| exec.submit("cam", &sample(0.4)).unwrap())
            .collect();
        exec.shutdown();
        for t in &tickets {
            t.wait_timeout(TIMEOUT)
                .expect("queued requests complete before the pool exits");
        }
        assert!(matches!(
            exec.submit("cam", &sample(0.1)),
            Err(ServeError::AppStopped { .. })
        ));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let exec = tiny_executor(ExecutorConfig::default());
        assert!(matches!(
            exec.register_rigid("cam"),
            Err(ServeError::DuplicateApp { .. })
        ));
        exec.register_rigid("vr").unwrap();
        assert!(matches!(
            exec.register_dnn("vr", testbed::tiny_dnn(2), &Requirements::new()),
            Err(ServeError::DuplicateApp { .. })
        ));
        assert_eq!(exec.app_names(), vec!["cam".to_string(), "vr".to_string()]);
        // Rigid apps have no serving surface.
        assert!(matches!(
            exec.stats("vr"),
            Err(ServeError::UnknownApp { .. })
        ));
    }

    #[test]
    fn expired_requests_are_shed_at_dequeue_with_typed_errors() {
        // 20 ms deadline; requests sit paused well past it.
        let exec = Executor::new(ExecutorConfig::default());
        exec.register_dnn(
            "cam",
            testbed::tiny_dnn(1),
            &Requirements::new().with_max_latency(TimeSpan::from_millis(20.0)),
        )
        .unwrap();
        exec.pause("cam").unwrap();
        let doomed: Vec<Ticket> = (0..3)
            .map(|_| exec.submit("cam", &sample(0.2)).unwrap())
            .collect();
        std::thread::sleep(Duration::from_millis(60));
        exec.resume("cam").unwrap();
        for t in &doomed {
            assert!(matches!(
                t.wait_timeout(TIMEOUT),
                Err(ServeError::DeadlineExpired { seq, .. }) if seq == t.seq()
            ));
        }
        exec.drain_app("cam").unwrap();
        let s = exec.stats("cam").unwrap();
        assert_eq!(s.shed, 3, "{s:?}");
        assert_eq!(s.completed, 0);
        assert_eq!(s.batches, 0, "no forward pass was burnt on doomed work");
        // Fresh work still serves.
        exec.submit("cam", &sample(0.1))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .unwrap();
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!((s.completed, s.shed), (1, 3));
        assert_accounting(&s, 4);
    }

    #[test]
    fn forward_panic_fault_is_contained_and_one_shot() {
        let plan = FaultPlan::new().with_fault("cam", 0, FaultKind::PanicForward);
        let exec = tiny_executor(ExecutorConfig {
            fault_plan: Some(Arc::new(plan)),
            ..ExecutorConfig::default()
        });
        let t = exec.submit("cam", &sample(0.3)).unwrap();
        match t.wait_timeout(TIMEOUT) {
            Err(ServeError::Inference { reason, .. }) => {
                assert!(reason.contains("injected"), "{reason}");
            }
            other => panic!("expected a typed inference error, got {other:?}"),
        }
        // One-shot: the next request serves normally, no restart needed.
        exec.submit("cam", &sample(0.3))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .unwrap();
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!((s.errors, s.completed, s.restarts), (1, 1, 0), "{s:?}");
        assert_accounting(&s, 2);
    }

    #[test]
    fn crash_fault_triggers_supervised_restart_with_typed_errors() {
        let plan = FaultPlan::new().with_fault("cam", 0, FaultKind::CrashThread);
        // One driver, so the follow-up request cannot be served until
        // the watchdog has reaped the corpse and respawned it — the
        // restart count is deterministically 1 when the second
        // completion arrives.
        let exec = tiny_executor(ExecutorConfig {
            fault_plan: Some(Arc::new(plan)),
            pool_workers: 1,
            watchdog_interval: Duration::from_millis(2),
            restart_backoff: Duration::from_millis(2),
            ..ExecutorConfig::default()
        });
        let t = exec.submit("cam", &sample(0.3)).unwrap();
        // The watchdog fails the dead driver's in-flight batch…
        assert!(matches!(
            t.wait_timeout(TIMEOUT),
            Err(ServeError::Inference { .. })
        ));
        // …and the restarted driver serves the next request.
        exec.submit("cam", &sample(0.4))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .expect("restarted driver serves");
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!(s.restarts, 1, "{s:?}");
        assert_eq!((s.errors, s.completed), (1, 1));
        assert_accounting(&s, 2);
    }

    #[test]
    fn latency_spike_fault_delays_but_completes() {
        let plan = FaultPlan::new().with_fault(
            "cam",
            0,
            FaultKind::LatencySpike(TimeSpan::from_millis(80.0)),
        );
        // 50 ms deadline < 80 ms spike: the rider completes but misses.
        let exec = tiny_executor(ExecutorConfig {
            fault_plan: Some(Arc::new(plan)),
            ..ExecutorConfig::default()
        });
        let done = exec
            .submit("cam", &sample(0.3))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .unwrap();
        assert!(done.latency.as_millis() >= 80.0, "{}", done.latency);
        assert_eq!(done.deadline_met, Some(false));
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!((s.completed, s.missed), (1, 1), "{s:?}");
        assert_eq!(
            s.stalls, 0,
            "a spike within the stall budget is not a stall"
        );
    }

    #[test]
    fn queue_storm_fault_floods_within_capacity_and_accounting_holds() {
        let plan = FaultPlan::new().with_fault("cam", 0, FaultKind::QueueStorm(5));
        let exec = tiny_executor(ExecutorConfig {
            fault_plan: Some(Arc::new(plan)),
            ..ExecutorConfig::default()
        });
        exec.submit("cam", &sample(0.3))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .unwrap();
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!(s.storm_injected, 5, "{s:?}");
        // Synthetic riders complete into the stats like real ones
        // (some may shed if the storm outruns the 50 ms deadline).
        assert_eq!(s.completed + s.shed, 6);
        assert_accounting(&s, 1);
    }

    #[test]
    fn knob_failure_fault_counts_per_cause_and_leaves_the_point() {
        let plan = FaultPlan::new().with_fault("cam", 0, FaultKind::KnobFailure);
        let exec = tiny_executor(ExecutorConfig {
            fault_plan: Some(Arc::new(plan)),
            ..ExecutorConfig::default()
        });
        let before = exec.stats("cam").unwrap().level;
        // Arm the fault (first batch), then route a knob into it.
        exec.submit("cam", &sample(0.3))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .unwrap();
        exec.route_command(&KnobCommand::SetWidth {
            app: "cam".into(),
            level: WidthLevel(1),
        })
        .unwrap();
        exec.submit("cam", &sample(0.3))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .unwrap();
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!((s.knob_faulted, s.knob_rejected), (1, 0), "{s:?}");
        assert_eq!(s.knob_errors, 1);
        assert_eq!(s.level, before, "the faulted knob never actuated");
    }

    #[test]
    fn stalled_forward_is_confiscated_and_serving_recovers() {
        // A 300 ms spike against a 40 ms stall budget: the watchdog
        // declares the pass wedged, answers the rider with a typed
        // error, and the recovered driver's stale results are dropped.
        let plan = FaultPlan::new().with_fault(
            "cam",
            0,
            FaultKind::LatencySpike(TimeSpan::from_millis(300.0)),
        );
        // A deadline far above the spike: the follow-up request queued
        // behind the wedged pass must complete, not shed.
        let exec = Executor::new(ExecutorConfig {
            fault_plan: Some(Arc::new(plan)),
            watchdog_interval: Duration::from_millis(5),
            stall_timeout: Duration::from_millis(40),
            ..ExecutorConfig::default()
        });
        exec.register_dnn(
            "cam",
            testbed::tiny_dnn(1),
            &Requirements::new().with_max_latency(TimeSpan::from_secs(10.0)),
        )
        .unwrap();
        let t0 = Instant::now();
        let t = exec.submit("cam", &sample(0.3)).unwrap();
        assert!(matches!(
            t.wait_timeout(TIMEOUT),
            Err(ServeError::Inference { .. })
        ));
        assert!(
            t0.elapsed() < Duration::from_millis(290),
            "the rider was answered before the wedged pass finished"
        );
        // The driver recovered; fresh work serves. (The app stays
        // claimed — busy — for the whole wedge, so no other driver
        // interleaves with the stuck pass.)
        exec.submit("cam", &sample(0.2))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .unwrap();
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!(s.stalls, 1, "{s:?}");
        assert_eq!(s.restarts, 0, "a wedge is not a death");
        assert_eq!((s.errors, s.completed), (1, 1));
        assert_accounting(&s, 2);
    }

    #[test]
    fn wait_timeout_is_typed_and_leaves_the_request_in_flight() {
        let exec = tiny_executor(ExecutorConfig::default());
        exec.pause("cam").unwrap();
        let t = exec.submit("cam", &sample(0.3)).unwrap();
        assert!(matches!(
            t.wait_timeout(Duration::from_millis(20)),
            Err(ServeError::WaitTimeout { .. })
        ));
        exec.resume("cam").unwrap();
        // The same ticket still receives the late completion.
        let done = t
            .wait_timeout(TIMEOUT)
            .expect("request was still in flight");
        assert_eq!(done.seq, t.seq());
        exec.drain();
        assert_eq!(exec.stats("cam").unwrap().completed, 1);
    }

    #[test]
    fn deregister_drains_joins_and_returns_final_snapshot() {
        let exec = tiny_executor(ExecutorConfig::default());
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| exec.submit("cam", &sample(0.2)).unwrap())
            .collect();
        let snap = exec.deregister_dnn("cam").unwrap();
        // The pool drained everything the app had admitted before it
        // left the roster; every ticket is answered (completion or
        // typed shed).
        for t in &tickets {
            match t.wait_timeout(TIMEOUT) {
                Ok(_) | Err(ServeError::DeadlineExpired { .. }) => {}
                other => panic!("lost or mistyped ticket: {other:?}"),
            }
        }
        assert_accounting(&snap, 4);
        assert_eq!(snap.queue_depth + snap.in_flight, 0, "{snap:?}");
        assert_eq!(snap.band_cap, 0, "the band was released");
        assert!(!snap.admitted);
        // The tombstone: typed refusal distinct from UnknownApp, final
        // stats readable, name absent from the roster.
        assert!(matches!(
            exec.submit("cam", &sample(0.1)),
            Err(ServeError::AppDeregistered { .. })
        ));
        assert!(matches!(
            exec.pause("cam"),
            Err(ServeError::AppDeregistered { .. })
        ));
        assert_eq!(exec.stats("cam").unwrap().completed, snap.completed);
        assert!(exec.app_names().is_empty());
        // The name is free again: a fresh registration serves.
        exec.register_dnn(
            "cam",
            testbed::tiny_dnn(2),
            &Requirements::new().with_max_latency(TimeSpan::from_millis(50.0)),
        )
        .unwrap();
        exec.submit("cam", &sample(0.3))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .unwrap();
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!(s.completed, 1, "fresh stats, not the tombstone's");
    }

    #[test]
    fn deregister_refusals_are_typed() {
        let exec = tiny_executor(ExecutorConfig::default());
        exec.register_rigid("vr").unwrap();
        assert!(matches!(
            exec.deregister_dnn("ghost"),
            Err(ServeError::UnknownApp { .. })
        ));
        assert!(matches!(
            exec.deregister_dnn("vr"),
            Err(ServeError::UnknownApp { .. })
        ));
        exec.deregister_dnn("cam").unwrap();
        assert!(matches!(
            exec.deregister_dnn("cam"),
            Err(ServeError::AppDeregistered { .. })
        ));
    }

    #[test]
    fn deregister_fails_a_dead_threads_stranded_queue_typed() {
        // Crash the pool's only driver on its first batch and park the
        // restart far in the future: the queue that accumulates behind
        // the corpse must be settled by deregistration, not lost.
        let plan = FaultPlan::new().with_fault("cam", 0, FaultKind::CrashThread);
        let exec = tiny_executor(ExecutorConfig {
            fault_plan: Some(Arc::new(plan)),
            pool_workers: 1,
            watchdog_interval: Duration::from_millis(2),
            restart_backoff: Duration::from_secs(30),
            restart_backoff_max: Duration::from_secs(30),
            ..ExecutorConfig::default()
        });
        let crashed = exec.submit("cam", &sample(0.3)).unwrap();
        assert!(matches!(
            crashed.wait_timeout(TIMEOUT),
            Err(ServeError::Inference { .. })
        ));
        let stranded: Vec<Ticket> = (0..3)
            .map(|_| exec.submit("cam", &sample(0.1)).unwrap())
            .collect();
        let snap = exec.deregister_dnn("cam").unwrap();
        for t in &stranded {
            assert!(matches!(
                t.wait_timeout(TIMEOUT),
                Err(ServeError::AppDeregistered { .. })
            ));
        }
        assert_eq!(snap.errors, 4, "crash rider + 3 stranded: {snap:?}");
        assert_accounting(&snap, 4);
    }

    #[test]
    fn submissions_during_drain_are_refused_typed() {
        // A generous deadline: the held requests must survive the pause,
        // not shed out of it.
        let exec = Executor::new(ExecutorConfig::default());
        exec.register_dnn(
            "cam",
            testbed::tiny_dnn(1),
            &Requirements::new().with_max_latency(TimeSpan::from_secs(10.0)),
        )
        .unwrap();
        exec.pause("cam").unwrap();
        let held: Vec<Ticket> = (0..3)
            .map(|_| exec.submit("cam", &sample(0.1)).unwrap())
            .collect();
        std::thread::scope(|scope| {
            let drainer = scope.spawn(|| exec.drain_app("cam").unwrap());
            // Give the drain time to register, then submit into it.
            std::thread::sleep(Duration::from_millis(50));
            assert!(matches!(
                exec.submit("cam", &sample(0.2)),
                Err(ServeError::AppStopped { .. })
            ));
            exec.resume("cam").unwrap();
            drainer.join().unwrap();
        });
        for t in &held {
            t.wait_timeout(TIMEOUT).unwrap();
        }
        // After the drain, submissions are admitted again.
        exec.submit("cam", &sample(0.3))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .unwrap();
        exec.drain();
        assert_eq!(exec.stats("cam").unwrap().completed, 4);
    }

    #[test]
    fn registry_cap_refuses_with_typed_over_capacity() {
        let exec = Executor::new(ExecutorConfig {
            max_apps: 2,
            ..ExecutorConfig::default()
        });
        exec.register_dnn("cam", testbed::tiny_dnn(1), &Requirements::new())
            .unwrap();
        exec.register_rigid("vr").unwrap();
        // Both registration surfaces refuse past the cap, typed.
        assert_eq!(
            exec.register_dnn("mic", testbed::tiny_dnn(2), &Requirements::new())
                .unwrap_err(),
            ServeError::OverCapacity {
                app: "mic".into(),
                capacity: 2
            }
        );
        assert_eq!(
            exec.register_rigid("gps").unwrap_err(),
            ServeError::OverCapacity {
                app: "gps".into(),
                capacity: 2
            }
        );
        // Departing a tenant frees its slot: tombstones do not count
        // against the cap, so churn does not leak capacity.
        exec.deregister_dnn("cam").unwrap();
        exec.register_dnn("mic", testbed::tiny_dnn(2), &Requirements::new())
            .unwrap();
        exec.submit("mic", &sample(0.2))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .unwrap();
        exec.drain();
        assert_eq!(exec.stats("mic").unwrap().completed, 1);
    }

    #[test]
    fn driver_pool_size_is_independent_of_tenant_count() {
        let exec = Executor::new(ExecutorConfig {
            pool_workers: 2,
            ..ExecutorConfig::default()
        });
        for i in 0..12u64 {
            exec.register_dnn(
                format!("app-{i:02}"),
                testbed::tiny_dnn(i),
                &Requirements::new().with_max_latency(TimeSpan::from_secs(10.0)),
            )
            .unwrap();
        }
        let p = exec.pool_stats();
        assert_eq!((p.drivers, p.live_drivers), (2, 2), "{p:?}");
        assert_eq!(p.apps, 12);
        // Serve one request per tenant through the two drivers.
        let tickets: Vec<Ticket> = (0..12)
            .map(|i| exec.submit(&format!("app-{i:02}"), &sample(0.1)).unwrap())
            .collect();
        for t in &tickets {
            t.wait_timeout(TIMEOUT).unwrap();
        }
        exec.drain();
        for i in 0..12 {
            let s = exec.stats(&format!("app-{i:02}")).unwrap();
            assert_eq!(s.completed, 1, "app-{i:02}: {s:?}");
            assert_eq!(s.out_of_order, 0);
        }
        // Twelve tenants, still exactly two drivers: the pool never
        // grew with the tenant count.
        let p = exec.pool_stats();
        assert_eq!(
            (p.drivers, p.live_drivers),
            (2, 2),
            "pool grew with tenants: {p:?}"
        );
    }
}
