//! The multi-tenant serving executor.
//!
//! [`Executor`] owns one serving thread per registered dynamic-DNN
//! application. Each thread drains its app's *bounded* request queue,
//! coalesces queued requests into deadline-aware micro-batches (up to
//! [`ExecutorConfig::batch_cap`], shrunk when the estimated batch
//! service time would blow the oldest request's deadline), and runs
//! them through the real [`eml_dnn::DynamicDnn`] kernels — the batch>1
//! forward path of `eml_nn`, under a per-app
//! [`eml_nn::workers::with_band_cap`] budget derived from the cores the
//! RTM allocated. An [`eml_core::rtm::Allocation`] is *actuated*, not
//! interpreted: [`Executor::apply_allocation`] translates it through
//! [`eml_core::knobs::commands_for`] and the serving thread executes
//! the application-layer commands with
//! [`eml_core::knobs::apply_app_command`] (width switches re-plan the
//! int8 chain automatically; precision switches re-select the backend).
//!
//! Requests complete through per-request tickets; queue overflow is a
//! typed [`crate::ServeError::QueueFull`] at submission, never a block
//! and never a silent drop. Every admitted request produces exactly one
//! completion (success or a typed inference error) in FIFO order per
//! app, a property the stress and property suites pin.

use std::collections::{HashMap, VecDeque};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use eml_core::knobs::{apply_app_command, commands_for, KnobCommand};
use eml_core::requirements::Requirements;
use eml_core::rtm::Allocation;
use eml_dnn::DynamicDnn;
use eml_nn::tensor::Tensor;
use eml_platform::soc::ClusterId;
use eml_platform::units::TimeSpan;

use crate::error::{Result, ServeError};
use crate::stats::{AppStats, AppStatsSnapshot};

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Bounded per-app queue capacity; submissions beyond it are
    /// rejected with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batched forward pass.
    pub batch_cap: usize,
    /// Sliding-window length of the per-app latency statistics.
    pub stats_window: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            batch_cap: 8,
            stats_window: 256,
        }
    }
}

/// One completed request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request's per-app FIFO sequence number.
    pub seq: u64,
    /// The sample's logits row.
    pub logits: Vec<f32>,
    /// Argmax class of the logits.
    pub pred: usize,
    /// End-to-end latency: submission to completion (queueing +
    /// batched inference).
    pub latency: TimeSpan,
    /// Duration of the batched forward pass this request rode.
    pub service: TimeSpan,
    /// Number of requests coalesced into that pass.
    pub batch_size: usize,
    /// Whether `latency` met the app's deadline (`None` when the app
    /// has no latency requirement).
    pub deadline_met: Option<bool>,
}

/// A handle to one submitted request.
#[derive(Debug)]
pub struct Ticket {
    app: String,
    seq: u64,
    rx: mpsc::Receiver<Result<Completion>>,
}

impl Ticket {
    /// The application this request was submitted to.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// The request's per-app FIFO sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Blocks until the request completes.
    ///
    /// # Errors
    ///
    /// Returns the batch's [`ServeError::Inference`] error if the
    /// forward pass failed, or [`ServeError::AppStopped`] if the
    /// serving thread went away (shutdown or panic) before completing
    /// this request.
    pub fn wait(&self) -> Result<Completion> {
        self.rx.recv().map_err(|_| ServeError::AppStopped {
            app: self.app.clone(),
        })?
    }

    /// [`Ticket::wait`] with an upper bound; times out to
    /// [`ServeError::AppStopped`] so harnesses fail loud instead of
    /// hanging on a lost completion.
    ///
    /// # Errors
    ///
    /// As [`Ticket::wait`], plus the timeout case.
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> Result<Completion> {
        self.rx
            .recv_timeout(timeout)
            .map_err(|_| ServeError::AppStopped {
                app: self.app.clone(),
            })?
    }
}

struct PendingRequest {
    seq: u64,
    input: Box<[f32]>,
    submitted: Instant,
    tx: mpsc::Sender<Result<Completion>>,
}

/// Queue state shared between submitters, the serving thread and the
/// control plane. Never held across an inference.
struct QueueState {
    pending: VecDeque<PendingRequest>,
    /// Application-layer knob commands awaiting execution on the
    /// serving thread (where the model lives).
    knobs: Vec<KnobCommand>,
    next_seq: u64,
    rejected: u64,
    errors: u64,
    max_depth: usize,
    in_flight: usize,
    band_cap: usize,
    predicted: Option<TimeSpan>,
    cluster: Option<ClusterId>,
    admitted: bool,
    paused: bool,
    stopping: bool,
}

struct AppShared {
    state: Mutex<QueueState>,
    /// Signalled on submit / knob push / resume / stop.
    work: Condvar,
    /// Signalled when the queue empties and nothing is in flight.
    idle: Condvar,
}

fn lock_state(shared: &AppShared) -> MutexGuard<'_, QueueState> {
    // Poisoning is survivable here: the state is only mutated by
    // short, panic-free critical sections; a poisoned lock means a
    // serving thread died mid-batch, which tickets surface as
    // `AppStopped`.
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

struct DnnApp {
    shared: Arc<AppShared>,
    stats: Arc<Mutex<AppStats>>,
    thread: Option<JoinHandle<()>>,
    sample_len: usize,
    deadline: Option<TimeSpan>,
}

enum AppEntry {
    Dnn(Box<DnnApp>),
    /// Rigid apps run outside the executor (a GPU renderer, a codec);
    /// registration only makes allocation bookkeeping visible.
    Rigid,
}

/// The multi-tenant serving executor. See the module docs.
pub struct Executor {
    cfg: ExecutorConfig,
    apps: HashMap<String, AppEntry>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Executor({} apps, queue {}, batch cap {})",
            self.apps.len(),
            self.cfg.queue_capacity,
            self.cfg.batch_cap
        )
    }
}

impl Executor {
    /// Creates an executor with the given configuration.
    pub fn new(cfg: ExecutorConfig) -> Self {
        Self {
            cfg,
            apps: HashMap::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.cfg
    }

    /// Registered application names (DNN and rigid), sorted.
    pub fn app_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.apps.keys().cloned().collect();
        names.sort();
        names
    }

    /// Registers a dynamic-DNN application and starts its serving
    /// thread. The deadline, when `requirements` carries a latency
    /// budget, drives per-request `deadline_met` accounting and the
    /// micro-batcher's coalescing bound.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DuplicateApp`] if the name is taken.
    pub fn register_dnn(
        &mut self,
        name: impl Into<String>,
        dnn: DynamicDnn,
        requirements: &Requirements,
    ) -> Result<()> {
        let name = name.into();
        if self.apps.contains_key(&name) {
            return Err(ServeError::DuplicateApp { app: name });
        }
        let sample_len = dnn.network().input_shape().iter().product();
        let deadline = requirements.max_latency();
        let shared = Arc::new(AppShared {
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                knobs: Vec::new(),
                next_seq: 0,
                rejected: 0,
                errors: 0,
                max_depth: 0,
                in_flight: 0,
                band_cap: 0,
                predicted: None,
                cluster: None,
                admitted: true,
                paused: false,
                stopping: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let stats = Arc::new(Mutex::new(AppStats::new(
            self.cfg.stats_window,
            dnn.level().index(),
            dnn.precision(),
        )));
        let thread = {
            let shared = Arc::clone(&shared);
            let stats = Arc::clone(&stats);
            let name = name.clone();
            let batch_cap = self.cfg.batch_cap.max(1);
            std::thread::Builder::new()
                .name(format!("eml-serve-{name}"))
                .spawn(move || serve_loop(&name, dnn, &shared, &stats, batch_cap, deadline))
                .expect("spawn serving thread")
        };
        self.apps.insert(
            name,
            AppEntry::Dnn(Box::new(DnnApp {
                shared,
                stats,
                thread: Some(thread),
                sample_len,
                deadline,
            })),
        );
        Ok(())
    }

    /// Registers a rigid (non-DNN) application for allocation
    /// bookkeeping.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DuplicateApp`] if the name is taken.
    pub fn register_rigid(&mut self, name: impl Into<String>) -> Result<()> {
        let name = name.into();
        if self.apps.contains_key(&name) {
            return Err(ServeError::DuplicateApp { app: name });
        }
        self.apps.insert(name, AppEntry::Rigid);
        Ok(())
    }

    fn dnn_app(&self, app: &str) -> Result<&DnnApp> {
        match self.apps.get(app) {
            Some(AppEntry::Dnn(d)) => Ok(d),
            _ => Err(ServeError::UnknownApp { app: app.into() }),
        }
    }

    /// Submits one sample (the model's per-sample input, flattened) for
    /// inference. Non-blocking: the request is queued and served by the
    /// app's thread; the returned [`Ticket`] yields the completion.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity,
    /// [`ServeError::NotAdmitted`] when the current allocation left the
    /// app unplaced, [`ServeError::ShapeMismatch`] /
    /// [`ServeError::UnknownApp`] / [`ServeError::AppStopped`] as named.
    pub fn submit(&self, app: &str, sample: &[f32]) -> Result<Ticket> {
        let entry = self.dnn_app(app)?;
        if sample.len() != entry.sample_len {
            return Err(ServeError::ShapeMismatch {
                app: app.into(),
                expected: entry.sample_len,
                actual: sample.len(),
            });
        }
        let mut st = lock_state(&entry.shared);
        if st.stopping {
            return Err(ServeError::AppStopped { app: app.into() });
        }
        if !st.admitted {
            st.rejected += 1;
            return Err(ServeError::NotAdmitted { app: app.into() });
        }
        if st.pending.len() >= self.cfg.queue_capacity {
            st.rejected += 1;
            return Err(ServeError::QueueFull {
                app: app.into(),
                capacity: self.cfg.queue_capacity,
            });
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let (tx, rx) = mpsc::channel();
        st.pending.push_back(PendingRequest {
            seq,
            input: sample.into(),
            submitted: Instant::now(),
            tx,
        });
        st.max_depth = st.max_depth.max(st.pending.len());
        drop(st);
        entry.shared.work.notify_one();
        Ok(Ticket {
            app: app.into(),
            seq,
            rx,
        })
    }

    /// Actuates an RTM allocation on the registered applications:
    /// application-layer knob commands ([`commands_for`]) are queued to
    /// each addressed serving thread, each placed app's band cap is set
    /// to its allocated core count and its predicted latency/cluster
    /// recorded for the feedback loop, and apps the allocation left
    /// unplaced stop admitting new requests until a later allocation
    /// re-admits them. Registered apps absent from the allocation
    /// entirely (not placed, not unplaced) are untouched.
    ///
    /// Knob execution is asynchronous — the serving thread applies the
    /// commands before its next batch, so an in-flight batch finishes
    /// on the old operating point. Failures surface in
    /// [`AppStatsSnapshot::knob_errors`].
    pub fn apply_allocation(&self, alloc: &Allocation) {
        let cmds = commands_for(alloc);
        for (name, entry) in &self.apps {
            let AppEntry::Dnn(app) = entry else { continue };
            let placed = alloc.dnn(name);
            let unplaced = alloc.unplaced.iter().any(|u| u == name);
            if placed.is_none() && !unplaced {
                continue;
            }
            let mut st = lock_state(&app.shared);
            if let Some(d) = placed {
                st.band_cap = d.point.op.cores as usize;
                st.predicted = Some(d.point.latency);
                st.cluster = Some(d.point.op.cluster);
                st.admitted = true;
                st.knobs.extend(
                    cmds.iter()
                        .filter(|c| {
                            matches!(c,
                        KnobCommand::SetWidth { app, .. }
                        | KnobCommand::SetPrecision { app, .. } if app == name)
                        })
                        .cloned(),
                );
            } else {
                st.admitted = false;
            }
            drop(st);
            app.shared.work.notify_one();
        }
    }

    /// Routes one knob command to the addressed application's serving
    /// thread (the direct actuation path an RTM policy uses for knobs
    /// the allocator does not place, e.g.
    /// [`KnobCommand::SetPrecision`]). Returns `true` when a registered
    /// DNN app was addressed; device knobs and unknown apps return
    /// `false` untouched.
    pub fn apply_command(&self, cmd: &KnobCommand) -> bool {
        let name = match cmd {
            KnobCommand::SetWidth { app, .. } | KnobCommand::SetPrecision { app, .. } => app,
            _ => return false,
        };
        let Ok(entry) = self.dnn_app(name) else {
            return false;
        };
        let mut st = lock_state(&entry.shared);
        st.knobs.push(cmd.clone());
        drop(st);
        entry.shared.work.notify_one();
        true
    }

    /// Pauses an app's serving thread after its current batch (queued
    /// requests stay queued; submissions still admit up to capacity).
    /// Deterministic test hook and maintenance valve.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownApp`] for unregistered or rigid names.
    pub fn pause(&self, app: &str) -> Result<()> {
        let entry = self.dnn_app(app)?;
        lock_state(&entry.shared).paused = true;
        Ok(())
    }

    /// Resumes a paused app.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownApp`] for unregistered or rigid names.
    pub fn resume(&self, app: &str) -> Result<()> {
        let entry = self.dnn_app(app)?;
        lock_state(&entry.shared).paused = false;
        entry.shared.work.notify_one();
        Ok(())
    }

    /// The app's deadline (from its registration requirements).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownApp`] for unregistered or rigid names.
    pub fn deadline(&self, app: &str) -> Result<Option<TimeSpan>> {
        Ok(self.dnn_app(app)?.deadline)
    }

    /// A consistent statistics snapshot for one app.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownApp`] for unregistered or rigid names.
    pub fn stats(&self, app: &str) -> Result<AppStatsSnapshot> {
        let entry = self.dnn_app(app)?;
        let (rejected, errors, depth, max_depth, in_flight, band_cap, predicted, cluster, admitted) = {
            let st = lock_state(&entry.shared);
            (
                st.rejected,
                st.errors,
                st.pending.len(),
                st.max_depth,
                st.in_flight,
                st.band_cap,
                st.predicted,
                st.cluster,
                st.admitted,
            )
        };
        let stats = entry.stats.lock().unwrap_or_else(PoisonError::into_inner);
        let win = stats.snapshot();
        Ok(AppStatsSnapshot {
            completed: stats.completed,
            rejected,
            errors,
            missed: stats.missed,
            queue_depth: depth,
            max_queue_depth: max_depth,
            in_flight,
            batches: stats.batches,
            batched_samples: stats.batched_samples,
            p50: win.p50,
            p99: win.p99,
            window_len: win.window_len,
            knob_errors: stats.knob_errors,
            last_knob_error: stats.last_knob_error.clone(),
            out_of_order: stats.out_of_order,
            level: stats.level,
            precision: stats.precision,
            predicted,
            cluster,
            band_cap,
            admitted,
        })
    }

    /// Blocks until `app`'s queue is empty and nothing is in flight.
    /// A paused app with queued work never drains — resume it first.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownApp`] for unregistered or rigid names.
    pub fn drain_app(&self, app: &str) -> Result<()> {
        let entry = self.dnn_app(app)?;
        let mut st = lock_state(&entry.shared);
        while !(st.pending.is_empty() && st.in_flight == 0) {
            st = entry
                .shared
                .idle
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        Ok(())
    }

    /// [`Executor::drain_app`] over every registered DNN app.
    pub fn drain(&self) {
        for (name, entry) in &self.apps {
            if matches!(entry, AppEntry::Dnn(_)) {
                let _ = self.drain_app(name);
            }
        }
    }

    /// Stops every serving thread after it drains its queue, and joins
    /// them. Called by `Drop`; explicit calls make shutdown ordering
    /// visible in tests.
    pub fn shutdown(&mut self) {
        for entry in self.apps.values() {
            if let AppEntry::Dnn(app) = entry {
                lock_state(&app.shared).stopping = true;
                app.shared.work.notify_one();
            }
        }
        for entry in self.apps.values_mut() {
            if let AppEntry::Dnn(app) = entry {
                if let Some(t) = app.thread.take() {
                    let _ = t.join();
                }
            }
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Applies queued knob commands on the serving thread (where the model
/// lives) via the core knob executor, recording the resulting
/// level/precision — and any failure — in the app's stats.
fn apply_knobs(name: &str, dnn: &mut DynamicDnn, knobs: &[KnobCommand], stats: &Mutex<AppStats>) {
    for cmd in knobs {
        let applied = apply_app_command(cmd, name, dnn);
        let mut s = stats.lock().unwrap_or_else(PoisonError::into_inner);
        match applied {
            Ok(_) => {
                let (level, precision) = (dnn.level().index(), dnn.precision());
                if level != s.level || precision != s.precision {
                    // A new operating point: the latency window now
                    // describes stale behaviour.
                    s.reset_window();
                }
                s.level = level;
                s.precision = precision;
            }
            Err(e) => {
                s.knob_errors += 1;
                s.last_knob_error = Some(e.to_string());
            }
        }
    }
}

/// The per-app serving loop. See the module docs for the lifecycle.
fn serve_loop(
    name: &str,
    mut dnn: DynamicDnn,
    shared: &AppShared,
    stats: &Mutex<AppStats>,
    batch_cap: usize,
    deadline: Option<TimeSpan>,
) {
    let sample_shape = dnn.network().input_shape().to_vec();
    let sample_len: usize = sample_shape.iter().product();
    // EWMA of per-sample service time (seconds), for deadline-aware
    // batch sizing. Seeded by the first batch.
    let mut per_sample_ewma: Option<f64> = None;
    loop {
        let (batch, band_cap, knobs) = {
            let mut st = lock_state(shared);
            loop {
                let pausing = st.paused && !st.stopping;
                let has_work =
                    !st.knobs.is_empty() || (!pausing && !st.pending.is_empty()) || st.stopping;
                if has_work {
                    break;
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            let knobs: Vec<KnobCommand> = st.knobs.drain(..).collect();
            if st.stopping && st.pending.is_empty() {
                drop(st);
                shared.idle.notify_all();
                return;
            }
            if (st.paused && !st.stopping) || st.pending.is_empty() {
                (Vec::new(), 0, knobs)
            } else {
                // Deadline-aware coalescing: take up to `batch_cap`
                // requests, but no more than the oldest request's
                // remaining budget is estimated to cover — batching
                // amortises per-pass overhead only while it does not
                // itself cause the miss.
                let mut k = st.pending.len().min(batch_cap);
                if let (Some(d), Some(s)) = (deadline, per_sample_ewma) {
                    let oldest = st
                        .pending
                        .front()
                        .expect("pending checked non-empty")
                        .submitted
                        .elapsed()
                        .as_secs_f64();
                    while k > 1 && oldest + s * k as f64 > d.as_secs() {
                        k -= 1;
                    }
                }
                st.in_flight += k;
                let batch: Vec<PendingRequest> = st.pending.drain(..k).collect();
                (batch, st.band_cap, knobs)
            }
        };
        if !knobs.is_empty() {
            apply_knobs(name, &mut dnn, &knobs, stats);
        }
        if batch.is_empty() {
            continue;
        }

        let k = batch.len();
        let mut shape = Vec::with_capacity(1 + sample_shape.len());
        shape.push(k);
        shape.extend_from_slice(&sample_shape);
        let mut data = Vec::with_capacity(k * sample_len);
        for r in &batch {
            data.extend_from_slice(&r.input);
        }
        let t0 = Instant::now();
        // A panicking model (poisoned weights, a debug assertion in a
        // kernel) must not wedge the tenant: contain the unwind, turn
        // it into a typed error for every rider, and keep serving.
        // The model's internal scratch is resize-then-overwrite, so a
        // mid-forward unwind leaves no state a later forward reads.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Tensor::from_vec(&shape, data).and_then(|input| {
                eml_nn::workers::with_band_cap(band_cap, || {
                    dnn.network_mut().forward(&input, false)
                })
            })
        }))
        .unwrap_or_else(|panic| {
            let reason = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".into());
            Err(eml_nn::NnError::InvalidConfig {
                reason: format!("forward pass panicked: {reason}"),
            })
        });
        let service = t0.elapsed();
        let service_span = TimeSpan::from_secs(service.as_secs_f64());

        match result {
            Ok(logits) => {
                let classes = logits.shape()[1];
                let rows = logits.data();
                {
                    let mut s = stats.lock().unwrap_or_else(PoisonError::into_inner);
                    s.batches += 1;
                    s.batched_samples += k as u64;
                }
                for (i, req) in batch.into_iter().enumerate() {
                    let row = rows[i * classes..(i + 1) * classes].to_vec();
                    // Total order: a NaN logit (a client-submitted NaN
                    // sample propagates on the f32 path) must yield
                    // *a* prediction, not a panic — the NaN is visible
                    // to the caller in the logits row.
                    let pred = row
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(c, _)| c)
                        .expect("non-empty logits row");
                    let latency_s = req.submitted.elapsed().as_secs_f64();
                    let met = deadline.map(|d| latency_s <= d.as_secs());
                    stats
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .record(req.seq, latency_s, met);
                    let _ = req.tx.send(Ok(Completion {
                        seq: req.seq,
                        logits: row,
                        pred,
                        latency: TimeSpan::from_secs(latency_s),
                        service: service_span,
                        batch_size: k,
                        deadline_met: met,
                    }));
                }
                let per_sample = service.as_secs_f64() / k as f64;
                per_sample_ewma = Some(match per_sample_ewma {
                    None => per_sample,
                    Some(prev) => 0.7 * prev + 0.3 * per_sample,
                });
            }
            Err(e) => {
                // Loud failure: every rider gets the typed error, and
                // the error counter keeps `submitted = completed +
                // errors + rejected` balanced.
                lock_state(shared).errors += k as u64;
                for req in batch {
                    let _ = req.tx.send(Err(ServeError::Inference {
                        app: name.to_string(),
                        reason: e.to_string(),
                    }));
                }
            }
        }

        let mut st = lock_state(shared);
        st.in_flight -= k;
        if st.pending.is_empty() && st.in_flight == 0 {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;
    use eml_dnn::{Precision, WidthLevel};
    use std::time::Duration;

    const TIMEOUT: Duration = Duration::from_secs(20);

    fn tiny_executor(cfg: ExecutorConfig) -> Executor {
        let mut exec = Executor::new(cfg);
        exec.register_dnn(
            "cam",
            testbed::tiny_dnn(1),
            &Requirements::new().with_max_latency(TimeSpan::from_millis(50.0)),
        )
        .unwrap();
        exec
    }

    fn sample(v: f32) -> Vec<f32> {
        vec![v; 3 * 8 * 8]
    }

    #[test]
    fn submit_completes_with_logits_and_stats() {
        let exec = tiny_executor(ExecutorConfig::default());
        let t = exec.submit("cam", &sample(0.2)).unwrap();
        let done = t.wait_timeout(TIMEOUT).unwrap();
        assert_eq!(done.logits.len(), 4);
        assert!(done.pred < 4);
        assert!(done.latency.as_secs() > 0.0);
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!(s.completed, 1);
        assert_eq!(s.rejected + s.errors + s.out_of_order, 0);
        assert_eq!(s.window_len, 1);
        assert!(s.admitted);
    }

    #[test]
    fn unknown_app_and_bad_shape_are_typed() {
        let exec = tiny_executor(ExecutorConfig::default());
        assert!(matches!(
            exec.submit("ghost", &sample(0.0)),
            Err(ServeError::UnknownApp { .. })
        ));
        assert!(matches!(
            exec.submit("cam", &[1.0, 2.0]),
            Err(ServeError::ShapeMismatch {
                expected,
                actual: 2,
                ..
            }) if expected == 3 * 8 * 8
        ));
    }

    #[test]
    fn overflow_rejects_with_queue_full_and_recovers() {
        let exec = tiny_executor(ExecutorConfig {
            queue_capacity: 3,
            batch_cap: 2,
            ..ExecutorConfig::default()
        });
        exec.pause("cam").unwrap();
        // The paused worker takes nothing: exactly `capacity` fit.
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| exec.submit("cam", &sample(i as f32 * 0.1)).unwrap())
            .collect();
        let err = exec.submit("cam", &sample(0.9)).unwrap_err();
        assert_eq!(
            err,
            ServeError::QueueFull {
                app: "cam".into(),
                capacity: 3
            }
        );
        exec.resume("cam").unwrap();
        for t in &tickets {
            t.wait_timeout(TIMEOUT).unwrap();
        }
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!(s.completed, 3);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.max_queue_depth, 3);
        assert!(s.max_queue_depth <= exec.config().queue_capacity);
        // The resumed worker coalesced: fewer batches than requests.
        assert!(s.batches <= 2, "batch cap 2 over 3 queued: {s:?}");
    }

    #[test]
    fn knob_commands_actuate_on_the_serving_thread() {
        let exec = tiny_executor(ExecutorConfig::default());
        assert!(exec.apply_command(&KnobCommand::SetWidth {
            app: "cam".into(),
            level: WidthLevel(1),
        }));
        assert!(exec.apply_command(&KnobCommand::SetPrecision {
            app: "cam".into(),
            precision: Precision::Int8,
        }));
        // Device knobs and unknown apps are not ours.
        assert!(!exec.apply_command(&KnobCommand::SetOpp {
            cluster: ClusterId::from_index(0),
            opp_index: 0,
        }));
        assert!(!exec.apply_command(&KnobCommand::SetWidth {
            app: "ghost".into(),
            level: WidthLevel(0),
        }));
        // A request forces the knob queue to drain before it runs.
        exec.submit("cam", &sample(0.3))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .unwrap();
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!(s.level, 1);
        assert_eq!(s.precision, Precision::Int8);
        assert_eq!(s.knob_errors, 0);
        // An out-of-range width fails loud in the stats, not silently.
        exec.apply_command(&KnobCommand::SetWidth {
            app: "cam".into(),
            level: WidthLevel(9),
        });
        exec.submit("cam", &sample(0.3))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .unwrap();
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!(s.knob_errors, 1);
        assert!(s.last_knob_error.is_some());
        assert_eq!(s.level, 1, "failed switch leaves the level alone");
    }

    /// A hostile sample (NaN) must not wedge the tenant: the request
    /// completes (NaN visible in the logits on the f32 path, or a
    /// typed inference error if a kernel guard trips), and the serving
    /// thread keeps serving clean requests afterwards.
    #[test]
    fn nan_sample_does_not_wedge_the_serving_thread() {
        let exec = tiny_executor(ExecutorConfig::default());
        let poisoned = vec![f32::NAN; 3 * 8 * 8];
        let t = exec.submit("cam", &poisoned).unwrap();
        match t.wait_timeout(TIMEOUT) {
            Ok(done) => assert_eq!(done.logits.len(), 4, "a prediction, not a panic"),
            Err(ServeError::Inference { .. }) => {} // kernel guard: typed, loud
            Err(e) => panic!("unexpected: {e}"),
        }
        // The thread is alive and the queue drains.
        let done = exec
            .submit("cam", &sample(0.5))
            .unwrap()
            .wait_timeout(TIMEOUT)
            .expect("serving continues after a poisoned request");
        assert!(done.logits.iter().all(|l| l.is_finite()));
        exec.drain();
        let s = exec.stats("cam").unwrap();
        assert_eq!(s.completed + s.errors, 2, "{s:?}");
    }

    #[test]
    fn shutdown_drains_then_rejects() {
        let mut exec = tiny_executor(ExecutorConfig::default());
        let tickets: Vec<Ticket> = (0..5)
            .map(|_| exec.submit("cam", &sample(0.4)).unwrap())
            .collect();
        exec.shutdown();
        for t in &tickets {
            t.wait_timeout(TIMEOUT)
                .expect("queued requests complete before the thread exits");
        }
        assert!(matches!(
            exec.submit("cam", &sample(0.1)),
            Err(ServeError::AppStopped { .. })
        ));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut exec = tiny_executor(ExecutorConfig::default());
        assert!(matches!(
            exec.register_rigid("cam"),
            Err(ServeError::DuplicateApp { .. })
        ));
        exec.register_rigid("vr").unwrap();
        assert!(matches!(
            exec.register_dnn("vr", testbed::tiny_dnn(2), &Requirements::new()),
            Err(ServeError::DuplicateApp { .. })
        ));
        assert_eq!(exec.app_names(), vec!["cam".to_string(), "vr".to_string()]);
        // Rigid apps have no serving surface.
        assert!(matches!(
            exec.stats("vr"),
            Err(ServeError::UnknownApp { .. })
        ));
    }
}
