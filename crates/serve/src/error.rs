//! Error types of the serving executor.

use std::error::Error;
use std::fmt;

use eml_core::RtmError;

/// Errors returned by the serving layer.
///
/// Admission failures are *typed*, not silent: a request that cannot be
/// queued is rejected at [`crate::Executor::submit`] with the exact
/// reason ([`ServeError::QueueFull`], [`ServeError::NotAdmitted`], …),
/// so callers can shed load deliberately instead of blocking or
/// losing work.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The application's bounded request queue is at capacity; the
    /// request was rejected, not enqueued.
    QueueFull {
        /// Application name.
        app: String,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// No application with this name is registered.
    UnknownApp {
        /// The name that failed to resolve.
        app: String,
    },
    /// An application with this name is already registered.
    DuplicateApp {
        /// The conflicting name.
        app: String,
    },
    /// The last applied allocation left this application unplaced; new
    /// requests are refused until a later allocation admits it again.
    NotAdmitted {
        /// Application name.
        app: String,
    },
    /// The application's serving thread has been stopped (executor
    /// shut down before or during this request).
    AppStopped {
        /// Application name.
        app: String,
    },
    /// The submitted sample does not match the model's input shape.
    ShapeMismatch {
        /// Application name.
        app: String,
        /// Expected per-sample element count.
        expected: usize,
        /// Submitted element count.
        actual: usize,
    },
    /// The request sat in the queue past the application's deadline and
    /// was shed at dequeue time, without burning a forward pass on it.
    /// Shed requests are counted in
    /// [`crate::AppStatsSnapshot::shed`], keeping the extended
    /// accounting invariant exact.
    DeadlineExpired {
        /// Application name.
        app: String,
        /// The shed request's per-app sequence number.
        seq: u64,
    },
    /// A [`crate::Ticket::wait_timeout`] expired before the request
    /// completed. The request itself is **still in flight** — it may
    /// yet complete (and will land in the app's statistics); only this
    /// wait gave up.
    WaitTimeout {
        /// Application name.
        app: String,
    },
    /// The model failed during a batched forward pass; every request of
    /// the batch receives this error through its ticket.
    Inference {
        /// Application name.
        app: String,
        /// The underlying failure.
        reason: String,
    },
    /// An underlying RTM error (allocation, knob execution).
    Rtm(RtmError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QueueFull { app, capacity } => {
                write!(f, "`{app}` request queue full (capacity {capacity})")
            }
            Self::UnknownApp { app } => write!(f, "unknown application `{app}`"),
            Self::DuplicateApp { app } => write!(f, "application `{app}` already registered"),
            Self::NotAdmitted { app } => {
                write!(f, "`{app}` is not admitted by the current allocation")
            }
            Self::AppStopped { app } => write!(f, "`{app}` serving thread has stopped"),
            Self::DeadlineExpired { app, seq } => {
                write!(f, "`{app}` request #{seq} shed: deadline expired in queue")
            }
            Self::WaitTimeout { app } => {
                write!(f, "`{app}` wait timed out; the request is still in flight")
            }
            Self::ShapeMismatch {
                app,
                expected,
                actual,
            } => write!(
                f,
                "`{app}` sample has {actual} elements, model expects {expected}"
            ),
            Self::Inference { app, reason } => write!(f, "`{app}` inference failed: {reason}"),
            Self::Rtm(e) => write!(f, "rtm error: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Rtm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RtmError> for ServeError {
    fn from(e: RtmError) -> Self {
        Self::Rtm(e)
    }
}

impl From<eml_dnn::DnnError> for ServeError {
    fn from(e: eml_dnn::DnnError) -> Self {
        Self::Rtm(RtmError::Dnn(e))
    }
}

/// Convenience alias for serving results.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_app_and_reason() {
        let e = ServeError::QueueFull {
            app: "cam".into(),
            capacity: 8,
        };
        assert!(e.to_string().contains("cam") && e.to_string().contains('8'));
        let e = ServeError::ShapeMismatch {
            app: "cam".into(),
            expected: 12,
            actual: 3,
        };
        assert!(e.to_string().contains("12") && e.to_string().contains('3'));
        let e: ServeError = RtmError::EmptySpace {
            reason: "none".into(),
        }
        .into();
        assert!(e.source().is_some());
    }
}
