//! Error types of the serving executor.

use std::error::Error;
use std::fmt;

use eml_core::RtmError;

/// Errors returned by the serving layer.
///
/// Admission failures are *typed*, not silent: a request that cannot be
/// queued is rejected at [`crate::Executor::submit`] with the exact
/// reason ([`ServeError::QueueFull`], [`ServeError::NotAdmitted`], …),
/// so callers can shed load deliberately instead of blocking or
/// losing work.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The application's bounded request queue is at capacity; the
    /// request was rejected, not enqueued.
    QueueFull {
        /// Application name.
        app: String,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// No application with this name is registered.
    UnknownApp {
        /// The name that failed to resolve.
        app: String,
    },
    /// An application with this name is already registered.
    DuplicateApp {
        /// The conflicting name.
        app: String,
    },
    /// The last applied allocation left this application unplaced; new
    /// requests are refused until a later allocation admits it again.
    NotAdmitted {
        /// Application name.
        app: String,
    },
    /// The application's serving thread has been stopped (executor
    /// shut down before or during this request).
    AppStopped {
        /// Application name.
        app: String,
    },
    /// The application was deregistered
    /// ([`crate::Executor::deregister_dnn`]): its queue was drained,
    /// its serving thread joined and its band released. Distinct from
    /// [`ServeError::AppStopped`] (executor-wide shutdown) and
    /// [`ServeError::UnknownApp`] (never registered): the name *was*
    /// served here, and may be registered again later.
    AppDeregistered {
        /// Application name.
        app: String,
    },
    /// The submitted sample does not match the model's input shape.
    ShapeMismatch {
        /// Application name.
        app: String,
        /// Expected per-sample element count.
        expected: usize,
        /// Submitted element count.
        actual: usize,
    },
    /// The request sat in the queue past the application's deadline and
    /// was shed at dequeue time, without burning a forward pass on it.
    /// Shed requests are counted in
    /// [`crate::AppStatsSnapshot::shed`], keeping the extended
    /// accounting invariant exact.
    DeadlineExpired {
        /// Application name.
        app: String,
        /// The shed request's per-app sequence number.
        seq: u64,
    },
    /// A [`crate::Ticket::wait_timeout`] expired before the request
    /// completed. The request itself is **still in flight** — it may
    /// yet complete (and will land in the app's statistics); only this
    /// wait gave up.
    WaitTimeout {
        /// Application name.
        app: String,
    },
    /// The model failed during a batched forward pass; every request of
    /// the batch receives this error through its ticket.
    Inference {
        /// Application name.
        app: String,
        /// The underlying failure.
        reason: String,
    },
    /// An underlying RTM error (allocation, knob execution).
    Rtm(RtmError),
    /// The OS refused to spawn a serving thread (thread or descriptor
    /// exhaustion). Kept for wire-code stability; since the shared
    /// worker pool, driver threads are spawned at executor construction
    /// and respawned by the watchdog (which re-arms its backoff on a
    /// refused spawn), so registration itself no longer surfaces this.
    SpawnFailed {
        /// Application name.
        app: String,
        /// The underlying OS error.
        reason: String,
    },
    /// The executor's bounded app registry is at capacity
    /// ([`crate::ExecutorConfig::max_apps`]); the registration was
    /// refused and nothing was spawned or enqueued. Distinct from
    /// [`ServeError::QueueFull`] (a per-request refusal): this one
    /// refuses a whole *tenant*.
    OverCapacity {
        /// The application that was refused admission.
        app: String,
        /// The configured registry capacity.
        capacity: usize,
    },
}

impl ServeError {
    /// The stable wire status code of this error, used by the `eml-net`
    /// front end to report serving failures to remote clients.
    ///
    /// Codes `1..=31` are reserved for `ServeError` variants and are
    /// **stable**: once shipped, a variant's code never changes and is
    /// never reused (protocol-level conditions — malformed frames,
    /// rate limiting, bans — live at `32..` in `eml-net`). The match
    /// below is deliberately exhaustive with no `_` arm, so adding a
    /// `ServeError` variant without assigning it a wire code is a
    /// compile error, not a silent protocol hole.
    #[must_use]
    pub fn wire_code(&self) -> u8 {
        match self {
            Self::QueueFull { .. } => 1,
            Self::UnknownApp { .. } => 2,
            Self::DuplicateApp { .. } => 3,
            Self::NotAdmitted { .. } => 4,
            Self::AppStopped { .. } => 5,
            Self::ShapeMismatch { .. } => 6,
            Self::DeadlineExpired { .. } => 7,
            Self::WaitTimeout { .. } => 8,
            Self::Inference { .. } => 9,
            Self::Rtm(_) => 10,
            Self::SpawnFailed { .. } => 11,
            Self::AppDeregistered { .. } => 12,
            Self::OverCapacity { .. } => 13,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QueueFull { app, capacity } => {
                write!(f, "`{app}` request queue full (capacity {capacity})")
            }
            Self::UnknownApp { app } => write!(f, "unknown application `{app}`"),
            Self::DuplicateApp { app } => write!(f, "application `{app}` already registered"),
            Self::NotAdmitted { app } => {
                write!(f, "`{app}` is not admitted by the current allocation")
            }
            Self::AppStopped { app } => write!(f, "`{app}` serving thread has stopped"),
            Self::AppDeregistered { app } => {
                write!(f, "application `{app}` has been deregistered")
            }
            Self::DeadlineExpired { app, seq } => {
                write!(f, "`{app}` request #{seq} shed: deadline expired in queue")
            }
            Self::WaitTimeout { app } => {
                write!(f, "`{app}` wait timed out; the request is still in flight")
            }
            Self::ShapeMismatch {
                app,
                expected,
                actual,
            } => write!(
                f,
                "`{app}` sample has {actual} elements, model expects {expected}"
            ),
            Self::Inference { app, reason } => write!(f, "`{app}` inference failed: {reason}"),
            Self::Rtm(e) => write!(f, "rtm error: {e}"),
            Self::SpawnFailed { app, reason } => {
                write!(f, "`{app}` serving thread failed to spawn: {reason}")
            }
            Self::OverCapacity { app, capacity } => {
                write!(f, "`{app}` refused: app registry at capacity ({capacity})")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Rtm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RtmError> for ServeError {
    fn from(e: RtmError) -> Self {
        Self::Rtm(e)
    }
}

impl From<eml_dnn::DnnError> for ServeError {
    fn from(e: eml_dnn::DnnError) -> Self {
        Self::Rtm(RtmError::Dnn(e))
    }
}

/// Convenience alias for serving results.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_app_and_reason() {
        let e = ServeError::QueueFull {
            app: "cam".into(),
            capacity: 8,
        };
        assert!(e.to_string().contains("cam") && e.to_string().contains('8'));
        let e = ServeError::ShapeMismatch {
            app: "cam".into(),
            expected: 12,
            actual: 3,
        };
        assert!(e.to_string().contains("12") && e.to_string().contains('3'));
        let e: ServeError = RtmError::EmptySpace {
            reason: "none".into(),
        }
        .into();
        assert!(e.source().is_some());
    }

    /// Every variant's wire code, pinned. A new variant cannot compile
    /// without extending `wire_code`'s exhaustive match; this test pins
    /// the *values* so an accidental renumbering (which would silently
    /// break deployed clients) fails loudly too.
    #[test]
    fn wire_codes_are_stable_and_distinct() {
        let app = || "cam".to_string();
        let all: Vec<(ServeError, u8)> = vec![
            (
                ServeError::QueueFull {
                    app: app(),
                    capacity: 8,
                },
                1,
            ),
            (ServeError::UnknownApp { app: app() }, 2),
            (ServeError::DuplicateApp { app: app() }, 3),
            (ServeError::NotAdmitted { app: app() }, 4),
            (ServeError::AppStopped { app: app() }, 5),
            (
                ServeError::ShapeMismatch {
                    app: app(),
                    expected: 1,
                    actual: 2,
                },
                6,
            ),
            (ServeError::DeadlineExpired { app: app(), seq: 0 }, 7),
            (ServeError::WaitTimeout { app: app() }, 8),
            (
                ServeError::Inference {
                    app: app(),
                    reason: "x".into(),
                },
                9,
            ),
            (
                ServeError::Rtm(RtmError::EmptySpace {
                    reason: "none".into(),
                }),
                10,
            ),
            (
                ServeError::SpawnFailed {
                    app: app(),
                    reason: "EAGAIN".into(),
                },
                11,
            ),
            (ServeError::AppDeregistered { app: app() }, 12),
            (
                ServeError::OverCapacity {
                    app: app(),
                    capacity: 256,
                },
                13,
            ),
        ];
        let mut seen = std::collections::HashSet::new();
        for (e, expect) in &all {
            assert_eq!(e.wire_code(), *expect, "{e}");
            assert!(seen.insert(*expect), "duplicate wire code {expect}");
            assert!(
                (1..=31).contains(expect),
                "serve codes live in 1..=31, got {expect}"
            );
        }
    }
}
