//! Per-app health scoring and executor-wide health telemetry.
//!
//! Every counter this module reads already exists in
//! [`AppStatsSnapshot`] — the executor pays nothing new. The score
//! folds them into a single `0–100` number per app:
//!
//! - **windowed miss rate** (gated on enough outcomes to be evidence),
//! - **queue pressure** (depth as a fraction of capacity),
//! - **fresh events** since the previous observation — deadline sheds,
//!   supervised restarts, stall confiscations, injected knob faults —
//!   each a flat penalty while it keeps happening, silent once it
//!   stops.
//!
//! Cumulative counters are deliberately *not* scored directly: an app
//! that shed a thousand requests last week but is clean now is
//! healthy. [`EventWatermark`] turns the cumulative counters into
//! fresh deltas, so the score describes the *present*.
//!
//! [`HealthMonitor`] evaluates every registered app (in
//! [`crate::Executor::app_names`]'s sorted, deterministic order),
//! aggregates the worst score as the executor's own, smooths the
//! aggregate with an [`eml_core::feedback::Ewma`], and renders the
//! whole report as JSON ([`HealthReport::to_json`], hand-rolled — this
//! workspace is offline, no serde) for offline policy and dashboards.
//! [`crate::PressurePolicy`] consumes the same score as its single
//! degrade/restore trigger instead of a bag of ad-hoc thresholds.

use std::collections::HashMap;

use eml_core::feedback::Ewma;

use crate::executor::Executor;
use crate::stats::AppStatsSnapshot;

/// Tuning of the health score: one weight per signal, each the number
/// of points the signal can subtract from a perfect 100.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Penalty at a 100 % windowed miss rate (scaled linearly below).
    pub w_miss: f32,
    /// Penalty at a full queue (scaled linearly with depth/capacity).
    pub w_queue: f32,
    /// Penalty at full *pool-wide* queue pressure (scaled linearly).
    /// Since the shared worker pool, a tenant's latency depends on the
    /// whole roster's backlog, not just its own queue — this term folds
    /// [`crate::Executor::pool_pressure`] into every app's score. Set
    /// it to `0.0` in deterministic soaks: pool depth is timing
    /// dependent.
    pub w_pool_queue: f32,
    /// Flat penalty while deadline sheds keep occurring.
    pub w_shed: f32,
    /// Flat penalty while supervised restarts keep occurring.
    pub w_restart: f32,
    /// Flat penalty while stall confiscations keep occurring.
    pub w_stall: f32,
    /// Flat penalty while knob-actuation faults keep occurring.
    pub w_knob_fault: f32,
    /// Deadline outcomes required in the sliding window before the
    /// miss rate is trusted — on both sides: too few outcomes neither
    /// penalise nor count as evidence of health.
    pub min_outcomes: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            w_miss: 80.0,
            w_queue: 50.0,
            w_pool_queue: 15.0,
            w_shed: 45.0,
            w_restart: 25.0,
            w_stall: 25.0,
            w_knob_fault: 10.0,
            min_outcomes: 8,
        }
    }
}

/// Coarse health classification of a score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthBand {
    /// Score ≥ 80: serving cleanly.
    Healthy,
    /// Score in `[50, 80)`: under pressure, worth watching.
    Degraded,
    /// Score < 50: actively failing its tenants.
    Critical,
}

impl HealthBand {
    /// The band a score falls in.
    #[must_use]
    pub fn of(score: f32) -> Self {
        if score >= 80.0 {
            Self::Healthy
        } else if score >= 50.0 {
            Self::Degraded
        } else {
            Self::Critical
        }
    }

    /// Stable lowercase name (used in the JSON export).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Degraded => "degraded",
            Self::Critical => "critical",
        }
    }
}

/// Events that occurred since the previous observation of an app —
/// the deltas an [`EventWatermark`] extracts from the cumulative
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FreshEvents {
    /// Deadline sheds since the last observation.
    pub shed: u64,
    /// Supervised restarts since the last observation.
    pub restarts: u64,
    /// Stall confiscations since the last observation.
    pub stalls: u64,
    /// Injected knob-actuation faults since the last observation.
    pub knob_faults: u64,
}

impl FreshEvents {
    /// Whether anything at all happened since the last observation.
    #[must_use]
    pub fn any(&self) -> bool {
        self.shed + self.restarts + self.stalls + self.knob_faults > 0
    }
}

/// Watermarks over an app's cumulative event counters, turning them
/// into per-observation deltas. Seeded at attach time so history that
/// predates the observer never counts as fresh.
#[derive(Debug, Clone, Copy)]
pub struct EventWatermark {
    shed: u64,
    restarts: u64,
    stalls: u64,
    knob_faulted: u64,
}

impl EventWatermark {
    /// A watermark level with `snap`: the next [`EventWatermark::advance`]
    /// reports only events that happen *after* this snapshot.
    #[must_use]
    pub fn seeded(snap: &AppStatsSnapshot) -> Self {
        Self {
            shed: snap.shed,
            restarts: snap.restarts,
            stalls: snap.stalls,
            knob_faulted: snap.knob_faulted,
        }
    }

    /// Advances the watermark to `snap`, returning the deltas since the
    /// previous level. Counters are monotonic; `saturating_sub` guards
    /// the one legitimate reset (a name deregistered and re-registered
    /// between observations reads as nothing fresh, not an underflow).
    pub fn advance(&mut self, snap: &AppStatsSnapshot) -> FreshEvents {
        let fresh = FreshEvents {
            shed: snap.shed.saturating_sub(self.shed),
            restarts: snap.restarts.saturating_sub(self.restarts),
            stalls: snap.stalls.saturating_sub(self.stalls),
            knob_faults: snap.knob_faulted.saturating_sub(self.knob_faulted),
        };
        *self = Self::seeded(snap);
        fresh
    }
}

/// The health score of one snapshot: `100` minus the weighted
/// penalties, clamped to `[0, 100]`.
///
/// `queue_capacity` is the executor's configured per-app bound (the
/// denominator of the queue-pressure term); `pool_pressure` is the
/// shared pool's aggregate backlog fraction
/// ([`crate::Executor::pool_pressure`], `0.0` to opt out); `fresh` is
/// the event delta since the caller's previous observation (see
/// [`EventWatermark`]).
#[must_use]
pub fn score(
    cfg: &HealthConfig,
    snap: &AppStatsSnapshot,
    queue_capacity: usize,
    pool_pressure: f32,
    fresh: &FreshEvents,
) -> f32 {
    let mut penalty = 0.0f32;
    if snap.window_outcomes >= cfg.min_outcomes {
        penalty += cfg.w_miss * snap.window_miss_rate as f32;
    }
    if queue_capacity > 0 {
        let frac = (snap.queue_depth as f32 / queue_capacity as f32).min(1.0);
        penalty += cfg.w_queue * frac;
    }
    penalty += cfg.w_pool_queue * pool_pressure.clamp(0.0, 1.0);
    if fresh.shed > 0 {
        penalty += cfg.w_shed;
    }
    if fresh.restarts > 0 {
        penalty += cfg.w_restart;
    }
    if fresh.stalls > 0 {
        penalty += cfg.w_stall;
    }
    if fresh.knob_faults > 0 {
        penalty += cfg.w_knob_fault;
    }
    (100.0 - penalty).clamp(0.0, 100.0)
}

/// One app's entry in a [`HealthReport`].
#[derive(Debug, Clone)]
pub struct AppHealth {
    /// Application name.
    pub app: String,
    /// The `0–100` health score.
    pub score: f32,
    /// The score's coarse band.
    pub band: HealthBand,
    /// Event deltas since the previous report.
    pub fresh: FreshEvents,
    /// The snapshot the score was computed from.
    pub snapshot: AppStatsSnapshot,
}

/// One observation of the whole executor: every app scored, worst
/// score as the aggregate.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Per-app health, sorted by app name (deterministic order).
    pub apps: Vec<AppHealth>,
    /// The executor-wide score: the *minimum* app score (a serving
    /// layer is as healthy as its sickest tenant), `100` with no apps.
    pub aggregate: f32,
    /// The aggregate's band.
    pub band: HealthBand,
    /// EWMA-smoothed aggregate across reports (equals `aggregate` on
    /// the first).
    pub smoothed: f32,
}

impl HealthReport {
    /// Renders the report as a JSON object (stable key order, fixed
    /// one-decimal score formatting — reports from identical runs are
    /// byte-identical).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.apps.len() * 256);
        out.push_str(&format!(
            "{{\"aggregate\":{:.1},\"band\":\"{}\",\"smoothed\":{:.1},\"apps\":[",
            self.aggregate,
            self.band.name(),
            self.smoothed
        ));
        for (i, a) in self.apps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = &a.snapshot;
            out.push_str(&format!(
                "{{\"app\":\"{}\",\"score\":{:.1},\"band\":\"{}\",\
                 \"miss_rate\":{:.4},\"window_outcomes\":{},\
                 \"queue_depth\":{},\"completed\":{},\"errors\":{},\
                 \"rejected\":{},\"shed\":{},\"restarts\":{},\"stalls\":{},\
                 \"fresh\":{{\"shed\":{},\"restarts\":{},\"stalls\":{},\
                 \"knob_faults\":{}}}}}",
                escape_json(&a.app),
                a.score,
                a.band.name(),
                s.window_miss_rate,
                s.window_outcomes,
                s.queue_depth,
                s.completed,
                s.errors,
                s.rejected,
                s.shed,
                s.restarts,
                s.stalls,
                a.fresh.shed,
                a.fresh.restarts,
                a.fresh.stalls,
                a.fresh.knob_faults,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The executor-wide health observer. Stateful: it keeps per-app
/// [`EventWatermark`]s (so scores reflect *fresh* events) and the
/// aggregate smoother. One monitor per executor; observe at whatever
/// cadence the caller's control loop runs.
#[derive(Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    marks: HashMap<String, EventWatermark>,
    trend: Ewma,
}

impl HealthMonitor {
    /// Creates a monitor with the given scoring weights.
    #[must_use]
    pub fn new(cfg: HealthConfig) -> Self {
        Self {
            cfg,
            marks: HashMap::new(),
            // Health is a trend signal: damp single-tick blips but
            // follow a real decline within a few observations.
            trend: Ewma::new(0.4),
        }
    }

    /// The scoring weights.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Scores every registered DNN app and returns the report. Apps are
    /// visited in sorted-name order; rigid apps (no serving surface)
    /// are skipped; watermarks of apps that have departed the roster
    /// are pruned.
    pub fn observe(&mut self, exec: &Executor) -> HealthReport {
        let names = exec.app_names();
        self.marks.retain(|n, _| names.iter().any(|m| m == n));
        let capacity = exec.config().queue_capacity;
        let pool_pressure = exec.pool_pressure();
        let mut apps = Vec::with_capacity(names.len());
        let mut aggregate = 100.0f32;
        for name in names {
            let Ok(snap) = exec.stats(&name) else {
                continue; // rigid: allocation bookkeeping only
            };
            let mark = self
                .marks
                .entry(name.clone())
                .or_insert_with(|| EventWatermark::seeded(&snap));
            let fresh = mark.advance(&snap);
            let s = score(&self.cfg, &snap, capacity, pool_pressure, &fresh);
            aggregate = aggregate.min(s);
            apps.push(AppHealth {
                app: name,
                score: s,
                band: HealthBand::of(s),
                fresh,
                snapshot: snap,
            });
        }
        let smoothed = self.trend.observe(f64::from(aggregate)) as f32;
        HealthReport {
            apps,
            aggregate,
            band: HealthBand::of(aggregate),
            smoothed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ExecutorConfig;
    use crate::testbed;
    use eml_core::requirements::Requirements;
    use eml_platform::units::TimeSpan;
    use std::time::Duration;

    const TIMEOUT: Duration = Duration::from_secs(20);

    fn snap() -> AppStatsSnapshot {
        // A clean snapshot; tests override specific fields.
        AppStatsSnapshot {
            completed: 0,
            rejected: 0,
            errors: 0,
            shed: 0,
            storm_injected: 0,
            missed: 0,
            queue_depth: 0,
            max_queue_depth: 0,
            in_flight: 0,
            batches: 0,
            batched_samples: 0,
            p50: None,
            p99: None,
            window_len: 0,
            window_outcomes: 0,
            window_miss_rate: 0.0,
            knob_errors: 0,
            knob_rejected: 0,
            knob_faulted: 0,
            last_knob_error: None,
            restarts: 0,
            stalls: 0,
            out_of_order: 0,
            level: 0,
            precision: eml_nn::Precision::F32,
            predicted: None,
            cluster: None,
            band_cap: 0,
            admitted: true,
        }
    }

    #[test]
    fn score_is_perfect_when_clean_and_banded() {
        let cfg = HealthConfig::default();
        let s = score(&cfg, &snap(), 64, 0.0, &FreshEvents::default());
        assert!((s - 100.0).abs() < f32::EPSILON);
        assert_eq!(HealthBand::of(s), HealthBand::Healthy);
        assert_eq!(HealthBand::of(79.9), HealthBand::Degraded);
        assert_eq!(HealthBand::of(49.9), HealthBand::Critical);
        assert_eq!(HealthBand::of(0.0), HealthBand::Critical);
    }

    #[test]
    fn miss_rate_is_gated_on_outcomes_and_scales() {
        let cfg = HealthConfig::default();
        let mut s = snap();
        s.window_miss_rate = 1.0;
        s.window_outcomes = cfg.min_outcomes - 1;
        assert!(
            (score(&cfg, &s, 64, 0.0, &FreshEvents::default()) - 100.0).abs() < f32::EPSILON,
            "too few outcomes: not evidence"
        );
        s.window_outcomes = cfg.min_outcomes;
        let full = score(&cfg, &s, 64, 0.0, &FreshEvents::default());
        assert!((full - (100.0 - cfg.w_miss)).abs() < 1e-4);
        s.window_miss_rate = 0.5;
        let half = score(&cfg, &s, 64, 0.0, &FreshEvents::default());
        assert!((half - (100.0 - cfg.w_miss * 0.5)).abs() < 1e-4);
    }

    #[test]
    fn queue_and_fresh_events_penalise_and_clamp() {
        let cfg = HealthConfig::default();
        let mut s = snap();
        s.queue_depth = 32;
        let half_queue = score(&cfg, &s, 64, 0.0, &FreshEvents::default());
        assert!((half_queue - (100.0 - cfg.w_queue * 0.5)).abs() < 1e-4);
        // Every flat penalty at once, full queue and full misses: the
        // floor is 0, never negative.
        s.queue_depth = 64;
        s.window_miss_rate = 1.0;
        s.window_outcomes = cfg.min_outcomes;
        let fresh = FreshEvents {
            shed: 3,
            restarts: 1,
            stalls: 1,
            knob_faults: 2,
        };
        assert!(fresh.any());
        assert_eq!(score(&cfg, &s, 64, 0.0, &fresh), 0.0);
        // Zero capacity: the queue term is skipped, not a divide-by-0.
        let clean = snap();
        assert!(
            (score(&cfg, &clean, 0, 0.0, &FreshEvents::default()) - 100.0).abs() < f32::EPSILON
        );
    }

    #[test]
    fn pool_pressure_penalises_every_tenant_and_clamps() {
        let cfg = HealthConfig::default();
        let clean = snap();
        // Half the pool backed up: half the pool weight, charged even
        // to a tenant whose own queue is empty.
        let s = score(&cfg, &clean, 64, 0.5, &FreshEvents::default());
        assert!((s - (100.0 - cfg.w_pool_queue * 0.5)).abs() < 1e-4);
        // Out-of-range pressure is clamped, not amplified.
        let over = score(&cfg, &clean, 64, 7.0, &FreshEvents::default());
        assert!((over - (100.0 - cfg.w_pool_queue)).abs() < 1e-4);
        let under = score(&cfg, &clean, 64, -1.0, &FreshEvents::default());
        assert!((under - 100.0).abs() < f32::EPSILON);
        // A zero weight opts the term out entirely.
        let quiet = HealthConfig {
            w_pool_queue: 0.0,
            ..HealthConfig::default()
        };
        let s = score(&quiet, &clean, 64, 1.0, &FreshEvents::default());
        assert!((s - 100.0).abs() < f32::EPSILON);
    }

    #[test]
    fn watermark_reports_only_fresh_events() {
        let mut s = snap();
        s.shed = 10;
        s.restarts = 2;
        let mut mark = EventWatermark::seeded(&s);
        assert_eq!(mark.advance(&s), FreshEvents::default(), "history is calm");
        s.shed = 12;
        s.stalls = 1;
        let fresh = mark.advance(&s);
        assert_eq!((fresh.shed, fresh.stalls, fresh.restarts), (2, 1, 0));
        assert_eq!(mark.advance(&s), FreshEvents::default(), "consumed");
        // A counter reset (deregister + re-register under the same
        // name) reads as nothing fresh, not an underflow.
        let reborn = snap();
        assert_eq!(mark.advance(&reborn), FreshEvents::default());
    }

    #[test]
    fn monitor_scores_live_executor_sorted_and_prunes() {
        let exec = crate::Executor::new(ExecutorConfig::default());
        for name in ["zeta", "alpha", "mid"] {
            exec.register_dnn(
                name,
                testbed::tiny_dnn(1),
                &Requirements::new().with_max_latency(TimeSpan::from_millis(50.0)),
            )
            .unwrap();
        }
        exec.register_rigid("render").unwrap();
        let mut mon = HealthMonitor::new(HealthConfig::default());
        let r = mon.observe(&exec);
        let order: Vec<&str> = r.apps.iter().map(|a| a.app.as_str()).collect();
        assert_eq!(order, ["alpha", "mid", "zeta"], "sorted, rigid skipped");
        assert!((r.aggregate - 100.0).abs() < f32::EPSILON);
        assert_eq!(r.band, HealthBand::Healthy);
        assert!((r.smoothed - r.aggregate).abs() < f32::EPSILON, "seeded");
        // Serve one request so the roster has activity, then churn.
        exec.submit("mid", &vec![0.2; 3 * 8 * 8])
            .unwrap()
            .wait_timeout(TIMEOUT)
            .unwrap();
        exec.deregister_dnn("mid").unwrap();
        let r = mon.observe(&exec);
        let order: Vec<&str> = r.apps.iter().map(|a| a.app.as_str()).collect();
        assert_eq!(order, ["alpha", "zeta"], "departed apps leave the report");
        assert!(!mon.marks.contains_key("mid"), "watermark pruned");
        let json = r.to_json();
        assert!(json.starts_with("{\"aggregate\":100.0,"), "{json}");
        assert!(json.contains("\"app\":\"alpha\""));
        assert!(!json.contains("\"app\":\"mid\""));
        // Two observations of the same state render identically.
        assert_eq!(json, mon.observe(&exec).to_json());
    }

    #[test]
    fn json_escapes_hostile_names() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
