//! Per-application serving statistics: the executor's monitor surface.
//!
//! The serving thread records every completed request here; the control
//! loop ([`crate::ServeController`]) and tests read consistent
//! snapshots. Latency percentiles are computed over a bounded sliding
//! window so long-running servers report *current* behaviour, while the
//! cumulative counters (completed / errors / missed / rejected / shed)
//! never reset — they are the invariant surface the stress and property
//! suites pin ("no request is ever silently dropped" is
//! `submitted + storm_injected == completed + errors + rejected + shed`
//! in these counters, where `submitted` counts submission *attempts*
//! and `storm_injected` the synthetic requests a fault-injection queue
//! storm enqueued directly).

use std::collections::VecDeque;

use eml_nn::Precision;
use eml_platform::soc::ClusterId;
use eml_platform::units::TimeSpan;

/// Mutable per-app statistics, updated by the serving thread.
#[derive(Debug)]
pub(crate) struct AppStats {
    window: usize,
    /// Most recent request latencies (seconds), newest at the back.
    latencies: VecDeque<f64>,
    /// Deadline outcomes of the same window (only requests with a
    /// deadline verdict enter), for the degradation ladder's windowed
    /// miss-rate signal.
    recent_met: VecDeque<bool>,
    /// Misses currently inside `recent_met`.
    recent_missed: usize,
    pub(crate) completed: u64,
    pub(crate) missed: u64,
    pub(crate) batches: u64,
    pub(crate) batched_samples: u64,
    pub(crate) knob_errors: u64,
    /// Knob commands the model itself refused (e.g. width out of range).
    pub(crate) knob_rejected: u64,
    /// Knob commands dropped by an injected actuation fault.
    pub(crate) knob_faulted: u64,
    pub(crate) last_knob_error: Option<String>,
    pub(crate) out_of_order: u64,
    pub(crate) last_seq: Option<u64>,
    /// Supervised serving-thread restarts (thread died and was respawned).
    pub(crate) restarts: u64,
    /// Wedged-batch confiscations (heartbeat stale past the stall timeout).
    pub(crate) stalls: u64,
    pub(crate) level: usize,
    pub(crate) precision: Precision,
}

impl AppStats {
    pub(crate) fn new(window: usize, level: usize, precision: Precision) -> Self {
        Self {
            window: window.max(1),
            latencies: VecDeque::new(),
            recent_met: VecDeque::new(),
            recent_missed: 0,
            completed: 0,
            missed: 0,
            batches: 0,
            batched_samples: 0,
            knob_errors: 0,
            knob_rejected: 0,
            knob_faulted: 0,
            last_knob_error: None,
            out_of_order: 0,
            last_seq: None,
            restarts: 0,
            stalls: 0,
            level,
            precision,
        }
    }

    /// Clears the sliding latency/outcome windows (the cumulative
    /// counters stay). Called when a knob switch changes the operating
    /// point, so percentiles and the windowed miss rate always describe
    /// the *current* configuration instead of blending the old point's
    /// behaviour into the new one's.
    pub(crate) fn reset_window(&mut self) {
        self.latencies.clear();
        self.recent_met.clear();
        self.recent_missed = 0;
    }

    /// Records one completed request.
    pub(crate) fn record(&mut self, seq: u64, latency_s: f64, met: Option<bool>) {
        if self.latencies.len() == self.window {
            self.latencies.pop_front();
        }
        self.latencies.push_back(latency_s);
        self.completed += 1;
        if let Some(m) = met {
            if self.recent_met.len() == self.window && self.recent_met.pop_front() == Some(false) {
                self.recent_missed -= 1;
            }
            self.recent_met.push_back(m);
            if !m {
                self.recent_missed += 1;
            }
        }
        if met == Some(false) {
            self.missed += 1;
        }
        if let Some(last) = self.last_seq {
            if seq <= last {
                self.out_of_order += 1;
            }
        }
        self.last_seq = Some(seq);
    }

    fn percentile(&self, q: f64) -> Option<TimeSpan> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.latencies.iter().copied().collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(TimeSpan::from_secs(sorted[idx]))
    }

    pub(crate) fn snapshot(&self) -> WindowSnapshot {
        WindowSnapshot {
            p50: self.percentile(0.50),
            p99: self.percentile(0.99),
            window_len: self.latencies.len(),
            window_outcomes: self.recent_met.len(),
            window_miss_rate: if self.recent_met.is_empty() {
                0.0
            } else {
                self.recent_missed as f64 / self.recent_met.len() as f64
            },
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct WindowSnapshot {
    pub(crate) p50: Option<TimeSpan>,
    pub(crate) p99: Option<TimeSpan>,
    pub(crate) window_len: usize,
    pub(crate) window_outcomes: usize,
    pub(crate) window_miss_rate: f64,
}

/// A consistent view of one application's serving state.
#[derive(Debug, Clone)]
pub struct AppStatsSnapshot {
    /// Requests completed successfully (a logits-bearing completion
    /// was delivered to the ticket). Requests whose batch failed count
    /// under [`AppStatsSnapshot::errors`], requests shed past their
    /// deadline under [`AppStatsSnapshot::shed`], so
    /// `submitted + storm_injected == completed + errors + rejected + shed`
    /// (with `submitted` counting submission attempts).
    pub completed: u64,
    /// Requests rejected at submission (queue full / not admitted).
    pub rejected: u64,
    /// Requests whose batch failed in inference (including batches
    /// failed by the supervisor when a serving thread died or wedged);
    /// their tickets received a typed
    /// [`crate::ServeError::Inference`] error.
    pub errors: u64,
    /// Requests shed at dequeue because their deadline had already
    /// expired in the queue; their tickets received a typed
    /// [`crate::ServeError::DeadlineExpired`] error and no forward pass
    /// was spent on them.
    pub shed: u64,
    /// Synthetic requests enqueued by an injected queue storm (never
    /// submitted by a caller; they complete into these statistics like
    /// any other request).
    pub storm_injected: u64,
    /// Completed requests that missed the app's deadline.
    pub missed: u64,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// High-water mark of the queue depth.
    pub max_queue_depth: usize,
    /// Requests taken from the queue but not yet completed.
    pub in_flight: usize,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Samples carried by those batches (`/ batches` = mean batch).
    pub batched_samples: u64,
    /// Median request latency over the sliding window.
    pub p50: Option<TimeSpan>,
    /// 99th-percentile request latency over the sliding window.
    pub p99: Option<TimeSpan>,
    /// Requests currently in the latency window.
    pub window_len: usize,
    /// Deadline outcomes currently in the sliding window (only
    /// requests with a deadline verdict enter it).
    pub window_outcomes: usize,
    /// Miss fraction over the sliding outcome window (0.0 when empty)
    /// — the degradation ladder's pressure signal, as opposed to the
    /// cumulative [`AppStatsSnapshot::miss_fraction`].
    pub window_miss_rate: f64,
    /// Knob commands that failed to apply on the serving thread
    /// (`knob_rejected + knob_faulted`).
    pub knob_errors: u64,
    /// Knob commands the model itself refused (e.g. width out of range).
    pub knob_rejected: u64,
    /// Knob commands dropped by an injected actuation fault.
    pub knob_faulted: u64,
    /// The most recent knob failure, for diagnostics.
    pub last_knob_error: Option<String>,
    /// Supervised restarts of the app's serving thread (the watchdog
    /// found the thread dead, failed its in-flight batch with a typed
    /// error, and respawned it after a bounded exponential backoff).
    pub restarts: u64,
    /// Wedged batches confiscated by the watchdog (the thread's
    /// heartbeat went stale past the stall timeout with work in
    /// flight; the batch was failed with a typed error).
    pub stalls: u64,
    /// Completions observed out of submission order (always 0: the
    /// per-app queue is FIFO and the shared pool's busy-claim
    /// serialises each app onto one driver at a time; the counter is
    /// the invariant surface the stress suite pins).
    pub out_of_order: u64,
    /// The model's current width level index.
    pub level: usize,
    /// The model's current precision mode.
    pub precision: Precision,
    /// Predicted latency of the app's current operating point, when an
    /// allocation has been applied.
    pub predicted: Option<TimeSpan>,
    /// Cluster of the current operating point.
    pub cluster: Option<ClusterId>,
    /// Band cap (allocated cores) the forwards run under (0 = uncapped).
    pub band_cap: usize,
    /// Whether the current allocation admits the app.
    pub admitted: bool,
}

/// A consistent view of the shared worker pool itself, as opposed to
/// any one tenant: driver counts, roster occupancy against the bounded
/// registry, and the pool-wide queue pressure the health monitor folds
/// into its score. Read via [`crate::Executor::pool_stats`].
#[derive(Debug, Clone)]
pub struct PoolSnapshot {
    /// Driver threads the pool was built with
    /// ([`crate::ExecutorConfig::pool_workers`], floored at 1). Fixed
    /// for the executor's lifetime — independent of the tenant count.
    pub drivers: usize,
    /// Driver threads currently alive (a crashed driver leaves this
    /// until the watchdog respawns it).
    pub live_drivers: usize,
    /// Live (non-departed) registered applications, DNN and rigid —
    /// the occupancy the bounded registry caps at
    /// [`PoolSnapshot::max_apps`].
    pub apps: usize,
    /// DNN apps on the serving roster (the subset of
    /// [`PoolSnapshot::apps`] with queues the drivers actually pull
    /// from — the denominator of the pool-pressure fraction).
    pub serving: usize,
    /// The bounded registry capacity
    /// ([`crate::ExecutorConfig::max_apps`]); registrations past it are
    /// refused with [`crate::ServeError::OverCapacity`].
    pub max_apps: usize,
    /// Requests queued across every live DNN app.
    pub queue_depth: usize,
    /// Requests claimed by drivers but not yet completed, pool-wide.
    pub in_flight: usize,
    /// Per-app queue capacity (the pool-wide bound is
    /// `queue_capacity × apps`).
    pub queue_capacity: usize,
}

impl AppStatsSnapshot {
    /// Mean samples per executed batch (0.0 before the first batch).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_samples as f64 / self.batches as f64
        }
    }

    /// Deadline miss fraction over all completions (0.0 before any).
    pub fn miss_fraction(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.missed as f64 / self.completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_slides_and_percentiles_sort() {
        let mut s = AppStats::new(4, 3, Precision::F32);
        for (i, ms) in [5.0, 1.0, 9.0, 3.0, 7.0].iter().enumerate() {
            // A 6 ms deadline: 9 and 7 miss, the rest meet it.
            s.record(i as u64, ms * 1e-3, Some(*ms <= 6.0));
        }
        // Window holds the last 4: [1, 9, 3, 7] → p50 ≈ 3ms or 7ms edge.
        let snap = s.snapshot();
        assert_eq!(snap.window_len, 4);
        let p50 = snap.p50.unwrap().as_millis();
        assert!((3.0..=7.0).contains(&p50), "p50 {p50}");
        assert_eq!(snap.p99.unwrap().as_millis().round() as i64, 9);
        assert_eq!(s.completed, 5);
        assert_eq!(s.missed, 2);
        assert_eq!(s.out_of_order, 0);
    }

    #[test]
    fn windowed_miss_rate_tracks_only_deadline_outcomes() {
        let mut s = AppStats::new(4, 0, Precision::F32);
        s.record(0, 1e-3, None); // no deadline verdict: latency only
        s.record(1, 1e-3, Some(true));
        s.record(2, 9e-3, Some(false));
        let snap = s.snapshot();
        assert_eq!(snap.window_len, 3);
        assert_eq!(snap.window_outcomes, 2);
        assert!((snap.window_miss_rate - 0.5).abs() < 1e-12);
        // The outcome window slides with the same bound as latencies.
        for i in 0..4 {
            s.record(3 + i, 1e-3, Some(true));
        }
        let snap = s.snapshot();
        assert_eq!(snap.window_outcomes, 4);
        assert_eq!(snap.window_miss_rate, 0.0);
        s.reset_window();
        let snap = s.snapshot();
        assert_eq!((snap.window_outcomes, snap.window_len), (0, 0));
        assert_eq!(snap.window_miss_rate, 0.0);
    }

    #[test]
    fn out_of_order_completions_are_counted() {
        let mut s = AppStats::new(8, 0, Precision::F32);
        s.record(3, 1e-3, None);
        s.record(2, 1e-3, None);
        assert_eq!(s.out_of_order, 1);
    }
}
