//! The serving control loop: measured latency → feedback → re-allocation.
//!
//! [`ServeController`] is the piece that turns the planner + executor
//! pair into the paper's closed Fig 5 loop. Each *control epoch* it
//! reads every app's measured latency statistics from the
//! [`crate::Executor`], feeds observed-vs-predicted ratios into an
//! [`eml_core::feedback::LatencyFeedback`] (the per-cluster EWMA model
//! correction), tracks per-app deadline outcomes in
//! [`eml_core::feedback::MissTracker`]s, and — on a *sustained* miss —
//! re-invokes [`eml_core::rtm::Rtm::allocate_with_feedback`] so the new
//! decision reasons about corrected latencies, then actuates it through
//! [`crate::Executor::apply_allocation`]. One epoch is one turn of the
//! loop; the caller picks the cadence (a timer thread in a server, an
//! explicit call in tests).

use std::collections::HashMap;

use eml_core::feedback::{LatencyFeedback, MissTracker};
use eml_core::rtm::{Allocation, AppSpec, Rtm};
use eml_platform::Soc;

use crate::error::Result;
use crate::executor::Executor;

/// Control-loop tuning.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// EWMA rate of the latency feedback (1.0 = trust the newest
    /// observation completely). Serving favours fast adaptation: the
    /// observation is already a windowed median, so heavy smoothing on
    /// top mostly delays convergence.
    pub feedback_alpha: f64,
    /// Outcomes per app before a sustained miss can fire.
    pub miss_window: usize,
    /// Miss fraction at/above which the tracker fires.
    pub miss_threshold: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            feedback_alpha: 0.7,
            miss_window: 16,
            miss_threshold: 0.5,
        }
    }
}

/// What one control epoch did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochOutcome {
    /// Whether a sustained miss triggered a re-allocation.
    pub reallocated: bool,
    /// Apps whose statistics produced a feedback observation.
    pub observed: usize,
}

/// The serving-side RTM driver. See the module docs.
#[derive(Debug)]
pub struct ServeController {
    rtm: Rtm,
    soc: Soc,
    apps: Vec<AppSpec>,
    cfg: ControllerConfig,
    feedback: LatencyFeedback,
    trackers: HashMap<String, MissTracker>,
    /// Per-app (completed, missed) counters at the last epoch, for
    /// delta extraction from the cumulative stats.
    seen: HashMap<String, (u64, u64)>,
    /// Per placed app: its cluster and the *uncorrected* model
    /// prediction at the chosen point. The allocation's own latency
    /// already includes the feedback correction; observing against it
    /// would square-root the learned ratio (the EWMA would chase
    /// `obs / (corr · analytic)` instead of `obs / analytic`), so the
    /// correction in force at decision time is divided back out here.
    raw_predictions: HashMap<String, (eml_platform::soc::ClusterId, eml_platform::units::TimeSpan)>,
    allocation: Option<Allocation>,
}

impl ServeController {
    /// Creates a controller over `rtm`/`soc` managing `apps`.
    pub fn new(rtm: Rtm, soc: Soc, apps: Vec<AppSpec>, cfg: ControllerConfig) -> Self {
        Self {
            rtm,
            soc,
            apps,
            feedback: LatencyFeedback::new(cfg.feedback_alpha),
            cfg,
            trackers: HashMap::new(),
            seen: HashMap::new(),
            raw_predictions: HashMap::new(),
            allocation: None,
        }
    }

    /// The current allocation, once one has been made.
    pub fn allocation(&self) -> Option<&Allocation> {
        self.allocation.as_ref()
    }

    /// The accumulated latency-model corrections.
    pub fn feedback(&self) -> &LatencyFeedback {
        &self.feedback
    }

    /// The managed application specs (mutable: arrivals/departures/
    /// requirement changes between epochs edit this list; the next
    /// allocation picks them up).
    pub fn apps_mut(&mut self) -> &mut Vec<AppSpec> {
        &mut self.apps
    }

    /// Allocates with the current feedback state and actuates the
    /// result on the executor. The initial call bootstraps serving;
    /// later calls force a re-decision (e.g. after editing the app
    /// list).
    ///
    /// # Errors
    ///
    /// Propagates structural RTM errors.
    pub fn allocate_and_apply(&mut self, exec: &Executor) -> Result<&Allocation> {
        let alloc = self
            .rtm
            .allocate_with_feedback(&self.soc, &self.apps, Some(&self.feedback))?;
        exec.apply_allocation(&alloc);
        self.raw_predictions.clear();
        for d in &alloc.dnns {
            let cluster = d.point.op.cluster;
            let corr = self.feedback.correction(cluster);
            self.raw_predictions
                .insert(d.app.clone(), (cluster, d.point.latency * (1.0 / corr)));
        }
        for t in self.trackers.values_mut() {
            t.reset();
        }
        self.allocation = Some(alloc);
        Ok(self.allocation.as_ref().expect("just set"))
    }

    /// One turn of the closed loop: harvest stats, learn corrections,
    /// re-allocate on sustained misses.
    ///
    /// # Errors
    ///
    /// Propagates structural RTM errors from a triggered re-allocation.
    pub fn control_epoch(&mut self, exec: &Executor) -> Result<EpochOutcome> {
        let mut observed = 0usize;
        let mut triggered = false;
        for spec in &self.apps {
            let AppSpec::Dnn(d) = spec else { continue };
            let Ok(snap) = exec.stats(&d.name) else {
                continue; // not registered with this executor
            };
            let (last_completed, last_missed) = self.seen.get(&d.name).copied().unwrap_or((0, 0));
            let delta_completed = snap.completed.saturating_sub(last_completed);
            if delta_completed == 0 {
                continue;
            }
            let delta_missed = snap.missed.saturating_sub(last_missed);
            self.seen
                .insert(d.name.clone(), (snap.completed, snap.missed));

            // Model correction: the windowed median of *measured*
            // request latency against the uncorrected model prediction
            // for the cluster the app runs on.
            if let (Some(&(cluster, raw)), Some(p50)) =
                (self.raw_predictions.get(&d.name), snap.p50)
            {
                self.feedback.observe(cluster, raw, p50);
                observed += 1;
            }

            if d.requirements.max_latency().is_some() {
                let tracker = self.trackers.entry(d.name.clone()).or_insert_with(|| {
                    MissTracker::new(self.cfg.miss_window, self.cfg.miss_threshold)
                });
                for i in 0..delta_completed {
                    tracker.record(i >= delta_missed);
                }
                if tracker.sustained_miss() {
                    triggered = true;
                }
            }
        }
        if triggered {
            self.allocate_and_apply(exec)?;
        }
        Ok(EpochOutcome {
            reallocated: triggered,
            observed,
        })
    }
}
