//! The serving control loop: measured latency → feedback → re-allocation.
//!
//! [`ServeController`] is the piece that turns the planner + executor
//! pair into the paper's closed Fig 5 loop. Each *control epoch* it
//! reads every app's measured latency statistics from the
//! [`crate::Executor`], feeds observed-vs-predicted ratios into an
//! [`eml_core::feedback::LatencyFeedback`] (the per-cluster EWMA model
//! correction), tracks per-app deadline outcomes in
//! [`eml_core::feedback::MissTracker`]s, and — on a *sustained* miss —
//! re-invokes [`eml_core::rtm::Rtm::allocate_with_feedback`] so the new
//! decision reasons about corrected latencies, then actuates it through
//! [`crate::Executor::apply_allocation`]. One epoch is one turn of the
//! loop; the caller picks the cadence (a timer thread in a server, an
//! explicit call in tests).
//!
//! Between allocation epochs, an optional [`PressurePolicy`] acts as
//! the *graceful-degradation ladder*, driven by the per-app health
//! score ([`crate::health::score`]) rather than a bag of ad-hoc
//! triggers: when an app's score falls below
//! [`PressureConfig::degrade_below`] — whether from a high windowed
//! miss rate, queue depth near capacity, fresh deadline sheds,
//! restarts, stalls or knob faults — the policy steps the paper's
//! knobs **down** — f32 → int8 first (cheap accuracy for a large
//! latency cut), then width one level at a time — through the
//! executor's typed [`crate::Executor::route_command`] path. Recovery
//! is hysteretic twice over: a tick counts as calm only when the score
//! clears the *higher* [`PressureConfig::restore_at`] line with enough
//! window evidence, and a rung is undone only after a full window of
//! consecutive calm ticks
//! ([`eml_core::feedback::MissTracker::all_met`]), so knobs don't flap
//! at the pressure boundary. A re-allocation overwrites the knob
//! surface wholesale, so it clears the ladder
//! ([`PressurePolicy::forget_ladders`]) rather than "restoring" onto a
//! configuration that no longer exists.

use std::collections::HashMap;

use eml_core::feedback::{LatencyFeedback, MissTracker};
use eml_core::knobs::KnobCommand;
use eml_core::rtm::{Allocation, AppSpec, Rtm};
use eml_dnn::WidthLevel;
use eml_nn::Precision;
use eml_platform::Soc;

use crate::error::Result;
use crate::executor::Executor;
use crate::health::{self, EventWatermark, HealthConfig};

/// Control-loop tuning.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// EWMA rate of the latency feedback (1.0 = trust the newest
    /// observation completely). Serving favours fast adaptation: the
    /// observation is already a windowed median, so heavy smoothing on
    /// top mostly delays convergence.
    pub feedback_alpha: f64,
    /// Outcomes per app before a sustained miss can fire.
    pub miss_window: usize,
    /// Miss fraction at/above which the tracker fires.
    pub miss_threshold: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            feedback_alpha: 0.7,
            miss_window: 16,
            miss_threshold: 0.5,
        }
    }
}

/// What one control epoch did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochOutcome {
    /// Whether a sustained miss triggered a re-allocation.
    pub reallocated: bool,
    /// Apps whose statistics produced a feedback observation.
    pub observed: usize,
    /// Degradation-ladder rungs stepped down this epoch (0 without an
    /// attached [`PressurePolicy`]).
    pub degraded: usize,
    /// Degradation-ladder rungs restored this epoch.
    pub restored: usize,
}

/// Tuning of the graceful-degradation ladder. See the module docs.
#[derive(Debug, Clone, Copy)]
pub struct PressureConfig {
    /// Health-score weights (see [`crate::health::HealthConfig`]); the
    /// ladder scores each app exactly as a [`crate::HealthMonitor`]
    /// would, from the same counters.
    pub health: HealthConfig,
    /// Health score below which an app is pressured: one rung steps
    /// down. With default weights this line is crossed by a ~44 %
    /// windowed miss rate, a ~70 % full queue, or any fresh shed —
    /// close to the retired trio of ad-hoc triggers, but every other
    /// health signal (restarts, stalls, knob faults) now also
    /// contributes.
    pub degrade_below: f32,
    /// Health score at/above which a tick counts as *calm* (evidence
    /// toward restoration). Strictly above `degrade_below`: the gap is
    /// the dead band where the ladder holds its position.
    pub restore_at: f32,
    /// Consecutive calm ticks (a full, clean [`MissTracker`] window)
    /// before one rung is restored — the hysteresis.
    pub recover_ticks: usize,
    /// The ladder never narrows an app below this width level.
    pub width_floor: usize,
}

impl Default for PressureConfig {
    fn default() -> Self {
        Self {
            health: HealthConfig::default(),
            degrade_below: 65.0,
            restore_at: 90.0,
            recover_ticks: 3,
            width_floor: 0,
        }
    }
}

/// One rung the ladder stepped down, remembered for restoration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderStep {
    /// Precision was stepped down; `from` is what to restore.
    Precision {
        /// The precision before the step (restored on recovery).
        from: Precision,
    },
    /// Width was stepped down one level; `from` is what to restore.
    Width {
        /// The width level index before the step.
        from: usize,
    },
}

/// One knob movement the ladder performed during a tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PressureAction {
    /// A rung was stepped down under pressure.
    Degraded {
        /// The pressured application.
        app: String,
        /// The rung (what was given up).
        step: LadderStep,
    },
    /// A rung was restored after sustained calm.
    Restored {
        /// The recovered application.
        app: String,
        /// The rung (what was given back).
        step: LadderStep,
    },
}

/// Cumulative ladder counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PressureStats {
    /// Rungs stepped down over the policy's lifetime.
    pub degrade_steps: u64,
    /// Rungs restored.
    pub restore_steps: u64,
}

/// Per-app ladder state.
#[derive(Debug)]
struct AppLadder {
    /// Rungs currently stepped down, most recent last (restored LIFO).
    steps: Vec<LadderStep>,
    /// Consecutive-calm-ticks tracker (threshold 1.0: only a *full
    /// clean window* restores — see [`MissTracker::all_met`]).
    calm: MissTracker,
    /// Watermark over the app's cumulative event counters, so only
    /// events *since the last tick* penalise the score.
    mark: EventWatermark,
}

/// The graceful-degradation ladder. See the module docs.
#[derive(Debug)]
pub struct PressurePolicy {
    cfg: PressureConfig,
    ladders: HashMap<String, AppLadder>,
    stats: PressureStats,
}

impl PressurePolicy {
    /// Creates a ladder with the given tuning.
    pub fn new(cfg: PressureConfig) -> Self {
        Self {
            cfg,
            ladders: HashMap::new(),
            stats: PressureStats::default(),
        }
    }

    /// Cumulative degrade/restore counters.
    pub fn stats(&self) -> PressureStats {
        self.stats
    }

    /// Rungs currently stepped down for `app` (0 = at its allocated
    /// operating point).
    pub fn depth(&self, app: &str) -> usize {
        self.ladders.get(app).map_or(0, |l| l.steps.len())
    }

    /// Drops all ladder state *without* restoring knobs — called after
    /// a re-allocation, which rewrote the knob surface wholesale; the
    /// remembered rungs describe a configuration that no longer exists.
    pub fn forget_ladders(&mut self) {
        self.ladders.clear();
    }

    /// One pressure evaluation for one app: computes the app's health
    /// score from its current snapshot, steps a rung down when the
    /// score sinks below the pressure line, records calm when it
    /// clears the restore line, and restores a rung after a full clean
    /// calm window. Returns what (if anything) moved.
    ///
    /// Knob movement goes through [`Executor::route_command`]; an
    /// unknown or deregistered app drops its ladder state. Actuation
    /// is asynchronous — the serving thread applies the command before
    /// its next batch — so ticks should run at batch granularity or
    /// coarser.
    pub fn tick(&mut self, exec: &Executor, app: &str) -> Option<PressureAction> {
        let Ok(snap) = exec.stats(app) else {
            self.ladders.remove(app);
            return None;
        };
        let cfg = self.cfg;
        let ladder = self
            .ladders
            .entry(app.to_string())
            .or_insert_with(|| AppLadder {
                steps: Vec::new(),
                calm: MissTracker::new(cfg.recover_ticks.max(1), 1.0),
                mark: EventWatermark::seeded(&snap),
            });
        let fresh = ladder.mark.advance(&snap);
        let score = health::score(
            &cfg.health,
            &snap,
            exec.config().queue_capacity,
            exec.pool_pressure(),
            &fresh,
        );
        if score < cfg.degrade_below {
            // Pressure: any recovery evidence is stale now.
            ladder.calm.reset();
            let (cmd, step) = if snap.precision == Precision::F32 {
                (
                    KnobCommand::SetPrecision {
                        app: app.to_string(),
                        precision: Precision::Int8,
                    },
                    LadderStep::Precision {
                        from: Precision::F32,
                    },
                )
            } else if snap.level > cfg.width_floor {
                (
                    KnobCommand::SetWidth {
                        app: app.to_string(),
                        level: WidthLevel(snap.level - 1),
                    },
                    LadderStep::Width { from: snap.level },
                )
            } else {
                return None; // bottom of the ladder: nothing left to give
            };
            if exec.route_command(&cmd).is_err() {
                self.ladders.remove(app);
                return None;
            }
            ladder.steps.push(step);
            self.stats.degrade_steps += 1;
            return Some(PressureAction::Degraded {
                app: app.to_string(),
                step,
            });
        }
        // Calm — but only when the score clears the (higher) restore
        // line *and* the app actually served enough outcomes at the
        // current (degraded) point to be evidence. Scores in the dead
        // band between the two lines neither degrade nor recover.
        if score >= cfg.restore_at && snap.window_outcomes >= cfg.health.min_outcomes {
            ladder.calm.record(true);
        }
        if ladder.calm.all_met() {
            if let Some(step) = ladder.steps.pop() {
                let cmd = match step {
                    LadderStep::Precision { from } => KnobCommand::SetPrecision {
                        app: app.to_string(),
                        precision: from,
                    },
                    LadderStep::Width { from } => KnobCommand::SetWidth {
                        app: app.to_string(),
                        level: WidthLevel(from),
                    },
                };
                if exec.route_command(&cmd).is_err() {
                    self.ladders.remove(app);
                    return None;
                }
                // The next rung needs its own full clean window.
                ladder.calm.reset();
                self.stats.restore_steps += 1;
                return Some(PressureAction::Restored {
                    app: app.to_string(),
                    step,
                });
            }
        }
        None
    }
}

/// The serving-side RTM driver. See the module docs.
#[derive(Debug)]
pub struct ServeController {
    rtm: Rtm,
    soc: Soc,
    apps: Vec<AppSpec>,
    cfg: ControllerConfig,
    feedback: LatencyFeedback,
    trackers: HashMap<String, MissTracker>,
    /// Per-app (completed, missed) counters at the last epoch, for
    /// delta extraction from the cumulative stats.
    seen: HashMap<String, (u64, u64)>,
    /// Per placed app: its cluster and the *uncorrected* model
    /// prediction at the chosen point. The allocation's own latency
    /// already includes the feedback correction; observing against it
    /// would square-root the learned ratio (the EWMA would chase
    /// `obs / (corr · analytic)` instead of `obs / analytic`), so the
    /// correction in force at decision time is divided back out here.
    raw_predictions: HashMap<String, (eml_platform::soc::ClusterId, eml_platform::units::TimeSpan)>,
    allocation: Option<Allocation>,
    /// The graceful-degradation ladder, when attached.
    pressure: Option<PressurePolicy>,
}

impl ServeController {
    /// Creates a controller over `rtm`/`soc` managing `apps`.
    pub fn new(rtm: Rtm, soc: Soc, apps: Vec<AppSpec>, cfg: ControllerConfig) -> Self {
        Self {
            rtm,
            soc,
            apps,
            feedback: LatencyFeedback::new(cfg.feedback_alpha),
            cfg,
            trackers: HashMap::new(),
            seen: HashMap::new(),
            raw_predictions: HashMap::new(),
            allocation: None,
            pressure: None,
        }
    }

    /// Attaches a graceful-degradation ladder: between re-allocations,
    /// [`ServeController::control_epoch`] ticks it for every managed
    /// DNN app.
    #[must_use]
    pub fn with_pressure(mut self, policy: PressurePolicy) -> Self {
        self.pressure = Some(policy);
        self
    }

    /// The attached degradation ladder, if any.
    pub fn pressure(&self) -> Option<&PressurePolicy> {
        self.pressure.as_ref()
    }

    /// The current allocation, once one has been made.
    pub fn allocation(&self) -> Option<&Allocation> {
        self.allocation.as_ref()
    }

    /// The accumulated latency-model corrections.
    pub fn feedback(&self) -> &LatencyFeedback {
        &self.feedback
    }

    /// The managed application specs (mutable: arrivals/departures/
    /// requirement changes between epochs edit this list; the next
    /// allocation picks them up).
    pub fn apps_mut(&mut self) -> &mut Vec<AppSpec> {
        &mut self.apps
    }

    /// Allocates with the current feedback state and actuates the
    /// result on the executor. The initial call bootstraps serving;
    /// later calls force a re-decision (e.g. after editing the app
    /// list).
    ///
    /// # Errors
    ///
    /// Propagates structural RTM errors.
    pub fn allocate_and_apply(&mut self, exec: &Executor) -> Result<&Allocation> {
        let alloc = self
            .rtm
            .allocate_with_feedback(&self.soc, &self.apps, Some(&self.feedback))?;
        exec.apply_allocation(&alloc);
        self.raw_predictions.clear();
        for d in &alloc.dnns {
            let cluster = d.point.op.cluster;
            let corr = self.feedback.correction(cluster);
            self.raw_predictions
                .insert(d.app.clone(), (cluster, d.point.latency * (1.0 / corr)));
        }
        for t in self.trackers.values_mut() {
            t.reset();
        }
        // The allocation rewrote the knob surface; ladder rungs now
        // describe operating points that no longer exist.
        if let Some(p) = &mut self.pressure {
            p.forget_ladders();
        }
        Ok(self.allocation.insert(alloc))
    }

    /// One turn of the closed loop: harvest stats, learn corrections,
    /// re-allocate on sustained misses.
    ///
    /// # Errors
    ///
    /// Propagates structural RTM errors from a triggered re-allocation.
    pub fn control_epoch(&mut self, exec: &Executor) -> Result<EpochOutcome> {
        let mut observed = 0usize;
        let mut triggered = false;
        for spec in &self.apps {
            let AppSpec::Dnn(d) = spec else { continue };
            let Ok(snap) = exec.stats(&d.name) else {
                continue; // not registered with this executor
            };
            let (last_completed, last_missed) = self.seen.get(&d.name).copied().unwrap_or((0, 0));
            let delta_completed = snap.completed.saturating_sub(last_completed);
            if delta_completed == 0 {
                continue;
            }
            let delta_missed = snap.missed.saturating_sub(last_missed);
            self.seen
                .insert(d.name.clone(), (snap.completed, snap.missed));

            // Model correction: the windowed median of *measured*
            // request latency against the uncorrected model prediction
            // for the cluster the app runs on.
            if let (Some(&(cluster, raw)), Some(p50)) =
                (self.raw_predictions.get(&d.name), snap.p50)
            {
                self.feedback.observe(cluster, raw, p50);
                observed += 1;
            }

            if d.requirements.max_latency().is_some() {
                let tracker = self.trackers.entry(d.name.clone()).or_insert_with(|| {
                    MissTracker::new(self.cfg.miss_window, self.cfg.miss_threshold)
                });
                for i in 0..delta_completed {
                    tracker.record(i >= delta_missed);
                }
                if tracker.sustained_miss() {
                    triggered = true;
                }
            }
        }
        let mut degraded = 0usize;
        let mut restored = 0usize;
        if triggered {
            // A re-allocation is the stronger response; it also clears
            // the ladder (see `allocate_and_apply`).
            self.allocate_and_apply(exec)?;
        } else if let Some(mut policy) = self.pressure.take() {
            for spec in &self.apps {
                let AppSpec::Dnn(d) = spec else { continue };
                match policy.tick(exec, &d.name) {
                    Some(PressureAction::Degraded { .. }) => degraded += 1,
                    Some(PressureAction::Restored { .. }) => restored += 1,
                    None => {}
                }
            }
            self.pressure = Some(policy);
        }
        Ok(EpochOutcome {
            reallocated: triggered,
            observed,
            degraded,
            restored,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ExecutorConfig;
    use crate::testbed;
    use eml_core::requirements::Requirements;
    use eml_platform::units::TimeSpan;
    use std::time::{Duration, Instant};

    const TIMEOUT: Duration = Duration::from_secs(20);

    fn ladder_exec(deadline_ms: f64) -> Executor {
        let exec = Executor::new(ExecutorConfig {
            queue_capacity: 8,
            batch_cap: 4,
            ..ExecutorConfig::default()
        });
        exec.register_dnn(
            "cam",
            testbed::tiny_dnn(1),
            &Requirements::new().with_max_latency(TimeSpan::from_millis(deadline_ms)),
        )
        .unwrap();
        exec
    }

    fn sample() -> Vec<f32> {
        vec![0.2; 3 * 8 * 8]
    }

    /// Knob actuation is asynchronous (the serving thread applies it
    /// before its next batch); ticks must observe the settled point.
    fn settle(exec: &Executor, f: impl Fn(&crate::AppStatsSnapshot) -> bool) {
        let t0 = Instant::now();
        loop {
            if f(&exec.stats("cam").unwrap()) {
                return;
            }
            assert!(t0.elapsed() < TIMEOUT, "knob never settled");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn pump(exec: &Executor, n: usize) {
        for _ in 0..n {
            exec.submit("cam", &sample())
                .unwrap()
                .wait_timeout(TIMEOUT)
                .unwrap();
        }
        exec.drain_app("cam").unwrap();
    }

    #[test]
    fn ladder_degrades_under_queue_pressure_and_restores_with_hysteresis() {
        let exec = ladder_exec(500.0); // generous: completions all meet
                                       // A queue weight that puts 4 held requests against capacity 8
                                       // (half full → 60 points of penalty) below the pressure line.
        let mut policy = PressurePolicy::new(PressureConfig {
            health: HealthConfig {
                w_queue: 120.0,
                min_outcomes: 2,
                ..HealthConfig::default()
            },
            recover_ticks: 2,
            ..PressureConfig::default()
        });
        let s0 = exec.stats("cam").unwrap();
        assert_eq!((s0.level, s0.precision), (3, Precision::F32));

        // 4 held requests against capacity 8 ≥ queue_frac: pressured.
        exec.pause("cam").unwrap();
        let held: Vec<crate::Ticket> = (0..4)
            .map(|_| exec.submit("cam", &sample()).unwrap())
            .collect();
        let a1 = policy.tick(&exec, "cam");
        assert!(
            matches!(
                a1,
                Some(PressureAction::Degraded {
                    step: LadderStep::Precision { .. },
                    ..
                })
            ),
            "rung 1 is precision: {a1:?}"
        );
        // Knobs apply even while paused (knob-only dispatch); wait for
        // the settled point so the next tick sees int8.
        settle(&exec, |s| s.precision == Precision::Int8);
        let a2 = policy.tick(&exec, "cam");
        assert!(
            matches!(
                a2,
                Some(PressureAction::Degraded {
                    step: LadderStep::Width { from: 3 },
                    ..
                })
            ),
            "rung 2 is width: {a2:?}"
        );
        settle(&exec, |s| s.level == 2);
        assert_eq!(policy.depth("cam"), 2);

        // Pressure clears; the held batch serves at the degraded point.
        exec.resume("cam").unwrap();
        for t in &held {
            t.wait_timeout(TIMEOUT).unwrap();
        }
        exec.drain_app("cam").unwrap();
        let s = exec.stats("cam").unwrap();
        assert_eq!((s.level, s.precision), (2, Precision::Int8));
        assert!(s.window_outcomes >= 2, "{s:?}");

        // Hysteresis: one calm tick is not enough…
        assert!(policy.tick(&exec, "cam").is_none());
        // …the second restores the most recent rung (width) only.
        let r1 = policy.tick(&exec, "cam");
        assert!(
            matches!(
                r1,
                Some(PressureAction::Restored {
                    step: LadderStep::Width { from: 3 },
                    ..
                })
            ),
            "{r1:?}"
        );
        settle(&exec, |s| s.level == 3);
        // Fresh evidence at the restored point, then two calm ticks.
        pump(&exec, 2);
        assert!(policy.tick(&exec, "cam").is_none());
        let r2 = policy.tick(&exec, "cam");
        assert!(
            matches!(
                r2,
                Some(PressureAction::Restored {
                    step: LadderStep::Precision { .. },
                    ..
                })
            ),
            "{r2:?}"
        );
        settle(&exec, |s| s.precision == Precision::F32);
        assert_eq!(policy.depth("cam"), 0);
        assert_eq!(
            policy.stats(),
            PressureStats {
                degrade_steps: 2,
                restore_steps: 2,
            }
        );
        let s = exec.stats("cam").unwrap();
        assert_eq!((s.level, s.precision), (3, Precision::F32));
    }

    #[test]
    fn fresh_sheds_pressure_the_ladder_and_forget_drops_state() {
        let exec = ladder_exec(10.0);
        let mut policy = PressurePolicy::new(PressureConfig {
            health: HealthConfig {
                min_outcomes: 2,
                ..HealthConfig::default()
            },
            recover_ticks: 1,
            ..PressureConfig::default()
        });
        // Baseline tick first: a ladder attached to a long-running app
        // seeds its shed watermark at attach time, so only *new* sheds
        // count as pressure.
        assert!(policy.tick(&exec, "cam").is_none());
        // Trap requests past their 10 ms deadline: they shed at dequeue.
        exec.pause("cam").unwrap();
        let doomed: Vec<crate::Ticket> = (0..2)
            .map(|_| exec.submit("cam", &sample()).unwrap())
            .collect();
        std::thread::sleep(Duration::from_millis(40));
        exec.resume("cam").unwrap();
        for t in &doomed {
            assert!(t.wait_timeout(TIMEOUT).is_err());
        }
        exec.drain_app("cam").unwrap();
        assert!(exec.stats("cam").unwrap().shed >= 2);
        // The shed delta alone (queue now empty, no misses) degrades.
        let a = policy.tick(&exec, "cam");
        assert!(
            matches!(a, Some(PressureAction::Degraded { .. })),
            "fresh sheds are pressure: {a:?}"
        );
        assert_eq!(policy.depth("cam"), 1);
        // A re-allocation overwrote the knobs: the ladder forgets
        // without restoring.
        policy.forget_ladders();
        assert_eq!(policy.depth("cam"), 0);
        assert_eq!(
            policy.stats(),
            PressureStats {
                degrade_steps: 1,
                restore_steps: 0,
            }
        );
        // Unknown apps never panic the ladder.
        assert!(policy.tick(&exec, "ghost").is_none());
    }
}
