//! Deterministic serving fixtures: a single-cluster SoC whose analytic
//! latency model is deliberately *optimistic*, and small real networks
//! to serve on it.
//!
//! The paper's presets are calibrated against boards the analytic model
//! describes well; a serving testbed wants the opposite — a model the
//! feedback loop must *repair*. [`quad_core_soc`] claims the reference
//! workload completes in microseconds, so the first allocation always
//! picks the widest feasible point; reality (the actual kernels on the
//! test machine) is slower, the deadline misses accumulate, and the
//! closed loop has to learn the correction and compress. With a single
//! cluster, every re-allocation is a pure knob decision (width × cores
//! × OPP) — no migration nondeterminism — which is what the
//! stress/property harnesses need to assert exact round trips.

use eml_dnn::profile::DnnProfile;
use eml_dnn::DynamicDnn;
use eml_nn::arch::{build_group_cnn, CnnConfig};
use eml_platform::latency::LatencyModel;
use eml_platform::opp::OppTable;
use eml_platform::power::{AnchoredPowerModel, PowerAnchor};
use eml_platform::presets::REFERENCE_MACS;
use eml_platform::soc::{ClusterSpec, CoreKind, Soc};
use eml_platform::thermal::ThermalModel;
use eml_platform::units::{Freq, Power, TimeSpan};

/// Nominal per-width accuracies for testbed profiles (the Fig 4b shape,
/// as fractions).
pub const TESTBED_TOP1: [f64; 4] = [0.55, 0.62, 0.66, 0.70];

/// A single 4-core CPU cluster ("quad") with four OPPs and an
/// optimistic latency model: the reference workload in 10 µs at the top
/// OPP. See the module docs for why optimism is the point.
///
/// # Panics
///
/// Never panics: the embedded model data is validated by unit tests.
pub fn quad_core_soc() -> Soc {
    let opps = OppTable::from_mhz_mv(&[
        (400.0, 800.0),
        (800.0, 900.0),
        (1200.0, 1000.0),
        (1600.0, 1100.0),
    ])
    .expect("valid OPP table");
    let latency = LatencyModel::from_anchors(
        &[
            (Freq::from_mhz(400.0), TimeSpan::from_micros(40.0)),
            (Freq::from_mhz(1600.0), TimeSpan::from_micros(10.0)),
        ],
        REFERENCE_MACS,
        4,
    )
    .expect("valid latency anchors");
    let power = AnchoredPowerModel::new(
        vec![
            PowerAnchor::from_mhz_mw(400.0, 200.0),
            PowerAnchor::from_mhz_mw(1600.0, 1500.0),
        ],
        Power::from_milliwatts(50.0),
        &opps,
    )
    .expect("valid power anchors");
    let quad =
        ClusterSpec::new("quad", CoreKind::BigCpu, 4, opps, latency, power).expect("valid cluster");
    Soc::new("serve-testbed", vec![quad], ThermalModel::mobile_default()).expect("valid soc")
}

/// Builds a real dynamic DNN from `cfg`, profiled by its own exact cost
/// model ([`DnnProfile::from_network`]) with the nominal
/// [`TESTBED_TOP1`] accuracies. Deterministic in `seed`: two calls with
/// the same seed produce bit-identical networks, which the co-tenant
/// independence properties rely on.
///
/// # Panics
///
/// Panics on an invalid `cfg` (a test-fixture bug, not a runtime
/// condition).
pub fn dnn_with(cfg: CnnConfig, seed: u64) -> DynamicDnn {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = build_group_cnn(cfg, &mut rng).expect("valid testbed arch");
    let profile = DnnProfile::from_network("testbed-dnn", &mut net, &TESTBED_TOP1[..cfg.groups])
        .expect("profile from network");
    DynamicDnn::new(net, profile).expect("profile matches network")
}

/// A miniature model (3×8×8 input, 4 groups, base width 8) for
/// high-request-count harnesses where per-inference cost must stay in
/// the microseconds.
pub fn tiny_dnn(seed: u64) -> DynamicDnn {
    dnn_with(
        CnnConfig {
            input: (3, 8, 8),
            classes: 4,
            groups: 4,
            base_width: 8,
        },
        seed,
    )
}

/// The default-config model (3×16×16, 4 groups, base width 32): wide
/// enough that width levels separate clearly in measured latency —
/// the closed-loop tests need the spread.
pub fn default_dnn(seed: u64) -> DynamicDnn {
    dnn_with(CnnConfig::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_soc_is_single_cluster_and_optimistic() {
        let soc = quad_core_soc();
        assert_eq!(soc.cluster_count(), 1);
        let id = soc.find_cluster("quad").unwrap();
        let cluster = soc.cluster(id).unwrap();
        assert_eq!(cluster.cores(), 4);
        // Analytic full-reference latency at the top OPP is 10 µs —
        // far below any deadline the serving tests use, so the first
        // allocation always believes full width fits.
        let lat = cluster
            .latency_model()
            .latency(
                Freq::from_mhz(1600.0),
                &eml_platform::presets::reference_workload(),
                4,
            )
            .unwrap();
        assert!((lat.as_secs() - 10e-6).abs() < 1e-9, "{lat}");
    }

    #[test]
    fn testbed_dnns_are_deterministic_in_seed() {
        let mut a = tiny_dnn(3);
        let mut b = tiny_dnn(3);
        let x = eml_nn::tensor::Tensor::full(&[1, 3, 8, 8], 0.25);
        let ya = a.network_mut().forward(&x, false).unwrap();
        let yb = b.network_mut().forward(&x, false).unwrap();
        assert_eq!(ya.data(), yb.data());
        assert_eq!(a.profile().level_count(), 4);
    }
}
