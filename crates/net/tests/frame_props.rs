//! Property tests for the frame codec: for *arbitrary* bytes the
//! decoder must be total — a typed `Frame`, a typed `FrameError`, and
//! nothing else. No panic, no over-read, no allocation driven by a
//! hostile length prefix.

use eml_net::frame::{self, FrameError, HEADER_LEN};
use proptest::prelude::*;

const CAP: usize = 4096;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode/decode round-trip over arbitrary payloads, including the
    /// zero-length and exactly-max-size boundaries (the size strategy
    /// is clamped so both endpoints occur many times across the run).
    #[test]
    fn round_trip_identity(tag in 0u32..256, size in 0usize..(CAP + 64), fill in 0u32..256) {
        let tag = tag as u8;
        let size = size.min(CAP); // dense mass at the exact cap
        let payload = vec![fill as u8; size];
        let buf = frame::encode(tag, &payload);
        prop_assert_eq!(buf.len(), HEADER_LEN + size);
        let (decoded, used) = frame::decode(&buf, CAP).expect("within cap");
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(decoded.tag, tag);
        prop_assert_eq!(decoded.payload, payload);
    }

    /// Every truncation of a valid frame decodes to `Truncated` with a
    /// consistent `need`, never a panic and never a partial frame.
    #[test]
    fn truncations_are_typed(size in 0usize..256, cut in 0usize..(256 + HEADER_LEN)) {
        let payload = vec![0xA5u8; size];
        let buf = frame::encode(7, &payload);
        let cut = cut.min(buf.len().saturating_sub(1));
        match frame::decode(&buf[..cut], CAP) {
            Err(FrameError::Truncated { have, need }) => {
                prop_assert_eq!(have, cut);
                let expect_need = if cut < HEADER_LEN { HEADER_LEN } else { buf.len() };
                prop_assert_eq!(need, expect_need);
                prop_assert!(need > have);
            }
            other => prop_assert!(false, "truncated input decoded as {:?}", other),
        }
    }

    /// A header declaring any payload above the cap is `Oversize` from
    /// the header alone — whatever bytes follow it.
    #[test]
    fn oversize_detected_before_payload(excess in 1usize..(1 << 20), junk in proptest::collection::vec(0u32..256, 0..32)) {
        let declared = CAP + excess;
        let mut buf = (declared as u32).to_le_bytes().to_vec();
        buf.push(3);
        buf.extend(junk.iter().map(|b| *b as u8));
        match frame::decode(&buf, CAP) {
            Err(FrameError::Oversize { declared: d, max }) => {
                prop_assert_eq!(d, declared);
                prop_assert_eq!(max, CAP);
            }
            other => prop_assert!(false, "oversize header decoded as {:?}", other),
        }
    }

    /// Arbitrary garbage never panics the decoder and never over-reads:
    /// a successful decode consumes exactly `HEADER_LEN + declared`
    /// bytes and reproduces the declared slice; errors consume nothing.
    #[test]
    fn garbage_is_total_and_never_over_reads(raw in proptest::collection::vec(0u32..256, 0..64)) {
        let raw: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        match frame::decode(&raw, CAP) {
            Ok((f, used)) => {
                prop_assert!(used <= raw.len(), "consumed {} of {}", used, raw.len());
                prop_assert_eq!(used, HEADER_LEN + f.payload.len());
                prop_assert_eq!(f.payload.as_slice(), &raw[HEADER_LEN..used]);
            }
            Err(FrameError::Truncated { have, need }) => {
                prop_assert_eq!(have, raw.len());
                prop_assert!(need > have);
            }
            Err(FrameError::Oversize { declared, max }) => {
                prop_assert!(declared > max);
                prop_assert_eq!(max, CAP);
            }
        }
    }

    /// Pipelined frames in one buffer decode one at a time, in order,
    /// consuming exactly their own bytes.
    #[test]
    fn pipelined_frames_survive(sizes in proptest::collection::vec(0usize..48, 1..6)) {
        let mut wire = Vec::new();
        for (i, s) in sizes.iter().enumerate() {
            wire.extend_from_slice(&frame::encode(i as u8, &vec![i as u8; *s]));
        }
        let mut off = 0usize;
        for (i, s) in sizes.iter().enumerate() {
            let (f, used) = frame::decode(&wire[off..], CAP).expect("complete frame");
            prop_assert_eq!(f.tag, i as u8);
            prop_assert_eq!(f.payload.len(), *s);
            off += used;
        }
        prop_assert_eq!(off, wire.len());
    }
}
