//! A small blocking client for the serving wire protocol.
//!
//! [`NetClient`] exists for integration tests, examples and tooling —
//! it speaks exactly the frame format of [`crate::frame`] and decodes
//! reply statuses into [`ClientError::Status`], so a test can assert
//! on the *typed* rejection a hostile request earned. It also exposes
//! [`NetClient::send_raw`] deliberately: hostile-client tests need to
//! put garbage, half-frames and oversize headers on the wire.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::frame::{self, Frame, FrameError};
use crate::status::WireStatus;

/// One completed remote inference, decoded from an `Ok` submit reply.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteCompletion {
    /// The server-side per-app sequence number.
    pub seq: u64,
    /// Predicted class index.
    pub pred: u32,
    /// The full logit vector.
    pub logits: Vec<f32>,
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// A socket error (includes read timeouts).
    Io(std::io::Error),
    /// The server closed the connection (EOF mid-reply or between
    /// frames; after a ban or an unrecoverable violation this is the
    /// expected end of the conversation).
    Closed,
    /// A reply frame failed to decode.
    Frame(FrameError),
    /// The server answered with a non-`Ok` status; the message is the
    /// server's human-readable explanation.
    Status {
        /// The typed status code.
        status: WireStatus,
        /// The server's explanation (UTF-8, lossy-decoded).
        message: String,
    },
    /// The server answered with a status code this build does not know
    /// (a newer server).
    UnknownStatus {
        /// The raw code byte.
        code: u8,
        /// The reply payload, lossy-decoded.
        message: String,
    },
    /// An `Ok` reply whose payload does not parse as promised.
    BadReply(String),
    /// The request could not be encoded: the app name does not fit the
    /// protocol's `u16` length prefix.
    AppNameTooLong {
        /// The offending name length in bytes.
        len: usize,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Closed => write!(f, "server closed the connection"),
            Self::Frame(e) => write!(f, "reply frame error: {e}"),
            Self::Status { status, message } => {
                write!(f, "server status {status:?}: {message}")
            }
            Self::UnknownStatus { code, message } => {
                write!(f, "unknown server status {code}: {message}")
            }
            Self::BadReply(why) => write!(f, "malformed Ok reply: {why}"),
            Self::AppNameTooLong { len } => {
                write!(
                    f,
                    "app name is {len} bytes; the wire prefix caps it at 65535"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Encodes a submit-request payload: `[u16 LE name length][name][f32…]`.
///
/// # Errors
///
/// [`ClientError::AppNameTooLong`] when the name overflows the `u16`
/// length prefix — a typed refusal client-side, instead of putting an
/// inconsistent frame on the wire.
pub fn encode_submit_payload(app: &str, sample: &[f32]) -> Result<Vec<u8>, ClientError> {
    let Ok(name_len) = u16::try_from(app.len()) else {
        return Err(ClientError::AppNameTooLong { len: app.len() });
    };
    let mut p = Vec::with_capacity(2 + app.len() + 4 * sample.len());
    p.extend_from_slice(&name_len.to_le_bytes());
    p.extend_from_slice(app.as_bytes());
    for v in sample {
        p.extend_from_slice(&v.to_le_bytes());
    }
    Ok(p)
}

/// A blocking protocol client. See the module docs.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    buf: Vec<u8>,
    max_payload: usize,
}

impl NetClient {
    /// Connects and arms a read timeout (a dead or shunning server
    /// surfaces as [`ClientError::Io`] instead of a hang).
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect<A: ToSocketAddrs>(addr: A, read_timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: Vec::new(),
            max_payload: frame::DEFAULT_MAX_PAYLOAD,
        })
    }

    /// Writes raw bytes to the wire — no framing, no validation. This
    /// is the hostile-client hatch: tests use it for garbage, stalled
    /// half-frames and forged oversize headers.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads the next reply frame and splits it into its typed status
    /// and payload.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on EOF, [`ClientError::Io`] on timeout,
    /// [`ClientError::UnknownStatus`] for codes this build lacks.
    pub fn read_status(&mut self) -> Result<(WireStatus, Vec<u8>), ClientError> {
        let f = self.read_frame()?;
        match WireStatus::from_code(f.tag) {
            Some(status) => Ok((status, f.payload)),
            None => Err(ClientError::UnknownStatus {
                code: f.tag,
                message: String::from_utf8_lossy(&f.payload).into_owned(),
            }),
        }
    }

    /// Binds this connection's admission identity. Bans attach to the
    /// identity, so a banned client stays banned across reconnects.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] with the typed refusal (e.g.
    /// [`WireStatus::Banned`]) if the server shuns the identity.
    pub fn hello(&mut self, id: &str) -> Result<(), ClientError> {
        self.send_raw(&frame::encode(crate::server::TAG_HELLO, id.as_bytes()))?;
        self.expect_ok().map(|_| ())
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] on any typed refusal.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send_raw(&frame::encode(crate::server::TAG_PING, &[]))?;
        self.expect_ok().map(|_| ())
    }

    /// Submits one inference request and blocks for its reply.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carries every typed server-side refusal
    /// — back-pressure (`QueueFull`), admission (`RateLimited`,
    /// `Banned`), serving failures — exactly as the wire reported it.
    pub fn submit(&mut self, app: &str, sample: &[f32]) -> Result<RemoteCompletion, ClientError> {
        let payload = encode_submit_payload(app, sample)?;
        self.send_raw(&frame::encode(crate::server::TAG_SUBMIT, &payload))?;
        let body = self.expect_ok()?;
        decode_completion(&body)
    }

    fn expect_ok(&mut self) -> Result<Vec<u8>, ClientError> {
        let (status, payload) = self.read_status()?;
        if status == WireStatus::Ok {
            Ok(payload)
        } else {
            Err(ClientError::Status {
                status,
                message: String::from_utf8_lossy(&payload).into_owned(),
            })
        }
    }

    fn read_frame(&mut self) -> Result<Frame, ClientError> {
        let mut chunk = [0u8; 4096];
        loop {
            match frame::decode(&self.buf, self.max_payload) {
                Ok((f, used)) => {
                    self.buf.drain(..used);
                    return Ok(f);
                }
                Err(FrameError::Truncated { .. }) => match self.stream.read(&mut chunk) {
                    Ok(0) => return Err(ClientError::Closed),
                    Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                    Err(e) => return Err(ClientError::Io(e)),
                },
                Err(e @ FrameError::Oversize { .. }) => return Err(ClientError::Frame(e)),
            }
        }
    }
}

fn decode_completion(body: &[u8]) -> Result<RemoteCompletion, ClientError> {
    if body.len() < 16 {
        return Err(ClientError::BadReply(format!(
            "completion header needs 16 bytes, got {}",
            body.len()
        )));
    }
    let truncated = || ClientError::BadReply("completion header truncated".into());
    let (seq_bytes, rest) = body.split_first_chunk::<8>().ok_or_else(truncated)?;
    let (pred_bytes, rest) = rest.split_first_chunk::<4>().ok_or_else(truncated)?;
    let (n_bytes, logit_bytes) = rest.split_first_chunk::<4>().ok_or_else(truncated)?;
    let seq = u64::from_le_bytes(*seq_bytes);
    let pred = u32::from_le_bytes(*pred_bytes);
    let n = u32::from_le_bytes(*n_bytes) as usize;
    if logit_bytes.len() != 4 * n {
        return Err(ClientError::BadReply(format!(
            "completion declares {n} logits but carries {} bytes",
            logit_bytes.len()
        )));
    }
    let logits = logit_bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(RemoteCompletion { seq, pred, logits })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_payload_and_completion_codecs_are_inverse_of_the_server() {
        let p = encode_submit_payload("cam", &[0.5, -1.0]).unwrap();
        assert_eq!(&p[..2], &3u16.to_le_bytes());
        assert_eq!(&p[2..5], b"cam");
        assert_eq!(p.len(), 2 + 3 + 8);

        // A name past the u16 prefix is a typed client-side refusal.
        assert!(matches!(
            encode_submit_payload(&"x".repeat(70_000), &[]),
            Err(ClientError::AppNameTooLong { len: 70_000 })
        ));

        // A hand-built completion body decodes faithfully.
        let mut body = Vec::new();
        body.extend_from_slice(&42u64.to_le_bytes());
        body.extend_from_slice(&2u32.to_le_bytes());
        body.extend_from_slice(&3u32.to_le_bytes());
        for l in [0.1f32, 0.2, 0.7] {
            body.extend_from_slice(&l.to_le_bytes());
        }
        let c = decode_completion(&body).unwrap();
        assert_eq!((c.seq, c.pred), (42, 2));
        assert_eq!(c.logits.len(), 3);

        // Truncated and inconsistent bodies fail typed.
        assert!(decode_completion(&body[..10]).is_err());
        body.pop();
        assert!(decode_completion(&body).is_err());
    }
}
