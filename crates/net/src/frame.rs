//! The length-prefixed frame codec.
//!
//! A frame on the wire is `[u32 LE payload length][u8 tag][payload]`.
//! The length counts the payload only; the fixed header is
//! [`HEADER_LEN`] bytes. Decoding enforces a hard maximum payload size
//! **before** any allocation happens — a hostile client declaring a
//! 4 GiB frame costs the server a 5-byte header read and a typed
//! [`FrameError::Oversize`], never a buffer.
//!
//! The codec is deliberately dumb: it knows nothing about tags or
//! payload semantics (that is [`crate::server`]'s job) and it never
//! consumes bytes beyond the one frame it decodes, so pipelined frames
//! in one buffer survive intact.

use std::fmt;

/// Bytes of the fixed frame header: a `u32` little-endian payload
/// length followed by one tag byte.
pub const HEADER_LEN: usize = 5;

/// Default hard cap on a frame's payload size (1 MiB). Large enough
/// for any sample the serving models take, small enough that a
/// flooding client cannot balloon server memory.
pub const DEFAULT_MAX_PAYLOAD: usize = 1 << 20;

/// One decoded frame: a tag byte and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol tag (see [`crate::server`] for the request vocabulary;
    /// in responses this byte carries the [`crate::WireStatus`] code).
    pub tag: u8,
    /// The payload bytes (may be empty).
    pub payload: Vec<u8>,
}

/// Typed decode failures. Neither variant is a panic and neither
/// over-reads: `Truncated` is the streaming "need more bytes" signal,
/// `Oversize` is a protocol violation detected from the header alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer does not yet hold a complete frame; `need` is the
    /// total byte count required (header, or header + declared
    /// payload), `have` what is present.
    Truncated {
        /// Bytes currently available.
        have: usize,
        /// Total bytes needed to decode the frame.
        need: usize,
    },
    /// The header declares a payload larger than the hard cap. Detected
    /// before any payload allocation.
    Oversize {
        /// The declared payload length.
        declared: usize,
        /// The configured cap it exceeded.
        max: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            Self::Oversize { declared, max } => {
                write!(f, "oversize frame: declares {declared} bytes, cap is {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame.
///
/// # Panics
///
/// Panics if `payload.len()` exceeds `u32::MAX` (not reachable from
/// the serving protocol, whose payloads are capped far below).
#[must_use]
pub fn encode(tag: u8, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("payload fits in a u32 length prefix");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.push(tag);
    out.extend_from_slice(payload);
    out
}

/// Decodes the first frame in `buf`, returning it and the exact number
/// of bytes consumed. Bytes past the first frame are never touched.
///
/// # Errors
///
/// [`FrameError::Truncated`] when `buf` does not yet hold a complete
/// frame (streaming callers read more and retry);
/// [`FrameError::Oversize`] when the header declares a payload above
/// `max_payload` — returned before any payload-sized allocation.
pub fn decode(buf: &[u8], max_payload: usize) -> Result<(Frame, usize), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated {
            have: buf.len(),
            need: HEADER_LEN,
        });
    }
    let declared = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if declared > max_payload {
        return Err(FrameError::Oversize {
            declared,
            max: max_payload,
        });
    }
    let total = HEADER_LEN + declared;
    if buf.len() < total {
        return Err(FrameError::Truncated {
            have: buf.len(),
            need: total,
        });
    }
    Ok((
        Frame {
            tag: buf[4],
            payload: buf[HEADER_LEN..total].to_vec(),
        },
        total,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_zero_length_and_max_size() {
        for payload in [vec![], vec![7u8; 16], vec![0xAB; 64]] {
            let buf = encode(3, &payload);
            let (frame, used) = decode(&buf, 64).expect("within cap");
            assert_eq!(used, buf.len());
            assert_eq!(frame.tag, 3);
            assert_eq!(frame.payload, payload);
        }
    }

    #[test]
    fn oversize_is_detected_from_the_header_alone() {
        // Header declares 100 bytes against a cap of 99 — no payload
        // bytes are even present, and the error is Oversize (detected
        // before allocation), not Truncated.
        let mut buf = 100u32.to_le_bytes().to_vec();
        buf.push(1);
        assert_eq!(
            decode(&buf, 99),
            Err(FrameError::Oversize {
                declared: 100,
                max: 99
            })
        );
        // At exactly the cap it is a (truncated, then complete) frame.
        assert_eq!(
            decode(&buf, 100),
            Err(FrameError::Truncated { have: 5, need: 105 })
        );
        buf.extend_from_slice(&[0u8; 100]);
        let (frame, used) = decode(&buf, 100).unwrap();
        assert_eq!((frame.payload.len(), used), (100, 105));
    }

    #[test]
    fn trailing_bytes_are_not_consumed() {
        let mut buf = encode(9, b"abc");
        let junk = [0xFFu8, 0x00, 0x55];
        buf.extend_from_slice(&junk);
        let (frame, used) = decode(&buf, 1024).unwrap();
        assert_eq!(frame.payload, b"abc");
        assert_eq!(&buf[used..], &junk);
    }
}
