//! Per-client admission control: token-bucket rate limiting plus a
//! cumulative misbehaviour score with exponential-backoff bans.
//!
//! The shape is the peer-scoring/blacklist pattern from p2p node
//! runtimes: every protocol violation adds a weighted increment to the
//! client's score; crossing [`AdmissionConfig::ban_threshold`] bans the
//! client for a window that doubles per successive ban (capped at
//! [`AdmissionConfig::ban_max`]); the score **decays** over time, so a
//! once-noisy client that behaves rehabilitates instead of ratcheting
//! toward an inevitable ban.
//!
//! The registry is *bounded* ([`AdmissionConfig::max_clients`]): at
//! capacity the least-recently-seen non-banned record is evicted to
//! admit a new client, and if every record is banned the newcomer is
//! turned away — an identity-churn flood cannot balloon server memory
//! or flush standing bans.
//!
//! All methods take `now` explicitly, so the policy is a pure state
//! machine the unit tests drive with synthetic clocks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use eml_core::sync::{rank, RankedGuard, RankedMutex};

/// A scored protocol violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// Frame header declared a payload above the cap.
    Oversize,
    /// Request tag outside the protocol vocabulary.
    UnknownTag,
    /// Payload failed to parse as its tag demands.
    Malformed,
    /// Request arrived with the token bucket empty.
    Flood,
    /// A started frame stalled past the read deadline (slowloris).
    Stall,
}

/// Admission-control tuning.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Token-bucket burst capacity (requests).
    pub bucket_capacity: f64,
    /// Token-bucket sustained refill rate (requests per second).
    pub refill_per_sec: f64,
    /// Misbehaviour score at which a ban is imposed.
    pub ban_threshold: f64,
    /// Score decay per second of good behaviour.
    pub score_decay_per_sec: f64,
    /// First ban window; doubles per successive ban of the same client.
    pub ban_base: Duration,
    /// Upper bound of the exponential ban backoff.
    pub ban_max: Duration,
    /// Hard cap on tracked client records (bounded registry).
    pub max_clients: usize,
    /// Score weight of [`Violation::Oversize`].
    pub weight_oversize: f64,
    /// Score weight of [`Violation::UnknownTag`].
    pub weight_unknown_tag: f64,
    /// Score weight of [`Violation::Malformed`].
    pub weight_malformed: f64,
    /// Score weight of [`Violation::Flood`].
    pub weight_flood: f64,
    /// Score weight of [`Violation::Stall`].
    pub weight_stall: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            bucket_capacity: 32.0,
            refill_per_sec: 16.0,
            ban_threshold: 8.0,
            score_decay_per_sec: 0.5,
            ban_base: Duration::from_millis(250),
            ban_max: Duration::from_secs(60),
            max_clients: 1024,
            weight_oversize: 3.0,
            weight_unknown_tag: 2.0,
            weight_malformed: 2.0,
            weight_flood: 1.0,
            weight_stall: 3.0,
        }
    }
}

impl AdmissionConfig {
    fn weight(&self, v: Violation) -> f64 {
        match v {
            Violation::Oversize => self.weight_oversize,
            Violation::UnknownTag => self.weight_unknown_tag,
            Violation::Malformed => self.weight_malformed,
            Violation::Flood => self.weight_flood,
            Violation::Stall => self.weight_stall,
        }
    }
}

/// The outcome of an admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Request admitted (a token was taken).
    Admitted,
    /// Token bucket empty: the client is over its sustained rate.
    RateLimited,
    /// The client is banned until the given instant.
    Banned {
        /// When the ban lifts.
        until: Instant,
    },
    /// The registry is full of banned clients; no record could be made
    /// for this newcomer.
    OverCapacity,
}

struct ClientRecord {
    tokens: f64,
    score: f64,
    last_refill: Instant,
    last_decay: Instant,
    last_seen: Instant,
    banned_until: Option<Instant>,
    /// Successive bans: the exponent of the ban-backoff window.
    ban_streak: u32,
}

impl ClientRecord {
    fn new(cfg: &AdmissionConfig, now: Instant) -> Self {
        Self {
            tokens: cfg.bucket_capacity,
            score: 0.0,
            last_refill: now,
            last_decay: now,
            last_seen: now,
            banned_until: None,
            ban_streak: 0,
        }
    }

    /// Lazily applies refill, decay and ban expiry up to `now`.
    fn advance(&mut self, cfg: &AdmissionConfig, now: Instant) {
        let dt = now
            .saturating_duration_since(self.last_refill)
            .as_secs_f64();
        self.tokens = (self.tokens + dt * cfg.refill_per_sec).min(cfg.bucket_capacity);
        self.last_refill = now;
        let dt = now.saturating_duration_since(self.last_decay).as_secs_f64();
        self.score = (self.score - dt * cfg.score_decay_per_sec).max(0.0);
        self.last_decay = now;
        self.last_seen = now;
        if self.banned_until.is_some_and(|until| now >= until) {
            // Rehabilitation: the ban lifts, but the streak is kept so
            // a repeat offender's next window is longer.
            self.banned_until = None;
        }
    }
}

/// The per-client admission registry. Shared by every connection
/// thread; all state behind one mutex (critical sections are a few
/// float operations — contention is not a concern at the request rates
/// a threaded server sustains).
pub struct Admission {
    cfg: AdmissionConfig,
    clients: RankedMutex<HashMap<String, ClientRecord>>,
    bans: AtomicU64,
    violations: AtomicU64,
    evictions: AtomicU64,
}

impl Admission {
    /// Creates a registry with the given tuning.
    #[must_use]
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            clients: RankedMutex::new(rank::NET_ADMISSION, "net-admission-clients", HashMap::new()),
            bans: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The tuning in force.
    #[must_use]
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Total bans imposed since construction.
    #[must_use]
    pub fn bans(&self) -> u64 {
        self.bans.load(Ordering::Relaxed)
    }

    /// Total violations recorded since construction.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Records evicted from the bounded registry since construction.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Currently tracked client records.
    #[must_use]
    pub fn tracked_clients(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> RankedGuard<'_, HashMap<String, ClientRecord>> {
        self.clients.lock()
    }

    /// Ensures a record exists for `key` (evicting the least-recently
    /// seen non-banned record if the registry is full) and returns it.
    /// `None` when no room could be made (every record is banned).
    fn ensure_record<'a>(
        clients: &'a mut HashMap<String, ClientRecord>,
        cfg: &AdmissionConfig,
        evictions: &AtomicU64,
        key: &str,
        now: Instant,
    ) -> Option<&'a mut ClientRecord> {
        if !clients.contains_key(key) {
            if clients.len() >= cfg.max_clients.max(1) {
                let victim = clients
                    .iter()
                    .filter(|(_, r)| r.banned_until.is_none_or(|until| now >= until))
                    .min_by_key(|(_, r)| r.last_seen)
                    .map(|(k, _)| k.clone());
                match victim {
                    Some(k) => {
                        clients.remove(&k);
                        evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    // Registry full of standing bans: an
                    // identity-churning client cannot flush them by
                    // flooding new keys.
                    None => return None,
                }
            }
            clients.insert(key.to_string(), ClientRecord::new(cfg, now));
        }
        clients.get_mut(key)
    }

    /// Ban check only — the connection-accept and re-key (Hello) path.
    /// Takes no token.
    pub fn connection_gate(&self, key: &str, now: Instant) -> Gate {
        let mut clients = self.lock();
        let Some(rec) = Self::ensure_record(&mut clients, &self.cfg, &self.evictions, key, now)
        else {
            return Gate::OverCapacity;
        };
        rec.advance(&self.cfg, now);
        match rec.banned_until {
            Some(until) => Gate::Banned { until },
            None => Gate::Admitted,
        }
    }

    /// Full per-request gate: ban check, then one token from the
    /// bucket. [`Gate::RateLimited`] takes nothing and records nothing
    /// — the caller decides whether the over-rate request is also a
    /// scored [`Violation::Flood`].
    pub fn request_gate(&self, key: &str, now: Instant) -> Gate {
        let mut clients = self.lock();
        let Some(rec) = Self::ensure_record(&mut clients, &self.cfg, &self.evictions, key, now)
        else {
            return Gate::OverCapacity;
        };
        rec.advance(&self.cfg, now);
        if let Some(until) = rec.banned_until {
            return Gate::Banned { until };
        }
        if rec.tokens >= 1.0 {
            rec.tokens -= 1.0;
            Gate::Admitted
        } else {
            Gate::RateLimited
        }
    }

    /// Records a scored violation. Returns the ban window imposed if
    /// this violation pushed the client's score over the threshold
    /// (exponential in the client's ban streak), `None` otherwise.
    pub fn record_violation(&self, key: &str, v: Violation, now: Instant) -> Option<Duration> {
        self.violations.fetch_add(1, Ordering::Relaxed);
        let mut clients = self.lock();
        let rec = Self::ensure_record(&mut clients, &self.cfg, &self.evictions, key, now)?;
        rec.advance(&self.cfg, now);
        rec.score += self.cfg.weight(v);
        if rec.score < self.cfg.ban_threshold || rec.banned_until.is_some() {
            return None;
        }
        let window = self
            .cfg
            .ban_base
            .saturating_mul(2u32.saturating_pow(rec.ban_streak.min(16)))
            .min(self.cfg.ban_max.max(self.cfg.ban_base));
        rec.banned_until = Some(now + window);
        rec.ban_streak = rec.ban_streak.saturating_add(1);
        // A ban settles the debt: rehabilitation starts from zero.
        rec.score = 0.0;
        self.bans.fetch_add(1, Ordering::Relaxed);
        Some(window)
    }

    /// Whether `key` is banned at `now` (no state created for unknown
    /// keys).
    #[must_use]
    pub fn is_banned(&self, key: &str, now: Instant) -> bool {
        self.lock()
            .get(key)
            .and_then(|r| r.banned_until)
            .is_some_and(|until| now < until)
    }
}

impl std::fmt::Debug for Admission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Admission({} tracked, {} bans, {} violations)",
            self.tracked_clients(),
            self.bans(),
            self.violations()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            bucket_capacity: 2.0,
            refill_per_sec: 1.0,
            ban_threshold: 4.0,
            score_decay_per_sec: 1.0,
            ban_base: Duration::from_secs(1),
            ban_max: Duration::from_secs(4),
            max_clients: 2,
            weight_oversize: 3.0,
            weight_unknown_tag: 2.0,
            weight_malformed: 2.0,
            weight_flood: 1.0,
            weight_stall: 3.0,
        }
    }

    #[test]
    fn token_bucket_limits_burst_and_refills() {
        let adm = Admission::new(cfg());
        let t0 = Instant::now();
        assert_eq!(adm.request_gate("c", t0), Gate::Admitted);
        assert_eq!(adm.request_gate("c", t0), Gate::Admitted);
        assert_eq!(adm.request_gate("c", t0), Gate::RateLimited);
        // One second refills one token.
        let t1 = t0 + Duration::from_secs(1);
        assert_eq!(adm.request_gate("c", t1), Gate::Admitted);
        assert_eq!(adm.request_gate("c", t1), Gate::RateLimited);
        // Refill caps at the burst capacity.
        let t2 = t1 + Duration::from_secs(60);
        assert_eq!(adm.request_gate("c", t2), Gate::Admitted);
        assert_eq!(adm.request_gate("c", t2), Gate::Admitted);
        assert_eq!(adm.request_gate("c", t2), Gate::RateLimited);
    }

    #[test]
    fn score_crossing_threshold_bans_with_exponential_backoff() {
        let adm = Admission::new(cfg());
        let t0 = Instant::now();
        // 3 (oversize) < 4: no ban yet.
        assert_eq!(adm.record_violation("c", Violation::Oversize, t0), None);
        // +2 (malformed) = 5 ≥ 4: first ban, base window.
        assert_eq!(
            adm.record_violation("c", Violation::Malformed, t0),
            Some(Duration::from_secs(1))
        );
        assert!(adm.is_banned("c", t0));
        assert!(matches!(
            adm.request_gate("c", t0),
            Gate::Banned { until } if until == t0 + Duration::from_secs(1)
        ));
        assert_eq!(adm.bans(), 1);
        // The ban lifts after its window: rehabilitated, score reset.
        let t1 = t0 + Duration::from_millis(1100);
        assert!(!adm.is_banned("c", t1));
        assert_eq!(adm.connection_gate("c", t1), Gate::Admitted);
        // Re-offending bans again with a doubled window…
        assert_eq!(adm.record_violation("c", Violation::Stall, t1), None);
        assert_eq!(
            adm.record_violation("c", Violation::UnknownTag, t1),
            Some(Duration::from_secs(2))
        );
        // …and the backoff caps at ban_max.
        let t2 = t1 + Duration::from_secs(3);
        assert_eq!(adm.record_violation("c", Violation::Stall, t2), None);
        assert_eq!(
            adm.record_violation("c", Violation::Oversize, t2),
            Some(Duration::from_secs(4))
        );
        let t3 = t2 + Duration::from_secs(5);
        assert_eq!(adm.record_violation("c", Violation::Stall, t3), None);
        assert_eq!(
            adm.record_violation("c", Violation::Oversize, t3),
            Some(Duration::from_secs(4)),
            "window capped at ban_max"
        );
    }

    #[test]
    fn score_decays_so_a_noisy_client_rehabilitates() {
        let adm = Admission::new(cfg());
        let t0 = Instant::now();
        assert_eq!(adm.record_violation("c", Violation::Oversize, t0), None); // 3
                                                                              // After 2 s the score has decayed to 1; +2 stays under 4.
        let t1 = t0 + Duration::from_secs(2);
        assert_eq!(adm.record_violation("c", Violation::Malformed, t1), None);
        assert!(!adm.is_banned("c", t1));
        assert_eq!(adm.violations(), 2);
    }

    #[test]
    fn bounded_registry_evicts_idle_but_never_banned_records() {
        let adm = Admission::new(cfg());
        let t0 = Instant::now();
        // Ban "a"; then fill the 2-slot registry with "b".
        adm.record_violation("a", Violation::Oversize, t0);
        adm.record_violation("a", Violation::Malformed, t0); // banned
        assert_eq!(adm.connection_gate("b", t0), Gate::Admitted);
        assert_eq!(adm.tracked_clients(), 2);
        // A newcomer evicts idle "b", not banned "a".
        let t1 = t0 + Duration::from_millis(10);
        assert_eq!(adm.connection_gate("c", t1), Gate::Admitted);
        assert_eq!(adm.tracked_clients(), 2);
        assert!(adm.is_banned("a", t1), "the ban survived the eviction");
        assert_eq!(adm.evictions(), 1);
        // Ban "c" too: registry now all-banned; a newcomer is refused,
        // not granted a fresh record.
        adm.record_violation("c", Violation::Stall, t1);
        adm.record_violation("c", Violation::Malformed, t1); // banned
        assert_eq!(adm.connection_gate("d", t1), Gate::OverCapacity);
    }
}
