//! Stable wire status codes.
//!
//! A response frame's tag byte carries one of these codes. The space is
//! partitioned:
//!
//! - `0` — success.
//! - `1..=31` — serving-layer failures, defined by
//!   [`ServeError::wire_code`] in `eml-serve` (an exhaustive match
//!   there guarantees every present and future variant has a code).
//! - `32..` — protocol/admission-level conditions this crate owns:
//!   frame violations, rate limiting, bans, shutdown.
//!
//! Codes are stable once shipped: never renumbered, never reused.

use eml_serve::ServeError;

/// A wire status code. See the module docs for the code-space layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum WireStatus {
    /// The request succeeded; the payload carries the result.
    Ok = 0,
    /// [`ServeError::QueueFull`]: the app's bounded queue rejected the
    /// request — back-pressure, try later.
    QueueFull = 1,
    /// [`ServeError::UnknownApp`].
    UnknownApp = 2,
    /// [`ServeError::DuplicateApp`].
    DuplicateApp = 3,
    /// [`ServeError::NotAdmitted`]: the current allocation left the
    /// app unplaced.
    NotAdmitted = 4,
    /// [`ServeError::AppStopped`]: the executor is draining or shut
    /// down; the request was refused typed, not dropped.
    AppStopped = 5,
    /// [`ServeError::ShapeMismatch`].
    ShapeMismatch = 6,
    /// [`ServeError::DeadlineExpired`]: shed in the queue past its
    /// deadline.
    DeadlineExpired = 7,
    /// [`ServeError::WaitTimeout`]: the server's bounded wait on the
    /// ticket elapsed; the request may still complete server-side.
    WaitTimeout = 8,
    /// [`ServeError::Inference`]: the forward pass failed.
    Inference = 9,
    /// [`ServeError::Rtm`]: an underlying allocation/knob error.
    Rtm = 10,
    /// [`ServeError::SpawnFailed`]: the server could not spawn a
    /// serving thread for the app.
    SpawnFailed = 11,
    /// [`ServeError::AppDeregistered`]: the app was deregistered from
    /// the executor; the name may come back, but this request was
    /// refused typed.
    AppDeregistered = 12,
    /// [`ServeError::OverCapacity`]: the executor's bounded app
    /// registry is full; the registration (not a request) was refused.
    OverCapacity = 13,
    /// The frame header declared a payload above the server's cap.
    Oversize = 32,
    /// The frame's tag byte is not in the request vocabulary.
    UnknownTag = 33,
    /// The frame's payload does not parse as its tag demands.
    Malformed = 34,
    /// The client's token bucket is empty — over its sustained rate.
    RateLimited = 35,
    /// The client's misbehaviour score crossed the ban threshold; the
    /// payload names the remaining ban window.
    Banned = 36,
    /// A started frame was not completed within the read deadline
    /// (slowloris); the connection is closed after this status.
    Stalled = 37,
    /// The server is shutting down; no further requests are accepted.
    ShuttingDown = 38,
}

impl WireStatus {
    /// The on-wire code byte.
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a status byte, `None` for codes this build does not
    /// know (a newer server; callers should treat unknown codes as a
    /// generic failure, not a protocol error).
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Self::Ok,
            1 => Self::QueueFull,
            2 => Self::UnknownApp,
            3 => Self::DuplicateApp,
            4 => Self::NotAdmitted,
            5 => Self::AppStopped,
            6 => Self::ShapeMismatch,
            7 => Self::DeadlineExpired,
            8 => Self::WaitTimeout,
            9 => Self::Inference,
            10 => Self::Rtm,
            11 => Self::SpawnFailed,
            12 => Self::AppDeregistered,
            13 => Self::OverCapacity,
            32 => Self::Oversize,
            33 => Self::UnknownTag,
            34 => Self::Malformed,
            35 => Self::RateLimited,
            36 => Self::Banned,
            37 => Self::Stalled,
            38 => Self::ShuttingDown,
            _ => return None,
        })
    }

    /// The status a [`ServeError`] maps to on the wire.
    ///
    /// Delegates to [`ServeError::wire_code`] — the exhaustive match in
    /// `eml-serve` — so this crate cannot drift from the error type it
    /// reports. An unmapped code (impossible while the two crates ship
    /// together) degrades to [`WireStatus::Rtm`] rather than a panic:
    /// a half-upgraded peer must not take the server down.
    #[must_use]
    pub fn from_serve_error(e: &ServeError) -> Self {
        Self::from_code(e.wire_code()).unwrap_or(Self::Rtm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_match_serve_errors() {
        let all = [
            WireStatus::Ok,
            WireStatus::QueueFull,
            WireStatus::UnknownApp,
            WireStatus::DuplicateApp,
            WireStatus::NotAdmitted,
            WireStatus::AppStopped,
            WireStatus::ShapeMismatch,
            WireStatus::DeadlineExpired,
            WireStatus::WaitTimeout,
            WireStatus::Inference,
            WireStatus::Rtm,
            WireStatus::SpawnFailed,
            WireStatus::AppDeregistered,
            WireStatus::OverCapacity,
            WireStatus::Oversize,
            WireStatus::UnknownTag,
            WireStatus::Malformed,
            WireStatus::RateLimited,
            WireStatus::Banned,
            WireStatus::Stalled,
            WireStatus::ShuttingDown,
        ];
        for s in all {
            assert_eq!(WireStatus::from_code(s.code()), Some(s));
        }
        assert_eq!(WireStatus::from_code(200), None);

        // The serve-error bridge agrees with the exhaustive map in
        // eml-serve for a representative of every variant.
        let cases = [
            (
                ServeError::QueueFull {
                    app: "a".into(),
                    capacity: 1,
                },
                WireStatus::QueueFull,
            ),
            (
                ServeError::UnknownApp { app: "a".into() },
                WireStatus::UnknownApp,
            ),
            (
                ServeError::AppStopped { app: "a".into() },
                WireStatus::AppStopped,
            ),
            (
                ServeError::AppDeregistered { app: "a".into() },
                WireStatus::AppDeregistered,
            ),
            (
                ServeError::OverCapacity {
                    app: "a".into(),
                    capacity: 256,
                },
                WireStatus::OverCapacity,
            ),
            (
                ServeError::DeadlineExpired {
                    app: "a".into(),
                    seq: 3,
                },
                WireStatus::DeadlineExpired,
            ),
            (
                ServeError::Inference {
                    app: "a".into(),
                    reason: "x".into(),
                },
                WireStatus::Inference,
            ),
        ];
        for (e, want) in cases {
            assert_eq!(WireStatus::from_serve_error(&e), want);
            assert_eq!(WireStatus::from_serve_error(&e).code(), e.wire_code());
        }
    }
}
