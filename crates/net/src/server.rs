//! The threaded TCP serving front end.
//!
//! [`NetServer`] owns a [`eml_serve::Executor`] and exposes it over the
//! length-prefixed wire protocol of [`crate::frame`]: one accept loop,
//! one thread per connection, every inbound request gated by the
//! [`crate::Admission`] registry before it can touch the executor.
//!
//! ## Request vocabulary
//!
//! | Tag | Request | Payload |
//! |-----|---------|---------|
//! | [`TAG_HELLO`] | bind a client identity | UTF-8 id, 1–64 bytes |
//! | [`TAG_PING`] | liveness probe | empty |
//! | [`TAG_SUBMIT`] | one inference request | `u16 LE` app-name length, app name, little-endian `f32` sample |
//!
//! Responses reuse the frame format with the tag byte carrying a
//! [`WireStatus`] code; an `Ok` submit response's payload is
//! `[u64 seq][u32 pred][u32 n][n × f32 logits]`, all little-endian,
//! and every error status carries a human-readable UTF-8 message.
//!
//! ## Connection lifecycle and supervision
//!
//! Each connection thread runs its handler inside
//! `catch_unwind` — a panicking handler (a bug, not a protocol event)
//! is counted in [`NetStatsSnapshot::conn_panics`] and closes only
//! that connection, mirroring the serve executor's watchdog stance
//! that one tenant's failure must never be fatal to the process.
//! Finished handles are reaped on every accept, so the handle list
//! stays bounded.
//!
//! Reads are ticked ([`NetConfig::read_tick`]) so a connection thread
//! is never parked forever: a started frame that does not complete
//! within [`NetConfig::frame_deadline`] is a scored slowloris
//! violation ([`WireStatus::Stalled`]), and a silent connection is
//! closed after [`NetConfig::idle_timeout`].
//!
//! ## Shutdown
//!
//! [`NetServer::shutdown`] stops the accept loop, joins every
//! connection thread (each finishes its in-flight request — tickets
//! resolve because the executor is still alive), then drains the
//! executor ([`eml_serve::Executor::drain`]); requests arriving during
//! the drain get the typed `AppStopped` semantics of the serving
//! layer, mapped to [`WireStatus::AppStopped`] on the wire. Nothing
//! completes silently.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use eml_core::sync::{rank, RankedGuard, RankedMutex};
use eml_serve::{Executor, ServeError};

use crate::admission::{Admission, AdmissionConfig, Gate, Violation};
use crate::frame::{self, FrameError};
use crate::status::WireStatus;

/// Request tag: bind a client identity for admission scoring.
pub const TAG_HELLO: u8 = 1;
/// Request tag: liveness probe.
pub const TAG_PING: u8 = 2;
/// Request tag: one inference request.
pub const TAG_SUBMIT: u8 = 3;

/// Front-end configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Hard cap on a frame's payload, enforced before allocation.
    pub max_payload: usize,
    /// Granularity of the ticked socket reads (the poll interval at
    /// which stop/stall/idle conditions are noticed).
    pub read_tick: Duration,
    /// A frame whose first byte has arrived must complete within this
    /// wall-clock budget, or the client is scored for a slowloris
    /// stall and disconnected.
    pub frame_deadline: Duration,
    /// Connections with no traffic at a frame boundary for this long
    /// are closed (quietly — idling is not a violation).
    pub idle_timeout: Duration,
    /// Upper bound on the server-side wait for one request's
    /// completion ticket; expiry maps to [`WireStatus::WaitTimeout`].
    pub reply_wait: Duration,
    /// Socket write timeout (a client that stops reading its replies
    /// cannot pin a connection thread).
    pub write_timeout: Duration,
    /// Maximum concurrently served connections; excess accepts are
    /// turned away with [`WireStatus::RateLimited`].
    pub max_connections: usize,
    /// Per-client admission tuning.
    pub admission: AdmissionConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_payload: frame::DEFAULT_MAX_PAYLOAD,
            read_tick: Duration::from_millis(20),
            frame_deadline: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            reply_wait: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
            max_connections: 256,
            admission: AdmissionConfig::default(),
        }
    }
}

/// Front-end counters (all monotonic except `active`).
#[derive(Default)]
struct NetStats {
    accepted: AtomicU64,
    active: AtomicU64,
    frames: AtomicU64,
    exec_submitted: AtomicU64,
    exec_rejected: AtomicU64,
    exec_refused: AtomicU64,
    completions: AtomicU64,
    ticket_errors: AtomicU64,
    rate_limited: AtomicU64,
    banned_replies: AtomicU64,
    over_capacity: AtomicU64,
    conn_panics: AtomicU64,
    shutdown_replies: AtomicU64,
}

/// A consistent-enough snapshot of the front end's counters (each
/// field is individually atomic; the snapshot is taken field by
/// field).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections currently being served.
    pub active: u64,
    /// Complete frames decoded (all tags, before any gating).
    pub frames: u64,
    /// `Executor::submit` calls that were admitted (returned a ticket).
    pub exec_submitted: u64,
    /// Submits the executor rejected with back-pressure
    /// (`QueueFull`/`NotAdmitted`) — these increment the executor's
    /// `rejected` counter, so they belong on the left side of the
    /// accounting invariant.
    pub exec_rejected: u64,
    /// Submits refused before queueing for other typed reasons
    /// (`UnknownApp`, `ShapeMismatch`, `AppStopped`, …) — the executor
    /// never saw these as queue entries.
    pub exec_refused: u64,
    /// Tickets that resolved to a completion.
    pub completions: u64,
    /// Tickets that resolved to a typed serving error (shed, inference
    /// failure, wait timeout, stop).
    pub ticket_errors: u64,
    /// Requests turned away by the token bucket.
    pub rate_limited: u64,
    /// Replies sent to banned clients.
    pub banned_replies: u64,
    /// Connections or registrations turned away because a capacity
    /// bound (connection cap, admission registry) was reached.
    pub over_capacity: u64,
    /// Connection-handler panics contained and counted (never fatal).
    pub conn_panics: u64,
    /// Frames answered with [`WireStatus::ShuttingDown`].
    pub shutdown_replies: u64,
}

impl NetStats {
    fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            exec_submitted: self.exec_submitted.load(Ordering::Relaxed),
            exec_rejected: self.exec_rejected.load(Ordering::Relaxed),
            exec_refused: self.exec_refused.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            ticket_errors: self.ticket_errors.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            banned_replies: self.banned_replies.load(Ordering::Relaxed),
            over_capacity: self.over_capacity.load(Ordering::Relaxed),
            conn_panics: self.conn_panics.load(Ordering::Relaxed),
            shutdown_replies: self.shutdown_replies.load(Ordering::Relaxed),
        }
    }
}

/// Everything the accept loop and every connection thread share.
struct Shared {
    cfg: NetConfig,
    executor: Arc<Executor>,
    admission: Admission,
    stats: NetStats,
    stop: AtomicBool,
}

/// The networked serving front end. See the module docs.
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<RankedMutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NetServer({})", self.local_addr)
    }
}

impl NetServer {
    /// Binds the listener and starts the accept loop over `executor`.
    /// Applications must be registered on the executor before it is
    /// handed over; the server takes ownership (shared — see
    /// [`NetServer::executor`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, or the accept thread failing to
    /// spawn.
    pub fn bind(cfg: NetConfig, executor: Executor) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let admission = Admission::new(cfg.admission.clone());
        let shared = Arc::new(Shared {
            cfg,
            executor: Arc::new(executor),
            admission,
            stats: NetStats::default(),
            stop: AtomicBool::new(false),
        });
        let conns: Arc<RankedMutex<Vec<JoinHandle<()>>>> = Arc::new(RankedMutex::new(
            rank::NET_CONNS,
            "net-conn-handles",
            Vec::new(),
        ));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("eml-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &conns))?
        };
        Ok(Self {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The executor behind the front end (for stats, allocation
    /// actuation and the control loop).
    #[must_use]
    pub fn executor(&self) -> &Arc<Executor> {
        &self.shared.executor
    }

    /// The admission registry (scores, bans, counters).
    #[must_use]
    pub fn admission(&self) -> &Admission {
        &self.shared.admission
    }

    /// A snapshot of the front-end counters.
    #[must_use]
    pub fn stats(&self) -> NetStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Graceful shutdown: stop accepting, join every connection thread
    /// (each finishes its in-flight request), then drain the executor
    /// so every queued request completes or fails typed. Idempotent;
    /// also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway self-connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conns.lock());
        for h in handles {
            let _ = h.join();
        }
        // PR 6 semantics: in-flight work completes or fails typed
        // before the executor goes away — never silently.
        self.shared.executor.drain();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn lock_conns(conns: &RankedMutex<Vec<JoinHandle<()>>>) -> RankedGuard<'_, Vec<JoinHandle<()>>> {
    conns.lock()
}

/// Joins finished connection threads (bounding the handle list). Every
/// handler runs inside `catch_unwind`, so joins here never carry a
/// panic payload; panic counting happens at the catch site.
fn reap_finished(conns: &RankedMutex<Vec<JoinHandle<()>>>) {
    let mut held = lock_conns(conns);
    let mut live = Vec::with_capacity(held.len());
    for h in held.drain(..) {
        if h.is_finished() {
            let _ = h.join();
        } else {
            live.push(h);
        }
    }
    *held = live;
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<RankedMutex<Vec<JoinHandle<()>>>>,
) {
    let mut conn_id: u64 = 0;
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            // The shutdown wake-up (or a client racing it): refuse typed.
            let _ = send_status(&stream, WireStatus::ShuttingDown, b"server shutting down");
            return;
        }
        reap_finished(conns);
        let active = shared.stats.active.load(Ordering::Relaxed);
        if active as usize >= shared.cfg.max_connections {
            shared.stats.over_capacity.fetch_add(1, Ordering::Relaxed);
            let _ = send_status(
                &stream,
                WireStatus::RateLimited,
                b"connection limit reached",
            );
            continue;
        }
        shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
        shared.stats.active.fetch_add(1, Ordering::Relaxed);
        conn_id += 1;
        let shared2 = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("eml-net-conn-{conn_id}"))
            .spawn(move || {
                // The watchdog stance from the serve executor, applied
                // to connections: a panicking handler is contained,
                // counted and reaped — one hostile or unlucky
                // connection is never fatal to the front end.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(&shared2, &stream, peer);
                }));
                if outcome.is_err() {
                    shared2.stats.conn_panics.fetch_add(1, Ordering::Relaxed);
                }
                shared2.stats.active.fetch_sub(1, Ordering::Relaxed);
                let _ = stream.shutdown(std::net::Shutdown::Both);
            });
        match handle {
            Ok(handle) => lock_conns(conns).push(handle),
            Err(_) => {
                // The OS refused the thread (exhaustion under an accept
                // flood): shed this connection — the stream was moved
                // into the unspawned closure and closes with it — and
                // keep the accept loop alive for when threads free up.
                shared.stats.active.fetch_sub(1, Ordering::Relaxed);
                shared.stats.over_capacity.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn send_status(mut stream: &TcpStream, status: WireStatus, payload: &[u8]) -> std::io::Result<()> {
    stream.write_all(&frame::encode(status.code(), payload))
}

/// What the handler should do after answering a frame.
enum Next {
    Continue,
    Close,
}

/// Scores a violation, answers it typed, and escalates to a ban reply
/// when the score crosses the threshold. `force_close` is for
/// violations after which the byte stream cannot be trusted to
/// re-synchronise (oversize, stall).
fn punish(
    shared: &Shared,
    stream: &TcpStream,
    key: &str,
    v: Violation,
    status: WireStatus,
    msg: &str,
    force_close: bool,
) -> Next {
    let _ = send_status(stream, status, msg.as_bytes());
    if let Some(window) = shared.admission.record_violation(key, v, Instant::now()) {
        shared.stats.banned_replies.fetch_add(1, Ordering::Relaxed);
        let note = format!(
            "banned for {:.3}s: misbehaviour score crossed the threshold",
            window.as_secs_f64()
        );
        let _ = send_status(stream, WireStatus::Banned, note.as_bytes());
        return Next::Close;
    }
    if force_close {
        Next::Close
    } else {
        Next::Continue
    }
}

fn parse_submit(payload: &[u8]) -> Result<(String, Vec<f32>), String> {
    if payload.len() < 2 {
        return Err("submit payload shorter than its app-name length prefix".into());
    }
    let name_len = u16::from_le_bytes([payload[0], payload[1]]) as usize;
    let sample_at = 2 + name_len;
    if payload.len() < sample_at {
        return Err(format!(
            "submit declares a {name_len}-byte app name but carries {}",
            payload.len() - 2
        ));
    }
    let app = std::str::from_utf8(&payload[2..sample_at])
        .map_err(|_| "app name is not UTF-8".to_string())?
        .to_string();
    if app.is_empty() {
        return Err("empty app name".into());
    }
    let sample_bytes = &payload[sample_at..];
    if !sample_bytes.len().is_multiple_of(4) {
        return Err(format!(
            "sample byte count {} is not a multiple of 4",
            sample_bytes.len()
        ));
    }
    let sample = sample_bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok((app, sample))
}

fn encode_completion(done: &eml_serve::Completion) -> Vec<u8> {
    let mut p = Vec::with_capacity(16 + 4 * done.logits.len());
    p.extend_from_slice(&done.seq.to_le_bytes());
    p.extend_from_slice(&(done.pred as u32).to_le_bytes());
    p.extend_from_slice(&(done.logits.len() as u32).to_le_bytes());
    for l in &done.logits {
        p.extend_from_slice(&l.to_le_bytes());
    }
    p
}

/// Handles one decoded frame. `key` is the client's admission identity
/// (mutated by a Hello).
fn handle_frame(
    shared: &Shared,
    stream: &TcpStream,
    peer: SocketAddr,
    key: &mut String,
    f: &frame::Frame,
) -> Next {
    shared.stats.frames.fetch_add(1, Ordering::Relaxed);
    match f.tag {
        TAG_HELLO => {
            let id = match std::str::from_utf8(&f.payload) {
                Ok(id) if !id.is_empty() && id.len() <= 64 => id,
                _ => {
                    return punish(
                        shared,
                        stream,
                        key,
                        Violation::Malformed,
                        WireStatus::Malformed,
                        "hello id must be 1..=64 bytes of UTF-8",
                        false,
                    );
                }
            };
            // Identity is IP-scoped: a client cannot claim another
            // network's standing (or inherit its bans) by name alone.
            let new_key = format!("{}#{id}", peer.ip());
            match shared.admission.connection_gate(&new_key, Instant::now()) {
                Gate::Banned { until } => {
                    shared.stats.banned_replies.fetch_add(1, Ordering::Relaxed);
                    let msg = format!(
                        "banned for another {:.3}s",
                        until
                            .saturating_duration_since(Instant::now())
                            .as_secs_f64()
                    );
                    let _ = send_status(stream, WireStatus::Banned, msg.as_bytes());
                    Next::Close
                }
                Gate::OverCapacity => {
                    shared.stats.over_capacity.fetch_add(1, Ordering::Relaxed);
                    let _ = send_status(
                        stream,
                        WireStatus::RateLimited,
                        b"admission registry at capacity",
                    );
                    Next::Close
                }
                Gate::Admitted | Gate::RateLimited => {
                    *key = new_key;
                    let _ = send_status(stream, WireStatus::Ok, &[]);
                    Next::Continue
                }
            }
        }
        TAG_PING => {
            if f.payload.is_empty() {
                let _ = send_status(stream, WireStatus::Ok, &[]);
                Next::Continue
            } else {
                punish(
                    shared,
                    stream,
                    key,
                    Violation::Malformed,
                    WireStatus::Malformed,
                    "ping carries no payload",
                    false,
                )
            }
        }
        TAG_SUBMIT => {
            match shared.admission.request_gate(key, Instant::now()) {
                Gate::Banned { until } => {
                    shared.stats.banned_replies.fetch_add(1, Ordering::Relaxed);
                    let msg = format!(
                        "banned for another {:.3}s",
                        until
                            .saturating_duration_since(Instant::now())
                            .as_secs_f64()
                    );
                    let _ = send_status(stream, WireStatus::Banned, msg.as_bytes());
                    return Next::Close;
                }
                Gate::OverCapacity => {
                    shared.stats.over_capacity.fetch_add(1, Ordering::Relaxed);
                    let _ = send_status(
                        stream,
                        WireStatus::RateLimited,
                        b"admission registry at capacity",
                    );
                    return Next::Close;
                }
                Gate::RateLimited => {
                    shared.stats.rate_limited.fetch_add(1, Ordering::Relaxed);
                    return punish(
                        shared,
                        stream,
                        key,
                        Violation::Flood,
                        WireStatus::RateLimited,
                        "token bucket empty: over the sustained request rate",
                        false,
                    );
                }
                Gate::Admitted => {}
            }
            let (app, sample) = match parse_submit(&f.payload) {
                Ok(parts) => parts,
                Err(why) => {
                    return punish(
                        shared,
                        stream,
                        key,
                        Violation::Malformed,
                        WireStatus::Malformed,
                        &why,
                        false,
                    );
                }
            };
            match shared.executor.submit(&app, &sample) {
                Ok(ticket) => {
                    shared.stats.exec_submitted.fetch_add(1, Ordering::Relaxed);
                    match ticket.wait_timeout(shared.cfg.reply_wait) {
                        Ok(done) => {
                            shared.stats.completions.fetch_add(1, Ordering::Relaxed);
                            let _ = send_status(stream, WireStatus::Ok, &encode_completion(&done));
                        }
                        Err(e) => {
                            shared.stats.ticket_errors.fetch_add(1, Ordering::Relaxed);
                            let _ = send_status(
                                stream,
                                WireStatus::from_serve_error(&e),
                                e.to_string().as_bytes(),
                            );
                        }
                    }
                    Next::Continue
                }
                Err(e) => {
                    // Back-pressure and refusal stay typed end to end;
                    // QueueFull/NotAdmitted entered the executor's own
                    // `rejected` count, the rest never reached a queue.
                    match e {
                        ServeError::QueueFull { .. } | ServeError::NotAdmitted { .. } => {
                            shared.stats.exec_rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            shared.stats.exec_refused.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let _ = send_status(
                        stream,
                        WireStatus::from_serve_error(&e),
                        e.to_string().as_bytes(),
                    );
                    Next::Continue
                }
            }
        }
        _ => punish(
            shared,
            stream,
            key,
            Violation::UnknownTag,
            WireStatus::UnknownTag,
            &format!("unknown request tag {}", f.tag),
            false,
        ),
    }
}

/// The per-connection loop: ticked reads, frame decoding, violation
/// scoring, dispatch. See the module docs for the lifecycle.
fn handle_connection(shared: &Shared, stream: &TcpStream, peer: SocketAddr) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_tick.max(Duration::from_millis(1))));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    // Pre-Hello identity: the peer address. Distinct per connection —
    // scoring still works within the connection; cross-connection
    // standing requires a Hello (see the crate-level threat model).
    let mut key = peer.to_string();
    let mut buf: Vec<u8> = Vec::new();
    let mut frame_started: Option<Instant> = None;
    let mut idle_since = Instant::now();
    let mut read_chunk = [0u8; 4096];
    let mut reader = stream;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            shared
                .stats
                .shutdown_replies
                .fetch_add(1, Ordering::Relaxed);
            let _ = send_status(stream, WireStatus::ShuttingDown, b"server shutting down");
            return;
        }
        match frame::decode(&buf, shared.cfg.max_payload) {
            Ok((f, used)) => {
                buf.drain(..used);
                frame_started = if buf.is_empty() {
                    None
                } else {
                    // Pipelined bytes already queued count as a
                    // started frame from now.
                    Some(Instant::now())
                };
                idle_since = Instant::now();
                match handle_frame(shared, stream, peer, &mut key, &f) {
                    Next::Continue => {}
                    Next::Close => return,
                }
            }
            Err(FrameError::Oversize { declared, max }) => {
                // Detected from the header alone: the declared payload
                // was never read, let alone allocated. The stream
                // cannot re-synchronise past an unread payload, so
                // this always closes.
                let _ = punish(
                    shared,
                    stream,
                    &key,
                    Violation::Oversize,
                    WireStatus::Oversize,
                    &format!("frame declares {declared} bytes, cap is {max}"),
                    true,
                );
                return;
            }
            Err(FrameError::Truncated { .. }) => match reader.read(&mut read_chunk) {
                Ok(0) => return, // clean EOF
                Ok(n) => {
                    if buf.is_empty() {
                        frame_started = Some(Instant::now());
                    }
                    buf.extend_from_slice(&read_chunk[..n]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if let Some(t0) = frame_started {
                        if t0.elapsed() > shared.cfg.frame_deadline {
                            // Slowloris: a half-sent frame may not pin
                            // this thread past the read deadline.
                            let _ = punish(
                                shared,
                                stream,
                                &key,
                                Violation::Stall,
                                WireStatus::Stalled,
                                "frame not completed within the read deadline",
                                true,
                            );
                            return;
                        }
                    } else if idle_since.elapsed() > shared.cfg.idle_timeout {
                        return; // quiet idle close, not a violation
                    }
                }
                Err(_) => return, // connection error: nothing to salvage
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_is_shareable_across_connection_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Executor>();
        assert_send_sync::<Shared>();
    }

    #[test]
    fn submit_payload_parsing_is_typed_never_panicking() {
        assert!(parse_submit(&[]).is_err());
        assert!(parse_submit(&[5]).is_err());
        // Declared name length overruns the payload.
        assert!(parse_submit(&[200, 0, b'a']).is_err());
        // Non-UTF-8 name.
        assert!(parse_submit(&[2, 0, 0xFF, 0xFE]).is_err());
        // Empty name.
        assert!(parse_submit(&[0, 0, 0, 0, 0, 0]).is_err());
        // Sample bytes not a multiple of 4.
        assert!(parse_submit(&[1, 0, b'a', 1, 2, 3]).is_err());
        // A valid payload round-trips.
        let mut p = vec![3, 0];
        p.extend_from_slice(b"cam");
        p.extend_from_slice(&1.5f32.to_le_bytes());
        p.extend_from_slice(&(-2.0f32).to_le_bytes());
        let (app, sample) = parse_submit(&p).unwrap();
        assert_eq!(app, "cam");
        assert_eq!(sample, vec![1.5, -2.0]);
    }
}
