//! # eml-net — networked serving front end
//!
//! A threaded TCP front end over the [`eml_serve`] multi-tenant
//! executor, reproducing the deployment shape of the DATE 2020
//! resource-management work: embedded inference served to untrusted
//! peers on a shared network, where the scarce resources are not only
//! the accelerator's cores but the server's threads, memory and queue
//! slots — all of which a misbehaving client can attack.
//!
//! Three layers, each independently testable:
//!
//! - [`frame`] — the length-prefixed wire codec. A frame is
//!   `[u32 LE payload length][u8 tag][payload]`; the hard payload cap
//!   is enforced from the header **before** any allocation.
//! - [`admission`] — per-client token-bucket rate limiting plus a
//!   cumulative misbehaviour score with exponential-backoff bans and
//!   decay-based rehabilitation, in a bounded client registry.
//! - [`server`] / [`client`] — the threaded [`NetServer`] (one accept
//!   loop, supervised per-connection threads, graceful
//!   drain-and-shutdown reusing the executor's typed `AppStopped`
//!   semantics) and a small blocking [`NetClient`] for tests, examples
//!   and tooling.
//!
//! Every refusal is **typed on the wire**: serving-layer failures map
//! through [`eml_serve::ServeError::wire_code`] (codes `1..=31`,
//! stable), protocol and admission conditions own `32..` — see
//! [`WireStatus`]. Nothing is dropped silently and nothing panics the
//! server.
//!
//! ## Threat model
//!
//! What the admission scorer **catches**:
//!
//! - **Oversize frames** — a header declaring a payload above the cap
//!   costs the server 5 bytes of buffer and earns a heavy score hit;
//!   the declared payload is never allocated.
//! - **Slowloris stalls** — a started frame must complete within the
//!   read deadline; ticked reads mean a half-sent frame cannot pin a
//!   connection thread, and the stall is scored.
//! - **Floods** — requests past the token bucket's sustained rate are
//!   refused `RateLimited` and scored, so a sustained flood walks the
//!   client into a ban even though each refusal is cheap.
//! - **Protocol garbage** — unknown tags and unparseable payloads are
//!   scored; repeated probing is indistinguishable from abuse and
//!   treated as such.
//! - **Recidivism** — ban windows double per repeat offence (capped),
//!   and the score decays during good behaviour, so a one-off mistake
//!   rehabilitates while a persistent abuser faces growing exile.
//!
//! What it deliberately does **not** catch:
//!
//! - **Identity rotation.** A client's durable identity is its
//!   IP-scoped Hello id (`ip#id`); pre-Hello, the per-connection peer
//!   address stands in. An adversary minting a fresh id per connection
//!   gets a fresh score each time — per-identity scoring bounds the
//!   *rate* of abuse, it does not stop a determined sybil. Stopping
//!   that requires authenticated identities, out of scope here.
//! - **Distributed floods.** Scoring is per-client; many IPs each
//!   staying under their own bucket can still saturate the executor in
//!   aggregate. The bounded queues and deadline shedding of
//!   [`eml_serve`] are the back-stop: overload degrades into typed
//!   `QueueFull`/`DeadlineExpired` rejections, never into unbounded
//!   memory or latency.
//! - **Authentication and confidentiality.** The protocol is
//!   plaintext with self-asserted identities; it defends the server's
//!   resources, not the traffic's secrecy or the clients' identity
//!   claims.
//! - **Well-formed but wrong requests.** A request for an unknown app
//!   or with a mismatched sample shape is a *typed serving error*, not
//!   a scored violation — honest version skew must not walk a client
//!   into a ban.
//!
//! ## Example
//!
//! See `examples/server.rs` for a full walkthrough: a server over two
//! registered DNNs, a well-behaved client completing inferences, and a
//! hostile client scoring its way into a ban.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod frame;
pub mod server;
mod status;

pub use admission::{Admission, AdmissionConfig, Gate, Violation};
pub use client::{ClientError, NetClient, RemoteCompletion};
pub use frame::{Frame, FrameError};
pub use server::{NetConfig, NetServer, NetStatsSnapshot};
pub use status::WireStatus;
