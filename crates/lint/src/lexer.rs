//! A small offline Rust lexer: enough token structure for the rule
//! engine, none of the grammar.
//!
//! The design constraint is the vendored-deps policy — no `syn`, no
//! `proc-macro2` — and the observation that every invariant this tool
//! checks is visible at the token level: an `unsafe` keyword, a
//! `.lock()` method name, a `=> 11` match arm. The lexer therefore
//! produces a flat token stream with line numbers and gets exactly the
//! hard cases right that would otherwise cause false positives:
//! strings (ordinary, raw, byte), char literals vs lifetimes, and
//! nested block comments. Everything it does not understand is a
//! single-character punctuation token.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident,
    /// A numeric literal (verbatim text, suffix included).
    Number,
    /// A string literal of any flavour (content not preserved exactly;
    /// rules never look inside strings).
    Str,
    /// A character or byte literal.
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's class.
    pub kind: TokenKind,
    /// The token text (for `Punct`, exactly one character).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this is an identifier with exactly the given text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this is the given punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// Lexes `src` into a token stream. Never fails: unterminated
/// constructs run to end of input (the tool lints a compiling
/// workspace; graceful degradation beats an error channel).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.i += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                _ if c.is_alphabetic() || c == '_' => self.ident_or_prefixed_string(),
                _ if c.is_ascii_digit() => self.number(),
                '"' => self.string(),
                '\'' => self.char_or_lifetime(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self) {
        // Rust block comments nest.
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return,
            }
        }
    }

    fn ident_or_prefixed_string(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String-literal prefixes: r"…", r#"…"#, b"…", br#"…"#, c"…".
        let raw = matches!(text.as_str(), "r" | "br" | "cr");
        let plain_prefix = matches!(text.as_str(), "b" | "c" | "r" | "br" | "cr");
        if raw && self.peek(0) == Some('#') {
            // Count hashes; only a quote after them makes this a raw
            // string (otherwise it is a raw identifier like `r#type`).
            let mut hashes = 0;
            while self.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(hashes) == Some('"') {
                for _ in 0..=hashes {
                    self.bump();
                }
                self.raw_string_tail(hashes, line);
                return;
            }
            // Raw identifier: swallow the `#` and lex the word itself.
            self.bump();
            self.ident_or_prefixed_string();
            return;
        }
        if plain_prefix && self.peek(0) == Some('"') {
            self.bump();
            if raw {
                self.raw_string_tail(0, line);
            } else {
                self.string_tail(line);
            }
            return;
        }
        if text == "b" && self.peek(0) == Some('\'') {
            self.char_or_lifetime();
            return;
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` is one number; `0..n` is a number then a range.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line);
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump();
        self.string_tail(line);
    }

    fn string_tail(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // Skip the escaped character (covers \" and \\).
                    self.bump();
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    fn raw_string_tail(&mut self, hashes: usize, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|h| self.peek(h) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(TokenKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // Called either at `'` or at the `'` after a `b` prefix.
        if self.peek(0) == Some('\'') {
            // Lifetime test: 'ident NOT closed by a quote.
            if self.peek(1).is_some_and(|c| c.is_alphabetic() || c == '_') {
                let mut j = 2;
                while self
                    .peek(j)
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    j += 1;
                }
                if self.peek(j) != Some('\'') {
                    self.bump();
                    let mut text = String::from("'");
                    for _ in 1..j {
                        if let Some(c) = self.bump() {
                            text.push(c);
                        }
                    }
                    self.push(TokenKind::Lifetime, text, line);
                    return;
                }
            }
            self.bump();
        }
        // Char (or byte) literal body up to the closing quote.
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Char, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r###"
            // unsafe in a line comment
            /* unsafe /* nested unsafe */ still comment */
            let a = "unsafe in a string";
            let b = r#"unsafe in a raw string"#;
            let c = b"unsafe bytes";
            real_ident();
        "###;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unsafe"), "{ids:?}");
        assert!(ids.iter().any(|i| i == "real_ident"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "x");
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* a\nb\nc */\nmarker";
        let toks = lex(src);
        assert_eq!(toks.len(), 1);
        assert!(toks[0].is_ident("marker"));
        assert_eq!(toks[0].line, 4);
    }

    #[test]
    fn numbers_split_from_ranges_but_keep_decimals() {
        let toks = lex("0..10 1.5 0x1F_u32");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5", "0x1F_u32"]);
    }

    #[test]
    fn raw_identifiers_lex_as_the_word() {
        let toks = lex("let r#type = 1;");
        assert!(toks.iter().any(|t| t.is_ident("type")));
        assert!(!toks.iter().any(|t| t.kind == TokenKind::Str));
    }
}
