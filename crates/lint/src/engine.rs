//! The rule engine: source collection, `#[cfg(test)]` region
//! detection, allowlist filtering and stale-entry accounting.
//!
//! A rule sees a [`SourceFile`] (path + raw lines + token stream) and
//! emits [`Diagnostic`]s. The engine owns the allowlists: rules report
//! every violation they find, and the engine suppresses the ones the
//! repo has explicitly sanctioned. Allowlist entries are keyed by path
//! suffix plus a line-text substring — not a line *number* — so they
//! survive unrelated edits above the sanctioned site; an entry that no
//! longer matches anything is itself an error (in whole-workspace
//! runs), so the list cannot silently rot.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::lexer::{self, Token, TokenKind};

/// One lexed source file, as rules see it.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the lint root, with forward slashes.
    pub path: String,
    /// Raw source lines (for allowlist `contains` matching).
    pub lines: Vec<String>,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Builds a source file from raw text (the path is caller-supplied,
    /// which is what lets fixtures impersonate any workspace location).
    pub fn from_source(path: &str, src: &str) -> Self {
        let tokens = lexer::lex(src);
        let test_ranges = find_test_ranges(&tokens);
        Self {
            path: path.to_string(),
            lines: src.lines().map(str::to_string).collect(),
            tokens,
            test_ranges,
        }
    }

    /// Whether a 1-based line falls inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// The raw text of a 1-based line (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map_or("", String::as_str)
    }
}

/// One finding. Formatting is `rule: path:line: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The id of the rule that produced this (stable, kebab-case).
    pub rule: &'static str,
    /// Path relative to the lint root.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation, including what to do about it.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.rule, self.path, self.line, self.message
        )
    }
}

/// A sanctioned violation. Matches a diagnostic when `path_suffix`
/// suffix-matches its path and `contains` (if non-empty) is a substring
/// of the flagged source line. An empty `contains` sanctions the whole
/// file for that rule — used for module-level grants such as the
/// wall-clock rule's real-time modules.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule this entry applies to.
    pub rule: &'static str,
    /// Path suffix, e.g. `crates/serve/src/executor.rs`.
    pub path_suffix: &'static str,
    /// Substring the flagged line must contain; empty = any line.
    pub contains: &'static str,
    /// One-line justification, printed with `--explain-allow`.
    pub why: &'static str,
}

/// A rule: an id plus per-file and whole-tree checks.
pub trait Rule {
    /// Stable kebab-case id, used in output and allowlist keys.
    fn id(&self) -> &'static str;
    /// Per-file check; push findings onto `out`.
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
    /// Whole-tree check (crate-level attributes, manifest diffs).
    fn check_tree(&self, files: &[SourceFile], out: &mut Vec<Diagnostic>) {
        let _ = (files, out);
    }
}

/// The engine: rules + allowlist + policy knobs.
pub struct Engine {
    rules: Vec<Box<dyn Rule>>,
    allow: Vec<AllowEntry>,
    /// Report allowlist entries that matched nothing. On for
    /// whole-workspace runs, off for fixture tests (which check one
    /// file at a time and would see every other entry as stale).
    pub check_stale: bool,
}

impl Engine {
    /// Builds an engine over the given rules and allowlist.
    pub fn new(rules: Vec<Box<dyn Rule>>, allow: Vec<AllowEntry>) -> Self {
        Self {
            rules,
            allow,
            check_stale: true,
        }
    }

    /// Runs every rule over every file, filters through the allowlist,
    /// and (when `check_stale`) reports entries that matched nothing.
    pub fn run(&self, files: &[SourceFile]) -> Vec<Diagnostic> {
        let mut raw = Vec::new();
        for rule in &self.rules {
            for file in files {
                rule.check_file(file, &mut raw);
            }
            rule.check_tree(files, &mut raw);
        }

        let by_path: BTreeMap<&str, &SourceFile> =
            files.iter().map(|f| (f.path.as_str(), f)).collect();
        let mut used = vec![false; self.allow.len()];
        let mut out = Vec::new();
        for d in raw {
            let line_text = by_path
                .get(d.path.as_str())
                .map_or("", |f| f.line_text(d.line));
            let sanctioned = self.allow.iter().enumerate().find(|(_, a)| {
                a.rule == d.rule
                    && d.path.ends_with(a.path_suffix)
                    && (a.contains.is_empty() || line_text.contains(a.contains))
            });
            match sanctioned {
                Some((idx, _)) => used[idx] = true,
                None => out.push(d),
            }
        }

        if self.check_stale {
            for (a, _) in self.allow.iter().zip(&used).filter(|&(_, &u)| !u) {
                out.push(Diagnostic {
                    rule: "stale-allowlist",
                    path: a.path_suffix.to_string(),
                    line: 0,
                    message: format!(
                        "allowlist entry for rule `{}` (contains: {:?}) matched nothing — \
                         the sanctioned site is gone; delete the entry",
                        a.rule, a.contains
                    ),
                });
            }
        }

        out.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
        });
        out
    }

    /// The allowlist, for `--explain-allow`.
    pub fn allowlist(&self) -> &[AllowEntry] {
        &self.allow
    }
}

/// Recursively collects and lexes every `.rs` file under `root`,
/// skipping build output, VCS metadata and the lint fixtures (which are
/// violations on purpose).
///
/// # Errors
///
/// Propagates filesystem errors (unreadable directories or files).
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&path)?;
            out.push(SourceFile::from_source(&rel, &src));
        }
    }
    Ok(())
}

/// Finds the line ranges of items gated by `#[cfg(test)]`: after the
/// attribute, the gated item runs to the matching `}` of its first
/// brace (a `mod tests { … }`, a gated `fn`) or to the first `;` if no
/// brace opens first (a gated `use`).
fn find_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            let start = tokens[i].line;
            let mut j = i + 7; // past `#` `[` `cfg` `(` `test` `)` `]`
            let mut end = start;
            while j < tokens.len() {
                if tokens[j].is_punct(';') {
                    end = tokens[j].line;
                    break;
                }
                if tokens[j].is_punct('{') {
                    let mut depth = 1u32;
                    j += 1;
                    while j < tokens.len() && depth > 0 {
                        if tokens[j].is_punct('{') {
                            depth += 1;
                        } else if tokens[j].is_punct('}') {
                            depth -= 1;
                        }
                        end = tokens[j].line;
                        j += 1;
                    }
                    break;
                }
                end = tokens[j].line;
                j += 1;
            }
            ranges.push((start, end));
            i = j;
        }
        i += 1;
    }
    ranges
}

fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let Some(window) = tokens.get(i..i + 7) else {
        return false;
    };
    window[0].is_punct('#')
        && window[1].is_punct('[')
        && window[2].is_ident("cfg")
        && window[3].is_punct('(')
        && window[4].is_ident("test")
        && window[5].is_punct(')')
        && window[6].is_punct(']')
}

// Re-export so rules can name token kinds without a second import path.
pub use lexer::TokenKind as Kind;

/// Convenience: true if `tokens[i]` exists and is an ident equal to `s`.
pub fn ident_at(tokens: &[Token], i: usize, s: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_ident(s))
}

/// Convenience: true if `tokens[i]` exists and is the punct `c`.
pub fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(c))
}

/// Convenience: the numeric value at `tokens[i]`, if it is an integer
/// literal (underscores stripped; decimal or `0x` hex).
pub fn int_at(tokens: &[Token], i: usize) -> Option<i64> {
    let t = tokens.get(i)?;
    if t.kind != TokenKind::Number {
        return None;
    }
    let text: String = t.text.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = text.strip_prefix("0x") {
        let digits: String = hex.chars().take_while(char::is_ascii_hexdigit).collect();
        i64::from_str_radix(&digits, 16).ok()
    } else {
        // Stop at a type suffix (`42u8`).
        let digits: String = text.chars().take_while(char::is_ascii_digit).collect();
        digits.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_lines_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::from_source("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_test_use_statement_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let f = SourceFile::from_source("x.rs", src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn stale_allowlist_entries_are_reported_only_when_asked() {
        struct Silent;
        impl Rule for Silent {
            fn id(&self) -> &'static str {
                "silent"
            }
            fn check_file(&self, _: &SourceFile, _: &mut Vec<Diagnostic>) {}
        }
        let allow = vec![AllowEntry {
            rule: "silent",
            path_suffix: "nowhere.rs",
            contains: "gone",
            why: "test",
        }];
        let files = vec![SourceFile::from_source("a.rs", "fn f() {}")];

        let mut engine = Engine::new(vec![Box::new(Silent)], allow);
        let diags = engine.run(&files);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "stale-allowlist");

        engine.check_stale = false;
        assert!(engine.run(&files).is_empty());
    }

    #[test]
    fn int_at_parses_decimal_hex_and_suffixed() {
        let toks = crate::lexer::lex("11 0x1F 42u8 1_000");
        assert_eq!(int_at(&toks, 0), Some(11));
        assert_eq!(int_at(&toks, 1), Some(0x1F));
        assert_eq!(int_at(&toks, 2), Some(42));
        assert_eq!(int_at(&toks, 3), Some(1000));
    }
}
