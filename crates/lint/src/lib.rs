#![forbid(unsafe_code)]
//! `eml-lint`: the workspace invariant checker.
//!
//! A handful of invariants in this repo are load-bearing but invisible
//! to `rustc` and `clippy` because they are *policies of this codebase*,
//! not properties of the language: where `unsafe` may live, the
//! queue-state → stats lock order, which modules may read the wall
//! clock, where panics are banned, and the append-only wire-code space.
//! Until now they lived in doc comments and review vigilance. This
//! crate turns each one into a build-failing check:
//!
//! | rule id              | invariant                                        |
//! |----------------------|--------------------------------------------------|
//! | `unsafe-confinement` | `unsafe` only in `crates/simd` + `vendor/rayon`  |
//! | `lock-order`         | queue state before stats, nesting sanctioned once|
//! | `wall-clock`         | ambient time/RNG only in real-time modules       |
//! | `panic-hygiene`      | no `.unwrap()`/`.expect`/`panic!` in serving code|
//! | `wire-codes`         | status codes match the committed manifest        |
//! | `deprecated-free`    | no deprecation shims in product code             |
//!
//! Run it as `cargo run -p eml-lint -- --check`. Rules analyse a token
//! stream from the in-tree lexer ([`lexer`]) — no `syn`, because the
//! build environment is offline and the policy is no new dependencies.
//! Sanctioned violations live in the allowlist built by
//! [`workspace_rules`]; each entry carries a justification, and entries
//! that no longer match anything fail the run (see [`engine`]).
//!
//! The dynamic counterpart to `lock-order` is
//! `eml_core::sync::RankedMutex`, which panics on out-of-order
//! acquisition in debug builds; this tool catches the same bug class on
//! paths no test happens to execute.

pub mod engine;
pub mod lexer;
pub mod rules;

use std::io;
use std::path::Path;

use engine::{AllowEntry, Diagnostic, Engine, Rule};
use rules::{
    parse_manifest, DeprecatedFree, LockOrder, PanicHygiene, UnsafeConfinement, WallClock,
    WireCodes,
};

/// Relative path of the wire-code manifest within the workspace.
pub const MANIFEST_PATH: &str = "crates/lint/wire_codes.toml";

/// The production rule set, with the manifest loaded from `root`.
///
/// # Errors
///
/// Fails if the wire-code manifest cannot be read — a missing manifest
/// must fail the run, otherwise deleting it would disable the rule.
pub fn workspace_rules(root: &Path) -> io::Result<Vec<Box<dyn Rule>>> {
    let manifest_text = std::fs::read_to_string(root.join(MANIFEST_PATH))?;
    Ok(vec![
        Box::new(UnsafeConfinement),
        Box::new(LockOrder),
        Box::new(WallClock),
        Box::new(PanicHygiene),
        Box::new(WireCodes {
            error_file: "crates/serve/src/error.rs",
            status_file: "crates/net/src/status.rs",
            manifest: parse_manifest(&manifest_text),
            manifest_path: MANIFEST_PATH.to_string(),
        }),
        Box::new(DeprecatedFree),
    ])
}

/// The sanctioned violations, each with its one-line justification.
/// Keep this list short: every entry is a hole in an invariant.
pub fn workspace_allowlist() -> Vec<AllowEntry> {
    vec![
        // lock-order: the one sanctioned queue-state → stats nesting.
        // The serve loop's completion path updates latency stats while
        // still holding the queue guard so a completion and its stats
        // update are atomic with respect to shutdown draining; ranks
        // EXEC_QUEUE(230) < EXEC_STATS(250) make it deadlock-free.
        AllowEntry {
            rule: "lock-order",
            path_suffix: "crates/serve/src/executor.rs",
            contains: "let mut s = rt.lock_stats();",
            why: "sanctioned completion-path nesting; ranks 230<250 keep it deadlock-free",
        },
        // panic-hygiene: deliberate fault injection — the chaos tests
        // exist to kill serving threads on purpose.
        AllowEntry {
            rule: "panic-hygiene",
            path_suffix: "crates/serve/src/executor.rs",
            contains: "panic!(\"injected fault: serving thread crash",
            why: "deliberate chaos-injection crash; supervision is the feature under test",
        },
        AllowEntry {
            rule: "panic-hygiene",
            path_suffix: "crates/serve/src/executor.rs",
            contains: "panic!(\"injected fault: forward panic",
            why: "deliberate chaos-injection panic inside forward()",
        },
        // panic-hygiene: constructor spawn — there is no executor to
        // return an error from if the watchdog thread cannot start.
        AllowEntry {
            rule: "panic-hygiene",
            path_suffix: "crates/serve/src/executor.rs",
            contains: "expect(\"spawn watchdog thread\")",
            why: "Executor::new has no degraded mode without its watchdog",
        },
        // panic-hygiene: constructor spawn of the fixed driver pool —
        // same rationale as the watchdog: an executor without its
        // drivers is not a degraded mode, it is no executor at all.
        AllowEntry {
            rule: "panic-hygiene",
            path_suffix: "crates/serve/src/executor.rs",
            contains: "expect(\"spawn pool driver thread\")",
            why: "Executor::new has no degraded mode without its driver pool",
        },
        // panic-hygiene: statically unreachable length conversion,
        // documented under `# Panics` — payloads are capped at 1 MiB
        // long before a u32 length prefix could overflow.
        AllowEntry {
            rule: "panic-hygiene",
            path_suffix: "crates/net/src/frame.rs",
            contains: "expect(\"payload fits in a u32 length prefix\")",
            why: "unreachable: payloads are capped at 1 MiB; documented # Panics",
        },
        // wall-clock: the executor is the real-time half of the system —
        // deadlines, heartbeats and measured latency are its job.
        AllowEntry {
            rule: "wall-clock",
            path_suffix: "crates/serve/src/executor.rs",
            contains: "",
            why: "the serving executor measures real deadlines and latency",
        },
        // wall-clock: socket deadlines and admission punishment windows
        // are wall-clock by nature.
        AllowEntry {
            rule: "wall-clock",
            path_suffix: "crates/net/src/server.rs",
            contains: "",
            why: "socket read/stall/idle deadlines are real time",
        },
        // wall-clock: the benchmark harness's whole job is measuring
        // real elapsed time.
        AllowEntry {
            rule: "wall-clock",
            path_suffix: "crates/bench/src/bin/bench_nn_json.rs",
            contains: "",
            why: "benchmark harness measures wall time by definition",
        },
        // panic-hygiene: the testbed is shared test scaffolding (every
        // integration suite builds executors through it); panicking on
        // setup failure is the correct behaviour in that role.
        AllowEntry {
            rule: "panic-hygiene",
            path_suffix: "crates/serve/src/testbed.rs",
            contains: "",
            why: "test scaffolding; setup failures should abort the test loudly",
        },
    ]
}

/// Collects sources under `root`, runs the production rules and
/// allowlist, and returns the surviving diagnostics (empty = clean).
///
/// # Errors
///
/// Propagates filesystem errors from source collection or a missing
/// wire-code manifest.
pub fn run_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let files = engine::collect_sources(root)?;
    let engine = Engine::new(workspace_rules(root)?, workspace_allowlist());
    Ok(engine.run(&files))
}
