#![forbid(unsafe_code)]
//! The `eml-lint` binary. See the library docs for what it checks.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage: eml-lint --check [--root PATH]\n\
         \n\
         Runs the workspace invariant rules over every .rs file under\n\
         PATH (default: the current directory) and prints one line per\n\
         finding. --explain-allow prints the sanctioned-violation list\n\
         with justifications instead of linting."
    );
}

fn main() -> ExitCode {
    let mut check = false;
    let mut explain_allow = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--explain-allow" => explain_allow = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    usage();
                    return ExitCode::from(2);
                }
            },
            _ => {
                usage();
                return ExitCode::from(2);
            }
        }
    }

    if explain_allow {
        for a in eml_lint::workspace_allowlist() {
            println!(
                "{}: {} (matching {:?})\n    why: {}",
                a.rule, a.path_suffix, a.contains, a.why
            );
        }
        return ExitCode::SUCCESS;
    }

    if !check {
        usage();
        return ExitCode::from(2);
    }

    match eml_lint::run_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("eml-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("eml-lint: {} finding(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("eml-lint: {e}");
            ExitCode::from(2)
        }
    }
}
