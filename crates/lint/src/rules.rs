//! The repo-specific rules. Each one enforces an invariant documented
//! in `docs/INVARIANTS.md`; the rule id printed in a diagnostic is the
//! anchor to look up there.

use std::collections::BTreeMap;

use crate::engine::{ident_at, int_at, punct_at, Diagnostic, Rule, SourceFile};
use crate::lexer::TokenKind;

/// `unsafe-confinement`: the `unsafe` keyword may appear only in
/// `crates/simd` (the SIMD micro-kernels, which are the point of the
/// confinement) and `vendor/rayon` (the vendored stand-in). Every other
/// crate must carry `#![forbid(unsafe_code)]` so the compiler, not this
/// tool, is the enforcement of record — this rule is the backstop that
/// notices a *removed* attribute.
pub struct UnsafeConfinement;

const UNSAFE_OK_PREFIXES: [&str; 2] = ["crates/simd/", "vendor/rayon/"];

impl Rule for UnsafeConfinement {
    fn id(&self) -> &'static str {
        "unsafe-confinement"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if UNSAFE_OK_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
            return;
        }
        for t in &file.tokens {
            if t.is_ident("unsafe") {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.path.clone(),
                    line: t.line,
                    message: "`unsafe` outside crates/simd and vendor/rayon; put the \
                              unsafe code behind a safe API in crates/simd"
                        .into(),
                });
            }
        }
    }

    fn check_tree(&self, files: &[SourceFile], out: &mut Vec<Diagnostic>) {
        for file in files {
            let is_crate_root = file.path == "src/lib.rs"
                || (file.path.starts_with("crates/") && file.path.ends_with("/src/lib.rs"));
            if !is_crate_root || file.path.starts_with("crates/simd/") {
                continue;
            }
            let has_forbid = file
                .lines
                .iter()
                .any(|l| l.contains("#![forbid(unsafe_code)]"));
            if !has_forbid {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.path.clone(),
                    line: 1,
                    message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
                });
            }
        }
    }
}

/// `lock-order`: a syntactic scan for the documented queue-state →
/// stats acquisition order. A binding created from `lock_state(…)` or
/// from `.lock()` on a state/queue-named receiver is treated as a live
/// queue guard until its scope closes or it is `drop`ped; acquiring a
/// stats lock (`lock_stats(…)` or `.lock()` on a stats-named receiver)
/// while one is live is a violation. The debug-build counterpart is
/// `eml_core::sync::RankedMutex`, which catches the same bug class
/// dynamically; this rule catches it on paths no test happens to walk.
pub struct LockOrder;

fn ident_contains(file: &SourceFile, i: usize, needles: &[&str]) -> bool {
    file.tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && needles.iter().any(|n| t.text.contains(n)))
}

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !file.path.starts_with("crates/") {
            return;
        }
        let toks = &file.tokens;
        let mut depth: i32 = 0;
        // Live queue-guard bindings: (name, depth at declaration).
        let mut guards: Vec<(String, i32)> = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            let t = &toks[i];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                guards.retain(|&(_, d)| d <= depth);
            } else if file.is_test_line(t.line) {
                // Tests nest locks on purpose (the RankedMutex suite
                // exercises exactly this); the dynamic rank check
                // covers them at runtime. Braces above still count so
                // scope depth stays in sync across the test module.
            } else if t.is_ident("drop") && punct_at(toks, i + 1, '(') {
                // Only an unconditional drop (same depth as the
                // declaration) retires the guard; a drop inside a
                // branch (`if empty { drop(st); continue; }`) leaves
                // the fallthrough path holding it.
                if let Some(name) = toks.get(i + 2).filter(|t| t.kind == TokenKind::Ident) {
                    guards.retain(|(n, d)| n != &name.text || *d != depth);
                }
            } else if t.is_ident("let") {
                // `if let` / `while let` / `else` chains are conditions,
                // not bindings of lock guards; skip the statement scan
                // (temporary guards in conditions drop immediately).
                let in_condition = i > 0
                    && (toks[i - 1].is_ident("if")
                        || toks[i - 1].is_ident("while")
                        || toks[i - 1].is_ident("else"));
                if !in_condition {
                    i = self.scan_let(file, i, depth, &mut guards, out);
                    continue;
                }
            } else if !guards.is_empty() && Self::is_stats_acquisition(file, i) {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "stats lock acquired while queue-state guard `{}` is live; the \
                         documented order is queue state first, stats second, and nesting \
                         them is reserved for the serve loop's completion path",
                        guards.last().map_or("?", |(n, _)| n)
                    ),
                });
            }
            i += 1;
        }
    }
}

impl LockOrder {
    /// True at a stats acquisition: `lock_stats(` or `<…stats…>.lock(`.
    fn is_stats_acquisition(file: &SourceFile, i: usize) -> bool {
        let toks = &file.tokens;
        if ident_at(toks, i, "lock_stats") && punct_at(toks, i + 1, '(') {
            return true;
        }
        ident_contains(file, i, &["stats"])
            && punct_at(toks, i + 1, '.')
            && ident_at(toks, i + 2, "lock")
            && punct_at(toks, i + 3, '(')
    }

    /// True at a queue-state acquisition: `lock_state(` or
    /// `<…state|queue…>.lock(`.
    fn is_queue_acquisition(file: &SourceFile, i: usize) -> bool {
        let toks = &file.tokens;
        if ident_at(toks, i, "lock_state") && punct_at(toks, i + 1, '(') {
            return true;
        }
        ident_contains(file, i, &["state", "queue"])
            && punct_at(toks, i + 1, '.')
            && ident_at(toks, i + 2, "lock")
            && punct_at(toks, i + 3, '(')
    }

    /// Scans one `let` statement. If its top-level initialiser acquires
    /// a queue-state lock, the bound name becomes a live guard.
    /// Acquisitions nested in inner braces (`let x = { let g = lock…; …
    /// };`) belong to the inner scope and do not taint `x`. Returns the
    /// index to resume at.
    fn scan_let(
        &self,
        file: &SourceFile,
        let_idx: usize,
        depth: i32,
        guards: &mut Vec<(String, i32)>,
        out: &mut Vec<Diagnostic>,
    ) -> usize {
        let toks = &file.tokens;
        let mut j = let_idx + 1;
        if ident_at(toks, j, "mut") {
            j += 1;
        }
        let name = toks
            .get(j)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone());
        let mut rel: i32 = 0;
        let mut is_queue = false;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                rel += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                rel -= 1;
                if rel < 0 {
                    break;
                }
            } else if t.is_punct(';') && rel == 0 {
                break;
            } else if rel == 0 && Self::is_queue_acquisition(file, j) {
                is_queue = true;
            } else if !guards.is_empty() && Self::is_stats_acquisition(file, j) {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "stats lock acquired while queue-state guard `{}` is live; the \
                         documented order is queue state first, stats second, and nesting \
                         them is reserved for the serve loop's completion path",
                        guards.last().map_or("?", |(n, _)| n)
                    ),
                });
            }
            j += 1;
        }
        if is_queue {
            if let Some(name) = name {
                guards.push((name, depth));
            }
        }
        j + 1
    }
}

/// `wall-clock`: `Instant::now`, `SystemTime::now` and `thread_rng` are
/// forbidden outside an allowlisted set of real-time modules. The
/// chaos-soak and FaultPlan machinery replays schedules
/// bit-reproducibly from seeds; an ambient clock or RNG read anywhere
/// else silently breaks that reproducibility.
pub struct WallClock;

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        "wall-clock"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !(file.path.starts_with("crates/") && file.path.contains("/src/")) {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.is_test_line(toks[i].line) {
                continue;
            }
            let hit = if (ident_at(toks, i, "Instant") || ident_at(toks, i, "SystemTime"))
                && punct_at(toks, i + 1, ':')
                && punct_at(toks, i + 2, ':')
                && ident_at(toks, i + 3, "now")
            {
                Some(format!("{}::now", toks[i].text))
            } else if ident_at(toks, i, "thread_rng") {
                Some("thread_rng".to_string())
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.path.clone(),
                    line: toks[i].line,
                    message: format!(
                        "`{what}` outside the allowlisted real-time modules; take the \
                         time or RNG as a parameter so FaultPlan replays stay \
                         bit-reproducible"
                    ),
                });
            }
        }
    }
}

/// `panic-hygiene`: `.unwrap()`, `.expect(…)` and `panic!` are
/// forbidden in non-test code of the serving layer (`eml-serve`,
/// `eml-net`): a panic there kills a supervised thread and burns a
/// restart budget, so fallible paths must return typed errors. Poison
/// recovery is `unwrap_or_else(PoisonError::into_inner)` — a different
/// method name, deliberately not matched. Sanctioned sites (deliberate
/// fault injection, statically unreachable conversions) carry allowlist
/// entries with one-line justifications.
pub struct PanicHygiene;

const PANIC_SCOPE_PREFIXES: [&str; 2] = ["crates/serve/src/", "crates/net/src/"];

impl Rule for PanicHygiene {
    fn id(&self) -> &'static str {
        "panic-hygiene"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !PANIC_SCOPE_PREFIXES
            .iter()
            .any(|p| file.path.starts_with(p))
        {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.is_test_line(toks[i].line) {
                continue;
            }
            let hit = if ident_at(toks, i, "panic") && punct_at(toks, i + 1, '!') {
                Some("panic!")
            } else if punct_at(toks, i, '.')
                && ident_at(toks, i + 1, "unwrap")
                && punct_at(toks, i + 2, '(')
            {
                Some(".unwrap()")
            } else if punct_at(toks, i, '.')
                && ident_at(toks, i + 1, "expect")
                && punct_at(toks, i + 2, '(')
            {
                Some(".expect(…)")
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.path.clone(),
                    line: toks[i].line,
                    message: format!(
                        "`{what}` in serving-layer non-test code; a panic here kills a \
                         supervised thread — return a typed error instead"
                    ),
                });
            }
        }
    }
}

/// `wire-codes`: the wire protocol's status codes are append-only. This
/// rule parses the actual `wire_code()` match arms in the serve error
/// type and the `WireStatus` discriminants in the net mirror, and diffs
/// both against the committed manifest (`crates/lint/wire_codes.toml`).
/// Renumbering or deleting a shipped code fails the build; adding one
/// requires touching the manifest in the same change, which makes the
/// append visible in review.
pub struct WireCodes {
    /// Path suffix of the file holding `fn wire_code` (serve errors).
    pub error_file: &'static str,
    /// Path suffix of the file holding `enum WireStatus`.
    pub status_file: &'static str,
    /// Parsed manifest: section → name → code.
    pub manifest: BTreeMap<String, BTreeMap<String, i64>>,
    /// Where the manifest lives, for diagnostics.
    pub manifest_path: String,
}

impl Rule for WireCodes {
    fn id(&self) -> &'static str {
        "wire-codes"
    }

    fn check_file(&self, _: &SourceFile, _: &mut Vec<Diagnostic>) {}

    fn check_tree(&self, files: &[SourceFile], out: &mut Vec<Diagnostic>) {
        let empty = BTreeMap::new();
        if let Some(f) = files.iter().find(|f| f.path.ends_with(self.error_file)) {
            let parsed = parse_wire_code_arms(f);
            self.diff(
                f,
                "serve_error",
                self.manifest.get("serve_error").unwrap_or(&empty),
                &parsed,
                out,
            );
        }
        if let Some(f) = files.iter().find(|f| f.path.ends_with(self.status_file)) {
            let parsed = parse_enum_discriminants(f, "WireStatus");
            self.diff(
                f,
                "wire_status",
                self.manifest.get("wire_status").unwrap_or(&empty),
                &parsed,
                out,
            );
        }
    }
}

impl WireCodes {
    fn diff(
        &self,
        file: &SourceFile,
        section: &str,
        manifest: &BTreeMap<String, i64>,
        code: &BTreeMap<String, (i64, u32)>,
        out: &mut Vec<Diagnostic>,
    ) {
        for (name, &(value, line)) in code {
            match manifest.get(name) {
                None => out.push(Diagnostic {
                    rule: self.id(),
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "wire code {value} for `{name}` is not in {} [{section}]; if this \
                         is a new code, append it to the manifest in the same change",
                        self.manifest_path
                    ),
                }),
                Some(&expected) if expected != value => out.push(Diagnostic {
                    rule: self.id(),
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "wire code for `{name}` changed: manifest says {expected}, code \
                         says {value}; shipped codes are stable — never renumber"
                    ),
                }),
                Some(_) => {}
            }
        }
        for name in manifest.keys() {
            if !code.contains_key(name) {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.path.clone(),
                    line: 1,
                    message: format!(
                        "manifest entry `{name}` in [{section}] has no wire code in the \
                         source; shipped codes are stable — never delete or rename"
                    ),
                });
            }
        }
    }
}

/// Parses `Self::Variant { .. } => N` arms inside `fn wire_code`.
/// Returns name → (value, line).
fn parse_wire_code_arms(file: &SourceFile) -> BTreeMap<String, (i64, u32)> {
    let toks = &file.tokens;
    let mut out = BTreeMap::new();
    let Some(start) =
        (0..toks.len()).find(|&i| ident_at(toks, i, "fn") && ident_at(toks, i + 1, "wire_code"))
    else {
        return out;
    };
    // Body of the fn: from its first `{` to the matching `}`.
    let Some(open) = (start..toks.len()).find(|&i| punct_at(toks, i, '{')) else {
        return out;
    };
    let mut depth = 0i32;
    let mut pending: Option<(String, u32)> = None;
    for i in open..toks.len() {
        if punct_at(toks, i, '{') {
            depth += 1;
        } else if punct_at(toks, i, '}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if ident_at(toks, i, "Self")
            && punct_at(toks, i + 1, ':')
            && punct_at(toks, i + 2, ':')
        {
            if let Some(name) = toks.get(i + 3).filter(|t| t.kind == TokenKind::Ident) {
                pending = Some((name.text.clone(), name.line));
            }
        } else if punct_at(toks, i, '=') && punct_at(toks, i + 1, '>') {
            if let (Some((name, line)), Some(value)) = (pending.take(), int_at(toks, i + 2)) {
                out.insert(name, (value, line));
            }
        }
    }
    out
}

/// Parses `Variant = N,` discriminants inside `enum <name>`.
fn parse_enum_discriminants(file: &SourceFile, enum_name: &str) -> BTreeMap<String, (i64, u32)> {
    let toks = &file.tokens;
    let mut out = BTreeMap::new();
    let Some(start) =
        (0..toks.len()).find(|&i| ident_at(toks, i, "enum") && ident_at(toks, i + 1, enum_name))
    else {
        return out;
    };
    let Some(open) = (start..toks.len()).find(|&i| punct_at(toks, i, '{')) else {
        return out;
    };
    let mut depth = 0i32;
    for i in open..toks.len() {
        if punct_at(toks, i, '{') {
            depth += 1;
        } else if punct_at(toks, i, '}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1
            && toks[i].kind == TokenKind::Ident
            && punct_at(toks, i + 1, '=')
            && !punct_at(toks, i + 2, '=')
        {
            if let Some(value) = int_at(toks, i + 2) {
                out.insert(toks[i].text.clone(), (value, toks[i].line));
            }
        }
    }
    out
}

/// Parses the manifest's TOML subset: `[section]` headers, `Name = 42`
/// pairs, `#` comments. That subset is all the manifest needs, and it
/// keeps the tool dependency-free.
pub fn parse_manifest(text: &str) -> BTreeMap<String, BTreeMap<String, i64>> {
    let mut out: BTreeMap<String, BTreeMap<String, i64>> = BTreeMap::new();
    let mut section = String::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            out.entry(section.clone()).or_default();
        } else if let Some((key, value)) = line.split_once('=') {
            if let Ok(v) = value.trim().parse::<i64>() {
                out.entry(section.clone())
                    .or_default()
                    .insert(key.trim().to_string(), v);
            }
        }
    }
    out
}

/// `deprecated-free`: the workspace carries no `#[deprecated]` items
/// and no `#[allow(deprecated)]` escapes. Deprecation shims are retired
/// by deleting them (this repo's PR cadence makes that cheap), not by
/// accumulating attribute noise.
pub struct DeprecatedFree;

impl Rule for DeprecatedFree {
    fn id(&self) -> &'static str {
        "deprecated-free"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !(file.path.starts_with("crates/") || file.path.starts_with("src/")) {
            return;
        }
        for t in &file.tokens {
            if t.is_ident("deprecated") {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.path.clone(),
                    line: t.line,
                    message: "`deprecated` attribute or allow in product code; delete \
                              retired APIs instead of shimming them"
                        .into(),
                });
            }
        }
    }
}
