//! Fixture-driven rule tests: each known-bad snippet in
//! `tests/fixtures/` must produce exactly the expected diagnostic —
//! and nothing else. Fixtures are lexed under impersonated workspace
//! paths so the rules' path scoping applies; they are never compiled.

use eml_lint::engine::{Diagnostic, Engine, Rule, SourceFile};
use eml_lint::rules::{
    parse_manifest, DeprecatedFree, LockOrder, PanicHygiene, UnsafeConfinement, WallClock,
    WireCodes,
};

fn run_rule(rule: Box<dyn Rule>, files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut engine = Engine::new(vec![rule], Vec::new());
    engine.check_stale = false;
    engine.run(files)
}

#[test]
fn unsafe_confinement_flags_unsafe_in_a_product_crate() {
    let files = vec![SourceFile::from_source(
        "crates/nn/src/bad.rs",
        include_str!("fixtures/unsafe_confinement.rs"),
    )];
    let diags = run_rule(Box::new(UnsafeConfinement), &files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "unsafe-confinement");
    assert_eq!(diags[0].line, 6);
    assert!(diags[0].message.contains("crates/simd"));
}

#[test]
fn unsafe_confinement_allows_the_simd_crate_but_requires_forbid_elsewhere() {
    let files = vec![
        SourceFile::from_source(
            "crates/simd/src/kernel.rs",
            include_str!("fixtures/unsafe_confinement.rs"),
        ),
        // A crate root without the forbid attribute.
        SourceFile::from_source("crates/nn/src/lib.rs", "pub fn f() {}\n"),
    ];
    let diags = run_rule(Box::new(UnsafeConfinement), &files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].path, "crates/nn/src/lib.rs");
    assert!(diags[0].message.contains("#![forbid(unsafe_code)]"));
}

#[test]
fn lock_order_flags_stats_under_a_live_queue_guard() {
    let files = vec![SourceFile::from_source(
        "crates/serve/src/bad.rs",
        include_str!("fixtures/lock_order.rs"),
    )];
    let diags = run_rule(Box::new(LockOrder), &files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "lock-order");
    assert_eq!(diags[0].line, 7);
    assert!(diags[0].message.contains("queue-state guard `st`"));
}

#[test]
fn wall_clock_flags_ambient_time_but_not_tests() {
    let files = vec![SourceFile::from_source(
        "crates/sim/src/bad.rs",
        include_str!("fixtures/wall_clock.rs"),
    )];
    let diags = run_rule(Box::new(WallClock), &files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "wall-clock");
    assert_eq!(diags[0].line, 4);
    assert!(diags[0].message.contains("Instant::now"));
}

#[test]
fn panic_hygiene_flags_unwrap_but_not_poison_recovery_or_tests() {
    let files = vec![SourceFile::from_source(
        "crates/serve/src/bad.rs",
        include_str!("fixtures/panic_hygiene.rs"),
    )];
    let diags = run_rule(Box::new(PanicHygiene), &files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "panic-hygiene");
    assert_eq!(diags[0].line, 6);
    assert!(diags[0].message.contains(".unwrap()"));
}

#[test]
fn panic_hygiene_ignores_crates_outside_the_serving_layer() {
    let files = vec![SourceFile::from_source(
        "crates/nn/src/fine.rs",
        include_str!("fixtures/panic_hygiene.rs"),
    )];
    assert!(run_rule(Box::new(PanicHygiene), &files).is_empty());
}

#[test]
fn wire_codes_flags_renumbering_additions_and_removals() {
    let manifest = parse_manifest(
        "[serve_error]\nQueueFull = 1\nUnknownApp = 3\n\
         [wire_status]\nOk = 0\nQueueFull = 1\nRemoved = 9\n",
    );
    let rule = WireCodes {
        error_file: "crates/serve/src/error.rs",
        status_file: "crates/net/src/status.rs",
        manifest,
        manifest_path: "wire_codes.toml".to_string(),
    };
    let files = vec![
        SourceFile::from_source(
            "crates/serve/src/error.rs",
            include_str!("fixtures/wire_codes.rs"),
        ),
        SourceFile::from_source(
            "crates/net/src/status.rs",
            include_str!("fixtures/wire_status.rs"),
        ),
    ];
    let diags = run_rule(Box::new(rule), &files);
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(diags.len(), 3, "{diags:?}");
    // QueueFull renumbered 1 -> 2.
    assert!(
        msgs.iter()
            .any(|m| m.contains("`QueueFull`") && m.contains("manifest says 1, code says 2")),
        "{msgs:?}"
    );
    // BrandNew added without a manifest entry.
    assert!(
        msgs.iter()
            .any(|m| m.contains("`BrandNew`") && m.contains("append it to the manifest")),
        "{msgs:?}"
    );
    // Removed deleted from the enum but still in the manifest.
    assert!(
        msgs.iter()
            .any(|m| m.contains("`Removed`") && m.contains("never delete")),
        "{msgs:?}"
    );
    // UnknownApp matches (3 == 3): no fourth diagnostic, proven by the
    // length assertion above.
}

#[test]
fn deprecated_free_flags_the_attribute() {
    let files = vec![SourceFile::from_source(
        "crates/serve/src/bad.rs",
        include_str!("fixtures/deprecated.rs"),
    )];
    let diags = run_rule(Box::new(DeprecatedFree), &files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "deprecated-free");
    assert_eq!(diags[0].line, 3);
}

#[test]
fn allowlist_suppresses_exactly_the_sanctioned_line() {
    use eml_lint::engine::AllowEntry;
    let files = vec![SourceFile::from_source(
        "crates/serve/src/bad.rs",
        include_str!("fixtures/lock_order.rs"),
    )];
    let allow = vec![AllowEntry {
        rule: "lock-order",
        path_suffix: "crates/serve/src/bad.rs",
        contains: "let mut s = rt.stats.lock();",
        why: "fixture sanction",
    }];
    let mut engine = Engine::new(vec![Box::new(LockOrder)], allow);
    engine.check_stale = false;
    assert!(engine.run(&files).is_empty());
}
