// Fixture: a wire_code() whose QueueFull arm was renumbered, plus an
// unrecorded new variant.

impl ServeError {
    pub fn wire_code(&self) -> u8 {
        match self {
            Self::QueueFull { .. } => 2,
            Self::UnknownApp { .. } => 3,
            Self::BrandNew { .. } => 4,
        }
    }
}
