// Fixture: ambient clock read outside the real-time modules.

pub fn stamp(plan: &mut FaultPlan) {
    plan.armed_at = Some(Instant::now());
}

#[cfg(test)]
mod tests {
    #[test]
    fn clocks_in_tests_are_fine() {
        let _ = Instant::now();
    }
}
