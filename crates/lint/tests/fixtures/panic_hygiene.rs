// Fixture: a panic path in serving-layer non-test code.

pub fn risky(v: Option<u32>) -> u32 {
    // Poison recovery is fine and must not be flagged:
    let _g = lock.lock().unwrap_or_else(PoisonError::into_inner);
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
    }
}
