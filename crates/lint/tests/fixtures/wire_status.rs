// Fixture: a WireStatus enum missing a manifest entry (Removed = 9 is
// in the manifest but not here).

#[repr(u8)]
pub enum WireStatus {
    Ok = 0,
    QueueFull = 1,
}
