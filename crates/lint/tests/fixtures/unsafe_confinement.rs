// Fixture: `unsafe` in a product crate. Not compiled by cargo; the
// lint tests lex it under an impersonated path.

pub fn naughty(p: *const u8) -> u8 {
    // A comment mentioning unsafe does not count; the block does.
    unsafe { *p }
}
