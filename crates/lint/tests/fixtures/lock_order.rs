// Fixture: stats lock acquired while a queue-state guard is live —
// the inversion of the documented order, outside the sanctioned site.

fn completion_path(shared: &Shared, rt: &Runtime) {
    let mut st = lock_state(shared);
    st.pending -= 1;
    let mut s = rt.stats.lock();
    s.completed += 1;
}

fn fine_sequential(shared: &Shared, rt: &Runtime) {
    {
        let st = lock_state(shared);
        let _ = st.pending;
    }
    let mut s = rt.stats.lock();
    s.completed += 1;
}
