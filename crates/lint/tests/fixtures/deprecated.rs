// Fixture: a deprecation shim in product code.

#[deprecated(note = "use route_command")]
pub fn apply_command(&mut self) -> bool {
    false
}
