//! Self-check: the committed workspace passes its own lint. This is
//! the test that makes `cargo test` fail when an invariant regresses,
//! even if nobody runs the binary.

use std::path::Path;

#[test]
fn committed_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels under the workspace root");
    let diags = eml_lint::run_workspace(root).expect("workspace sources readable");
    assert!(
        diags.is_empty(),
        "eml-lint found {} finding(s) in the committed tree:\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
