//! # eml-simd
//!
//! Arch-specific micro-kernel primitives for the `emlrt` workspace —
//! the "arch intrinsics behind a feature gate" rung of the ROADMAP.
//! This is deliberately the **only** product crate that contains
//! `unsafe`: one narrowly-scoped block per intrinsic kernel, with the
//! safety argument written out, and a portable scalar implementation
//! that is both the non-x86 fallback and the test oracle.
//!
//! # Kernels
//!
//! - [`madd_tile_i16`]: the inner tile of the quantised int8 GEMM
//!   (`eml_nn::gemm::int8`). Values are int8-grid quantised
//!   (`[-127, 127]`) but **stored as `i16` in pair-interleaved
//!   panels**, because the integer multiply-accumulate instruction the
//!   x86-64 *baseline* (SSE2) offers — `pmaddwd` — consumes adjacent
//!   `i16` pairs: `acc_i32 += a0·b0 + a1·b1` per lane, 8 MACs per
//!   instruction (16 on the AVX2 tier), twice the `f32` `mulps+addps`
//!   rate. Auto-vectorisation cannot be coaxed into emitting it
//!   reliably (measured: the best scalar formulation runs ~2× *slower*
//!   than the f32 kernel), which is why this crate exists.
//! - [`madd_tile_f32`]: the inner tile of the `f32` blocked GEMM.
//!   The scalar form is exactly the kernel `eml_nn::gemm` shipped as
//!   safe auto-vectorised Rust (which the baseline x86-64 target
//!   vectorises only 4-wide, SSE); the AVX2 tier issues the same
//!   multiply/add sequence 8 lanes at a time.
//!
//! # Dispatch tiers
//!
//! Every kernel dispatches through [`active_tier`], resolved once per
//! process:
//!
//! 1. the best tier the CPU supports at runtime
//!    (`is_x86_feature_detected!("avx2")` → [`Tier::Avx2`]; plain
//!    x86-64 → [`Tier::Sse2`], part of the baseline ABI, no detection
//!    needed; everything else → [`Tier::Scalar`]),
//! 2. **capped** by the `EML_SIMD_FORCE` environment variable
//!    (`scalar` | `sse2` | `avx2`). The cap can only lower the tier —
//!    forcing `avx2` on a CPU without it falls back to the best
//!    available tier rather than executing illegal instructions.
//!    Unrecognised values are ignored. CI uses `EML_SIMD_FORCE=scalar`
//!    to keep the fallback oracle exercised on every push, not just on
//!    non-x86 hardware.
//!
//! The AVX2 tiers are bit-identical to their scalar oracles: the int8
//! kernel is exact integer arithmetic, and the f32 kernel deliberately
//! issues separate `vmulps`/`vaddps` (not FMA, which would contract
//! the rounding) in the scalar kernel's exact per-element operation
//! order, so selecting a tier never changes results.
//!
//! # Panel layout
//!
//! For a register tile of [`MR`]`×`[`NR`] and a depth slice of
//! `pairs` k-pairs (odd depths are zero-padded to even by the int8
//! packers):
//!
//! ```text
//! A strip: [q][r][2] — pairs * 2*MR i16   (one 16-byte row per pair)
//! B strip: [q][c][2] — pairs * 2*NR i16   (four 16-byte rows per pair)
//! ```
//!
//! i.e. for k-pair `q`, row `r` of A holds `(a[2q][r], a[2q+1][r])`
//! adjacently, and column `c` of B holds `(b[2q][c], b[2q+1][c])`
//! adjacently — exactly the operand shape `pmaddwd` multiplies. The
//! `f32` strips are the plain `[p][r]` / `[p][c]` panel layout of
//! `eml_nn::gemm` (no pair interleave).

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::OnceLock;

/// Register tile height (rows of the accumulator tile), shared by the
/// int8 and f32 kernels.
pub const MR: usize = 4;
/// Register tile width (columns of the accumulator tile), shared by
/// the int8 and f32 kernels.
pub const NR: usize = 16;
/// Alias of [`MR`] retained for the int8 kernel's original callers.
pub const MR8: usize = MR;
/// Alias of [`NR`] retained for the int8 kernel's original callers.
pub const NR8: usize = NR;

/// A micro-kernel implementation tier, ordered from most portable to
/// fastest. See the module docs for the selection rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Portable scalar Rust: the non-x86 fallback and the test oracle.
    Scalar,
    /// SSE2 (`pmaddwd`, 128-bit): part of the x86-64 baseline ABI, so
    /// this tier needs no runtime detection.
    Sse2,
    /// AVX2 (256-bit): runtime-detected via `is_x86_feature_detected!`.
    Avx2,
}

/// The tier every kernel in this crate dispatches to, resolved once
/// per process: the best runtime-detected tier, capped by the
/// `EML_SIMD_FORCE` environment variable (see module docs).
pub fn active_tier() -> Tier {
    static TIER: OnceLock<Tier> = OnceLock::new();
    *TIER.get_or_init(|| {
        let force = std::env::var("EML_SIMD_FORCE").ok();
        tier_for(force.as_deref(), best_tier())
    })
}

/// Pure selection rule: `force` caps `best`, never raises it;
/// unrecognised values leave `best` untouched.
fn tier_for(force: Option<&str>, best: Tier) -> Tier {
    let cap = match force {
        Some("scalar") => Tier::Scalar,
        Some("sse2") => Tier::Sse2,
        _ => Tier::Avx2,
    };
    cap.min(best)
}

/// The best tier this CPU can execute.
fn best_tier() -> Tier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            Tier::Avx2
        } else {
            Tier::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Tier::Scalar
    }
}

/// Accumulates one [`MR`]`×`[`NR`] `i32` tile of `A_strip · B_strip`
/// into `acc`, where both strips hold int8-grid values in the
/// pair-interleaved `i16` layout above: `pa` is `pairs * 2*MR`
/// elements, `pb` is `pairs * 2*NR` elements.
///
/// The accumulation is exact integer arithmetic: with values in
/// `[-127, 127]` each pair sum is at most `2·127² = 32258`, so the
/// `i16×i16→i32` pairwise products never overflow an `i32` lane for
/// any depth the caller's overflow guard admits. Every tier therefore
/// produces bit-identical results.
///
/// # Panics
///
/// Panics if either slice is shorter than the layout requires.
#[inline]
pub fn madd_tile_i16(pa: &[i16], pb: &[i16], pairs: usize, acc: &mut [[i32; NR]; MR]) {
    assert!(
        pa.len() >= pairs * 2 * MR && pb.len() >= pairs * 2 * NR,
        "strip buffers shorter than {pairs} k-pairs"
    );
    match active_tier() {
        Tier::Scalar => madd_tile_scalar(pa, pb, pairs, acc),
        #[cfg(target_arch = "x86_64")]
        Tier::Sse2 => x86::madd_tile_sse2(pa, pb, pairs, acc),
        #[cfg(target_arch = "x86_64")]
        Tier::Avx2 => x86::madd_tile_i16_avx2(pa, pb, pairs, acc),
        #[cfg(not(target_arch = "x86_64"))]
        _ => madd_tile_scalar(pa, pb, pairs, acc),
    }
}

/// Portable scalar form of [`madd_tile_i16`]: the non-x86 fallback and
/// the oracle the intrinsics paths are tested against.
pub fn madd_tile_scalar(pa: &[i16], pb: &[i16], pairs: usize, acc: &mut [[i32; NR]; MR]) {
    assert!(pa.len() >= pairs * 2 * MR && pb.len() >= pairs * 2 * NR);
    for q in 0..pairs {
        let ap = &pa[q * 2 * MR..][..2 * MR];
        let bp = &pb[q * 2 * NR..][..2 * NR];
        for (r, row) in acc.iter_mut().enumerate() {
            let a0 = i32::from(ap[2 * r]);
            let a1 = i32::from(ap[2 * r + 1]);
            for (x, b) in row.iter_mut().zip(bp.chunks_exact(2)) {
                *x += a0 * i32::from(b[0]) + a1 * i32::from(b[1]);
            }
        }
    }
}

/// Accumulates one [`MR`]`×`[`NR`] `f32` tile of `A_strip · B_strip`
/// into `acc` over `kc` k-steps of plain (non-interleaved) panel
/// strips: `pa` is `kc * MR` elements (`[p][r]`), `pb` is `kc * NR`
/// elements (`[p][c]`).
///
/// Every tier issues the identical per-element multiply/add sequence
/// (two independent chains per accumulator row, k-steps in pairs, no
/// FMA contraction), so results are **bit-identical** across tiers —
/// selecting AVX2 changes latency, never numerics.
///
/// # Panics
///
/// Panics if either slice is shorter than the layout requires.
#[inline]
pub fn madd_tile_f32(pa: &[f32], pb: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    assert!(
        pa.len() >= kc * MR && pb.len() >= kc * NR,
        "strip buffers shorter than {kc} k-steps"
    );
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        Tier::Avx2 => x86::madd_tile_f32_avx2(pa, pb, kc, acc),
        // The SSE2 tier has no hand-written f32 kernel: the scalar
        // form below auto-vectorises to the same 4-wide SSE code the
        // baseline target allows, so intrinsics would buy nothing.
        _ => madd_tile_f32_scalar(pa, pb, kc, acc),
    }
}

/// Portable scalar form of [`madd_tile_f32`]: the fallback on
/// non-AVX2 tiers and the oracle the AVX2 path is tested against.
/// Two k-steps per iteration — halves the loop overhead and gives the
/// scheduler two independent chains per accumulator row.
pub fn madd_tile_f32_scalar(pa: &[f32], pb: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    assert!(pa.len() >= kc * MR && pb.len() >= kc * NR);
    let mut ap2 = pa[..kc * MR].chunks_exact(2 * MR);
    let mut bp2 = pb[..kc * NR].chunks_exact(2 * NR);
    for (ap, bp) in (&mut ap2).zip(&mut bp2) {
        for (r, row) in acc.iter_mut().enumerate() {
            let av = ap[r];
            for (x, &bv) in row.iter_mut().zip(&bp[..NR]) {
                *x += av * bv;
            }
        }
        for (r, row) in acc.iter_mut().enumerate() {
            let av = ap[MR + r];
            for (x, &bv) in row.iter_mut().zip(&bp[NR..]) {
                *x += av * bv;
            }
        }
    }
    for (ap, bp) in ap2
        .remainder()
        .chunks_exact(MR)
        .zip(bp2.remainder().chunks_exact(NR))
    {
        for (r, row) in acc.iter_mut().enumerate() {
            let av = ap[r];
            for (x, &bv) in row.iter_mut().zip(bp) {
                *x += av * bv;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! SSE2 and AVX2 tile kernels. SSE2 is part of the x86-64 baseline
    //! ABI, so that path needs no runtime feature detection; the AVX2
    //! entry points are only reached after `active_tier()` confirmed
    //! `is_x86_feature_detected!("avx2")`.
    #![allow(unsafe_code)]

    use super::{MR, NR};
    use core::arch::x86_64::{
        __m128i, __m256, __m256i, _mm256_add_epi32, _mm256_add_ps, _mm256_loadu_ps,
        _mm256_loadu_si256, _mm256_madd_epi16, _mm256_mul_ps, _mm256_set1_epi32, _mm256_set1_ps,
        _mm256_setzero_ps, _mm256_setzero_si256, _mm256_storeu_ps, _mm256_storeu_si256,
        _mm_add_epi32, _mm_loadu_si128, _mm_madd_epi16, _mm_setzero_si128, _mm_shuffle_epi32,
        _mm_storeu_si128,
    };

    /// See [`super::madd_tile_i16`]; caller has checked the slice
    /// lengths.
    pub(super) fn madd_tile_sse2(pa: &[i16], pb: &[i16], pairs: usize, acc: &mut [[i32; NR]; MR]) {
        debug_assert!(pa.len() >= pairs * 2 * MR && pb.len() >= pairs * 2 * NR);
        // Four i32x4 accumulator vectors per row: the whole MR×NR
        // tile lives in xmm registers across the k loop.
        let mut c: [[__m128i; 4]; MR] =
            // SAFETY: `_mm_setzero_si128` has no preconditions (SSE2,
            // baseline on x86_64).
            unsafe { [[_mm_setzero_si128(); 4]; MR] };
        for q in 0..pairs {
            // Bounds-checked subslices: every 8-lane load below reads
            // exactly the 16 bytes these slices prove are in range.
            let ap: &[i16] = &pa[q * 2 * MR..][..2 * MR];
            let bp: &[i16] = &pb[q * 2 * NR..][..2 * NR];
            // SAFETY: `_mm_loadu_si128` reads 16 unaligned bytes; each
            // pointer is derived from an in-bounds 8-element `i16`
            // subslice (16 bytes exactly). All intrinsics are SSE2.
            unsafe {
                let aw = _mm_loadu_si128(ap.as_ptr().cast());
                let b0 = _mm_loadu_si128(bp[0..8].as_ptr().cast());
                let b1 = _mm_loadu_si128(bp[8..16].as_ptr().cast());
                let b2 = _mm_loadu_si128(bp[16..24].as_ptr().cast());
                let b3 = _mm_loadu_si128(bp[24..32].as_ptr().cast());
                // Broadcast row r's (even, odd) i16 pair — one 32-bit
                // lane of `aw` — against every column pair.
                macro_rules! row {
                    ($r:expr, $imm:expr) => {{
                        let ar = _mm_shuffle_epi32(aw, $imm);
                        c[$r][0] = _mm_add_epi32(c[$r][0], _mm_madd_epi16(ar, b0));
                        c[$r][1] = _mm_add_epi32(c[$r][1], _mm_madd_epi16(ar, b1));
                        c[$r][2] = _mm_add_epi32(c[$r][2], _mm_madd_epi16(ar, b2));
                        c[$r][3] = _mm_add_epi32(c[$r][3], _mm_madd_epi16(ar, b3));
                    }};
                }
                row!(0, 0x00);
                row!(1, 0x55);
                row!(2, 0xAA);
                row!(3, 0xFF);
            }
        }
        for (row, vecs) in acc.iter_mut().zip(&c) {
            for (seg, v) in row.chunks_exact_mut(4).zip(vecs) {
                let mut out = [0i32; 4];
                // SAFETY: `_mm_storeu_si128` writes 16 unaligned bytes
                // into `out`, a local `[i32; 4]` (16 bytes exactly).
                unsafe { _mm_storeu_si128(out.as_mut_ptr().cast(), *v) };
                for (d, &x) in seg.iter_mut().zip(&out) {
                    *d += x;
                }
            }
        }
    }

    /// AVX2 form of [`super::madd_tile_i16`]: the same `pmaddwd`
    /// reduction, 16 lanes (two 256-bit accumulators per row) instead
    /// of SSE2's four 128-bit ones. Caller has checked the slice
    /// lengths and runtime AVX2 support.
    pub(super) fn madd_tile_i16_avx2(
        pa: &[i16],
        pb: &[i16],
        pairs: usize,
        acc: &mut [[i32; NR]; MR],
    ) {
        debug_assert!(pa.len() >= pairs * 2 * MR && pb.len() >= pairs * 2 * NR);
        // SAFETY: `active_tier()` only selects this path after
        // `is_x86_feature_detected!("avx2")` confirmed support.
        unsafe { madd_tile_i16_avx2_impl(pa, pb, pairs, acc) }
    }

    /// # Safety
    ///
    /// Requires AVX2 at runtime. The intrinsic calls inside are safe
    /// under the enclosing `target_feature`; the unaligned loads and
    /// stores read/write exactly the bytes their in-bounds subslices
    /// prove are in range.
    #[target_feature(enable = "avx2")]
    unsafe fn madd_tile_i16_avx2_impl(
        pa: &[i16],
        pb: &[i16],
        pairs: usize,
        acc: &mut [[i32; NR]; MR],
    ) {
        // Two i32x8 accumulator vectors per row (8 ymm total).
        let mut c: [[__m256i; 2]; MR] = [[_mm256_setzero_si256(); 2]; MR];
        for q in 0..pairs {
            let ap: &[i16] = &pa[q * 2 * MR..][..2 * MR];
            let bp: &[i16] = &pb[q * 2 * NR..][..2 * NR];
            // Each load covers an in-bounds 16-element `i16` subslice
            // (32 bytes exactly).
            let b0 = _mm256_loadu_si256(bp[0..16].as_ptr().cast());
            let b1 = _mm256_loadu_si256(bp[16..32].as_ptr().cast());
            for r in 0..MR {
                // Row r's (even, odd) i16 pair packed into one i32
                // lane, broadcast against every column pair.
                let pair = (ap[2 * r] as u16 as u32 | (ap[2 * r + 1] as u16 as u32) << 16) as i32;
                let ar = _mm256_set1_epi32(pair);
                c[r][0] = _mm256_add_epi32(c[r][0], _mm256_madd_epi16(ar, b0));
                c[r][1] = _mm256_add_epi32(c[r][1], _mm256_madd_epi16(ar, b1));
            }
        }
        for (row, vecs) in acc.iter_mut().zip(&c) {
            for (seg, v) in row.chunks_exact_mut(8).zip(vecs) {
                let mut out = [0i32; 8];
                // Writes 32 bytes into `out`, a local `[i32; 8]`.
                _mm256_storeu_si256(out.as_mut_ptr().cast(), *v);
                for (d, &x) in seg.iter_mut().zip(&out) {
                    *d += x;
                }
            }
        }
    }

    /// AVX2 form of [`super::madd_tile_f32`]: the scalar kernel's
    /// exact multiply/add sequence, 8 lanes per instruction.
    /// Deliberately `vmulps` + `vaddps` (no FMA contraction) in the
    /// scalar loop's per-element operation order, so the result is
    /// bit-identical to [`super::madd_tile_f32_scalar`]. Caller has
    /// checked the slice lengths and runtime AVX2 support.
    pub(super) fn madd_tile_f32_avx2(pa: &[f32], pb: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
        debug_assert!(pa.len() >= kc * MR && pb.len() >= kc * NR);
        // SAFETY: `active_tier()` only selects this path after
        // `is_x86_feature_detected!("avx2")` confirmed support.
        unsafe { madd_tile_f32_avx2_impl(pa, pb, kc, acc) }
    }

    /// # Safety
    ///
    /// Requires AVX2 at runtime. The intrinsic calls inside are safe
    /// under the enclosing `target_feature`; every unaligned load and
    /// store covers an in-bounds 8-element `f32` subslice (32 bytes
    /// exactly).
    #[target_feature(enable = "avx2")]
    unsafe fn madd_tile_f32_avx2_impl(
        pa: &[f32],
        pb: &[f32],
        kc: usize,
        acc: &mut [[f32; NR]; MR],
    ) {
        // Two f32x8 accumulator vectors per row, seeded from `acc` so
        // accumulation order matches the scalar in-place form exactly.
        let mut c: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        for (cr, row) in c.iter_mut().zip(acc.iter()) {
            cr[0] = _mm256_loadu_ps(row[0..8].as_ptr());
            cr[1] = _mm256_loadu_ps(row[8..16].as_ptr());
        }
        let mut q = 0;
        // Paired k-steps, then an odd tail — the scalar kernel's
        // structure, so the add sequence per lane is identical.
        while q + 2 <= kc {
            let ap = &pa[q * MR..][..2 * MR];
            let bp = &pb[q * NR..][..2 * NR];
            let b0 = _mm256_loadu_ps(bp[0..8].as_ptr());
            let b1 = _mm256_loadu_ps(bp[8..16].as_ptr());
            for (r, cr) in c.iter_mut().enumerate() {
                let av = _mm256_set1_ps(ap[r]);
                cr[0] = _mm256_add_ps(cr[0], _mm256_mul_ps(av, b0));
                cr[1] = _mm256_add_ps(cr[1], _mm256_mul_ps(av, b1));
            }
            let b2 = _mm256_loadu_ps(bp[16..24].as_ptr());
            let b3 = _mm256_loadu_ps(bp[24..32].as_ptr());
            for (r, cr) in c.iter_mut().enumerate() {
                let av = _mm256_set1_ps(ap[MR + r]);
                cr[0] = _mm256_add_ps(cr[0], _mm256_mul_ps(av, b2));
                cr[1] = _mm256_add_ps(cr[1], _mm256_mul_ps(av, b3));
            }
            q += 2;
        }
        if q < kc {
            let ap = &pa[q * MR..][..MR];
            let bp = &pb[q * NR..][..NR];
            let b0 = _mm256_loadu_ps(bp[0..8].as_ptr());
            let b1 = _mm256_loadu_ps(bp[8..16].as_ptr());
            for (r, cr) in c.iter_mut().enumerate() {
                let av = _mm256_set1_ps(ap[r]);
                cr[0] = _mm256_add_ps(cr[0], _mm256_mul_ps(av, b0));
                cr[1] = _mm256_add_ps(cr[1], _mm256_mul_ps(av, b1));
            }
        }
        for (row, vecs) in acc.iter_mut().zip(&c) {
            _mm256_storeu_ps(row[0..8].as_mut_ptr(), vecs[0]);
            _mm256_storeu_ps(row[8..16].as_mut_ptr(), vecs[1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, seed: i32) -> Vec<i16> {
        (0..len)
            .map(|i| ((i as i32 * 37 + seed) % 255 - 127) as i16)
            .collect()
    }

    fn pattern_f32(len: usize, seed: i32) -> Vec<f32> {
        (0..len)
            .map(|i| ((i as i32 * 31 + seed) % 255 - 127) as f32 * 0.013)
            .collect()
    }

    #[test]
    fn force_env_caps_but_never_raises_the_tier() {
        assert_eq!(tier_for(Some("scalar"), Tier::Avx2), Tier::Scalar);
        assert_eq!(tier_for(Some("sse2"), Tier::Avx2), Tier::Sse2);
        assert_eq!(tier_for(Some("avx2"), Tier::Avx2), Tier::Avx2);
        // A cap above the machine's best tier cannot raise it.
        assert_eq!(tier_for(Some("avx2"), Tier::Sse2), Tier::Sse2);
        assert_eq!(tier_for(Some("avx2"), Tier::Scalar), Tier::Scalar);
        assert_eq!(tier_for(Some("sse2"), Tier::Scalar), Tier::Scalar);
        // Unset / unrecognised values leave the detected tier alone.
        assert_eq!(tier_for(None, Tier::Avx2), Tier::Avx2);
        assert_eq!(tier_for(Some("neon"), Tier::Sse2), Tier::Sse2);
    }

    #[test]
    fn dispatch_matches_scalar_oracle() {
        for pairs in [0usize, 1, 2, 7, 72, 513] {
            let pa = pattern(pairs * 2 * MR, 1);
            let pb = pattern(pairs * 2 * NR, 2);
            let mut got = [[3i32; NR]; MR];
            let mut want = [[3i32; NR]; MR];
            madd_tile_i16(&pa, &pb, pairs, &mut got);
            madd_tile_scalar(&pa, &pb, pairs, &mut want);
            assert_eq!(got, want, "pairs = {pairs}");
        }
    }

    /// Every x86 tier — not just the dispatched one — must agree with
    /// the scalar oracle bit for bit.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn every_i16_tier_matches_scalar_oracle() {
        for pairs in [0usize, 1, 2, 7, 72, 513] {
            let pa = pattern(pairs * 2 * MR, 3);
            let pb = pattern(pairs * 2 * NR, 4);
            let mut want = [[7i32; NR]; MR];
            madd_tile_scalar(&pa, &pb, pairs, &mut want);
            let mut sse = [[7i32; NR]; MR];
            x86::madd_tile_sse2(&pa, &pb, pairs, &mut sse);
            assert_eq!(sse, want, "sse2, pairs = {pairs}");
            if std::arch::is_x86_feature_detected!("avx2") {
                let mut avx = [[7i32; NR]; MR];
                x86::madd_tile_i16_avx2(&pa, &pb, pairs, &mut avx);
                assert_eq!(avx, want, "avx2, pairs = {pairs}");
            }
        }
    }

    #[test]
    fn f32_dispatch_matches_scalar_oracle_bitwise() {
        for kc in [0usize, 1, 2, 3, 7, 64, 255] {
            let pa = pattern_f32(kc * MR, 5);
            let pb = pattern_f32(kc * NR, 6);
            let mut got = [[0.25f32; NR]; MR];
            let mut want = [[0.25f32; NR]; MR];
            madd_tile_f32(&pa, &pb, kc, &mut got);
            madd_tile_f32_scalar(&pa, &pb, kc, &mut want);
            for (g, w) in got.iter().flatten().zip(want.iter().flatten()) {
                assert_eq!(g.to_bits(), w.to_bits(), "kc = {kc}");
            }
        }
    }

    /// The AVX2 f32 tile must be bit-identical to the scalar oracle —
    /// same multiply/add sequence, no FMA contraction — including odd
    /// k-counts (tail step) and accumulation on top of a non-zero
    /// tile.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn f32_avx2_tier_is_bit_identical_to_scalar() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        for kc in [0usize, 1, 2, 3, 7, 64, 255] {
            let pa = pattern_f32(kc * MR, 8);
            let pb = pattern_f32(kc * NR, 9);
            let mut seed = [[0.0f32; NR]; MR];
            for (i, v) in seed.iter_mut().flatten().enumerate() {
                *v = (i as f32 - 31.0) * 0.125;
            }
            let mut want = seed;
            madd_tile_f32_scalar(&pa, &pb, kc, &mut want);
            let mut got = seed;
            x86::madd_tile_f32_avx2(&pa, &pb, kc, &mut got);
            for (g, w) in got.iter().flatten().zip(want.iter().flatten()) {
                assert_eq!(g.to_bits(), w.to_bits(), "kc = {kc}");
            }
        }
    }

    #[test]
    fn accumulates_on_top_of_existing_tile() {
        let pa = pattern(2 * MR, 5);
        let pb = pattern(2 * NR, 6);
        let mut once = [[0i32; NR]; MR];
        madd_tile_i16(&pa, &pb, 1, &mut once);
        let mut twice = [[0i32; NR]; MR];
        madd_tile_i16(&pa, &pb, 1, &mut twice);
        madd_tile_i16(&pa, &pb, 1, &mut twice);
        for (a, b) in once.iter().flatten().zip(twice.iter().flatten()) {
            assert_eq!(2 * a, *b);
        }
    }

    #[test]
    fn known_value_tile() {
        // a row r = [r+1, 1], b col c = [c, 2] for both k-steps of the
        // single pair: acc[r][c] = (r+1)*c + 1*2.
        let mut pa = [0i16; 2 * MR];
        for r in 0..MR {
            pa[2 * r] = r as i16 + 1;
            pa[2 * r + 1] = 1;
        }
        let mut pb = [0i16; 2 * NR];
        for c in 0..NR {
            pb[2 * c] = c as i16;
            pb[2 * c + 1] = 2;
        }
        let mut acc = [[0i32; NR]; MR];
        madd_tile_i16(&pa, &pb, 1, &mut acc);
        for (r, row) in acc.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                assert_eq!(v, (r as i32 + 1) * c as i32 + 2, "acc[{r}][{c}]");
            }
        }
    }

    #[test]
    #[should_panic(expected = "k-pairs")]
    fn short_buffer_rejected() {
        let pa = [0i16; 4];
        let pb = [0i16; 2 * NR];
        let mut acc = [[0i32; NR]; MR];
        madd_tile_i16(&pa, &pb, 1, &mut acc);
    }

    #[test]
    #[should_panic(expected = "k-steps")]
    fn short_f32_buffer_rejected() {
        let pa = [0.0f32; 4];
        let pb = [0.0f32; 2 * NR];
        let mut acc = [[0.0f32; NR]; MR];
        madd_tile_f32(&pa, &pb, 2, &mut acc);
    }

    /// Extremes of the int8 grid across a long reduction: exactness of
    /// the i32 accumulation at the values the quantiser can produce.
    #[test]
    fn grid_extremes_accumulate_exactly() {
        let pairs = 500;
        let pa = vec![127i16; pairs * 2 * MR];
        let pb = vec![-127i16; pairs * 2 * NR];
        let mut acc = [[0i32; NR]; MR];
        madd_tile_i16(&pa, &pb, pairs, &mut acc);
        let want = -(127 * 127) * 2 * pairs as i32;
        assert!(acc.iter().flatten().all(|&v| v == want));
    }
}
