//! # eml-simd
//!
//! Arch-specific micro-kernel primitives for the `emlrt` workspace —
//! the "arch intrinsics behind a feature gate" rung of the ROADMAP.
//! This is deliberately the **only** product crate that contains
//! `unsafe`: one narrowly-scoped block per intrinsic kernel, with the
//! safety argument written out, and a portable scalar implementation
//! that is both the non-x86 fallback and the test oracle.
//!
//! The sole kernel today is [`madd_tile_i16`]: the inner tile of the
//! quantised int8 GEMM (`eml_nn::gemm::int8`). Values are int8-grid
//! quantised (`[-127, 127]`) but **stored as `i16` in pair-interleaved
//! panels**, because the one integer multiply-accumulate instruction
//! the x86-64 *baseline* (SSE2) offers — `pmaddwd` — consumes adjacent
//! `i16` pairs: `acc_i32 += a0·b0 + a1·b1` per lane, 8 MACs per
//! instruction, twice the `f32` `mulps+addps` rate. Auto-vectorisation
//! cannot be coaxed into emitting it reliably (measured: the best
//! scalar formulation runs ~2× *slower* than the f32 kernel), which is
//! why this crate exists.
//!
//! # Panel layout
//!
//! For a register tile of [`MR8`]`×`[`NR8`] and a depth slice of
//! `pairs` k-pairs (odd depths are zero-padded to even by the packers):
//!
//! ```text
//! A strip: [q][r][2] — pairs * 2*MR8 i16   (one 16-byte row per pair)
//! B strip: [q][c][2] — pairs * 2*NR8 i16   (four 16-byte rows per pair)
//! ```
//!
//! i.e. for k-pair `q`, row `r` of A holds `(a[2q][r], a[2q+1][r])`
//! adjacently, and column `c` of B holds `(b[2q][c], b[2q+1][c])`
//! adjacently — exactly the operand shape `pmaddwd` multiplies.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// Register tile height (rows of the accumulator tile).
pub const MR8: usize = 4;
/// Register tile width (columns of the accumulator tile).
pub const NR8: usize = 16;

/// Accumulates one [`MR8`]`×`[`NR8`] `i32` tile of `A_strip · B_strip`
/// into `acc`, where both strips hold int8-grid values in the
/// pair-interleaved `i16` layout above: `pa` is `pairs * 2*MR8`
/// elements, `pb` is `pairs * 2*NR8` elements.
///
/// The accumulation is exact integer arithmetic: with values in
/// `[-127, 127]` each pair sum is at most `2·127² = 32258`, so the
/// `i16×i16→i32` pairwise products never overflow an `i32` lane for
/// any depth the caller's overflow guard admits.
///
/// # Panics
///
/// Panics if either slice is shorter than the layout requires.
#[inline]
pub fn madd_tile_i16(pa: &[i16], pb: &[i16], pairs: usize, acc: &mut [[i32; NR8]; MR8]) {
    assert!(
        pa.len() >= pairs * 2 * MR8 && pb.len() >= pairs * 2 * NR8,
        "strip buffers shorter than {pairs} k-pairs"
    );
    #[cfg(target_arch = "x86_64")]
    x86::madd_tile_sse2(pa, pb, pairs, acc);
    #[cfg(not(target_arch = "x86_64"))]
    madd_tile_scalar(pa, pb, pairs, acc);
}

/// Portable scalar form of [`madd_tile_i16`]: the non-x86 fallback and
/// the oracle the intrinsics path is tested against.
pub fn madd_tile_scalar(pa: &[i16], pb: &[i16], pairs: usize, acc: &mut [[i32; NR8]; MR8]) {
    assert!(pa.len() >= pairs * 2 * MR8 && pb.len() >= pairs * 2 * NR8);
    for q in 0..pairs {
        let ap = &pa[q * 2 * MR8..][..2 * MR8];
        let bp = &pb[q * 2 * NR8..][..2 * NR8];
        for (r, row) in acc.iter_mut().enumerate() {
            let a0 = i32::from(ap[2 * r]);
            let a1 = i32::from(ap[2 * r + 1]);
            for (x, b) in row.iter_mut().zip(bp.chunks_exact(2)) {
                *x += a0 * i32::from(b[0]) + a1 * i32::from(b[1]);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! SSE2 `pmaddwd` tile kernel. SSE2 is part of the x86-64 baseline
    //! ABI, so this path needs no runtime feature detection.
    #![allow(unsafe_code)]

    use super::{MR8, NR8};
    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_loadu_si128, _mm_madd_epi16, _mm_setzero_si128,
        _mm_shuffle_epi32, _mm_storeu_si128,
    };

    /// See [`super::madd_tile_i16`]; caller has checked the slice
    /// lengths.
    pub(super) fn madd_tile_sse2(
        pa: &[i16],
        pb: &[i16],
        pairs: usize,
        acc: &mut [[i32; NR8]; MR8],
    ) {
        debug_assert!(pa.len() >= pairs * 2 * MR8 && pb.len() >= pairs * 2 * NR8);
        // Four i32x4 accumulator vectors per row: the whole MR8×NR8
        // tile lives in xmm registers across the k loop.
        let mut c: [[__m128i; 4]; MR8] =
            // SAFETY: `_mm_setzero_si128` has no preconditions (SSE2,
            // baseline on x86_64).
            unsafe { [[_mm_setzero_si128(); 4]; MR8] };
        for q in 0..pairs {
            // Bounds-checked subslices: every 8-lane load below reads
            // exactly the 16 bytes these slices prove are in range.
            let ap: &[i16] = &pa[q * 2 * MR8..][..2 * MR8];
            let bp: &[i16] = &pb[q * 2 * NR8..][..2 * NR8];
            // SAFETY: `_mm_loadu_si128` reads 16 unaligned bytes; each
            // pointer is derived from an in-bounds 8-element `i16`
            // subslice (16 bytes exactly). All intrinsics are SSE2.
            unsafe {
                let aw = _mm_loadu_si128(ap.as_ptr().cast());
                let b0 = _mm_loadu_si128(bp[0..8].as_ptr().cast());
                let b1 = _mm_loadu_si128(bp[8..16].as_ptr().cast());
                let b2 = _mm_loadu_si128(bp[16..24].as_ptr().cast());
                let b3 = _mm_loadu_si128(bp[24..32].as_ptr().cast());
                // Broadcast row r's (even, odd) i16 pair — one 32-bit
                // lane of `aw` — against every column pair.
                macro_rules! row {
                    ($r:expr, $imm:expr) => {{
                        let ar = _mm_shuffle_epi32(aw, $imm);
                        c[$r][0] = _mm_add_epi32(c[$r][0], _mm_madd_epi16(ar, b0));
                        c[$r][1] = _mm_add_epi32(c[$r][1], _mm_madd_epi16(ar, b1));
                        c[$r][2] = _mm_add_epi32(c[$r][2], _mm_madd_epi16(ar, b2));
                        c[$r][3] = _mm_add_epi32(c[$r][3], _mm_madd_epi16(ar, b3));
                    }};
                }
                row!(0, 0x00);
                row!(1, 0x55);
                row!(2, 0xAA);
                row!(3, 0xFF);
            }
        }
        for (row, vecs) in acc.iter_mut().zip(&c) {
            for (seg, v) in row.chunks_exact_mut(4).zip(vecs) {
                let mut out = [0i32; 4];
                // SAFETY: `_mm_storeu_si128` writes 16 unaligned bytes
                // into `out`, a local `[i32; 4]` (16 bytes exactly).
                unsafe { _mm_storeu_si128(out.as_mut_ptr().cast(), *v) };
                for (d, &x) in seg.iter_mut().zip(&out) {
                    *d += x;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, seed: i32) -> Vec<i16> {
        (0..len)
            .map(|i| ((i as i32 * 37 + seed) % 255 - 127) as i16)
            .collect()
    }

    #[test]
    fn dispatch_matches_scalar_oracle() {
        for pairs in [0usize, 1, 2, 7, 72, 513] {
            let pa = pattern(pairs * 2 * MR8, 1);
            let pb = pattern(pairs * 2 * NR8, 2);
            let mut got = [[3i32; NR8]; MR8];
            let mut want = [[3i32; NR8]; MR8];
            madd_tile_i16(&pa, &pb, pairs, &mut got);
            madd_tile_scalar(&pa, &pb, pairs, &mut want);
            assert_eq!(got, want, "pairs = {pairs}");
        }
    }

    #[test]
    fn accumulates_on_top_of_existing_tile() {
        let pa = pattern(2 * MR8, 5);
        let pb = pattern(2 * NR8, 6);
        let mut once = [[0i32; NR8]; MR8];
        madd_tile_i16(&pa, &pb, 1, &mut once);
        let mut twice = [[0i32; NR8]; MR8];
        madd_tile_i16(&pa, &pb, 1, &mut twice);
        madd_tile_i16(&pa, &pb, 1, &mut twice);
        for (a, b) in once.iter().flatten().zip(twice.iter().flatten()) {
            assert_eq!(2 * a, *b);
        }
    }

    #[test]
    fn known_value_tile() {
        // a row r = [r+1, 1], b col c = [c, 2] for both k-steps of the
        // single pair: acc[r][c] = (r+1)*c + 1*2.
        let mut pa = [0i16; 2 * MR8];
        for r in 0..MR8 {
            pa[2 * r] = r as i16 + 1;
            pa[2 * r + 1] = 1;
        }
        let mut pb = [0i16; 2 * NR8];
        for c in 0..NR8 {
            pb[2 * c] = c as i16;
            pb[2 * c + 1] = 2;
        }
        let mut acc = [[0i32; NR8]; MR8];
        madd_tile_i16(&pa, &pb, 1, &mut acc);
        for (r, row) in acc.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                assert_eq!(v, (r as i32 + 1) * c as i32 + 2, "acc[{r}][{c}]");
            }
        }
    }

    #[test]
    #[should_panic(expected = "k-pairs")]
    fn short_buffer_rejected() {
        let pa = [0i16; 4];
        let pb = [0i16; 2 * NR8];
        let mut acc = [[0i32; NR8]; MR8];
        madd_tile_i16(&pa, &pb, 1, &mut acc);
    }

    /// Extremes of the int8 grid across a long reduction: exactness of
    /// the i32 accumulation at the values the quantiser can produce.
    #[test]
    fn grid_extremes_accumulate_exactly() {
        let pairs = 500;
        let pa = vec![127i16; pairs * 2 * MR8];
        let pb = vec![-127i16; pairs * 2 * NR8];
        let mut acc = [[0i32; NR8]; MR8];
        madd_tile_i16(&pa, &pb, pairs, &mut acc);
        let want = -(127 * 127) * 2 * pairs as i32;
        assert!(acc.iter().flatten().all(|&v| v == want));
    }
}
