//! Emits `BENCH_nn.json`: the machine-readable perf baseline of the
//! hot paths — median forward-pass latency per width (batch 1, on the
//! reference, f32 GEMM, dynamic-scale int8 and calibrated *chained*
//! int8 backends; batch 32 on the chained int8 backend, the serving
//! executor's micro-batched path), median training-step latency per
//! width (batches 8 and 32, GEMM backend) and the RTM's `allocate`
//! decision latency.
//! Later PRs compare against this baseline to track the perf
//! trajectory. `chained_quant_gemm_ns` measures the frozen-scale
//! pipeline (`Network::calibrate` + chained plan); `quant_gemm_ns`
//! stays the dynamic per-batch-scale path.
//!
//! Usage: `cargo run --release -p eml-bench --bin bench_nn_json
//! [-- --out PATH] [-- --quick] [-- --check BASELINE]`
//!
//! - `--quick` shrinks sample counts for CI smoke runs.
//! - `--check BASELINE` compares the fresh measurement against a
//!   committed baseline file and exits non-zero if any width's
//!   `gemm_ns`, `quant_gemm_ns` or `chained_quant_gemm_ns` regressed
//!   by more than 25% (training steps get a looser 35%). Because CI runners and dev
//!   machines differ in absolute speed, the comparison is normalised by
//!   the reference backend: the reference loop nest is rarely touched,
//!   so `reference_ns(now)/reference_ns(baseline)` estimates the
//!   machine-speed ratio and cancels it out of the `gemm_ns`
//!   comparison. A change that slows both backends equally slips
//!   through; the absolute numbers are printed so a human can spot it.

use std::hint::black_box;
use std::time::Instant;

use eml_core::requirements::Requirements;
use eml_core::rtm::{AppSpec, DnnAppSpec, RigidAppSpec, Rtm, RtmConfig};
use eml_dnn::profile::DnnProfile;
use eml_nn::arch::{build_group_cnn, CnnConfig};
use eml_nn::gemm::Backend;
use eml_nn::network::Network;
use eml_nn::tensor::Tensor;
use eml_platform::presets;
use eml_platform::soc::CoreKind;
use eml_platform::units::TimeSpan;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Batch size of the training-step measurement (the mid-sized batch
/// embedded incremental training uses — see ISSUE 2 / ROADMAP).
const TRAIN_BATCH: usize = 8;

/// Batch size of the second training-step measurement (the larger
/// batch the ROADMAP calls out for amortised-lowering throughput).
const TRAIN_BATCH_32: usize = 32;

/// Maximum tolerated normalised `gemm_ns` regression in `--check` mode.
const MAX_REGRESSION: f64 = 1.25;

/// Looser bound for `train_step_ns`: a full training step has more
/// non-kernel variance (allocator, page faults, scheduler) than a
/// batch-1 forward, so its medians jitter more on shared runners.
const MAX_TRAIN_REGRESSION: f64 = 1.35;

struct Opts {
    out: String,
    samples: usize,
    target_sample_ns: u128,
    check: Option<String>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        out: "BENCH_nn.json".to_string(),
        samples: 15,
        target_sample_ns: 20_000_000,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                opts.out = args.next().expect("--out requires a path");
            }
            "--check" => {
                opts.check = Some(args.next().expect("--check requires a baseline path"));
            }
            "--quick" => {
                opts.samples = 3;
                opts.target_sample_ns = 2_000_000;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    opts
}

/// Median nanoseconds per call of `f`, over `samples` batched samples.
fn median_ns(opts: &Opts, mut f: impl FnMut()) -> f64 {
    // Warm up (fills scratch arenas, faults pages) and calibrate the
    // per-sample iteration count.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_nanos().max(100);
    let iters = (opts.target_sample_ns / once).clamp(1, 1_000_000) as usize;
    for _ in 0..iters.min(16) {
        f();
    }
    let mut means: Vec<f64> = (0..opts.samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    means[means.len() / 2]
}

fn forward_ns(opts: &Opts, net: &mut Network, x: &Tensor) -> f64 {
    median_ns(opts, || {
        black_box(net.forward(black_box(x), false).expect("forward"));
    })
}

/// Median latency of one full training step (zero grads, forward, loss,
/// backward, SGD update) at the network's current width.
fn train_step_ns(opts: &Opts, net: &mut Network, x: &Tensor, labels: &[usize]) -> f64 {
    median_ns(opts, || {
        net.zero_grads();
        let out = net
            .train_batch(black_box(x), black_box(labels))
            .expect("train batch");
        net.sgd_step(0.01, 0.9);
        black_box(out.loss);
    })
}

/// The RTM decision-latency scenario: three mixed-priority apps on the
/// flagship SoC (mirrors `perf_rtm`'s `rtm/allocate_three_apps`).
fn rtm_allocate_ns(opts: &Opts) -> f64 {
    let soc = presets::flagship();
    let rtm = Rtm::new(RtmConfig::default());
    let apps = vec![
        AppSpec::Dnn(DnnAppSpec {
            name: "dnn1".into(),
            profile: DnnProfile::reference("dnn1"),
            requirements: Requirements::new().with_max_latency(TimeSpan::from_millis(11.0)),
            priority: 1,
            objective: None,
        }),
        AppSpec::Dnn(DnnAppSpec {
            name: "dnn2".into(),
            profile: DnnProfile::reference("dnn2"),
            requirements: Requirements::new().with_target_fps(60.0),
            priority: 2,
            objective: None,
        }),
        AppSpec::Rigid(RigidAppSpec {
            name: "vr".into(),
            preferred: vec![CoreKind::Gpu],
            utilization: 0.9,
            priority: 3,
        }),
    ];
    median_ns(opts, || {
        black_box(
            rtm.allocate(black_box(&soc), black_box(&apps))
                .expect("allocates"),
        );
    })
}

/// Every `"key": <number>` occurrence in `json`, in order. Enough of a
/// parser for the flat format this binary itself writes.
fn extract_all(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == ' '))
            .unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            out.push(v);
        }
    }
    out
}

struct WidthRow {
    active_groups: usize,
    width_pct: usize,
    reference_ns: f64,
    gemm_ns: f64,
    quant_gemm_ns: f64,
    chained_quant_gemm_ns: f64,
    /// Whole-batch latency of a batch-32 chained int8 forward — the
    /// serving executor's micro-batched inference unit. Batching wins
    /// when this beats `32 × chained_quant_gemm_ns`.
    quant_fwd32_ns: f64,
    train_step_ns: f64,
    train_step32_ns: f64,
}

/// Compares fresh `rows` against the committed `baseline` JSON; returns
/// an error message per width whose machine-normalised `gemm_ns` (or
/// `quant_gemm_ns` / `train_step_ns` / `train_step32_ns`, when the
/// baseline records them) regressed past its threshold.
///
/// The reference-backend normalisation cancels *scalar* machine-speed
/// differences only; it cannot account for core-count differences
/// (reference is always serial, the GEMM path may parallelise), so the
/// CI step pins `RAYON_NUM_THREADS=1` to keep both sides serial.
fn check_regressions(rows: &[WidthRow], baseline: &str) -> Vec<String> {
    let base_groups = extract_all(baseline, "active_groups");
    let base_ref = extract_all(baseline, "reference_ns");
    let base_gemm = extract_all(baseline, "gemm_ns");
    let base_quant = extract_all(baseline, "quant_gemm_ns");
    let base_chained = extract_all(baseline, "chained_quant_gemm_ns");
    let base_fwd32 = extract_all(baseline, "quant_fwd32_ns");
    let base_train = extract_all(baseline, "train_step_ns");
    let base_train32 = extract_all(baseline, "train_step32_ns");
    assert!(
        base_groups.len() == base_ref.len() && base_groups.len() == base_gemm.len(),
        "malformed baseline: {} widths, {} reference_ns, {} gemm_ns",
        base_groups.len(),
        base_ref.len(),
        base_gemm.len()
    );
    let mut failures = Vec::new();
    println!("\nperf check vs baseline (machine-normalised by reference_ns):");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14} {:>8}",
        "width", "metric", "baseline", "allowed", "measured", "ratio"
    );
    for row in rows {
        let Some(i) = base_groups
            .iter()
            .position(|&g| g == row.active_groups as f64)
        else {
            println!("{:>7}% (not in baseline, skipped)", row.width_pct);
            continue;
        };
        let machine_scale = row.reference_ns / base_ref[i];
        // (metric name, baseline ns, measured ns, threshold); the
        // train row is skipped for baselines predating train_step_ns.
        let mut metrics = vec![("gemm_ns", base_gemm[i], row.gemm_ns, MAX_REGRESSION)];
        if let Some(&bq) = base_quant.get(i) {
            metrics.push(("quant_gemm_ns", bq, row.quant_gemm_ns, MAX_REGRESSION));
        }
        if let Some(&bc) = base_chained.get(i) {
            metrics.push((
                "chained_quant_gemm_ns",
                bc,
                row.chained_quant_gemm_ns,
                MAX_REGRESSION,
            ));
        }
        if let Some(&bf) = base_fwd32.get(i) {
            metrics.push(("quant_fwd32_ns", bf, row.quant_fwd32_ns, MAX_REGRESSION));
        }
        if let Some(&bt) = base_train.get(i) {
            metrics.push(("train_step_ns", bt, row.train_step_ns, MAX_TRAIN_REGRESSION));
        }
        if let Some(&bt) = base_train32.get(i) {
            metrics.push((
                "train_step32_ns",
                bt,
                row.train_step32_ns,
                MAX_TRAIN_REGRESSION,
            ));
        }
        for (name, base, measured, threshold) in metrics {
            let allowed = base * machine_scale * threshold;
            let ratio = measured / (base * machine_scale);
            let verdict = if measured > allowed { "FAIL" } else { "ok" };
            println!(
                "{:>7}% {:>14} {:>11.0} ns {:>11.0} ns {:>11.0} ns {:>7.2}x {verdict}",
                row.width_pct, name, base, allowed, measured, ratio
            );
            if measured > allowed {
                failures.push(format!(
                    "width {width}%: {name} {measured:.0} exceeds allowed {allowed:.0} \
                     (baseline {base:.0}, machine scale {machine_scale:.2})",
                    width = row.width_pct
                ));
            }
        }
    }
    failures
}

fn main() {
    let opts = parse_opts();
    let cfg = CnnConfig::default();
    let (c, h, w) = cfg.input;
    let x1 = Tensor::full(&[1, c, h, w], 0.1);
    let xt = Tensor::full(&[TRAIN_BATCH, c, h, w], 0.1);
    let xt32 = Tensor::full(&[TRAIN_BATCH_32, c, h, w], 0.1);
    let labels: Vec<usize> = (0..TRAIN_BATCH).map(|i| i % cfg.classes).collect();
    let labels32: Vec<usize> = (0..TRAIN_BATCH_32).map(|i| i % cfg.classes).collect();

    let mut rows = Vec::new();
    println!(
        "nn, default CnnConfig: forward batch 1, training step batches {} and {}",
        TRAIN_BATCH, TRAIN_BATCH_32
    );
    println!(
        "{:>8} {:>16} {:>16} {:>9} {:>16} {:>9} {:>16} {:>9} {:>14} {:>7} {:>14} {:>14}",
        "width",
        "reference",
        "gemm",
        "speedup",
        "quant_i8",
        "vs gemm",
        "chained_i8",
        "vs gemm",
        "qfwd32",
        "gain",
        "train8",
        "train32"
    );
    for g in 1..=cfg.groups {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = build_group_cnn(cfg, &mut rng).expect("valid arch");
        net.set_active_groups(g).expect("valid width");

        net.set_backend(Backend::Reference);
        let reference_ns = forward_ns(&opts, &mut net, &x1);
        net.set_backend(Backend::Gemm);
        let gemm_ns = forward_ns(&opts, &mut net, &x1);
        net.set_backend(Backend::QuantI8);
        let quant_gemm_ns = forward_ns(&opts, &mut net, &x1);
        // Static-calibration serving mode: freeze the activation
        // scales (the calibration batch doubles as the measured
        // input), which engages the chained int8 pipeline — no
        // per-layer f32 round trips, no per-batch max-abs sweeps.
        net.calibrate(std::slice::from_ref(&x1))
            .expect("calibration runs");
        assert!(
            net.plan_quant_chain().engaged(),
            "frozen QuantI8 network must chain"
        );
        let chained_quant_gemm_ns = forward_ns(&opts, &mut net, &x1);
        // Batch-32 on the same calibrated chained pipeline: the unit of
        // work the serving executor's micro-batcher issues. Throughput
        // (samples/s) should beat 32 independent batch-1 forwards —
        // per-forward fixed costs (plan lookup, scratch setup, output
        // allocation) amortise over the batch.
        let x32b = Tensor::full(&[32, c, h, w], 0.1);
        let quant_fwd32_ns = forward_ns(&opts, &mut net, &x32b);
        net.freeze_act_scales(false);
        // A fresh net for training so the timed steps don't inherit the
        // forward-bench weights; full trainable range, width g.
        let mut train_net = build_group_cnn(cfg, &mut StdRng::seed_from_u64(2)).expect("arch");
        train_net.set_active_groups(g).expect("valid width");
        let step_ns = train_step_ns(&opts, &mut train_net, &xt, &labels);
        let mut train_net32 = build_group_cnn(cfg, &mut StdRng::seed_from_u64(3)).expect("arch");
        train_net32.set_active_groups(g).expect("valid width");
        let step32_ns = train_step_ns(&opts, &mut train_net32, &xt32, &labels32);

        let pct = g * 100 / cfg.groups;
        let speedup = reference_ns / gemm_ns;
        let qspeedup = gemm_ns / quant_gemm_ns;
        let cspeedup = gemm_ns / chained_quant_gemm_ns;
        let batch_gain = 32.0 * chained_quant_gemm_ns / quant_fwd32_ns;
        println!(
            "{:>7}% {:>13.0} ns {:>13.0} ns {:>8.2}x {:>13.0} ns {:>8.2}x {:>13.0} ns {:>8.2}x \
             {:>11.0} ns {:>6.2}x {:>11.0} ns {:>11.0} ns",
            pct,
            reference_ns,
            gemm_ns,
            speedup,
            quant_gemm_ns,
            qspeedup,
            chained_quant_gemm_ns,
            cspeedup,
            quant_fwd32_ns,
            batch_gain,
            step_ns,
            step32_ns
        );
        rows.push(WidthRow {
            active_groups: g,
            width_pct: pct,
            reference_ns,
            gemm_ns,
            quant_gemm_ns,
            chained_quant_gemm_ns,
            quant_fwd32_ns,
            train_step_ns: step_ns,
            train_step32_ns: step32_ns,
        });
    }

    let rtm_ns = rtm_allocate_ns(&opts);
    println!("rtm/allocate (3 apps, flagship): {rtm_ns:.0} ns");

    let width_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"active_groups\": {}, \"width_pct\": {}, ",
                    "\"reference_ns\": {:.0}, \"gemm_ns\": {:.0}, ",
                    "\"speedup\": {:.3}, \"quant_gemm_ns\": {:.0}, ",
                    "\"quant_speedup\": {:.3}, \"chained_quant_gemm_ns\": {:.0}, ",
                    "\"chained_quant_speedup\": {:.3}, \"quant_fwd32_ns\": {:.0}, ",
                    "\"quant_fwd32_batch_gain\": {:.3}, \"train_step_ns\": {:.0}, ",
                    "\"train_step32_ns\": {:.0}}}"
                ),
                r.active_groups,
                r.width_pct,
                r.reference_ns,
                r.gemm_ns,
                r.reference_ns / r.gemm_ns,
                r.quant_gemm_ns,
                r.gemm_ns / r.quant_gemm_ns,
                r.chained_quant_gemm_ns,
                r.gemm_ns / r.chained_quant_gemm_ns,
                r.quant_fwd32_ns,
                32.0 * r.chained_quant_gemm_ns / r.quant_fwd32_ns,
                r.train_step_ns,
                r.train_step32_ns
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"nn/forward\",\n  \"config\": {{\"input\": [{c}, {h}, {w}], \
         \"classes\": {}, \"groups\": {}, \"base_width\": {}}},\n  \"batch\": 1,\n  \
         \"train_batch\": {TRAIN_BATCH},\n  \"train_batch32\": {TRAIN_BATCH_32},\n  \
         \"unit\": \"ns\",\n  \"widths\": [\n{}\n  ],\n  \
         \"rtm_allocate_ns\": {rtm_ns:.0}\n}}\n",
        cfg.classes,
        cfg.groups,
        cfg.base_width,
        width_rows.join(",\n")
    );
    std::fs::write(&opts.out, json).expect("write BENCH_nn.json");
    println!("wrote {}", opts.out);

    if let Some(baseline_path) = &opts.check {
        let baseline = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let failures = check_regressions(&rows, &baseline);
        if !failures.is_empty() {
            eprintln!("\nperf regression detected:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        println!(
            "perf check passed (thresholds: gemm {MAX_REGRESSION}x, \
             train {MAX_TRAIN_REGRESSION}x)"
        );
    }
}
