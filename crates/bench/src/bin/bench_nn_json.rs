//! Emits `BENCH_nn.json`: median forward-pass latency per width for the
//! reference and GEMM backends of the NN substrate, on the default
//! `CnnConfig`. Later PRs compare against this machine-readable
//! baseline to track the perf trajectory.
//!
//! Usage: `cargo run --release -p eml-bench --bin bench_nn_json
//! [-- --out PATH] [-- --quick]` — `--quick` shrinks sample counts for
//! CI smoke runs.

use std::hint::black_box;
use std::time::Instant;

use eml_nn::arch::{build_group_cnn, CnnConfig};
use eml_nn::gemm::Backend;
use eml_nn::network::Network;
use eml_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Opts {
    out: String,
    samples: usize,
    target_sample_ns: u128,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        out: "BENCH_nn.json".to_string(),
        samples: 15,
        target_sample_ns: 20_000_000,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                opts.out = args.next().expect("--out requires a path");
            }
            "--quick" => {
                opts.samples = 3;
                opts.target_sample_ns = 2_000_000;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    opts
}

/// Median nanoseconds per call of `f`, over `samples` batched samples.
fn median_ns(opts: &Opts, mut f: impl FnMut()) -> f64 {
    // Warm up (fills scratch arenas, faults pages) and calibrate the
    // per-sample iteration count.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_nanos().max(100);
    let iters = (opts.target_sample_ns / once).clamp(1, 1_000_000) as usize;
    for _ in 0..iters.min(16) {
        f();
    }
    let mut means: Vec<f64> = (0..opts.samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    means[means.len() / 2]
}

fn forward_ns(opts: &Opts, net: &mut Network, x: &Tensor) -> f64 {
    median_ns(opts, || {
        black_box(net.forward(black_box(x), false).expect("forward"));
    })
}

fn main() {
    let opts = parse_opts();
    let cfg = CnnConfig::default();
    let (c, h, w) = cfg.input;
    let x = Tensor::full(&[1, c, h, w], 0.1);

    let mut rows = Vec::new();
    println!("nn/forward, default CnnConfig, batch 1");
    println!(
        "{:>8} {:>16} {:>16} {:>9}",
        "width", "reference", "gemm", "speedup"
    );
    for g in 1..=cfg.groups {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = build_group_cnn(cfg, &mut rng).expect("valid arch");
        net.set_active_groups(g).expect("valid width");

        net.set_backend(Backend::Reference);
        let reference_ns = forward_ns(&opts, &mut net, &x);
        net.set_backend(Backend::Gemm);
        let gemm_ns = forward_ns(&opts, &mut net, &x);

        let pct = g * 100 / cfg.groups;
        let speedup = reference_ns / gemm_ns;
        println!(
            "{:>7}% {:>13.0} ns {:>13.0} ns {:>8.2}x",
            pct, reference_ns, gemm_ns, speedup
        );
        rows.push(format!(
            concat!(
                "    {{\"active_groups\": {}, \"width_pct\": {}, ",
                "\"reference_ns\": {:.0}, \"gemm_ns\": {:.0}, ",
                "\"speedup\": {:.3}}}"
            ),
            g, pct, reference_ns, gemm_ns, speedup
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"nn/forward\",\n  \"config\": {{\"input\": [{c}, {h}, {w}], \
         \"classes\": {}, \"groups\": {}, \"base_width\": {}}},\n  \"batch\": 1,\n  \
         \"unit\": \"ns/forward\",\n  \"widths\": [\n{}\n  ]\n}}\n",
        cfg.classes,
        cfg.groups,
        cfg.base_width,
        rows.join(",\n")
    );
    std::fs::write(&opts.out, json).expect("write BENCH_nn.json");
    println!("wrote {}", opts.out);
}
