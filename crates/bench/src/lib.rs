#![forbid(unsafe_code)]
//! Shared helpers for the table/figure regenerators in `benches/`.
//!
//! Each `harness = false` bench target reproduces one table or figure of
//! the paper and prints a paper-vs-measured comparison. These helpers keep
//! the output format consistent so `EXPERIMENTS.md` can quote it directly.

/// Relative error of `measured` against `reference`, in percent.
pub fn rel_err_percent(measured: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        return if measured == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (measured - reference).abs() / reference.abs() * 100.0
}

/// Prints a banner naming the experiment.
pub fn banner(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Prints a `PASS`/`FAIL` verdict line and returns whether it passed.
pub fn verdict(label: &str, ok: bool) -> bool {
    println!("[{}] {label}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// Simple fixed-width row printer.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Aggregates verdicts and panics at the end if any failed, so `cargo
/// bench` fails loudly when a reproduction regresses.
#[derive(Debug, Default)]
pub struct Verdicts {
    total: usize,
    failed: usize,
}

impl Verdicts {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one verdict (also prints it).
    pub fn check(&mut self, label: &str, ok: bool) {
        verdict(label, ok);
        self.total += 1;
        if !ok {
            self.failed += 1;
        }
    }

    /// Prints the summary and panics if anything failed.
    ///
    /// # Panics
    ///
    /// Panics when at least one verdict failed — this makes
    /// `cargo bench` exit non-zero on a reproduction regression.
    pub fn finish(self, experiment: &str) {
        println!(
            "\n{}: {}/{} checks passed",
            experiment,
            self.total - self.failed,
            self.total
        );
        assert_eq!(
            self.failed, 0,
            "{experiment}: {} checks failed",
            self.failed
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_err_basics() {
        assert_eq!(rel_err_percent(110.0, 100.0), 10.0);
        assert_eq!(rel_err_percent(90.0, 100.0), 10.0);
        assert_eq!(rel_err_percent(0.0, 0.0), 0.0);
        assert_eq!(rel_err_percent(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn row_is_right_aligned() {
        let s = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(s, "  a   bb");
    }

    #[test]
    fn verdicts_pass_when_all_ok() {
        let mut v = Verdicts::new();
        v.check("x", true);
        v.finish("test");
    }

    #[test]
    #[should_panic(expected = "1 checks failed")]
    fn verdicts_panic_on_failure() {
        let mut v = Verdicts::new();
        v.check("x", false);
        v.finish("test");
    }
}
