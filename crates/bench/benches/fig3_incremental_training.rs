//! Regenerates **Fig 3** of the paper: a dynamic DNN built with incremental
//! training and group-convolution pruning — trained live, then scaled at
//! runtime without retraining.
//!
//! Reproduced properties:
//! - group-wise incremental training (train group k, freeze groups < k,
//!   ignore groups > k);
//! - after training, any width 25/50/75/100 % is runtime-selectable with
//!   **bit-identical** narrow-width outputs (no retraining);
//! - compute cost scales with the active group count;
//! - all widths live in a single model memory footprint.
//!
//! ```sh
//! cargo bench --bench fig3_incremental_training
//! ```

use eml_bench::{banner, row, Verdicts};
use eml_dnn::{DynamicDnn, WidthLevel};
use eml_nn::arch::{build_group_cnn, CnnConfig};
use eml_nn::dataset::{make_batch, DatasetConfig, SyntheticVision};
use eml_nn::train::{train_incremental, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "Fig 3",
        "incremental training and runtime group-convolution pruning",
    );

    let data = SyntheticVision::generate(DatasetConfig {
        classes: 10,
        train_per_class: 200,
        test_per_class: 50,
        ..DatasetConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(2020);
    let mut net = build_group_cnn(
        CnnConfig {
            base_width: 16,
            ..CnnConfig::default()
        },
        &mut rng,
    )
    .expect("default architecture is valid");
    let total_params = net.cost().expect("cost model works").params_total;
    println!(
        "dataset: {} train / {} test, 10 classes; model: {} params, G=4 groups\n",
        data.train().len(),
        data.test().len(),
        total_params
    );

    let cfg = TrainConfig {
        epochs: 6,
        batch_size: 32,
        lr: 0.05,
        ..TrainConfig::default()
    };
    let report = train_incremental(&mut net, data.train(), Some(data.test()), &cfg)
        .expect("training succeeds");

    let widths = [8, 12, 12, 12, 14];
    println!(
        "{}",
        row(
            &[
                "width".into(),
                "top-1 (%)".into(),
                "loss".into(),
                "MACs frac".into(),
                "params used".into(),
            ],
            &widths
        )
    );
    let full_macs = net.cost_at(4).expect("valid width").macs;
    let mut accs = Vec::new();
    for step in &report.steps {
        let eval = step.eval.as_ref().expect("eval requested");
        let cost = net.cost_at(step.active_groups).expect("valid width");
        println!(
            "{}",
            row(
                &[
                    format!("{}%", step.active_groups * 25),
                    format!("{:.1}", eval.top1 * 100.0),
                    format!("{:.3}", step.epochs.last().expect("epochs ran").loss),
                    format!("{:.3}", cost.macs / full_macs),
                    format!("{}", cost.params),
                ],
                &widths
            )
        );
        accs.push(eval.top1);
    }
    println!();

    let mut verdicts = Verdicts::new();
    verdicts.check(
        &format!("every width clearly beats 10-class chance (got {accs:?})"),
        accs.iter().all(|&a| a > 0.3),
    );
    verdicts.check(
        "accuracy is non-decreasing with width (Fig 3/4b property)",
        accs.windows(2).all(|w| w[1] >= w[0] - 0.01),
    );
    let cost_ok = (1..=4).all(|g| {
        let frac = net.cost_at(g).expect("valid").macs / full_macs;
        (frac - g as f64 * 0.25).abs() < 0.01
    });
    verdicts.check(
        "compute cost scales 25/50/75/100% with active groups",
        cost_ok,
    );

    // Runtime switching without retraining: narrow outputs identical
    // before and after visiting other widths.
    let mut dnn =
        DynamicDnn::from_trained("fig3-dnn", net, &report).expect("trained report is complete");
    let (batch, _) = make_batch(data.test(), &(0..32).collect::<Vec<_>>());
    dnn.set_level(WidthLevel(0)).expect("level exists");
    let before = dnn.infer(&batch).expect("inference works");
    for l in [3, 1, 2, 0, 3, 0] {
        dnn.set_level(WidthLevel(l)).expect("level exists");
        let _ = dnn.infer(&batch).expect("inference works");
    }
    dnn.set_level(WidthLevel(0)).expect("level exists");
    let after = dnn.infer(&batch).expect("inference works");
    verdicts.check(
        &format!(
            "width switching is retraining-free: 25% predictions bit-identical after {} switches",
            dnn.switch_count()
        ),
        before == after,
    );

    let profile = dnn.profile();
    println!(
        "\nsingle dynamic model: {:.0} KiB; static baseline (4 separate models): {:.0} KiB ({:.2}x)",
        profile.model_bytes() / 1024.0,
        profile.static_baseline_bytes() / 1024.0,
        profile.static_baseline_bytes() / profile.model_bytes()
    );
    verdicts.check(
        "all four configurations fit in one model footprint (static needs 2.5x)",
        (profile.static_baseline_bytes() / profile.model_bytes() - 2.5).abs() < 0.01,
    );

    verdicts.finish("Fig 3");
}
