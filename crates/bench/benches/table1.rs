//! Regenerates **Table I** of the paper: platform-dependent (time, power,
//! energy) and platform-independent (top-1 accuracy) metrics of the
//! reference DNN across Jetson Nano and Odroid XU3 configurations.
//!
//! ```sh
//! cargo bench --bench table1
//! ```

use eml_bench::{banner, rel_err_percent, row, Verdicts};
use eml_dnn::profile::DnnProfile;
use eml_dnn::WidthLevel;
use eml_platform::paper::TABLE_ONE;
use eml_platform::presets;
use eml_platform::soc::Placement;
use eml_platform::units::Freq;

fn main() {
    banner(
        "Table I",
        "platform-dependent & independent DNN performance metrics",
    );

    let socs = [presets::odroid_xu3(), presets::jetson_nano()];
    let workload = presets::reference_workload();
    let profile = DnnProfile::reference("paper-dnn");
    let top1 = profile
        .top1(WidthLevel(3))
        .expect("reference profile has four levels");

    let widths = [34, 11, 9, 9, 9, 9, 9, 9, 7];
    println!(
        "{}",
        row(
            &[
                "computing cores".into(),
                "t_paper".into(),
                "t_sim".into(),
                "err%".into(),
                "P_paper".into(),
                "P_sim".into(),
                "err%".into(),
                "E_sim".into(),
                "top-1".into(),
            ],
            &widths
        )
    );

    let mut verdicts = Verdicts::new();
    for r in &TABLE_ONE {
        let soc = socs
            .iter()
            .find(|s| s.name() == r.platform)
            .expect("preset for every platform");
        let id = soc.find_cluster(r.cluster).expect("cluster exists");
        let spec = soc.cluster(id).expect("valid id");
        let p = soc
            .predict(
                Placement::whole_cluster(id, spec),
                Freq::from_mhz(r.freq_mhz),
                &workload,
            )
            .expect("prediction succeeds");
        let t_err = rel_err_percent(p.latency.as_millis(), r.time_ms);
        let p_err = rel_err_percent(p.power.as_milliwatts(), r.power_mw);
        println!(
            "{}",
            row(
                &[
                    r.label.into(),
                    format!("{:.1}", r.time_ms),
                    format!("{:.1}", p.latency.as_millis()),
                    format!("{t_err:.1}"),
                    format!("{:.0}", r.power_mw),
                    format!("{:.0}", p.power.as_milliwatts()),
                    format!("{p_err:.1}"),
                    format!("{:.1}", p.energy.as_millijoules()),
                    format!("{top1:.1}"),
                ],
                &widths
            )
        );
        verdicts.check(
            &format!("{}: latency within 2%, power within 1%", r.label),
            t_err < 2.0 && p_err < 1.0,
        );
    }

    // Platform-independent column: accuracy identical in every row.
    verdicts.check(
        "top-1 accuracy is platform-independent (71.2% everywhere)",
        (top1 - 71.2).abs() < 1e-9,
    );

    verdicts.finish("Table I");
}
