//! Ablation studies over the design choices called out in `DESIGN.md`:
//!
//! 1. **Thermal policy** — reactive (the paper's Fig 2 sequence) vs
//!    proactive throttling on the same scenario.
//! 2. **Selection objective** — the paper's lexicographic rule vs min-EDP
//!    vs min-energy on the §IV budgets (shows the lexicographic rule is
//!    the one that reproduces the paper's optima).
//! 3. **Power gating (DPM)** — idle-power savings from gating unused
//!    clusters.
//! 4. **Weight precision** — the Fig 5 "data precision" application knob:
//!    accuracy vs quantization bit-width at each dynamic-DNN width.
//!
//! ```sh
//! cargo bench -p eml-bench --bench ablations
//! ```

use eml_bench::{banner, row, Verdicts};
use eml_core::governor::{ExhaustiveGovernor, Governor};
use eml_core::objective::Objective;
use eml_core::opspace::{OpSpace, OpSpaceConfig};
use eml_core::requirements::Requirements;
use eml_core::rtm::{Rtm, RtmConfig};
use eml_dnn::profile::DnnProfile;
use eml_nn::arch::{build_group_cnn, CnnConfig};
use eml_nn::dataset::{DatasetConfig, SyntheticVision};
use eml_nn::metrics::evaluate;
use eml_nn::quant::quantize_network;
use eml_nn::train::{train_incremental, TrainConfig};
use eml_platform::presets;
use eml_platform::units::{Energy, TimeSpan};
use eml_sim::scenario;
use eml_sim::{SimConfig, ThermalPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut verdicts = Verdicts::new();
    thermal_policy_ablation(&mut verdicts);
    objective_ablation(&mut verdicts);
    power_gating_ablation(&mut verdicts);
    precision_ablation(&mut verdicts);
    verdicts.finish("Ablations");
}

fn thermal_policy_ablation(verdicts: &mut Verdicts) {
    banner(
        "Ablation 1",
        "reactive vs proactive thermal management (Fig 2 scenario)",
    );
    let run = |policy: ThermalPolicy| {
        scenario::fig2_scenario_with(SimConfig {
            thermal_policy: policy,
            ..SimConfig::default()
        })
        .expect("valid scenario")
        .run()
        .expect("runs")
        .summary()
    };
    let reactive = run(ThermalPolicy::Reactive);
    let proactive = run(ThermalPolicy::Proactive);
    let widths = [11, 12, 12, 12, 13];
    println!(
        "{}",
        row(
            &[
                "policy".into(),
                "violations".into(),
                "peak (C)".into(),
                "energy (J)".into(),
                "feasible %".into(),
            ],
            &widths
        )
    );
    for (name, s) in [("reactive", &reactive), ("proactive", &proactive)] {
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    format!("{}", s.thermal_violations),
                    format!("{:.1}", s.peak_temp.as_celsius()),
                    format!("{:.1}", s.total_energy.as_joules()),
                    format!("{:.0}", s.feasible_fraction * 100.0),
                ],
                &widths
            )
        );
    }
    let limit = scenario::fig2_soc().thermal().limit.as_celsius();
    verdicts.check(
        "reactive policy incurs exactly the paper's transient violation",
        reactive.thermal_violations == 1 && reactive.peak_temp.as_celsius() > limit,
    );
    verdicts.check(
        "proactive policy eliminates violations and caps the peak",
        proactive.thermal_violations == 0 && proactive.peak_temp.as_celsius() <= limit + 0.5,
    );
    verdicts.check(
        "safety costs sustained performance: proactive feasibility <= reactive",
        proactive.feasible_fraction <= reactive.feasible_fraction + 1e-9,
    );
}

fn objective_ablation(verdicts: &mut Verdicts) {
    banner("Ablation 2", "selection objective on the SS IV budgets");
    let soc = presets::odroid_xu3();
    let profile = DnnProfile::reference("dnn");
    let cpus = vec![
        soc.find_cluster("a15").expect("preset"),
        soc.find_cluster("a7").expect("preset"),
    ];
    let space = OpSpace::new(&soc, &profile, OpSpaceConfig::default().with_clusters(cpus))
        .expect("non-empty");
    let req = Requirements::new()
        .with_max_latency(TimeSpan::from_millis(400.0))
        .with_max_energy(Energy::from_millijoules(100.0));

    let widths = [26, 8, 9, 9, 9, 9];
    println!(
        "{}",
        row(
            &[
                "objective".into(),
                "width".into(),
                "cluster".into(),
                "MHz".into(),
                "t (ms)".into(),
                "E (mJ)".into(),
            ],
            &widths
        )
    );
    let mut chosen = Vec::new();
    for (name, obj) in [
        (
            "MaxAccuracyThenMinEnergy",
            Objective::MaxAccuracyThenMinEnergy,
        ),
        ("MinEnergy", Objective::MinEnergy),
        ("MinLatency", Objective::MinLatency),
        ("MinEdp", Objective::MinEdp),
    ] {
        let pt = ExhaustiveGovernor
            .decide(&space, &req, obj)
            .expect("no error")
            .expect("budget 1 feasible");
        let cluster = soc.cluster(pt.op.cluster).expect("valid");
        let freq = cluster.opps().get(pt.op.opp_index).expect("valid").freq();
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    format!("{}%", (pt.op.level.index() + 1) * 25),
                    cluster.name().into(),
                    format!("{:.0}", freq.as_mhz()),
                    format!("{:.1}", pt.latency.as_millis()),
                    format!("{:.1}", pt.energy.as_millijoules()),
                ],
                &widths
            )
        );
        chosen.push((
            name,
            cluster.name().to_string(),
            freq.as_mhz(),
            pt.op.level.index(),
        ));
    }
    verdicts.check(
        "the paper's lexicographic objective reproduces the SS IV optimum (A7@900, 100%)",
        chosen[0].1 == "a7" && (chosen[0].2 - 900.0).abs() < 0.5 && chosen[0].3 == 3,
    );
    verdicts.check(
        "alternative objectives choose different points (the rule matters)",
        chosen[1..].iter().any(|c| {
            (c.1.clone(), c.2 as i64, c.3) != (chosen[0].1.clone(), chosen[0].2 as i64, chosen[0].3)
        }),
    );
    verdicts.check(
        "min-energy objective compresses below full width",
        chosen[1].3 < 3,
    );
}

fn power_gating_ablation(verdicts: &mut Verdicts) {
    banner("Ablation 3", "power gating (DPM) of unused clusters");
    let soc = presets::flagship();
    let app = scenario::dnn1();
    let plain = Rtm::new(RtmConfig::default())
        .allocate(&soc, std::slice::from_ref(&app))
        .expect("allocates");
    let gated = Rtm::new(RtmConfig {
        power_gating: true,
        ..RtmConfig::default()
    })
    .allocate(&soc, std::slice::from_ref(&app))
    .expect("allocates");
    let saved = plain.total_power - gated.total_power;
    println!(
        "single DNN on flagship: total {:.0} mW without DPM, {:.0} mW with DPM ({} clusters gated, {:.0} mW saved)",
        plain.total_power.as_milliwatts(),
        gated.total_power.as_milliwatts(),
        gated.gated.len(),
        saved.as_milliwatts()
    );
    verdicts.check(
        "gating saves the idle power of every unused cluster",
        gated.gated.len() == soc.cluster_count() - 1 && saved.as_milliwatts() > 100.0,
    );
    verdicts.check(
        "gating never touches the occupied cluster",
        !gated.gated.contains(&gated.dnns[0].point.op.cluster),
    );
}

fn precision_ablation(verdicts: &mut Verdicts) {
    banner(
        "Ablation 4",
        "weight precision (the Fig 5 data-precision knob)",
    );
    let data = SyntheticVision::generate(DatasetConfig {
        classes: 10,
        train_per_class: 120,
        test_per_class: 40,
        ..DatasetConfig::default()
    });
    let train_once = || {
        let mut rng = StdRng::seed_from_u64(2020);
        let mut net = build_group_cnn(
            CnnConfig {
                base_width: 16,
                ..CnnConfig::default()
            },
            &mut rng,
        )
        .expect("valid arch");
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 32,
            lr: 0.05,
            ..TrainConfig::default()
        };
        train_incremental(&mut net, data.train(), None, &cfg).expect("trains");
        net
    };

    let widths_hdr = [8, 10, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "width".into(),
                "f32".into(),
                "8-bit".into(),
                "6-bit".into(),
                "4-bit".into(),
                "2-bit".into(),
            ],
            &widths_hdr
        )
    );
    // Quantization is destructive, so train one fresh network per
    // bit-width (training is deterministic, so the f32 baselines agree)
    // and sweep every width on it — width switching is non-destructive.
    let bit_options = [32u32, 8, 6, 4, 2];
    let mut per_bits: Vec<Vec<f64>> = Vec::new();
    for &bits in &bit_options {
        let mut net = train_once();
        if bits < 32 {
            quantize_network(&mut net, bits).expect("valid bit width");
        }
        let mut col = Vec::new();
        for g in 1..=4usize {
            net.set_active_groups(g).expect("valid width");
            col.push(evaluate(&mut net, data.test(), 64).expect("evaluates").top1 * 100.0);
        }
        per_bits.push(col);
    }
    let mut table = Vec::new();
    for g in 1..=4usize {
        let mut cells = vec![format!("{}%", g * 25)];
        let mut per_width = Vec::new();
        for (bi, _) in bit_options.iter().enumerate() {
            let acc = per_bits[bi][g - 1];
            cells.push(format!("{acc:.1}"));
            per_width.push(acc);
        }
        println!("{}", row(&cells, &widths_hdr));
        table.push(per_width);
    }
    // 8-bit should be nearly free at full width; 2-bit should clearly hurt.
    let full = &table[3];
    verdicts.check(
        &format!(
            "8-bit quantization costs < 2pp at full width (f32 {:.1} vs int8 {:.1})",
            full[0], full[1]
        ),
        (full[0] - full[1]).abs() < 2.0,
    );
    verdicts.check(
        &format!(
            "2-bit quantization clearly degrades accuracy ({:.1} vs {:.1})",
            full[0], full[4]
        ),
        full[4] < full[0] - 5.0,
    );
    verdicts.check(
        "precision degrades monotonically (within noise) at full width",
        full.windows(2).all(|w| w[1] <= w[0] + 2.0),
    );
}
