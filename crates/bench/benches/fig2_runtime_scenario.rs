//! Regenerates **Fig 2** of the paper: the multi-application runtime
//! scenario on a flagship SoC (two DNNs, a VR/AR app, a thermal violation,
//! and a requirement change), with the RTM re-allocating at every event.
//!
//! ```sh
//! cargo bench --bench fig2_runtime_scenario
//! ```

use eml_bench::{banner, Verdicts};
use eml_sim::scenario::{self, names};
use eml_sim::DecisionReason;

fn main() {
    banner(
        "Fig 2",
        "runtime resource variation under concurrent applications",
    );

    let sim = scenario::fig2_scenario().expect("built-in scenario is valid");
    let trace = sim.run().expect("simulation completes");

    println!("--- RTM decision log ---");
    print!("{}", trace.decision_log());
    println!();

    let mut verdicts = Verdicts::new();

    // (a) t = 0 s: single DNN on the NPU ("the NPU is used").
    let a = trace.app_at(3.0, names::DNN1).expect("dnn1 sampled");
    verdicts.check(
        &format!(
            "(a) t=3s: DNN1 on the NPU at 100% width (got {} @{}%)",
            a.cluster,
            (a.level + 1) * 25
        ),
        a.cluster == "npu" && a.level == 3,
    );

    // (b) t = 5 s: DNN2 takes the NPU; DNN1 migrates to the GPU and is
    // dynamically compressed.
    let d2 = trace.app_at(10.0, names::DNN2).unwrap();
    let d1 = trace.app_at(10.0, names::DNN1).unwrap();
    verdicts.check(
        &format!(
            "(b) t=10s: DNN2 on the NPU at 100% (got {} @{}%)",
            d2.cluster,
            (d2.level + 1) * 25
        ),
        d2.cluster == "npu" && d2.level == 3,
    );
    verdicts.check(
        &format!(
            "(b) t=10s: DNN1 migrated to GPU, compressed (got {} @{}%)",
            d1.cluster,
            (d1.level + 1) * 25
        ),
        d1.cluster == "gpu" && d1.level < 3,
    );

    // (c) t = 15 s: VR/AR claims the GPU; DNN1 moves to the big CPU cluster
    // on all four cores.
    let vr = trace.app_at(16.0, names::VRAR).unwrap();
    let d1 = trace.app_at(16.0, names::DNN1).unwrap();
    verdicts.check(
        &format!("(c) t=16s: VR/AR on the GPU (got {})", vr.cluster),
        vr.cluster == "gpu",
    );
    verdicts.check(
        &format!(
            "(c) t=16s: DNN1 on the big CPU cluster, 4 cores (got {} x{})",
            d1.cluster, d1.cores
        ),
        d1.cluster == "big" && d1.cores == 4,
    );

    // (c') shortly after: thermal violation, throttled re-allocation.
    let violation = trace
        .decisions
        .iter()
        .find(|d| d.reason == DecisionReason::ThermalViolation);
    verdicts.check(
        &format!(
            "(c') thermal violation occurs shortly after VR/AR arrival (at {:?} s)",
            violation.map(|v| v.at_secs)
        ),
        violation
            .map(|v| v.at_secs > 15.0 && v.at_secs < 25.0)
            .unwrap_or(false),
    );
    if let Some(v) = violation {
        let d1 = trace.app_at(v.at_secs + 1.0, names::DNN1).unwrap();
        // Reproduction note: the paper narrates a migration to a *single*
        // core; our optimal allocator instead shrinks to the fewest slow
        // cores that fit the power cap (see EXPERIMENTS.md).
        verdicts.check(
            &format!(
                "(c') after throttling: DNN1 compressed to 25% on a reduced core allocation (got {}% x{})",
                (d1.level + 1) * 25,
                d1.cores
            ),
            d1.level == 0 && d1.cores < 4,
        );
    }

    // (d) t = 25 s: DNN2's accuracy requirement drops; both DNNs share the
    // NPU; DNN1 recovers full width.
    let d1 = trace.app_at(30.0, names::DNN1).unwrap();
    let d2 = trace.app_at(30.0, names::DNN2).unwrap();
    verdicts.check(
        &format!(
            "(d) t=30s: both DNNs on the NPU (got dnn1={} dnn2={})",
            d1.cluster, d2.cluster
        ),
        d1.cluster == "npu" && d2.cluster == "npu",
    );
    verdicts.check(
        &format!("(d) t=30s: DNN2 compressed (got {}%)", (d2.level + 1) * 25),
        d2.level < 3,
    );
    verdicts.check(
        &format!(
            "(d) t=30s: DNN1 recovers 100% width (got {}%)",
            (d1.level + 1) * 25
        ),
        d1.level == 3,
    );

    // Global health.
    let s = trace.summary();
    println!(
        "\nsummary: {:.1} s, {:.1} J, mean {:.2} W, peak {:.1} C, {} decisions, {} thermal violations, {:.0}% feasible",
        s.duration.as_secs(),
        s.total_energy.as_joules(),
        s.mean_power.as_watts(),
        s.peak_temp.as_celsius(),
        s.decisions,
        s.thermal_violations,
        s.feasible_fraction * 100.0
    );
    let limit = sim.soc().thermal().limit.as_celsius();
    verdicts.check(
        "the thermal limit is exceeded transiently (that's what triggers the RTM)",
        s.peak_temp.as_celsius() > limit,
    );
    verdicts.check(
        "the run ends below the thermal limit",
        trace.samples.last().unwrap().temp.as_celsius() < limit,
    );

    verdicts.finish("Fig 2");
}
