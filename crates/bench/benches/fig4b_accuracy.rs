//! Regenerates **Fig 4(b)** of the paper: top-1 accuracy of the four
//! dynamic-DNN configurations, with per-class variance error bars.
//!
//! Two data sources are compared:
//! - the paper's published CIFAR-10 numbers (56 / 62.7 / 68.8 / 71.2 %),
//!   embedded as the reference accuracy table;
//! - a live incremental-training run on the synthetic dataset (the
//!   documented CIFAR-10 substitution) — absolute values differ, the
//!   *shape* (monotone, diminishing returns, non-trivial class variance)
//!   must match.
//!
//! ```sh
//! cargo bench --bench fig4b_accuracy
//! ```

use eml_bench::{banner, row, Verdicts};
use eml_nn::arch::{build_group_cnn, CnnConfig};
use eml_nn::dataset::{DatasetConfig, SyntheticVision};
use eml_nn::metrics::evaluate;
use eml_nn::train::{train_incremental, TrainConfig};
use eml_platform::paper::FIG4B_TOP1;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner(
        "Fig 4(b)",
        "top-1 accuracy per width, with per-class variance",
    );

    let data = SyntheticVision::generate(DatasetConfig {
        classes: 10,
        train_per_class: 200,
        test_per_class: 60,
        ..DatasetConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(41);
    let mut net = build_group_cnn(
        CnnConfig {
            base_width: 16,
            ..CnnConfig::default()
        },
        &mut rng,
    )
    .expect("default arch valid");
    let cfg = TrainConfig {
        epochs: 6,
        batch_size: 32,
        lr: 0.05,
        ..TrainConfig::default()
    };
    let report = train_incremental(&mut net, data.train(), Some(data.test()), &cfg)
        .expect("training succeeds");

    let widths = [8, 14, 16, 16];
    println!(
        "{}",
        row(
            &[
                "width".into(),
                "paper top-1".into(),
                "measured top-1".into(),
                "class std (pp)".into(),
            ],
            &widths
        )
    );
    let mut measured = Vec::new();
    let mut stds = Vec::new();
    for (i, step) in report.steps.iter().enumerate() {
        // Re-evaluate at each width for per-class statistics.
        net.set_active_groups(i + 1).expect("valid width");
        let eval = evaluate(&mut net, data.test(), 64).expect("evaluation works");
        println!(
            "{}",
            row(
                &[
                    format!("{}%", (i + 1) * 25),
                    format!("{:.1}", FIG4B_TOP1[i]),
                    format!("{:.1}", eval.top1 * 100.0),
                    format!("{:.1}", eval.class_std() * 100.0),
                ],
                &widths
            )
        );
        assert_eq!(step.active_groups, i + 1);
        measured.push(eval.top1 * 100.0);
        stds.push(eval.class_std() * 100.0);
    }
    println!();

    let mut verdicts = Verdicts::new();
    verdicts.check(
        "paper series is monotone with diminishing returns (sanity on embedded data)",
        FIG4B_TOP1.windows(2).all(|w| w[1] > w[0])
            && FIG4B_TOP1[1] - FIG4B_TOP1[0] > FIG4B_TOP1[3] - FIG4B_TOP1[2],
    );
    verdicts.check(
        &format!("measured accuracy is monotone non-decreasing in width ({measured:?})"),
        measured.windows(2).all(|w| w[1] >= w[0] - 0.5),
    );
    verdicts.check(
        &format!("every width clearly beats 10-class chance ({measured:?})"),
        measured.iter().all(|&m| m > 30.0),
    );
    verdicts.check(
        &format!(
            "widening 25%->100% buys a meaningful accuracy gain ({:.1} pp)",
            measured[3] - measured[0]
        ),
        measured[3] - measured[0] > 3.0,
    );
    verdicts.check(
        &format!("per-class variance is non-trivial, as in the paper's error bars ({stds:?})"),
        stds.iter().all(|&s| s > 0.5),
    );

    verdicts.finish("Fig 4(b)");
}
