//! Criterion microbenchmarks of the RTM decision path: operating-point
//! enumeration, evaluation, Pareto filtering, governor decisions and
//! multi-application allocation.
//!
//! The paper positions the RTM as an *online* component; these benches
//! quantify its decision latency on the reproduced spaces.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use eml_core::governor::{ExhaustiveGovernor, Governor, GreedyGovernor, ParetoGovernor};
use eml_core::objective::Objective;
use eml_core::opspace::{OpSpace, OpSpaceConfig};
use eml_core::pareto::pareto_front;
use eml_core::requirements::Requirements;
use eml_core::rtm::{AppSpec, DnnAppSpec, RigidAppSpec, Rtm, RtmConfig};
use eml_dnn::profile::DnnProfile;
use eml_platform::presets;
use eml_platform::soc::CoreKind;
use eml_platform::units::{Energy, TimeSpan};

fn budget() -> Requirements {
    Requirements::new()
        .with_max_latency(TimeSpan::from_millis(400.0))
        .with_max_energy(Energy::from_millijoules(100.0))
}

fn bench_opspace(c: &mut Criterion) {
    let soc = presets::odroid_xu3();
    let profile = DnnProfile::reference("dnn");
    c.bench_function("opspace/enumerate_xu3_full", |b| {
        b.iter(|| {
            OpSpace::new(
                black_box(&soc),
                black_box(&profile),
                OpSpaceConfig::default(),
            )
            .expect("non-empty")
        })
    });
    let space = OpSpace::new(&soc, &profile, OpSpaceConfig::default()).expect("non-empty");
    c.bench_function("opspace/evaluate_all_xu3_full", |b| {
        b.iter(|| space.evaluate_all().expect("evaluates"))
    });
    let all = space.evaluate_all().expect("evaluates");
    c.bench_function("pareto/front_xu3_full", |b| {
        b.iter(|| pareto_front(black_box(&all)))
    });
}

fn bench_governors(c: &mut Criterion) {
    let soc = presets::odroid_xu3();
    let profile = DnnProfile::reference("dnn");
    let space = OpSpace::new(&soc, &profile, OpSpaceConfig::default()).expect("non-empty");
    let req = budget();

    c.bench_function("governor/exhaustive_decide", |b| {
        b.iter(|| {
            ExhaustiveGovernor
                .decide(black_box(&space), black_box(&req), Objective::default())
                .expect("no error")
        })
    });
    c.bench_function("governor/pareto_decide_warm", |b| {
        let mut g = ParetoGovernor::new();
        let _ = g.decide(&space, &req, Objective::default());
        b.iter(|| {
            g.decide(black_box(&space), black_box(&req), Objective::default())
                .expect("no error")
        })
    });
    c.bench_function("governor/pareto_decide_cold", |b| {
        b.iter_batched(
            ParetoGovernor::new,
            |mut g| {
                g.decide(black_box(&space), black_box(&req), Objective::default())
                    .expect("no error")
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("governor/greedy_decide", |b| {
        b.iter(|| {
            GreedyGovernor::default()
                .decide(black_box(&space), black_box(&req), Objective::default())
                .expect("no error")
        })
    });
}

fn bench_multi_app(c: &mut Criterion) {
    let soc = presets::flagship();
    let rtm = Rtm::new(RtmConfig::default());
    let apps = vec![
        AppSpec::Dnn(DnnAppSpec {
            name: "dnn1".into(),
            profile: DnnProfile::reference("dnn1"),
            requirements: Requirements::new().with_max_latency(TimeSpan::from_millis(11.0)),
            priority: 1,
            objective: None,
        }),
        AppSpec::Dnn(DnnAppSpec {
            name: "dnn2".into(),
            profile: DnnProfile::reference("dnn2"),
            requirements: Requirements::new().with_target_fps(60.0),
            priority: 2,
            objective: None,
        }),
        AppSpec::Rigid(RigidAppSpec {
            name: "vr".into(),
            preferred: vec![CoreKind::Gpu],
            utilization: 0.9,
            priority: 3,
        }),
    ];
    c.bench_function("rtm/allocate_three_apps_flagship", |b| {
        b.iter(|| {
            rtm.allocate(black_box(&soc), black_box(&apps))
                .expect("allocates")
        })
    });
}

criterion_group!(benches, bench_opspace, bench_governors, bench_multi_app);
criterion_main!(benches);
