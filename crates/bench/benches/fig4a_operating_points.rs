//! Regenerates **Fig 4(a)** of the paper: the (energy, time) operating-point
//! space spanned by the dynamic DNN (4 widths) × task mapping (A15/A7) ×
//! DVFS (17 / 12 levels) on the Odroid XU3.
//!
//! Prints the full series (CSV) and checks the figure's shape: series
//! ordering, the wide dynamic range of the space, and the A7/A15 roles.
//!
//! ```sh
//! cargo bench --bench fig4a_operating_points
//! ```

use eml_bench::{banner, Verdicts};
use eml_core::opspace::{OpSpace, OpSpaceConfig};
use eml_dnn::profile::DnnProfile;
use eml_dnn::WidthLevel;
use eml_platform::paper::{FIG4A_A15_LEVELS, FIG4A_A7_LEVELS};
use eml_platform::presets;

fn main() {
    banner(
        "Fig 4(a)",
        "E-t operating-point space: width x mapping x DVFS",
    );

    let soc = presets::odroid_xu3();
    let profile = DnnProfile::reference("camera-dnn");
    let a15 = soc.find_cluster("a15").expect("preset cluster");
    let a7 = soc.find_cluster("a7").expect("preset cluster");
    let space = OpSpace::new(
        &soc,
        &profile,
        OpSpaceConfig::default().with_clusters(vec![a15, a7]),
    )
    .expect("space is non-empty");

    println!("cluster,width_percent,freq_mhz,time_ms,energy_mj");
    let mut points = Vec::new();
    for op in space.iter() {
        let pt = space.evaluate(op).expect("enumerated points evaluate");
        let cluster = soc.cluster(op.cluster).expect("valid id");
        let freq = cluster.opps().get(op.opp_index).expect("valid opp").freq();
        println!(
            "{},{},{:.0},{:.2},{:.2}",
            cluster.name(),
            (op.level.index() + 1) * 25,
            freq.as_mhz(),
            pt.latency.as_millis(),
            pt.energy.as_millijoules()
        );
        points.push((cluster.name().to_string(), op.level, pt));
    }
    println!();

    let mut verdicts = Verdicts::new();
    verdicts.check(
        &format!(
            "space has (17 A15 + 12 A7) x 4 widths = {} points (got {})",
            (FIG4A_A15_LEVELS + FIG4A_A7_LEVELS) * 4,
            points.len()
        ),
        points.len() == (FIG4A_A15_LEVELS + FIG4A_A7_LEVELS) * 4,
    );

    // Shape 1: within a (cluster, width) series, latency decreases
    // monotonically with frequency (the paper's per-series curves).
    let mut series_ok = true;
    for cluster in ["a15", "a7"] {
        for level in 0..4 {
            let series: Vec<f64> = points
                .iter()
                .filter(|(c, l, _)| c == cluster && l.index() == level)
                .map(|(_, _, p)| p.latency.as_millis())
                .collect();
            if !series.windows(2).all(|w| w[1] < w[0]) {
                series_ok = false;
            }
        }
    }
    verdicts.check(
        "each (cluster, width) series is monotone in DVFS",
        series_ok,
    );

    // Shape 2: halving width halves time and energy at fixed setting.
    let eval = |cluster, opp, level| {
        space
            .evaluate(eml_core::opspace::OperatingPoint {
                cluster,
                cores: 4,
                opp_index: opp,
                level: WidthLevel(level),
            })
            .expect("valid point")
    };
    let full = eval(a15, 8, 3);
    let half = eval(a15, 8, 1);
    verdicts.check(
        "width is a true knob: 50% model halves time and energy",
        (half.latency.as_secs() / full.latency.as_secs() - 0.5).abs() < 0.01
            && (half.energy.as_joules() / full.energy.as_joules() - 0.5).abs() < 0.01,
    );

    // Shape 3: the A7 owns the low-energy frontier, the A15 the low-latency
    // frontier (why task mapping matters).
    let min_energy = points
        .iter()
        .min_by(|a, b| a.2.energy.partial_cmp(&b.2.energy).expect("finite"))
        .expect("non-empty");
    let min_latency = points
        .iter()
        .min_by(|a, b| a.2.latency.partial_cmp(&b.2.latency).expect("finite"))
        .expect("non-empty");
    verdicts.check(
        &format!(
            "global minimum energy lives on the A7 (got {})",
            min_energy.0
        ),
        min_energy.0 == "a7",
    );
    verdicts.check(
        &format!(
            "global minimum latency lives on the A15 (got {})",
            min_latency.0
        ),
        min_latency.0 == "a15",
    );

    // Shape 4: the combined knobs span a wide dynamic range (the paper's
    // axes: 0-1200 ms, 0-350 mJ for the full model).
    let t_max = points
        .iter()
        .map(|(_, _, p)| p.latency.as_millis())
        .fold(0.0, f64::max);
    let t_min = points
        .iter()
        .map(|(_, _, p)| p.latency.as_millis())
        .fold(f64::INFINITY, f64::min);
    let e_max = points
        .iter()
        .map(|(_, _, p)| p.energy.as_millijoules())
        .fold(0.0, f64::max);
    let e_min = points
        .iter()
        .map(|(_, _, p)| p.energy.as_millijoules())
        .fold(f64::INFINITY, f64::min);
    println!(
        "\ndynamic range: time {t_min:.1}-{t_max:.1} ms ({:.0}x), energy {e_min:.1}-{e_max:.1} mJ ({:.0}x)",
        t_max / t_min,
        e_max / e_min
    );
    verdicts.check(
        "combined knobs span >30x in time and >10x in energy",
        t_max / t_min > 30.0 && e_max / e_min > 10.0,
    );

    // Shape 5: the paper's §IV observation — for the full model, the A7 at
    // mid frequency beats every A15 setting on energy.
    let a7_full_min_energy = points
        .iter()
        .filter(|(c, l, _)| c == "a7" && l.index() == 3)
        .map(|(_, _, p)| p.energy.as_millijoules())
        .fold(f64::INFINITY, f64::min);
    let a15_full_min_energy = points
        .iter()
        .filter(|(c, l, _)| c == "a15" && l.index() == 3)
        .map(|(_, _, p)| p.energy.as_millijoules())
        .fold(f64::INFINITY, f64::min);
    verdicts.check(
        &format!(
            "full model: best A7 energy {a7_full_min_energy:.1} mJ < best A15 energy {a15_full_min_energy:.1} mJ"
        ),
        a7_full_min_energy < a15_full_min_energy,
    );

    verdicts.finish("Fig 4(a)");
}
