//! Criterion microbenchmarks of the neural-network substrate: forward
//! passes at each width (the real compute the dynamic DNN saves) on both
//! compute backends, training steps and width switching.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use eml_nn::arch::{build_group_cnn, CnnConfig};
use eml_nn::gemm::Backend;
use eml_nn::network::Network;
use eml_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One freshly built default network, configured to `width` and
/// `backend`, reused across the whole timing loop.
fn net_at(width: usize, backend: Backend) -> Network {
    let mut net =
        build_group_cnn(CnnConfig::default(), &mut StdRng::seed_from_u64(1)).expect("valid arch");
    net.set_active_groups(width).expect("valid width");
    net.set_backend(backend);
    net
}

fn bench_forward_per_width(c: &mut Criterion) {
    let x = Tensor::full(&[1, 3, 16, 16], 0.1);
    let mut group = c.benchmark_group("nn/forward");
    for g in 1..=4usize {
        let mut net = net_at(g, Backend::Gemm);
        group.bench_function(format!("width_{}pct", g * 25), |b| {
            b.iter(|| net.forward(black_box(&x), false).expect("forward"))
        });
    }
    group.finish();
}

/// Batched forward passes: batch 1 hides dispatch overhead behind a
/// single sample, so throughput-style workloads (and the pool's
/// per-region cost) are only visible at batch > 1.
fn bench_forward_batched(c: &mut Criterion) {
    for batch in [8usize, 32] {
        let x = Tensor::full(&[batch, 3, 16, 16], 0.1);
        let mut group = c.benchmark_group(format!("nn/forward_batch{batch}"));
        for g in 1..=4usize {
            let mut net = net_at(g, Backend::Gemm);
            group.bench_function(format!("width_{}pct", g * 25), |b| {
                b.iter(|| net.forward(black_box(&x), false).expect("forward"))
            });
        }
        group.finish();
    }
}

/// The same sweep on the reference backend: the ratio to `nn/forward`
/// is the GEMM speedup (also emitted by the `bench_nn_json` binary).
fn bench_forward_per_width_reference(c: &mut Criterion) {
    let x = Tensor::full(&[1, 3, 16, 16], 0.1);
    let mut group = c.benchmark_group("nn/forward_reference");
    for g in 1..=4usize {
        let mut net = net_at(g, Backend::Reference);
        group.bench_function(format!("width_{}pct", g * 25), |b| {
            b.iter(|| net.forward(black_box(&x), false).expect("forward"))
        });
    }
    group.finish();
}

/// The same sweep on the quantised int8 backend: the ratio to
/// `nn/forward` is the data-precision knob's measured latency win
/// (also emitted by the `bench_nn_json` binary as `quant_gemm_ns`).
fn bench_forward_per_width_quant_i8(c: &mut Criterion) {
    let x = Tensor::full(&[1, 3, 16, 16], 0.1);
    let mut group = c.benchmark_group("nn/forward_quant_i8");
    for g in 1..=4usize {
        let mut net = net_at(g, Backend::QuantI8);
        group.bench_function(format!("width_{}pct", g * 25), |b| {
            b.iter(|| net.forward(black_box(&x), false).expect("forward"))
        });
    }
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let x = Tensor::full(&[8, 3, 16, 16], 0.1);
    let labels = [0usize, 1, 2, 3, 4, 5, 6, 7];
    for (name, backend) in [
        ("nn/train_batch_8", Backend::Gemm),
        ("nn/train_batch_8_reference", Backend::Reference),
    ] {
        // Width-scaled base (16) keeps the reference run affordable.
        let mut net = build_group_cnn(
            CnnConfig {
                base_width: 16,
                ..CnnConfig::default()
            },
            &mut StdRng::seed_from_u64(2),
        )
        .expect("valid arch");
        net.set_backend(backend);
        c.bench_function(name, |b| {
            b.iter(|| {
                net.zero_grads();
                let out = net
                    .train_batch(black_box(&x), black_box(&labels))
                    .expect("train");
                net.sgd_step(0.01, 0.9);
                out.loss
            })
        });
    }
}

fn bench_width_switch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut net = build_group_cnn(CnnConfig::default(), &mut rng).expect("valid arch");
    c.bench_function("nn/width_switch", |b| {
        let mut g = 1;
        b.iter(|| {
            g = g % 4 + 1;
            net.set_active_groups(black_box(g)).expect("valid width")
        })
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let net = build_group_cnn(CnnConfig::default(), &mut rng).expect("valid arch");
    c.bench_function("nn/cost_model", |b| b.iter(|| net.cost().expect("cost")));
}

criterion_group!(
    benches,
    bench_forward_per_width,
    bench_forward_batched,
    bench_forward_per_width_reference,
    bench_forward_per_width_quant_i8,
    bench_training_step,
    bench_width_switch,
    bench_cost_model
);
criterion_main!(benches);
