//! Criterion microbenchmarks of the neural-network substrate: forward
//! passes at each width (the real compute the dynamic DNN saves), training
//! steps and width switching.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use eml_nn::arch::{build_group_cnn, CnnConfig};
use eml_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_forward_per_width(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = build_group_cnn(CnnConfig::default(), &mut rng).expect("valid arch");
    let x = Tensor::full(&[1, 3, 16, 16], 0.1);
    let mut group = c.benchmark_group("nn/forward");
    for g in 1..=4usize {
        net.set_active_groups(g).expect("valid width");
        group.bench_function(format!("width_{}pct", g * 25), |b| {
            // Width state is set outside the timing loop; forward is pure.
            let mut net = build_group_cnn(CnnConfig::default(), &mut StdRng::seed_from_u64(1))
                .expect("valid arch");
            net.set_active_groups(g).expect("valid width");
            b.iter(|| net.forward(black_box(&x), false).expect("forward"))
        });
    }
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut net = build_group_cnn(
        CnnConfig { base_width: 16, ..CnnConfig::default() },
        &mut rng,
    )
    .expect("valid arch");
    let x = Tensor::full(&[8, 3, 16, 16], 0.1);
    let labels = [0usize, 1, 2, 3, 4, 5, 6, 7];
    c.bench_function("nn/train_batch_8", |b| {
        b.iter(|| {
            net.zero_grads();
            let out = net.train_batch(black_box(&x), black_box(&labels)).expect("train");
            net.sgd_step(0.01, 0.9);
            out.loss
        })
    });
}

fn bench_width_switch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut net = build_group_cnn(CnnConfig::default(), &mut rng).expect("valid arch");
    c.bench_function("nn/width_switch", |b| {
        let mut g = 1;
        b.iter(|| {
            g = g % 4 + 1;
            net.set_active_groups(black_box(g)).expect("valid width")
        })
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let net = build_group_cnn(CnnConfig::default(), &mut rng).expect("valid arch");
    c.bench_function("nn/cost_model", |b| b.iter(|| net.cost().expect("cost")));
}

criterion_group!(
    benches,
    bench_forward_per_width,
    bench_training_step,
    bench_width_switch,
    bench_cost_model
);
criterion_main!(benches);
