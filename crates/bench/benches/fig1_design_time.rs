//! Regenerates **Fig 1** of the paper: at design time the same DNN is
//! compressed differently per platform to meet each application class
//! (1 fps / very-high accuracy, 25 fps / high, 60 fps / medium).
//!
//! The reproduced *shape*: stronger platforms ship wider (more accurate)
//! models; tighter frame rates force narrower models; and on a sufficiently
//! weak platform a demanding requirement is simply infeasible.
//!
//! ```sh
//! cargo bench --bench fig1_design_time
//! ```

use eml_bench::{banner, row, Verdicts};
use eml_core::baseline::design_time_prune;
use eml_core::opspace::OpSpaceConfig;
use eml_core::requirements::Requirements;
use eml_dnn::profile::DnnProfile;
use eml_platform::presets;
use eml_platform::Soc;

fn cpu_only(soc: &Soc) -> OpSpaceConfig {
    OpSpaceConfig::default().with_clusters(
        soc.clusters()
            .filter(|(_, c)| c.kind().is_cpu())
            .map(|(id, _)| id)
            .collect(),
    )
}

fn main() {
    banner(
        "Fig 1",
        "design-time compression per platform and requirement",
    );

    let profile = DnnProfile::reference("camera-dnn");
    let requirements = [
        (
            "1 fps, very-high accuracy",
            Requirements::new().with_target_fps(1.0).with_min_top1(71.0),
        ),
        (
            "25 fps, high accuracy",
            Requirements::new()
                .with_target_fps(25.0)
                .with_min_top1(66.0),
        ),
        (
            "60 fps, medium accuracy",
            Requirements::new()
                .with_target_fps(60.0)
                .with_min_top1(60.0),
        ),
    ];
    let platforms = [
        presets::flagship(),
        presets::jetson_nano(),
        presets::odroid_xu3(),
    ];

    let widths = [14, 28, 8, 10, 10];
    println!(
        "{}",
        row(
            &[
                "platform".into(),
                "requirement".into(),
                "width".into(),
                "cluster".into(),
                "freq MHz".into(),
            ],
            &widths
        )
    );

    // width_table[platform][requirement] = Option<level index>
    let mut width_table = Vec::new();
    for soc in &platforms {
        let mut per_req = Vec::new();
        for (label, req) in &requirements {
            let design = design_time_prune(soc, &profile, req, OpSpaceConfig::default())
                .expect("structurally valid");
            match &design {
                Some(d) => println!(
                    "{}",
                    row(
                        &[
                            soc.name().into(),
                            (*label).into(),
                            format!("{}%", (d.level.index() + 1) * 25),
                            d.cluster_name.clone(),
                            format!("{:.0}", d.freq.as_mhz()),
                        ],
                        &widths
                    )
                ),
                None => println!(
                    "{}",
                    row(
                        &[
                            soc.name().into(),
                            (*label).into(),
                            "-".into(),
                            "infeasible".into(),
                            "-".into(),
                        ],
                        &widths
                    )
                ),
            }
            per_req.push(design.map(|d| d.level.index()));
        }
        width_table.push(per_req);
    }
    println!();

    let mut verdicts = Verdicts::new();
    // Shape 1: on every platform, the very-high-accuracy requirement ships
    // the full model whenever feasible.
    for (soc, per_req) in platforms.iter().zip(&width_table) {
        if let Some(level) = per_req[0] {
            verdicts.check(
                &format!(
                    "{}: 1 fps / very-high accuracy ships the 100% model",
                    soc.name()
                ),
                level == 3,
            );
        }
    }
    // Shape 2: the flagship (NPU) meets every requirement uncompressed.
    verdicts.check(
        "flagship meets all three requirements at full width",
        width_table[0].iter().all(|l| *l == Some(3)),
    );
    // Shape 3: on the weakest platform (XU3, CPU-only view) tighter frame
    // rates force narrower models or infeasibility.
    let xu3 = &platforms[2];
    let mut cpu_widths = Vec::new();
    for (_, req) in &requirements {
        let d = design_time_prune(xu3, &profile, req, cpu_only(xu3)).unwrap();
        cpu_widths.push(d.map(|d| d.level.index() as i64).unwrap_or(-1));
    }
    println!("XU3 CPU-only widths per requirement (level index, -1 = infeasible): {cpu_widths:?}");
    verdicts.check(
        "XU3 CPUs: stricter frame rates never widen the shipped model",
        cpu_widths.windows(2).all(|w| w[1] <= w[0]),
    );
    verdicts.check(
        "XU3 CPUs cannot serve 60 fps at any width (needs GPU/NPU class compute)",
        cpu_widths[2] == -1,
    );

    verdicts.finish("Fig 1");
}
