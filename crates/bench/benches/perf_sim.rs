//! Criterion microbenchmarks of the simulator: thermal stepping, platform
//! prediction throughput and full scenario runs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use eml_platform::presets;
use eml_platform::soc::Placement;
use eml_platform::thermal::ThermalState;
use eml_platform::units::{Freq, Power, TimeSpan};
use eml_sim::scenario;
use eml_sim::SimConfig;

fn bench_thermal(c: &mut Criterion) {
    let soc = presets::flagship();
    let model = *soc.thermal();
    c.bench_function("sim/thermal_step", |b| {
        let mut state = ThermalState::at_ambient(&model);
        b.iter(|| {
            state.step(
                &model,
                black_box(Power::from_watts(6.0)),
                TimeSpan::from_millis(50.0),
            );
            state.die_temp()
        })
    });
}

fn bench_prediction(c: &mut Criterion) {
    let soc = presets::odroid_xu3();
    let a15 = soc.find_cluster("a15").expect("preset");
    let w = presets::reference_workload();
    c.bench_function("sim/platform_predict", |b| {
        b.iter(|| {
            soc.predict(
                black_box(Placement::new(a15, 4)),
                black_box(Freq::from_mhz(1000.0)),
                black_box(&w),
            )
            .expect("predicts")
        })
    });
}

fn bench_scenario(c: &mut Criterion) {
    c.bench_function("sim/fig2_scenario_full_40s", |b| {
        b.iter(|| {
            let sim = scenario::fig2_scenario().expect("valid scenario");
            sim.run().expect("runs")
        })
    });
    c.bench_function("sim/fig2_scenario_coarse_dt", |b| {
        b.iter(|| {
            let sim = scenario::fig2_scenario_with(SimConfig {
                dt: TimeSpan::from_millis(250.0),
                ..SimConfig::default()
            })
            .expect("valid scenario");
            sim.run().expect("runs")
        })
    });
}

criterion_group!(benches, bench_thermal, bench_prediction, bench_scenario);
criterion_main!(benches);
