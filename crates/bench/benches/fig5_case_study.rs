//! Regenerates **Fig 5 + the §IV worked example**: the RTM navigating the
//! knob/monitor space to meet changing budgets, plus the governor ablation
//! (oracle vs Pareto cache vs greedy hill-climb).
//!
//! The §IV example: with budgets (400 ms, 100 mJ) the optimum is the 100 %
//! model on the A7 at 900 MHz; when the budgets change to (200 ms, 150 mJ)
//! it becomes the 75 % model on the A15 at 1 GHz.
//!
//! ```sh
//! cargo bench --bench fig5_case_study
//! ```

use std::time::Instant;

use eml_bench::{banner, row, Verdicts};
use eml_core::governor::{ExhaustiveGovernor, Governor, GreedyGovernor, ParetoGovernor};
use eml_core::knobs::{commands_for, KnobCommand};
use eml_core::objective::Objective;
use eml_core::opspace::{OpSpace, OpSpaceConfig};
use eml_core::requirements::Requirements;
use eml_core::rtm::{AppSpec, DnnAppSpec, Rtm, RtmConfig};
use eml_dnn::profile::DnnProfile;
use eml_platform::paper::{CaseStudyBudget, CASE_STUDY_BUDGET_1, CASE_STUDY_BUDGET_2};
use eml_platform::presets;
use eml_platform::units::{Energy, TimeSpan};

fn req_of(b: &CaseStudyBudget) -> Requirements {
    Requirements::new()
        .with_max_latency(TimeSpan::from_millis(b.time_ms))
        .with_max_energy(Energy::from_millijoules(b.energy_mj))
}

fn main() {
    banner(
        "Fig 5 / §IV",
        "RTM knobs & monitors: the worked example + governor ablation",
    );

    let soc = presets::odroid_xu3();
    let profile = DnnProfile::reference("camera-dnn");
    let cpus = vec![
        soc.find_cluster("a15").expect("preset"),
        soc.find_cluster("a7").expect("preset"),
    ];
    let space = OpSpace::new(&soc, &profile, OpSpaceConfig::default().with_clusters(cpus))
        .expect("non-empty space");

    let mut verdicts = Verdicts::new();
    let budgets = [CASE_STUDY_BUDGET_1, CASE_STUDY_BUDGET_2];

    // --- The worked example, per governor ---
    let widths = [12, 24, 8, 10, 8, 10, 10];
    println!(
        "{}",
        row(
            &[
                "governor".into(),
                "budget".into(),
                "width".into(),
                "cluster".into(),
                "MHz".into(),
                "t (ms)".into(),
                "E (mJ)".into(),
            ],
            &widths
        )
    );
    let mut timings: Vec<(String, f64)> = Vec::new();
    for (gi, governor) in [
        Box::new(ExhaustiveGovernor) as Box<dyn Governor>,
        Box::new(ParetoGovernor::new()),
        Box::new(GreedyGovernor::default()),
    ]
    .iter_mut()
    .enumerate()
    {
        let _ = gi;
        for b in &budgets {
            let start = Instant::now();
            let pt = governor
                .decide(&space, &req_of(b), Objective::MaxAccuracyThenMinEnergy)
                .expect("no structural error")
                .expect("both budgets are feasible");
            let micros = start.elapsed().as_secs_f64() * 1e6;
            timings.push((governor.name().to_string(), micros));
            let cluster = soc.cluster(pt.op.cluster).expect("valid");
            let freq = cluster.opps().get(pt.op.opp_index).expect("valid").freq();
            println!(
                "{}",
                row(
                    &[
                        governor.name().into(),
                        format!("({} ms, {} mJ)", b.time_ms, b.energy_mj),
                        format!("{}%", (pt.op.level.index() + 1) * 25),
                        cluster.name().into(),
                        format!("{:.0}", freq.as_mhz()),
                        format!("{:.1}", pt.latency.as_millis()),
                        format!("{:.1}", pt.energy.as_millijoules()),
                    ],
                    &widths
                )
            );
            let ok = cluster.name() == b.expect_cluster
                && (freq.as_mhz() - b.expect_freq_mhz).abs() < 0.5
                && ((pt.op.level.index() + 1) as f64 * 0.25 - b.expect_width).abs() < 1e-9;
            verdicts.check(
                &format!(
                    "{}: budget ({} ms, {} mJ) -> {}% on {} @ {:.0} MHz (paper: {}% on {} @ {:.0} MHz)",
                    governor.name(),
                    b.time_ms,
                    b.energy_mj,
                    (pt.op.level.index() + 1) * 25,
                    cluster.name(),
                    freq.as_mhz(),
                    (b.expect_width * 100.0) as u32,
                    b.expect_cluster,
                    b.expect_freq_mhz
                ),
                ok,
            );
        }
    }

    // --- Decision latency ablation (cold-cache numbers; see perf_rtm for
    // criterion statistics) ---
    println!("\ndecision latency (single cold decision):");
    for (name, micros) in &timings {
        println!("  {name:>12}: {micros:>9.1} us");
    }

    // --- Fig 5 proper: the decision is actuated through knob commands ---
    let rtm = Rtm::new(RtmConfig {
        partial_cores: false,
        ..RtmConfig::default()
    });
    let app = AppSpec::Dnn(DnnAppSpec {
        name: "camera-dnn".into(),
        profile: profile.clone(),
        requirements: req_of(&CASE_STUDY_BUDGET_1),
        priority: 1,
        objective: None,
    });
    let alloc = rtm.allocate(&soc, &[app]).expect("allocation succeeds");
    let commands = commands_for(&alloc);
    println!("\nknob commands for budget 1 (Fig 5 application/device knobs):");
    for c in &commands {
        println!("  {c:?}");
    }
    verdicts.check(
        "allocation actuates exactly one DVFS, one mapping and one width knob",
        commands.len() == 3
            && matches!(commands[0], KnobCommand::SetOpp { .. })
            && matches!(commands[1], KnobCommand::Map { .. })
            && matches!(commands[2], KnobCommand::SetWidth { .. }),
    );

    verdicts.finish("Fig 5 / §IV");
}
