//! A closed-form CMOS power model, and why the presets don't use it.
//!
//! The textbook model is
//!
//! ```text
//! P(f, V, a) = c_dyn · V²·f · a  +  c_leak · V  +  p_base
//! ```
//!
//! (switching power proportional to `V²·f` and activity, leakage roughly
//! linear in `V` at fixed temperature, plus a constant floor). This module
//! implements that model and a least-squares fit from measured anchors.
//!
//! Fitting it to the paper's Odroid XU3 A15 measurements yields *negative*
//! leakage coefficients — the published triple (326 mW @ 200 MHz,
//! 846 mW @ 1 GHz, 2120 mW @ 1.8 GHz) rises faster than `V²·f` can explain
//! with any plausible voltage curve, because real measurements fold in
//! utilisation effects, shared-rail losses, and temperature-dependent
//! leakage. That nonphysical fit (demonstrated in the tests below) is why
//! [`crate::power::AnchoredPowerModel`] interpolates measured anchors
//! instead: empirical fidelity beats closed-form elegance when the paper's
//! numbers are the ground truth. The analytic model remains useful for
//! *hypothetical* platforms with no measurements at all.

use crate::error::{PlatformError, Result};
use crate::units::{Freq, Power, Voltage};

/// Closed-form power model `P = c_dyn·V²f·a + c_leak·V + p_base`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticPowerModel {
    /// Effective switching capacitance term, in W per (V²·GHz).
    pub c_dyn: f64,
    /// Leakage coefficient, in W per volt.
    pub c_leak: f64,
    /// Constant floor, in watts.
    pub p_base: f64,
}

impl AnalyticPowerModel {
    /// Creates a model from explicit coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidModel`] if any coefficient is
    /// negative or non-finite — such a model predicts nonphysical power
    /// somewhere in its domain.
    pub fn new(c_dyn: f64, c_leak: f64, p_base: f64) -> Result<Self> {
        for (name, v) in [("c_dyn", c_dyn), ("c_leak", c_leak), ("p_base", p_base)] {
            if !v.is_finite() || v < 0.0 {
                return Err(PlatformError::InvalidModel {
                    reason: format!("analytic coefficient {name} must be finite and >= 0, got {v}"),
                });
            }
        }
        Ok(Self {
            c_dyn,
            c_leak,
            p_base,
        })
    }

    /// Predicted power at `freq`, `voltage` and activity `a ∈ [0, 1]`.
    pub fn power(&self, freq: Freq, voltage: Voltage, activity: f64) -> Power {
        let a = activity.clamp(0.0, 1.0);
        Power::from_watts(
            self.c_dyn * voltage.squared_times(freq) * a
                + self.c_leak * voltage.as_volts()
                + self.p_base,
        )
    }
}

/// Result of a least-squares fit: the model plus its quality on the
/// anchors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticFit {
    /// The fitted model (coefficients clamped to be physical).
    pub model: AnalyticPowerModel,
    /// Maximum relative error over the anchors.
    pub max_rel_error: f64,
    /// Whether the *unclamped* least-squares solution had negative
    /// coefficients — a sign the data does not follow the closed form and
    /// an anchored model should be preferred.
    pub unphysical: bool,
}

/// Fits `P = c_dyn·V²f + c_leak·V + p_base` to full-activity anchors by
/// ordinary least squares on the basis `[V²f, V, 1]`, then clamps negative
/// coefficients to zero and re-solves the reduced system.
///
/// # Errors
///
/// Returns [`PlatformError::InvalidModel`] with fewer than three anchors
/// (the system is underdetermined) or non-positive powers.
pub fn fit_analytic(anchors: &[(Freq, Voltage, Power)]) -> Result<AnalyticFit> {
    if anchors.len() < 3 {
        return Err(PlatformError::InvalidModel {
            reason: format!("analytic fit needs >= 3 anchors, got {}", anchors.len()),
        });
    }
    for &(_, _, p) in anchors {
        if p.as_watts() <= 0.0 {
            return Err(PlatformError::InvalidModel {
                reason: "anchor powers must be positive".into(),
            });
        }
    }
    let rows: Vec<[f64; 3]> = anchors
        .iter()
        .map(|&(f, v, _)| [v.squared_times(f), v.as_volts(), 1.0])
        .collect();
    let ys: Vec<f64> = anchors.iter().map(|&(_, _, p)| p.as_watts()).collect();

    let full = solve_normal_equations(&rows, &ys)?;
    let unphysical = full.iter().any(|&c| c < 0.0);
    let coeffs = if unphysical {
        // Clamp: refit with only the dynamic term plus a floor (the two
        // physically guaranteed components).
        let rows2: Vec<[f64; 3]> = rows.iter().map(|r| [r[0], 0.0, 1.0]).collect();
        let mut c = solve_normal_equations(&rows2, &ys)?;
        c[1] = 0.0;
        if c[0] < 0.0 {
            c[0] = 0.0;
        }
        if c[2] < 0.0 {
            c[2] = 0.0;
        }
        c
    } else {
        full
    };
    let model =
        AnalyticPowerModel::new(coeffs[0].max(0.0), coeffs[1].max(0.0), coeffs[2].max(0.0))?;
    let max_rel_error = anchors
        .iter()
        .map(|&(f, v, p)| {
            let pred = model.power(f, v, 1.0).as_watts();
            ((pred - p.as_watts()) / p.as_watts()).abs()
        })
        .fold(0.0, f64::max);
    Ok(AnalyticFit {
        model,
        max_rel_error,
        unphysical,
    })
}

/// Solves the 3×3 normal equations `AᵀA x = Aᵀy` by Gaussian elimination
/// with partial pivoting. Degenerate columns (all zero) get coefficient 0.
fn solve_normal_equations(rows: &[[f64; 3]], ys: &[f64]) -> Result<[f64; 3]> {
    let mut ata = [[0.0f64; 3]; 3];
    let mut aty = [0.0f64; 3];
    for (r, &y) in rows.iter().zip(ys) {
        for i in 0..3 {
            aty[i] += r[i] * y;
            for j in 0..3 {
                ata[i][j] += r[i] * r[j];
            }
        }
    }
    // Regularise degenerate diagonals so zeroed-out basis columns solve to 0.
    for i in 0..3 {
        if ata[i][i].abs() < 1e-12 {
            ata[i][i] = 1.0;
            aty[i] = 0.0;
        }
    }
    let mut m = [[0.0f64; 4]; 3];
    for i in 0..3 {
        m[i][..3].copy_from_slice(&ata[i]);
        m[i][3] = aty[i];
    }
    for col in 0..3 {
        let pivot = (col..3)
            .max_by(|&a, &b| {
                m[a][col]
                    .abs()
                    .partial_cmp(&m[b][col].abs())
                    .expect("finite")
            })
            .expect("non-empty range");
        if m[pivot][col].abs() < 1e-12 {
            return Err(PlatformError::InvalidModel {
                reason: "analytic fit is degenerate (anchors not independent)".into(),
            });
        }
        m.swap(col, pivot);
        for row in 0..3 {
            if row == col {
                continue;
            }
            let factor = m[row][col] / m[col][col];
            let pivot_row = m[col];
            for (k, cell) in m[row].iter_mut().enumerate().skip(col) {
                *cell -= factor * pivot_row[k];
            }
        }
    }
    Ok([m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anchor(mhz: f64, volts: f64, mw: f64) -> (Freq, Voltage, Power) {
        (
            Freq::from_mhz(mhz),
            Voltage::from_volts(volts),
            Power::from_milliwatts(mw),
        )
    }

    #[test]
    fn recovers_exact_synthetic_coefficients() {
        // Generate data from a known model; the fit must recover it.
        let truth = AnalyticPowerModel::new(0.8, 0.3, 0.05).unwrap();
        let anchors: Vec<_> = [(200.0, 0.9), (1000.0, 1.0), (1800.0, 1.2), (600.0, 0.95)]
            .iter()
            .map(|&(mhz, v)| {
                let f = Freq::from_mhz(mhz);
                let volt = Voltage::from_volts(v);
                (f, volt, truth.power(f, volt, 1.0))
            })
            .collect();
        let fit = fit_analytic(&anchors).unwrap();
        assert!(!fit.unphysical);
        assert!((fit.model.c_dyn - 0.8).abs() < 1e-9);
        assert!((fit.model.c_leak - 0.3).abs() < 1e-9);
        assert!((fit.model.p_base - 0.05).abs() < 1e-9);
        assert!(fit.max_rel_error < 1e-9);
    }

    #[test]
    fn paper_a15_triple_is_unphysical_for_the_closed_form() {
        // The design-decision documentation: the published A15 measurements
        // cannot be explained by c_dyn·V²f + c_leak·V + base with
        // non-negative coefficients and the nominal voltage curve —
        // which is why the presets interpolate anchors instead.
        let anchors = vec![
            anchor(200.0, 0.9125, 326.0),
            anchor(1000.0, 1.025, 846.0),
            anchor(1800.0, 1.225, 2120.0),
        ];
        let fit = fit_analytic(&anchors).unwrap();
        assert!(fit.unphysical, "the unclamped LSQ must go negative");
        // The clamped fallback is physical but visibly worse than the
        // anchored model's exact reproduction.
        assert!(fit.max_rel_error > 0.05, "err {}", fit.max_rel_error);
        assert!(fit.model.c_leak == 0.0);
    }

    #[test]
    fn model_predictions_scale_sensibly() {
        let m = AnalyticPowerModel::new(0.5, 0.2, 0.03).unwrap();
        let v = Voltage::from_volts(1.0);
        let p_low = m.power(Freq::from_mhz(500.0), v, 1.0);
        let p_high = m.power(Freq::from_mhz(1000.0), v, 1.0);
        assert!(p_high > p_low);
        // Idle (activity 0) leaves leakage + base.
        let idle = m.power(Freq::from_mhz(1000.0), v, 0.0);
        assert!((idle.as_watts() - 0.23).abs() < 1e-12);
        // Activity clamps.
        assert_eq!(m.power(Freq::from_mhz(1000.0), v, 5.0), p_high);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(AnalyticPowerModel::new(-0.1, 0.0, 0.0).is_err());
        assert!(AnalyticPowerModel::new(0.1, f64::NAN, 0.0).is_err());
        assert!(fit_analytic(&[anchor(200.0, 0.9, 100.0)]).is_err());
        assert!(fit_analytic(&[
            anchor(200.0, 0.9, 100.0),
            anchor(300.0, 0.9, 120.0),
            anchor(400.0, 0.9, -5.0),
        ])
        .is_err());
        // Degenerate: identical anchors.
        let same = vec![
            anchor(500.0, 1.0, 300.0),
            anchor(500.0, 1.0, 300.0),
            anchor(500.0, 1.0, 300.0),
        ];
        assert!(fit_analytic(&same).is_err());
    }

    #[test]
    fn fit_interpolates_between_anchors_monotonically() {
        let truth = AnalyticPowerModel::new(1.2, 0.1, 0.02).unwrap();
        let anchors: Vec<_> = [(300.0, 0.85), (900.0, 1.0), (1500.0, 1.15)]
            .iter()
            .map(|&(mhz, v)| {
                let f = Freq::from_mhz(mhz);
                let volt = Voltage::from_volts(v);
                (f, volt, truth.power(f, volt, 1.0))
            })
            .collect();
        let fit = fit_analytic(&anchors).unwrap();
        let mut prev = 0.0;
        for mhz in (300..=1500).step_by(100) {
            let t = (mhz as f64 - 300.0) / 1200.0;
            let v = Voltage::from_volts(0.85 + t * 0.3);
            let p = fit
                .model
                .power(Freq::from_mhz(mhz as f64), v, 1.0)
                .as_watts();
            assert!(p >= prev);
            prev = p;
        }
    }
}
