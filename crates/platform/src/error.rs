//! Error types for the platform model.

use std::error::Error;
use std::fmt;

use crate::units::Freq;

/// Errors returned by platform-model queries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlatformError {
    /// The requested cluster index does not exist on this SoC.
    UnknownCluster {
        /// The offending cluster index.
        index: usize,
        /// Number of clusters on the SoC.
        count: usize,
    },
    /// No cluster with the requested name exists on this SoC.
    UnknownClusterName {
        /// The requested name.
        name: String,
    },
    /// The requested frequency is not an operating performance point of the
    /// cluster.
    FrequencyNotSupported {
        /// Cluster name.
        cluster: String,
        /// The offending frequency.
        freq: Freq,
    },
    /// The requested OPP index is out of range for the cluster.
    OppIndexOutOfRange {
        /// Cluster name.
        cluster: String,
        /// The offending index.
        index: usize,
        /// Number of OPPs on the cluster.
        count: usize,
    },
    /// More cores were requested than the cluster provides.
    TooManyCores {
        /// Cluster name.
        cluster: String,
        /// Requested core count.
        requested: u32,
        /// Available core count.
        available: u32,
    },
    /// Zero cores were requested; a placement must use at least one core.
    ZeroCores {
        /// Cluster name.
        cluster: String,
    },
    /// A model was constructed from invalid data (e.g. empty OPP table,
    /// non-monotonic anchors).
    InvalidModel {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownCluster { index, count } => {
                write!(
                    f,
                    "unknown cluster index {index} (SoC has {count} clusters)"
                )
            }
            Self::UnknownClusterName { name } => {
                write!(f, "no cluster named `{name}` on this SoC")
            }
            Self::FrequencyNotSupported { cluster, freq } => {
                write!(
                    f,
                    "frequency {:.0} MHz is not an OPP of cluster `{cluster}`",
                    freq.as_mhz()
                )
            }
            Self::OppIndexOutOfRange {
                cluster,
                index,
                count,
            } => {
                write!(
                    f,
                    "OPP index {index} out of range for cluster `{cluster}` ({count} OPPs)"
                )
            }
            Self::TooManyCores {
                cluster,
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested {requested} cores on cluster `{cluster}` with only {available}"
                )
            }
            Self::ZeroCores { cluster } => {
                write!(
                    f,
                    "placement on cluster `{cluster}` must use at least one core"
                )
            }
            Self::InvalidModel { reason } => write!(f, "invalid model: {reason}"),
        }
    }
}

impl Error for PlatformError {}

/// Convenience alias for platform-model results.
pub type Result<T> = std::result::Result<T, PlatformError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlatformError>();
    }

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = PlatformError::UnknownCluster { index: 3, count: 2 };
        let msg = format!("{e}");
        assert!(msg.contains("unknown cluster index 3"));
        assert!(msg.contains("2 clusters"));

        let e = PlatformError::FrequencyNotSupported {
            cluster: "a15".into(),
            freq: Freq::from_mhz(250.0),
        };
        assert!(format!("{e}").contains("250 MHz"));

        let e = PlatformError::TooManyCores {
            cluster: "a7".into(),
            requested: 8,
            available: 4,
        };
        assert!(format!("{e}").contains("8 cores"));

        let e = PlatformError::ZeroCores {
            cluster: "a7".into(),
        };
        assert!(format!("{e}").contains("at least one core"));
    }

    #[test]
    fn error_trait_object_usable() {
        let e: Box<dyn Error> = Box::new(PlatformError::InvalidModel {
            reason: "empty opp table".into(),
        });
        assert!(e.to_string().contains("empty opp table"));
    }
}
