//! Cluster power model anchored to published measurements.
//!
//! Measured cluster power on real boards does not follow a clean closed-form
//! law (utilisation, per-OPP voltage binning and shared-rail effects all
//! intrude), so — as empirical simulators do — we interpolate between the
//! paper's measured anchor points. The interpolation abscissa is `V²·f`,
//! the quantity dynamic CMOS power is proportional to, which keeps the curve
//! physically shaped between anchors and passes through every anchor
//! exactly.

use crate::calibration::interp_extrapolate;
use crate::error::{PlatformError, Result};
use crate::opp::OppTable;
use crate::units::{Freq, Power, Voltage};

/// A measured `(frequency, full-activity cluster power)` anchor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerAnchor {
    /// Frequency the measurement was taken at.
    pub freq: Freq,
    /// Total cluster power while running the reference workload flat out.
    pub active_power: Power,
}

impl PowerAnchor {
    /// Convenience constructor from MHz and milliwatts.
    pub fn from_mhz_mw(mhz: f64, mw: f64) -> Self {
        Self {
            freq: Freq::from_mhz(mhz),
            active_power: Power::from_milliwatts(mw),
        }
    }
}

/// Power model interpolating measured anchors in `V²·f` space.
///
/// `active_power(f)` is the cluster's power when fully busy at frequency
/// `f`; partial activity scales the dynamic component
/// (`active − idle`) by an activity factor while the idle floor remains.
///
/// # Examples
///
/// ```
/// use eml_platform::opp::OppTable;
/// use eml_platform::power::{AnchoredPowerModel, PowerAnchor};
/// use eml_platform::units::{Freq, Power};
///
/// # fn main() -> Result<(), eml_platform::PlatformError> {
/// let opps = OppTable::from_mhz_mv(&[(200.0, 900.0), (700.0, 960.0), (1300.0, 1100.0)])?;
/// let model = AnchoredPowerModel::new(
///     vec![
///         PowerAnchor::from_mhz_mw(200.0, 72.4),
///         PowerAnchor::from_mhz_mw(700.0, 141.0),
///         PowerAnchor::from_mhz_mw(1300.0, 329.0),
///     ],
///     Power::from_milliwatts(25.0),
///     &opps,
/// )?;
/// // Anchors are reproduced exactly.
/// let p = model.active_power(Freq::from_mhz(700.0));
/// assert!((p.as_milliwatts() - 141.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AnchoredPowerModel {
    /// `(V²·f, active power W)` pairs, ascending in the abscissa.
    curve: Vec<(f64, f64)>,
    /// Voltage lookup for arbitrary frequencies.
    voltage_curve: Vec<(f64, f64)>, // (MHz, volts)
    idle: Power,
}

impl AnchoredPowerModel {
    /// Builds the model from measured anchors, an idle-power floor, and the
    /// cluster's OPP table (for voltage lookups).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidModel`] if no anchors are given, if
    /// any anchor power is non-positive or below idle, or if anchors are not
    /// strictly increasing in `V²·f`.
    pub fn new(anchors: Vec<PowerAnchor>, idle: Power, opps: &OppTable) -> Result<Self> {
        if anchors.is_empty() {
            return Err(PlatformError::InvalidModel {
                reason: "power model requires at least one anchor".into(),
            });
        }
        if idle.as_watts() < 0.0 {
            return Err(PlatformError::InvalidModel {
                reason: "idle power must be non-negative".into(),
            });
        }
        let mut curve = Vec::with_capacity(anchors.len());
        for a in &anchors {
            if a.active_power.as_watts() <= 0.0 {
                return Err(PlatformError::InvalidModel {
                    reason: "anchor power must be positive".into(),
                });
            }
            if a.active_power < idle {
                return Err(PlatformError::InvalidModel {
                    reason: format!("anchor power {} below idle power {}", a.active_power, idle),
                });
            }
            let v = opps.voltage_at(a.freq);
            curve.push((v.squared_times(a.freq), a.active_power.as_watts()));
        }
        curve.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite v2f"));
        for pair in curve.windows(2) {
            if pair[1].0 - pair[0].0 <= f64::EPSILON {
                return Err(PlatformError::InvalidModel {
                    reason: "power anchors must be strictly increasing in V²·f".into(),
                });
            }
            if pair[1].1 < pair[0].1 {
                return Err(PlatformError::InvalidModel {
                    reason: "active power must be non-decreasing in V²·f".into(),
                });
            }
        }
        let voltage_curve = opps
            .iter()
            .map(|o| (o.freq().as_mhz(), o.voltage().as_volts()))
            .collect();
        Ok(Self {
            curve,
            voltage_curve,
            idle,
        })
    }

    /// The idle-power floor of the cluster (clock-gated, not power-gated).
    pub fn idle_power(&self) -> Power {
        self.idle
    }

    /// Voltage at `freq` according to the cluster's OPP table (interpolated
    /// and clamped like [`OppTable::voltage_at`]).
    pub fn voltage_at(&self, freq: Freq) -> Voltage {
        Voltage::from_volts(interp_clamped(&self.voltage_curve, freq.as_mhz()))
    }

    /// Full-activity cluster power at `freq`.
    ///
    /// Passes exactly through the calibration anchors; between them it is
    /// linear in `V²·f`; beyond them it extrapolates the end segments,
    /// floored at the idle power.
    pub fn active_power(&self, freq: Freq) -> Power {
        let v = self.voltage_at(freq);
        let x = v.squared_times(freq);
        let w = interp_extrapolate(&self.curve, x);
        Power::from_watts(w.max(self.idle.as_watts()))
    }

    /// Cluster power at `freq` with the given activity factor in `[0, 1]`
    /// (fraction of the cluster's compute actually in use: busy cores ×
    /// utilisation).
    ///
    /// `activity = 1` reproduces the anchors; `activity = 0` returns the
    /// idle floor.
    pub fn power(&self, freq: Freq, activity: f64) -> Power {
        let a = activity.clamp(0.0, 1.0);
        let dynamic = self.active_power(freq) - self.idle;
        self.idle + dynamic * a
    }
}

fn interp_clamped(points: &[(f64, f64)], x: f64) -> f64 {
    debug_assert!(!points.is_empty());
    if x <= points[0].0 {
        return points[0].1;
    }
    let last = points[points.len() - 1];
    if x >= last.0 {
        return last.1;
    }
    interp_extrapolate(points, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::TimeSpan;

    fn a7_opps() -> OppTable {
        OppTable::from_mhz_mv(&[
            (200.0, 900.0),
            (700.0, 960.0),
            (900.0, 1000.0),
            (1300.0, 1100.0),
        ])
        .unwrap()
    }

    fn a7_model() -> AnchoredPowerModel {
        AnchoredPowerModel::new(
            vec![
                PowerAnchor::from_mhz_mw(200.0, 72.4),
                PowerAnchor::from_mhz_mw(700.0, 141.0),
                PowerAnchor::from_mhz_mw(1300.0, 329.0),
            ],
            Power::from_milliwatts(25.0),
            &a7_opps(),
        )
        .unwrap()
    }

    #[test]
    fn anchors_reproduced_exactly() {
        let m = a7_model();
        for (mhz, mw) in [(200.0, 72.4), (700.0, 141.0), (1300.0, 329.0)] {
            let p = m.active_power(Freq::from_mhz(mhz));
            assert!(
                (p.as_milliwatts() - mw).abs() < 1e-9,
                "anchor {mhz} MHz: got {}",
                p.as_milliwatts()
            );
        }
    }

    #[test]
    fn interpolation_is_monotone_in_frequency() {
        let m = a7_model();
        let mut prev = 0.0;
        for mhz in (200..=1300).step_by(100) {
            let p = m.active_power(Freq::from_mhz(mhz as f64)).as_milliwatts();
            assert!(p >= prev, "power must be non-decreasing, {mhz} MHz");
            prev = p;
        }
    }

    #[test]
    fn paper_case_study_a7_900mhz_power_is_reasonable() {
        // The §IV worked example needs ~190-200 mW at A7 900 MHz so that the
        // 100% model consumes < 100 mJ in ~400 ms.
        let m = a7_model();
        let p = m.active_power(Freq::from_mhz(900.0));
        assert!(
            (150.0..250.0).contains(&p.as_milliwatts()),
            "got {}",
            p.as_milliwatts()
        );
        let e = p * TimeSpan::from_millis(397.0);
        assert!(e.as_millijoules() < 100.0);
    }

    #[test]
    fn activity_scaling_between_idle_and_active() {
        let m = a7_model();
        let f = Freq::from_mhz(700.0);
        assert_eq!(m.power(f, 0.0), m.idle_power());
        assert_eq!(m.power(f, 1.0), m.active_power(f));
        let half = m.power(f, 0.5);
        assert!(half > m.idle_power() && half < m.active_power(f));
        // Out-of-range activity clamps rather than extrapolating.
        assert_eq!(m.power(f, 7.0), m.active_power(f));
        assert_eq!(m.power(f, -1.0), m.idle_power());
    }

    #[test]
    fn extrapolation_floors_at_idle() {
        let m = a7_model();
        // Far below the lowest anchor the extrapolated line could go
        // negative; it must floor at idle.
        let p = m.active_power(Freq::from_mhz(10.0));
        assert!(p >= m.idle_power());
    }

    #[test]
    fn rejects_invalid_construction() {
        let opps = a7_opps();
        assert!(AnchoredPowerModel::new(vec![], Power::ZERO, &opps).is_err());
        assert!(AnchoredPowerModel::new(
            vec![PowerAnchor::from_mhz_mw(200.0, -5.0)],
            Power::ZERO,
            &opps
        )
        .is_err());
        // Anchor below idle.
        assert!(AnchoredPowerModel::new(
            vec![PowerAnchor::from_mhz_mw(200.0, 10.0)],
            Power::from_milliwatts(50.0),
            &opps
        )
        .is_err());
        // Duplicate anchors collapse in V²·f.
        assert!(AnchoredPowerModel::new(
            vec![
                PowerAnchor::from_mhz_mw(200.0, 70.0),
                PowerAnchor::from_mhz_mw(200.0, 80.0),
            ],
            Power::ZERO,
            &opps
        )
        .is_err());
        // Power decreasing with V²·f.
        assert!(AnchoredPowerModel::new(
            vec![
                PowerAnchor::from_mhz_mw(200.0, 100.0),
                PowerAnchor::from_mhz_mw(700.0, 80.0),
            ],
            Power::ZERO,
            &opps
        )
        .is_err());
    }

    #[test]
    fn single_anchor_scales_with_v2f() {
        let opps = a7_opps();
        let m = AnchoredPowerModel::new(
            vec![PowerAnchor::from_mhz_mw(700.0, 141.0)],
            Power::ZERO,
            &opps,
        )
        .unwrap();
        // Same voltage-squared-frequency ratio ⇒ proportional power.
        let p13 = m.active_power(Freq::from_mhz(1300.0));
        let v2f_13 = opps.get(3).unwrap().v2f();
        let v2f_07 = opps.get(1).unwrap().v2f();
        assert!(
            (p13.as_milliwatts() - 141.0 * v2f_13 / v2f_07).abs() < 1e-9,
            "got {}",
            p13.as_milliwatts()
        );
    }
}
