//! Cluster latency model: how long a workload takes at a given frequency and
//! core allocation.
//!
//! Calibrated as `t(f) = (macs / ref_macs) · (a/f + b)` against the paper's
//! measured anchors (see [`crate::calibration`]), with a saturating parallel
//! speedup for core counts other than the calibration reference.

use crate::calibration::{fit_inverse_affine, InverseAffineFit};
use crate::error::{PlatformError, Result};
use crate::units::{Freq, TimeSpan};
use crate::workload::Workload;

/// Predicts execution latency on one cluster.
///
/// # Examples
///
/// ```
/// use eml_platform::latency::LatencyModel;
/// use eml_platform::units::{Freq, TimeSpan};
/// use eml_platform::workload::Workload;
///
/// # fn main() -> Result<(), eml_platform::PlatformError> {
/// // Calibrate from a single (1 GHz, 204 ms) anchor measured with 4 cores
/// // running a 62 MMAC reference workload.
/// let model = LatencyModel::from_anchors(
///     &[(Freq::from_ghz(1.0), TimeSpan::from_millis(204.0))],
///     62.0e6,
///     4,
/// )?;
/// let w = Workload::new("net", 31.0e6); // half the work
/// let t = model.latency(Freq::from_ghz(1.0), &w, 4)?;
/// assert!((t.as_millis() - 102.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    fit: InverseAffineFit,
    ref_macs: f64,
    ref_cores: u32,
    max_cores: u32,
    /// Serial fraction in the Amdahl-style speedup `s(k) = k / (1 + α(k−1))`.
    parallel_alpha: f64,
}

impl LatencyModel {
    /// Default serial fraction: multi-threaded CNN inference parallelises
    /// well but not perfectly across a four-core cluster.
    pub const DEFAULT_PARALLEL_ALPHA: f64 = 0.08;

    /// Calibrates the model from `(frequency, latency)` anchors measured
    /// while executing a reference workload of `ref_macs` MACs on
    /// `ref_cores` cores.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidModel`] if the anchors are unusable
    /// (see [`fit_inverse_affine`]) or if `ref_macs`/`ref_cores` are zero.
    pub fn from_anchors(
        anchors: &[(Freq, TimeSpan)],
        ref_macs: f64,
        ref_cores: u32,
    ) -> Result<Self> {
        if ref_macs <= 0.0 || ref_macs.is_nan() {
            return Err(PlatformError::InvalidModel {
                reason: "reference workload must have positive MACs".into(),
            });
        }
        if ref_cores == 0 {
            return Err(PlatformError::InvalidModel {
                reason: "reference core count must be positive".into(),
            });
        }
        Ok(Self {
            fit: fit_inverse_affine(anchors)?,
            ref_macs,
            ref_cores,
            max_cores: ref_cores,
            parallel_alpha: Self::DEFAULT_PARALLEL_ALPHA,
        })
    }

    /// Overrides the serial fraction of the parallel-speedup model.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidModel`] unless `0 ≤ alpha ≤ 1`.
    pub fn with_parallel_alpha(mut self, alpha: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&alpha) {
            return Err(PlatformError::InvalidModel {
                reason: format!("parallel alpha must be in [0, 1], got {alpha}"),
            });
        }
        self.parallel_alpha = alpha;
        Ok(self)
    }

    /// Sets the maximum core count the model accepts (defaults to
    /// `ref_cores`).
    #[must_use]
    pub fn with_max_cores(mut self, max_cores: u32) -> Self {
        self.max_cores = max_cores.max(1);
        self
    }

    /// The underlying `a/f + b` fit for the reference workload.
    pub fn fit(&self) -> InverseAffineFit {
        self.fit
    }

    /// MAC count of the calibration reference workload.
    pub fn ref_macs(&self) -> f64 {
        self.ref_macs
    }

    /// Core count the calibration anchors were measured with.
    pub fn ref_cores(&self) -> u32 {
        self.ref_cores
    }

    /// Amdahl-style speedup of `k` cores relative to one core.
    fn speedup(&self, k: u32) -> f64 {
        let k = k as f64;
        k / (1.0 + self.parallel_alpha * (k - 1.0))
    }

    /// Predicts the latency of `workload` at `freq` using `cores` cores.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::ZeroCores`] when `cores == 0` and
    /// [`PlatformError::TooManyCores`] when `cores` exceeds the model's
    /// maximum.
    pub fn latency(&self, freq: Freq, workload: &Workload, cores: u32) -> Result<TimeSpan> {
        if cores == 0 {
            return Err(PlatformError::ZeroCores {
                cluster: String::new(),
            });
        }
        if cores > self.max_cores {
            return Err(PlatformError::TooManyCores {
                cluster: String::new(),
                requested: cores,
                available: self.max_cores,
            });
        }
        let scale = workload.macs() / self.ref_macs;
        let t_ref = self.fit.eval(freq).as_secs();
        let core_factor = self.speedup(self.ref_cores) / self.speedup(cores);
        Ok(TimeSpan::from_secs(t_ref * scale * core_factor))
    }

    /// Sustainable throughput in jobs per second at `freq` with `cores`
    /// cores.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LatencyModel::latency`].
    pub fn throughput(&self, freq: Freq, workload: &Workload, cores: u32) -> Result<f64> {
        let t = self.latency(freq, workload, cores)?;
        Ok(1.0 / t.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LatencyModel {
        // Paper's A15 anchors, 62 MMAC reference, 4 cores.
        LatencyModel::from_anchors(
            &[
                (Freq::from_mhz(200.0), TimeSpan::from_millis(1020.0)),
                (Freq::from_mhz(1000.0), TimeSpan::from_millis(204.0)),
                (Freq::from_mhz(1800.0), TimeSpan::from_millis(117.0)),
            ],
            62.0e6,
            4,
        )
        .unwrap()
    }

    #[test]
    fn reproduces_anchor_latency_at_reference_config() {
        let m = model();
        let w = Workload::new("ref", 62.0e6);
        let t = m.latency(Freq::from_mhz(1000.0), &w, 4).unwrap();
        assert!((t.as_millis() - 204.0).abs() / 204.0 < 0.02);
    }

    #[test]
    fn latency_scales_linearly_with_macs() {
        let m = model();
        let full = Workload::new("full", 62.0e6);
        let half = Workload::new("half", 31.0e6);
        let f = Freq::from_mhz(1000.0);
        let tf = m.latency(f, &full, 4).unwrap();
        let th = m.latency(f, &half, 4).unwrap();
        assert!((tf.as_secs() / th.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fewer_cores_is_slower_but_sublinear() {
        let m = model();
        let w = Workload::new("w", 62.0e6);
        let f = Freq::from_mhz(1000.0);
        let t4 = m.latency(f, &w, 4).unwrap().as_secs();
        let t1 = m.latency(f, &w, 1).unwrap().as_secs();
        let t2 = m.latency(f, &w, 2).unwrap().as_secs();
        assert!(t1 > t2 && t2 > t4);
        // One core is slower than 4 cores by the full speedup factor
        // s(4) = 4 / (1 + 0.08·3) ≈ 3.23.
        assert!((t1 / t4 - 3.2258).abs() < 1e-3);
    }

    #[test]
    fn monotone_in_frequency() {
        let m = model();
        let w = Workload::new("w", 62.0e6);
        let mut prev = f64::INFINITY;
        for mhz in (200..=1800).step_by(100) {
            let t = m
                .latency(Freq::from_mhz(mhz as f64), &w, 4)
                .unwrap()
                .as_secs();
            assert!(t < prev, "latency must decrease with frequency");
            prev = t;
        }
    }

    #[test]
    fn rejects_bad_core_counts() {
        let m = model();
        let w = Workload::new("w", 1.0);
        assert!(matches!(
            m.latency(Freq::from_mhz(1000.0), &w, 0),
            Err(PlatformError::ZeroCores { .. })
        ));
        assert!(matches!(
            m.latency(Freq::from_mhz(1000.0), &w, 5),
            Err(PlatformError::TooManyCores { .. })
        ));
    }

    #[test]
    fn throughput_is_inverse_latency() {
        let m = model();
        let w = Workload::new("w", 62.0e6);
        let f = Freq::from_mhz(900.0);
        let t = m.latency(f, &w, 4).unwrap().as_secs();
        let thr = m.throughput(f, &w, 4).unwrap();
        assert!((thr * t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_bounds_validated() {
        assert!(model().with_parallel_alpha(1.5).is_err());
        assert!(model().with_parallel_alpha(-0.1).is_err());
        let m = model().with_parallel_alpha(0.0).unwrap();
        let w = Workload::new("w", 62.0e6);
        let f = Freq::from_mhz(1000.0);
        // Perfect scaling: 1 core exactly 4x slower than 4.
        let t4 = m.latency(f, &w, 4).unwrap().as_secs();
        let t1 = m.latency(f, &w, 1).unwrap().as_secs();
        assert!((t1 / t4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_reference_rejected() {
        let anchors = [(Freq::from_mhz(1000.0), TimeSpan::from_millis(100.0))];
        assert!(LatencyModel::from_anchors(&anchors, 0.0, 4).is_err());
        assert!(LatencyModel::from_anchors(&anchors, 1.0, 0).is_err());
    }
}
