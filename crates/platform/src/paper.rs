//! Published measurements from the paper, embedded as ground truth.
//!
//! These constants are the reproduction targets: every table/figure
//! regenerator in `eml-bench` compares the simulator's predictions against
//! them, and `EXPERIMENTS.md` records the deltas.
//!
//! Source: Xun et al., "Optimising Resource Management for Embedded Machine
//! Learning", DATE 2020 (experimental data DOI: 10.5258/SOTON/D1154).

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableOneRow {
    /// Board the row was measured on.
    pub platform: &'static str,
    /// Cluster name in the corresponding [`crate::presets`] SoC.
    pub cluster: &'static str,
    /// Cluster frequency in MHz.
    pub freq_mhz: f64,
    /// The paper's "Computing cores" label, verbatim.
    pub label: &'static str,
    /// Measured inference execution time in milliseconds.
    pub time_ms: f64,
    /// Measured power in milliwatts.
    pub power_mw: f64,
    /// Measured energy per inference in millijoules.
    pub energy_mj: f64,
    /// Top-1 accuracy in percent (platform-independent: identical in every
    /// row).
    pub top1_percent: f64,
}

/// The paper's Table I: platform-dependent and -independent DNN performance
/// metrics.
pub const TABLE_ONE: [TableOneRow; 10] = [
    TableOneRow {
        platform: "jetson-nano",
        cluster: "gpu",
        freq_mhz: 614.4,
        label: "GPU (614MHz) + A57 CPU (921MHz)",
        time_ms: 7.4,
        power_mw: 1340.0,
        energy_mj: 9.92,
        top1_percent: 71.2,
    },
    TableOneRow {
        platform: "jetson-nano",
        cluster: "gpu",
        freq_mhz: 921.6,
        label: "GPU (921MHz) + A57 CPU (1.43GHz)",
        time_ms: 4.93,
        power_mw: 2500.0,
        energy_mj: 12.3,
        top1_percent: 71.2,
    },
    TableOneRow {
        platform: "jetson-nano",
        cluster: "a57",
        freq_mhz: 921.6,
        label: "A57 CPU (921MHz)",
        time_ms: 69.4,
        power_mw: 878.0,
        energy_mj: 60.9,
        top1_percent: 71.2,
    },
    TableOneRow {
        platform: "jetson-nano",
        cluster: "a57",
        freq_mhz: 1428.0,
        label: "A57 CPU (1.43GHz)",
        time_ms: 46.9,
        power_mw: 1490.0,
        energy_mj: 69.9,
        top1_percent: 71.2,
    },
    TableOneRow {
        platform: "odroid-xu3",
        cluster: "a15",
        freq_mhz: 200.0,
        label: "A15 CPU (200MHz)",
        time_ms: 1020.0,
        power_mw: 326.0,
        energy_mj: 320.0,
        top1_percent: 71.2,
    },
    TableOneRow {
        platform: "odroid-xu3",
        cluster: "a15",
        freq_mhz: 1000.0,
        label: "A15 CPU (1GHz)",
        time_ms: 204.0,
        power_mw: 846.0,
        energy_mj: 173.0,
        top1_percent: 71.2,
    },
    TableOneRow {
        platform: "odroid-xu3",
        cluster: "a15",
        freq_mhz: 1800.0,
        label: "A15 CPU (1.8GHz)",
        time_ms: 117.0,
        power_mw: 2120.0,
        energy_mj: 248.0,
        top1_percent: 71.2,
    },
    TableOneRow {
        platform: "odroid-xu3",
        cluster: "a7",
        freq_mhz: 200.0,
        label: "A7 CPU (200MHz)",
        time_ms: 1780.0,
        power_mw: 72.4,
        energy_mj: 129.0,
        top1_percent: 71.2,
    },
    TableOneRow {
        platform: "odroid-xu3",
        cluster: "a7",
        freq_mhz: 700.0,
        label: "A7 CPU (700MHz)",
        time_ms: 504.0,
        power_mw: 141.0,
        energy_mj: 71.4,
        top1_percent: 71.2,
    },
    TableOneRow {
        platform: "odroid-xu3",
        cluster: "a7",
        freq_mhz: 1300.0,
        label: "A7 CPU (1.3GHz)",
        time_ms: 280.0,
        power_mw: 329.0,
        energy_mj: 92.1,
        top1_percent: 71.2,
    },
];

/// Fig 4(b): Top-1 CIFAR-10 accuracy (%) of the 25/50/75/100 % dynamic-DNN
/// configurations.
pub const FIG4B_TOP1: [f64; 4] = [56.0, 62.7, 68.8, 71.2];

/// Width fractions of the paper's four dynamic-DNN configurations.
pub const WIDTH_LEVELS: [f64; 4] = [0.25, 0.50, 0.75, 1.00];

/// §IV worked example, first budget: 400 ms and 100 mJ.
///
/// Expected optimum: 100 % model on the A7 at 900 MHz.
pub const CASE_STUDY_BUDGET_1: CaseStudyBudget = CaseStudyBudget {
    time_ms: 400.0,
    energy_mj: 100.0,
    expect_cluster: "a7",
    expect_freq_mhz: 900.0,
    expect_width: 1.00,
};

/// §IV worked example, second budget: 200 ms and 150 mJ.
///
/// Expected optimum: 75 % model on the A15 at 1 GHz.
pub const CASE_STUDY_BUDGET_2: CaseStudyBudget = CaseStudyBudget {
    time_ms: 200.0,
    energy_mj: 150.0,
    expect_cluster: "a15",
    expect_freq_mhz: 1000.0,
    expect_width: 0.75,
};

/// A budget/expected-optimum pair from the paper's worked example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseStudyBudget {
    /// Latency budget in milliseconds.
    pub time_ms: f64,
    /// Energy budget in millijoules.
    pub energy_mj: f64,
    /// Expected optimal cluster (preset name).
    pub expect_cluster: &'static str,
    /// Expected optimal frequency in MHz.
    pub expect_freq_mhz: f64,
    /// Expected optimal width fraction.
    pub expect_width: f64,
}

/// Number of A15 DVFS levels used in Fig 4(a).
pub const FIG4A_A15_LEVELS: usize = 17;

/// Number of A7 DVFS levels used in Fig 4(a).
pub const FIG4A_A7_LEVELS: usize = 12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_energy_is_consistent_with_power_times_time() {
        // The paper's own energy column equals P·t to within rounding
        // (< 5 %); assert so our reproduction tolerance is justified.
        for row in &TABLE_ONE {
            let computed_mj = row.power_mw * row.time_ms / 1000.0;
            let rel = ((computed_mj - row.energy_mj) / row.energy_mj).abs();
            assert!(
                rel < 0.05,
                "row `{}`: paper energy {} vs P·t {:.2} ({}%)",
                row.label,
                row.energy_mj,
                computed_mj,
                rel * 100.0
            );
        }
    }

    #[test]
    fn accuracy_is_platform_independent() {
        assert!(TABLE_ONE.iter().all(|r| r.top1_percent == 71.2));
    }

    #[test]
    fn fig4b_accuracy_is_monotone_with_diminishing_returns() {
        for w in FIG4B_TOP1.windows(2) {
            assert!(w[1] > w[0]);
        }
        let gains: Vec<f64> = FIG4B_TOP1.windows(2).map(|w| w[1] - w[0]).collect();
        for g in gains.windows(2) {
            assert!(g[1] < g[0], "accuracy gains should diminish with width");
        }
    }

    #[test]
    fn width_levels_ascend_to_full() {
        assert_eq!(WIDTH_LEVELS.len(), FIG4B_TOP1.len());
        assert_eq!(WIDTH_LEVELS[3], 1.0);
    }
}
