//! Ready-made SoC models calibrated against the paper's boards.
//!
//! - [`odroid_xu3`]: Samsung Exynos 5422 (4×A15 + 4×A7 + Mali GPU), the
//!   board of the paper's case study (Fig 4). The A15/A7 latency and power
//!   models are anchored to the six Odroid rows of Table I; OPP voltage
//!   tables are nominal Exynos 5422 values.
//! - [`jetson_nano`]: NVIDIA Jetson Nano (4×A57 + 128-core Maxwell GPU),
//!   anchored to the four Jetson rows of Table I. The `gpu` cluster models
//!   the *GPU + host CPU* composite exactly as the paper measured it.
//! - [`flagship`]: a Kirin-990-class phone SoC (big/little CPUs, GPU,
//!   NPU, DSP) with nominal characteristics, used for the multi-application
//!   runtime scenario of Fig 2 where an NPU and resource contention matter.
//!
//! All numbers that come from the paper live in [`crate::paper`]; everything
//! else is a documented nominal value.

use crate::error::Result;
use crate::latency::LatencyModel;
use crate::opp::{grid_with_voltage_keys, OppTable};
use crate::paper;
use crate::power::{AnchoredPowerModel, PowerAnchor};
use crate::soc::{ClusterSpec, CoreKind, Soc};
use crate::thermal::ThermalModel;
use crate::units::{Freq, Power, TimeSpan};
use crate::workload::Workload;

/// MAC count of the calibration reference workload (one inference of the
/// paper's full-width CIFAR-10 CNN; nominal).
///
/// All preset latency models are expressed relative to this workload: a
/// workload of `REFERENCE_MACS` MACs reproduces the paper's Table I
/// latencies, and other workloads scale linearly in their MAC count.
pub const REFERENCE_MACS: f64 = 62.0e6;

/// The reference workload the presets are calibrated against: one inference
/// of the paper's full-width (100 %) CNN.
pub fn reference_workload() -> Workload {
    Workload::new("paper-ref-dnn", REFERENCE_MACS)
        .with_param_bytes(2.4e6)
        .with_activation_bytes(1.1e6)
}

fn anchors_ms(points: &[(f64, f64)]) -> Vec<(Freq, TimeSpan)> {
    points
        .iter()
        .map(|&(mhz, ms)| (Freq::from_mhz(mhz), TimeSpan::from_millis(ms)))
        .collect()
}

/// Builds the Odroid XU3 model (Samsung Exynos 5422).
///
/// Clusters: `a15` (4 cores, 17 OPPs, 200–1800 MHz), `a7` (4 cores,
/// 12 OPPs, 200–1300 MHz) — the DVFS level counts the paper sweeps in
/// Fig 4(a) — plus a nominal `gpu` (Mali-T628).
///
/// # Panics
///
/// Never panics: the embedded calibration data is validated by unit tests.
pub fn odroid_xu3() -> Soc {
    build_odroid_xu3().expect("embedded XU3 calibration data is valid")
}

fn build_odroid_xu3() -> Result<Soc> {
    // Nominal Exynos 5422 OPP voltages (V) at key frequencies; the grid
    // interpolates between them. 17 A15 levels / 12 A7 levels per Fig 4(a).
    let a15_opps = OppTable::from_mhz_mv(&grid_with_voltage_keys(
        200.0,
        100.0,
        paper::FIG4A_A15_LEVELS,
        &[
            (200.0, 912.5),
            (400.0, 912.5),
            (600.0, 925.0),
            (800.0, 985.0),
            (900.0, 1012.5),
            (1000.0, 1025.0),
            (1400.0, 1125.0),
            (1800.0, 1225.0),
        ],
    ))?;
    let a7_opps = OppTable::from_mhz_mv(&grid_with_voltage_keys(
        200.0,
        100.0,
        paper::FIG4A_A7_LEVELS,
        &[
            (200.0, 900.0),
            (600.0, 950.0),
            (900.0, 1000.0),
            (1100.0, 1040.0),
            (1300.0, 1100.0),
        ],
    ))?;

    // Table I anchors (Odroid XU3 rows).
    let a15_latency = LatencyModel::from_anchors(
        &anchors_ms(&[(200.0, 1020.0), (1000.0, 204.0), (1800.0, 117.0)]),
        REFERENCE_MACS,
        4,
    )?;
    let a7_latency = LatencyModel::from_anchors(
        &anchors_ms(&[(200.0, 1780.0), (700.0, 504.0), (1300.0, 280.0)]),
        REFERENCE_MACS,
        4,
    )?;
    let a15_power = AnchoredPowerModel::new(
        vec![
            PowerAnchor::from_mhz_mw(200.0, 326.0),
            PowerAnchor::from_mhz_mw(1000.0, 846.0),
            PowerAnchor::from_mhz_mw(1800.0, 2120.0),
        ],
        Power::from_milliwatts(120.0),
        &a15_opps,
    )?;
    let a7_power = AnchoredPowerModel::new(
        vec![
            PowerAnchor::from_mhz_mw(200.0, 72.4),
            PowerAnchor::from_mhz_mw(700.0, 141.0),
            PowerAnchor::from_mhz_mw(1300.0, 329.0),
        ],
        Power::from_milliwatts(25.0),
        &a7_opps,
    )?;

    // Nominal Mali-T628 GPU (not characterised in the paper; present so
    // XU3 scenarios can offload). Single anchor: full-width inference in
    // 60 ms at 1.6 W when clocked at 600 MHz.
    let gpu_opps = OppTable::from_mhz_mv(&[
        (177.0, 850.0),
        (266.0, 875.0),
        (350.0, 900.0),
        (420.0, 925.0),
        (480.0, 950.0),
        (543.0, 1000.0),
        (600.0, 1050.0),
    ])?;
    let gpu_latency = LatencyModel::from_anchors(&anchors_ms(&[(600.0, 60.0)]), REFERENCE_MACS, 1)?;
    let gpu_power = AnchoredPowerModel::new(
        vec![PowerAnchor::from_mhz_mw(600.0, 1600.0)],
        Power::from_milliwatts(80.0),
        &gpu_opps,
    )?;

    let a15 = ClusterSpec::new("a15", CoreKind::BigCpu, 4, a15_opps, a15_latency, a15_power)?
        .with_local_thermal_resistance(2.5);
    let a7 = ClusterSpec::new("a7", CoreKind::LittleCpu, 4, a7_opps, a7_latency, a7_power)?
        .with_local_thermal_resistance(1.5);
    let gpu = ClusterSpec::new("gpu", CoreKind::Gpu, 1, gpu_opps, gpu_latency, gpu_power)?
        .with_local_thermal_resistance(2.0);

    Soc::new(
        "odroid-xu3",
        vec![a15, a7, gpu],
        ThermalModel {
            r_die_k_per_w: 7.0,
            tau_s: 5.0,
            ambient: crate::units::Celsius::from_celsius(25.0),
            limit: crate::units::Celsius::from_celsius(85.0),
        },
    )
}

/// Builds the NVIDIA Jetson Nano model.
///
/// Clusters: `a57` (4 cores) and `gpu`. The `gpu` cluster reproduces the
/// paper's "GPU + A57 CPU" composite rows of Table I: its power anchors are
/// total board compute power (GPU plus the host CPU doing pre-processing),
/// because that is what the paper measured and what an energy budget sees.
///
/// # Panics
///
/// Never panics: the embedded calibration data is validated by unit tests.
pub fn jetson_nano() -> Soc {
    build_jetson_nano().expect("embedded Jetson calibration data is valid")
}

fn build_jetson_nano() -> Result<Soc> {
    let a57_opps = OppTable::from_mhz_mv(&[
        (102.0, 800.0),
        (204.0, 800.0),
        (307.2, 800.0),
        (403.2, 812.5),
        (518.4, 825.0),
        (614.4, 837.5),
        (710.4, 850.0),
        (825.6, 875.0),
        (921.6, 900.0),
        (1036.8, 937.5),
        (1132.8, 975.0),
        (1224.0, 1000.0),
        (1326.0, 1050.0),
        (1428.0, 1100.0),
    ])?;
    let a57_latency = LatencyModel::from_anchors(
        &anchors_ms(&[(921.6, 69.4), (1428.0, 46.9)]),
        REFERENCE_MACS,
        4,
    )?;
    let a57_power = AnchoredPowerModel::new(
        vec![
            PowerAnchor::from_mhz_mw(921.6, 878.0),
            PowerAnchor::from_mhz_mw(1428.0, 1490.0),
        ],
        Power::from_milliwatts(200.0),
        &a57_opps,
    )?;

    let gpu_opps = OppTable::from_mhz_mv(&[
        (76.8, 800.0),
        (153.6, 812.5),
        (230.4, 825.0),
        (307.2, 837.5),
        (384.0, 862.5),
        (460.8, 887.5),
        (537.6, 912.5),
        (614.4, 937.5),
        (691.2, 975.0),
        (768.0, 1012.5),
        (844.8, 1050.0),
        (921.6, 1100.0),
    ])?;
    let gpu_latency = LatencyModel::from_anchors(
        &anchors_ms(&[(614.4, 7.4), (921.6, 4.93)]),
        REFERENCE_MACS,
        1,
    )?;
    let gpu_power = AnchoredPowerModel::new(
        vec![
            PowerAnchor::from_mhz_mw(614.4, 1340.0),
            PowerAnchor::from_mhz_mw(921.6, 2500.0),
        ],
        Power::from_milliwatts(300.0),
        &gpu_opps,
    )?;

    let a57 = ClusterSpec::new("a57", CoreKind::BigCpu, 4, a57_opps, a57_latency, a57_power)?
        .with_local_thermal_resistance(2.0);
    let gpu = ClusterSpec::new("gpu", CoreKind::Gpu, 1, gpu_opps, gpu_latency, gpu_power)?
        .with_local_thermal_resistance(1.5);

    Soc::new(
        "jetson-nano",
        vec![a57, gpu],
        ThermalModel {
            r_die_k_per_w: 4.0,
            tau_s: 8.0,
            ambient: crate::units::Celsius::from_celsius(25.0),
            limit: crate::units::Celsius::from_celsius(97.0),
        },
    )
}

/// Builds a Kirin-990-class flagship phone SoC with nominal characteristics:
/// a `big` (4×) and `little` (4×) CPU cluster, a `gpu`, an `npu` and a
/// `dsp` — the device cartoon of the paper's Fig 2.
///
/// The paper's Fig 2 scenario runs on this class of device. Relative
/// performance/energy ordering (NPU ≫ GPU ≫ big ≫ little for
/// MAC-dominated inference) follows the paper's §II discussion.
///
/// # Panics
///
/// Never panics: the embedded nominal data is validated by unit tests.
pub fn flagship() -> Soc {
    build_flagship().expect("embedded flagship nominal data is valid")
}

fn build_flagship() -> Result<Soc> {
    let big_opps = OppTable::from_mhz_mv(&[
        (600.0, 650.0),
        (900.0, 687.5),
        (1200.0, 725.0),
        (1600.0, 775.0),
        (2000.0, 837.5),
        (2400.0, 900.0),
        (2600.0, 950.0),
        (2860.0, 1000.0),
    ])?;
    let big = ClusterSpec::new(
        "big",
        CoreKind::BigCpu,
        4,
        big_opps.clone(),
        LatencyModel::from_anchors(&anchors_ms(&[(2860.0, 40.0)]), REFERENCE_MACS, 4)?,
        AnchoredPowerModel::new(
            vec![PowerAnchor::from_mhz_mw(2860.0, 4200.0)],
            Power::from_milliwatts(120.0),
            &big_opps,
        )?,
    )?
    .with_local_thermal_resistance(3.0);

    let little_opps = OppTable::from_mhz_mv(&[
        (500.0, 600.0),
        (800.0, 625.0),
        (1100.0, 662.5),
        (1400.0, 700.0),
        (1700.0, 750.0),
        (1950.0, 800.0),
    ])?;
    let little = ClusterSpec::new(
        "little",
        CoreKind::LittleCpu,
        4,
        little_opps.clone(),
        LatencyModel::from_anchors(&anchors_ms(&[(1950.0, 150.0)]), REFERENCE_MACS, 4)?,
        AnchoredPowerModel::new(
            vec![PowerAnchor::from_mhz_mw(1950.0, 900.0)],
            Power::from_milliwatts(30.0),
            &little_opps,
        )?,
    )?
    .with_local_thermal_resistance(1.5);

    let gpu_opps = OppTable::from_mhz_mv(&[(400.0, 650.0), (600.0, 725.0), (800.0, 800.0)])?;
    let gpu = ClusterSpec::new(
        "gpu",
        CoreKind::Gpu,
        1,
        gpu_opps.clone(),
        LatencyModel::from_anchors(&anchors_ms(&[(800.0, 12.0)]), REFERENCE_MACS, 1)?,
        AnchoredPowerModel::new(
            vec![PowerAnchor::from_mhz_mw(800.0, 5500.0)],
            Power::from_milliwatts(250.0),
            &gpu_opps,
        )?,
    )?
    .with_local_thermal_resistance(2.0);

    let npu_opps = OppTable::from_mhz_mv(&[(480.0, 650.0), (720.0, 725.0), (960.0, 800.0)])?;
    let npu = ClusterSpec::new(
        "npu",
        CoreKind::Npu,
        1,
        npu_opps.clone(),
        LatencyModel::from_anchors(&anchors_ms(&[(960.0, 2.5)]), REFERENCE_MACS, 1)?,
        AnchoredPowerModel::new(
            vec![PowerAnchor::from_mhz_mw(960.0, 1800.0)],
            Power::from_milliwatts(100.0),
            &npu_opps,
        )?,
    )?
    .with_local_thermal_resistance(1.5);

    let dsp_opps = OppTable::from_mhz_mv(&[(576.0, 650.0), (787.0, 725.0), (998.0, 800.0)])?;
    let dsp = ClusterSpec::new(
        "dsp",
        CoreKind::Dsp,
        1,
        dsp_opps.clone(),
        LatencyModel::from_anchors(&anchors_ms(&[(998.0, 180.0)]), REFERENCE_MACS, 1)?,
        AnchoredPowerModel::new(
            vec![PowerAnchor::from_mhz_mw(998.0, 800.0)],
            Power::from_milliwatts(40.0),
            &dsp_opps,
        )?,
    )?
    .with_local_thermal_resistance(1.5);

    Soc::new(
        "flagship",
        vec![big, little, gpu, npu, dsp],
        ThermalModel::mobile_default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soc::Placement;

    /// Reproduce every Table I row on the calibrated presets.
    #[test]
    fn table_one_reproduced_within_tolerance() {
        let socs = [odroid_xu3(), jetson_nano()];
        let w = reference_workload();
        for row in &paper::TABLE_ONE {
            let soc = socs
                .iter()
                .find(|s| s.name() == row.platform)
                .expect("preset exists for every Table I platform");
            let id = soc.find_cluster(row.cluster).expect("cluster exists");
            let spec = soc.cluster(id).unwrap();
            let placement = Placement::whole_cluster(id, spec);
            let p = soc
                .predict(placement, Freq::from_mhz(row.freq_mhz), &w)
                .unwrap();
            let t_err = (p.latency.as_millis() - row.time_ms).abs() / row.time_ms;
            let p_err = (p.power.as_milliwatts() - row.power_mw).abs() / row.power_mw;
            let e_err = (p.energy.as_millijoules() - row.energy_mj).abs() / row.energy_mj;
            assert!(
                t_err < 0.02,
                "{}: latency err {:.1}%",
                row.label,
                t_err * 100.0
            );
            assert!(
                p_err < 0.01,
                "{}: power err {:.1}%",
                row.label,
                p_err * 100.0
            );
            // The paper's own energy column differs from P·t by up to ~4 %.
            assert!(
                e_err < 0.06,
                "{}: energy err {:.1}%",
                row.label,
                e_err * 100.0
            );
        }
    }

    #[test]
    fn xu3_has_the_fig4a_dvfs_level_counts() {
        let soc = odroid_xu3();
        let a15 = soc.cluster(soc.find_cluster("a15").unwrap()).unwrap();
        let a7 = soc.cluster(soc.find_cluster("a7").unwrap()).unwrap();
        assert_eq!(a15.opps().len(), paper::FIG4A_A15_LEVELS);
        assert_eq!(a7.opps().len(), paper::FIG4A_A7_LEVELS);
        assert_eq!(a15.opps().max_freq(), Freq::from_mhz(1800.0));
        assert_eq!(a7.opps().max_freq(), Freq::from_mhz(1300.0));
    }

    #[test]
    fn a15_faster_but_hungrier_than_a7() {
        let soc = odroid_xu3();
        let w = reference_workload();
        let a15 = soc.find_cluster("a15").unwrap();
        let a7 = soc.find_cluster("a7").unwrap();
        let p15 = soc
            .predict(Placement::new(a15, 4), Freq::from_mhz(1000.0), &w)
            .unwrap();
        let p7 = soc
            .predict(Placement::new(a7, 4), Freq::from_mhz(1000.0), &w)
            .unwrap();
        assert!(p15.latency < p7.latency);
        assert!(p15.power > p7.power);
    }

    #[test]
    fn case_study_anchor_a7_900mhz_full_model_meets_budget_one() {
        // §IV: "for a budget of 400 ms and 100 mJ, a 100% model on the A7
        // CPU at 900 MHz could offer the highest accuracy and lowest energy".
        let soc = odroid_xu3();
        let a7 = soc.find_cluster("a7").unwrap();
        let w = reference_workload();
        let p = soc
            .predict(Placement::new(a7, 4), Freq::from_mhz(900.0), &w)
            .unwrap();
        assert!(p.latency.as_millis() <= 400.0, "latency {}", p.latency);
        assert!(p.energy.as_millijoules() <= 100.0, "energy {}", p.energy);
    }

    #[test]
    fn flagship_accelerator_ordering() {
        // NPU must dominate GPU, which must dominate the big CPU cluster,
        // in both speed and energy for MAC-dominated inference.
        let soc = flagship();
        let w = reference_workload();
        let preds: Vec<_> = ["npu", "gpu", "big", "little"]
            .iter()
            .map(|name| {
                let id = soc.find_cluster(name).unwrap();
                let spec = soc.cluster(id).unwrap();
                let opp = spec.opps().max_opp();
                soc.predict(Placement::whole_cluster(id, spec), opp.freq(), &w)
                    .unwrap()
            })
            .collect();
        for pair in preds.windows(2) {
            assert!(pair[0].latency < pair[1].latency, "speed ordering violated");
        }
        // NPU energy per inference beats GPU and CPUs.
        assert!(preds[0].energy < preds[1].energy);
        assert!(preds[0].energy < preds[2].energy);
    }

    #[test]
    fn flagship_full_blast_exceeds_sustainable_power() {
        // The Fig 2 scenario needs a thermal violation when big CPUs, GPU
        // and NPU all run flat out.
        let soc = flagship();
        let w = reference_workload();
        let total: Power = ["big", "gpu", "npu"]
            .iter()
            .map(|name| {
                let id = soc.find_cluster(name).unwrap();
                let spec = soc.cluster(id).unwrap();
                let opp = spec.opps().max_opp();
                soc.predict(Placement::whole_cluster(id, spec), opp.freq(), &w)
                    .unwrap()
                    .power
            })
            .sum();
        assert!(total > soc.thermal().sustainable_power());
    }

    #[test]
    fn presets_have_distinct_cluster_names() {
        for soc in [odroid_xu3(), jetson_nano(), flagship()] {
            let names: Vec<&str> = soc.clusters().map(|(_, c)| c.name()).collect();
            let mut dedup = names.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(names.len(), dedup.len(), "{}", soc.name());
        }
    }

    #[test]
    fn reference_workload_macs_match_constant() {
        assert_eq!(reference_workload().macs(), REFERENCE_MACS);
    }
}
