//! The system-on-chip model: a set of heterogeneous compute clusters with
//! per-cluster OPP tables, latency, power and thermal characteristics.
//!
//! `Soc` is the device layer of the paper's Fig 5 architecture. It is a
//! *static description*; runtime state (current OPP per cluster, gating,
//! temperature) lives with the simulator and the RTM.

use std::fmt;

use crate::error::{PlatformError, Result};
use crate::latency::LatencyModel;
use crate::opp::{Opp, OppTable};
use crate::power::AnchoredPowerModel;
use crate::thermal::ThermalModel;
use crate::units::{Energy, Freq, Power, TimeSpan};
use crate::workload::Workload;

/// The kind of compute resource a cluster provides.
///
/// Ordering within the enum is incidental; use the performance/power models
/// to compare clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum CoreKind {
    /// High-performance out-of-order CPU cores (e.g. Cortex-A15/A57/A76).
    BigCpu,
    /// Energy-efficient in-order CPU cores (e.g. Cortex-A7/A53/A55).
    LittleCpu,
    /// A programmable GPU.
    Gpu,
    /// A neural processing unit / ML accelerator.
    Npu,
    /// A digital signal processor.
    Dsp,
}

impl CoreKind {
    /// Whether the resource is a general-purpose CPU cluster (big or
    /// little), as opposed to an accelerator.
    pub fn is_cpu(self) -> bool {
        matches!(self, Self::BigCpu | Self::LittleCpu)
    }

    /// Whether the resource is an accelerator that executes one offloaded
    /// kernel at a time (GPU/NPU/DSP).
    pub fn is_accelerator(self) -> bool {
        !self.is_cpu()
    }
}

impl fmt::Display for CoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::BigCpu => "big CPU",
            Self::LittleCpu => "little CPU",
            Self::Gpu => "GPU",
            Self::Npu => "NPU",
            Self::Dsp => "DSP",
        };
        f.write_str(s)
    }
}

/// Identifies a cluster within one [`Soc`].
///
/// Obtained from [`Soc::cluster_ids`] or [`Soc::find_cluster`]; only valid
/// for the SoC that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub(crate) usize);

impl ClusterId {
    /// Constructs an id from a raw index.
    ///
    /// Prefer [`Soc::find_cluster`]/[`Soc::cluster_ids`]; this constructor
    /// exists for deserialisation and test fixtures. An id is only
    /// meaningful for the SoC whose cluster order it indexes.
    pub fn from_index(index: usize) -> Self {
        Self(index)
    }

    /// The cluster's index within its SoC.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster#{}", self.0)
    }
}

/// Static description of one compute cluster (a DVFS domain).
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    name: String,
    kind: CoreKind,
    cores: u32,
    opps: OppTable,
    latency: LatencyModel,
    power: AnchoredPowerModel,
    r_local_k_per_w: f64,
}

impl ClusterSpec {
    /// Assembles a cluster from its constituent models.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidModel`] if `cores == 0`.
    pub fn new(
        name: impl Into<String>,
        kind: CoreKind,
        cores: u32,
        opps: OppTable,
        latency: LatencyModel,
        power: AnchoredPowerModel,
    ) -> Result<Self> {
        if cores == 0 {
            return Err(PlatformError::InvalidModel {
                reason: "cluster must have at least one core".into(),
            });
        }
        Ok(Self {
            name: name.into(),
            kind,
            cores,
            opps,
            latency: latency.with_max_cores(cores),
            power,
            r_local_k_per_w: 1.0,
        })
    }

    /// Sets the cluster's local self-heating resistance (K/W).
    #[must_use]
    pub fn with_local_thermal_resistance(mut self, r_k_per_w: f64) -> Self {
        self.r_local_k_per_w = r_k_per_w.max(0.0);
        self
    }

    /// The cluster's name, e.g. `"a15"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kind of compute resource.
    pub fn kind(&self) -> CoreKind {
        self.kind
    }

    /// Number of cores in the cluster (1 for monolithic accelerators).
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// The cluster's OPP table.
    pub fn opps(&self) -> &OppTable {
        &self.opps
    }

    /// The cluster's latency model.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// The cluster's power model.
    pub fn power_model(&self) -> &AnchoredPowerModel {
        &self.power
    }

    /// Local self-heating thermal resistance in K/W.
    pub fn local_thermal_resistance(&self) -> f64 {
        self.r_local_k_per_w
    }
}

/// Where a job runs: which cluster, and how many of its cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    /// Target cluster.
    pub cluster: ClusterId,
    /// Number of cores used on that cluster.
    pub cores: u32,
}

impl Placement {
    /// Places a job on `cores` cores of `cluster`.
    pub fn new(cluster: ClusterId, cores: u32) -> Self {
        Self { cluster, cores }
    }

    /// Places a job on every core of the cluster described by `spec`.
    pub fn whole_cluster(cluster: ClusterId, spec: &ClusterSpec) -> Self {
        Self {
            cluster,
            cores: spec.cores(),
        }
    }
}

/// Predicted execution characteristics of one job at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Time to complete the job.
    pub latency: TimeSpan,
    /// Average cluster power while the job runs (busy power).
    pub power: Power,
    /// Energy consumed over the job (`power × latency`).
    pub energy: Energy,
}

impl fmt::Display for Prediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} ms, {:.0} mW, {:.1} mJ",
            self.latency.as_millis(),
            self.power.as_milliwatts(),
            self.energy.as_millijoules()
        )
    }
}

/// A heterogeneous system-on-chip: named clusters plus a package thermal
/// model.
///
/// # Examples
///
/// ```
/// use eml_platform::presets;
/// use eml_platform::soc::Placement;
/// use eml_platform::units::Freq;
/// use eml_platform::workload::Workload;
///
/// # fn main() -> Result<(), eml_platform::PlatformError> {
/// let soc = presets::odroid_xu3();
/// let a7 = soc.find_cluster("a7").expect("preset has an A7 cluster");
/// let w = presets::reference_workload();
/// let p = soc.predict(
///     Placement::new(a7, 4),
///     Freq::from_mhz(900.0),
///     &w,
/// )?;
/// assert!(p.latency.as_millis() > 300.0 && p.latency.as_millis() < 500.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Soc {
    name: String,
    clusters: Vec<ClusterSpec>,
    thermal: ThermalModel,
}

impl Soc {
    /// Builds an SoC from clusters and a thermal model.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidModel`] if no clusters are supplied
    /// or two clusters share a name.
    pub fn new(
        name: impl Into<String>,
        clusters: Vec<ClusterSpec>,
        thermal: ThermalModel,
    ) -> Result<Self> {
        if clusters.is_empty() {
            return Err(PlatformError::InvalidModel {
                reason: "SoC must have at least one cluster".into(),
            });
        }
        for (i, a) in clusters.iter().enumerate() {
            for b in &clusters[i + 1..] {
                if a.name() == b.name() {
                    return Err(PlatformError::InvalidModel {
                        reason: format!("duplicate cluster name `{}`", a.name()),
                    });
                }
            }
        }
        Ok(Self {
            name: name.into(),
            clusters,
            thermal,
        })
    }

    /// The SoC's name, e.g. `"odroid-xu3"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The package thermal model.
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Iterates over `(id, spec)` pairs.
    pub fn clusters(&self) -> impl ExactSizeIterator<Item = (ClusterId, &ClusterSpec)> {
        self.clusters
            .iter()
            .enumerate()
            .map(|(i, c)| (ClusterId(i), c))
    }

    /// All cluster ids.
    pub fn cluster_ids(&self) -> impl ExactSizeIterator<Item = ClusterId> {
        (0..self.clusters.len()).map(ClusterId)
    }

    /// Looks up a cluster by id.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownCluster`] for a stale or foreign id.
    pub fn cluster(&self, id: ClusterId) -> Result<&ClusterSpec> {
        self.clusters
            .get(id.0)
            .ok_or(PlatformError::UnknownCluster {
                index: id.0,
                count: self.clusters.len(),
            })
    }

    /// Finds a cluster by name.
    pub fn find_cluster(&self, name: &str) -> Option<ClusterId> {
        self.clusters
            .iter()
            .position(|c| c.name() == name)
            .map(ClusterId)
    }

    /// Finds the first cluster of the given kind.
    pub fn find_kind(&self, kind: CoreKind) -> Option<ClusterId> {
        self.clusters
            .iter()
            .position(|c| c.kind() == kind)
            .map(ClusterId)
    }

    /// Predicts latency, busy power and energy for `workload` at the given
    /// placement and frequency.
    ///
    /// `freq` need not be an exact OPP — the models interpolate — but DVFS
    /// governors should restrict themselves to table entries.
    ///
    /// # Errors
    ///
    /// Propagates placement errors ([`PlatformError::ZeroCores`],
    /// [`PlatformError::TooManyCores`], [`PlatformError::UnknownCluster`]),
    /// filling in the cluster name.
    pub fn predict(
        &self,
        placement: Placement,
        freq: Freq,
        workload: &Workload,
    ) -> Result<Prediction> {
        let spec = self.cluster(placement.cluster)?;
        let latency = spec
            .latency_model()
            .latency(freq, workload, placement.cores)
            .map_err(|e| name_error(e, spec.name()))?;
        let activity = placement.cores as f64 / spec.cores() as f64;
        let power = spec.power_model().power(freq, activity);
        Ok(Prediction {
            latency,
            power,
            energy: power * latency,
        })
    }

    /// Predicts at a specific OPP index of the placement's cluster.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::OppIndexOutOfRange`] for a bad index, plus
    /// the conditions of [`Soc::predict`].
    pub fn predict_at_opp(
        &self,
        placement: Placement,
        opp_index: usize,
        workload: &Workload,
    ) -> Result<Prediction> {
        let spec = self.cluster(placement.cluster)?;
        let opp: Opp =
            spec.opps()
                .get(opp_index)
                .ok_or_else(|| PlatformError::OppIndexOutOfRange {
                    cluster: spec.name().to_string(),
                    index: opp_index,
                    count: spec.opps().len(),
                })?;
        self.predict(placement, opp.freq(), workload)
    }

    /// Total idle power of the whole SoC (every cluster clock-gated).
    pub fn idle_power(&self) -> Power {
        self.clusters
            .iter()
            .map(|c| c.power_model().idle_power())
            .sum()
    }
}

fn name_error(e: PlatformError, name: &str) -> PlatformError {
    match e {
        PlatformError::ZeroCores { .. } => PlatformError::ZeroCores {
            cluster: name.to_string(),
        },
        PlatformError::TooManyCores {
            requested,
            available,
            ..
        } => PlatformError::TooManyCores {
            cluster: name.to_string(),
            requested,
            available,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerAnchor;

    fn tiny_soc() -> Soc {
        let opps = OppTable::from_mhz_mv(&[(500.0, 900.0), (1000.0, 1000.0)]).unwrap();
        let latency = LatencyModel::from_anchors(
            &[(Freq::from_mhz(1000.0), TimeSpan::from_millis(100.0))],
            1.0e6,
            2,
        )
        .unwrap();
        let power = AnchoredPowerModel::new(
            vec![PowerAnchor::from_mhz_mw(1000.0, 500.0)],
            Power::from_milliwatts(50.0),
            &opps,
        )
        .unwrap();
        let c = ClusterSpec::new("cpu", CoreKind::BigCpu, 2, opps, latency, power).unwrap();
        Soc::new("tiny", vec![c], ThermalModel::mobile_default()).unwrap()
    }

    #[test]
    fn lookup_by_name_and_kind() {
        let soc = tiny_soc();
        let id = soc.find_cluster("cpu").unwrap();
        assert_eq!(soc.cluster(id).unwrap().name(), "cpu");
        assert_eq!(soc.find_kind(CoreKind::BigCpu), Some(id));
        assert_eq!(soc.find_kind(CoreKind::Npu), None);
        assert!(soc.find_cluster("gpu").is_none());
    }

    #[test]
    fn stale_id_rejected() {
        let soc = tiny_soc();
        assert!(matches!(
            soc.cluster(ClusterId(7)),
            Err(PlatformError::UnknownCluster { index: 7, count: 1 })
        ));
    }

    #[test]
    fn predict_combines_latency_power_energy() {
        let soc = tiny_soc();
        let id = soc.find_cluster("cpu").unwrap();
        let w = Workload::new("w", 1.0e6);
        let p = soc
            .predict(Placement::new(id, 2), Freq::from_mhz(1000.0), &w)
            .unwrap();
        assert!((p.latency.as_millis() - 100.0).abs() < 1e-9);
        assert!((p.power.as_milliwatts() - 500.0).abs() < 1e-9);
        assert!((p.energy.as_millijoules() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn partial_core_placement_reduces_power_increases_latency() {
        let soc = tiny_soc();
        let id = soc.find_cluster("cpu").unwrap();
        let w = Workload::new("w", 1.0e6);
        let full = soc
            .predict(Placement::new(id, 2), Freq::from_mhz(1000.0), &w)
            .unwrap();
        let one = soc
            .predict(Placement::new(id, 1), Freq::from_mhz(1000.0), &w)
            .unwrap();
        assert!(one.latency > full.latency);
        assert!(one.power < full.power);
    }

    #[test]
    fn predict_at_opp_bounds_checked() {
        let soc = tiny_soc();
        let id = soc.find_cluster("cpu").unwrap();
        let w = Workload::new("w", 1.0e6);
        assert!(soc.predict_at_opp(Placement::new(id, 2), 1, &w).is_ok());
        assert!(matches!(
            soc.predict_at_opp(Placement::new(id, 2), 9, &w),
            Err(PlatformError::OppIndexOutOfRange { index: 9, .. })
        ));
    }

    #[test]
    fn placement_errors_carry_cluster_name() {
        let soc = tiny_soc();
        let id = soc.find_cluster("cpu").unwrap();
        let w = Workload::new("w", 1.0e6);
        match soc.predict(Placement::new(id, 3), Freq::from_mhz(1000.0), &w) {
            Err(PlatformError::TooManyCores {
                cluster,
                requested: 3,
                available: 2,
            }) => {
                assert_eq!(cluster, "cpu");
            }
            other => panic!("expected TooManyCores, got {other:?}"),
        }
        match soc.predict(Placement::new(id, 0), Freq::from_mhz(1000.0), &w) {
            Err(PlatformError::ZeroCores { cluster }) => assert_eq!(cluster, "cpu"),
            other => panic!("expected ZeroCores, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_cluster_names_rejected() {
        let soc = tiny_soc();
        let spec = soc.cluster(ClusterId(0)).unwrap().clone();
        let dup = Soc::new(
            "dup",
            vec![spec.clone(), spec],
            ThermalModel::mobile_default(),
        );
        assert!(dup.is_err());
    }

    #[test]
    fn empty_soc_rejected() {
        assert!(Soc::new("e", vec![], ThermalModel::mobile_default()).is_err());
    }

    #[test]
    fn idle_power_sums_clusters() {
        let soc = tiny_soc();
        assert!((soc.idle_power().as_milliwatts() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn core_kind_predicates() {
        assert!(CoreKind::BigCpu.is_cpu());
        assert!(CoreKind::LittleCpu.is_cpu());
        assert!(CoreKind::Gpu.is_accelerator());
        assert!(CoreKind::Npu.is_accelerator());
        assert!(CoreKind::Dsp.is_accelerator());
        assert_eq!(format!("{}", CoreKind::Npu), "NPU");
    }

    #[test]
    fn whole_cluster_placement() {
        let soc = tiny_soc();
        let id = soc.find_cluster("cpu").unwrap();
        let spec = soc.cluster(id).unwrap();
        let p = Placement::whole_cluster(id, spec);
        assert_eq!(p.cores, 2);
    }

    #[test]
    fn zero_core_cluster_rejected() {
        let soc = tiny_soc();
        let spec = soc.cluster(ClusterId(0)).unwrap();
        let bad = ClusterSpec::new(
            "bad",
            CoreKind::BigCpu,
            0,
            spec.opps().clone(),
            spec.latency_model().clone(),
            spec.power_model().clone(),
        );
        assert!(bad.is_err());
    }
}
