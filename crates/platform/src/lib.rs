//! # eml-platform
//!
//! Heterogeneous embedded-SoC performance, power and thermal models for the
//! `emlrt` reproduction of *Xun et al., "Optimising Resource Management for
//! Embedded Machine Learning" (DATE 2020)*.
//!
//! This crate is the **device layer** of the paper's Fig 5 architecture. It
//! answers one question: *given a workload, a placement (cluster + cores)
//! and a DVFS setting, what latency, power and energy result?* — plus the
//! thermal dynamics those powers induce.
//!
//! The models are **calibrated against the paper's published measurements**
//! (Table I, embedded in [`paper`]): latency follows a per-cluster
//! `a/f + b` least-squares fit, and power interpolates measured anchors in
//! `V²·f` space so the anchors are reproduced exactly. See `DESIGN.md` for
//! the substitution rationale.
//!
//! ## Quick start
//!
//! ```
//! use eml_platform::presets;
//! use eml_platform::soc::Placement;
//! use eml_platform::units::Freq;
//!
//! # fn main() -> Result<(), eml_platform::PlatformError> {
//! let soc = presets::odroid_xu3();
//! let a15 = soc.find_cluster("a15").expect("XU3 has an A15 cluster");
//! let prediction = soc.predict(
//!     Placement::new(a15, 4),
//!     Freq::from_ghz(1.0),
//!     &presets::reference_workload(),
//! )?;
//! // Table I: 204 ms, 846 mW on the A15 at 1 GHz.
//! assert!((prediction.latency.as_millis() - 204.0).abs() < 5.0);
//! assert!((prediction.power.as_milliwatts() - 846.0).abs() < 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibration;
pub mod error;
pub mod latency;
pub mod opp;
pub mod paper;
pub mod power;
pub mod power_analytic;
pub mod presets;
pub mod soc;
pub mod thermal;
pub mod units;
pub mod workload;

pub use error::{PlatformError, Result};
pub use soc::{ClusterId, ClusterSpec, CoreKind, Placement, Prediction, Soc};
pub use units::{Celsius, Energy, Freq, Power, TimeSpan, Voltage};
pub use workload::Workload;
