//! Fitting helpers that turn published measurements into model parameters.
//!
//! The paper characterises one DNN on real boards (Table I). We reproduce
//! those boards in simulation by *calibrating* analytic models against the
//! published anchor points:
//!
//! - **Latency** follows `t(f) = a/f + b` per cluster (compute cycles that
//!   scale with clock, plus a memory-bound residue that does not). A linear
//!   least-squares fit in `x = 1/f` reproduces all six Odroid XU3 anchors to
//!   within 2 % — see `presets::tests`.
//! - **Power** is piecewise-interpolated between anchors linearly in `V²·f`
//!   (the quantity dynamic CMOS power tracks), passing through the anchors
//!   exactly. See [`crate::power::AnchoredPowerModel`].

use crate::error::{PlatformError, Result};
use crate::units::{Freq, TimeSpan};

/// Result of fitting `t(f) = a/f + b` to measured `(frequency, latency)`
/// anchors.
///
/// `a` carries units of GHz·s (cycles, scaled); `b` is seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InverseAffineFit {
    /// Frequency-scaling coefficient in GHz·seconds.
    pub a_ghz_s: f64,
    /// Frequency-independent residue in seconds.
    pub b_s: f64,
}

impl InverseAffineFit {
    /// Evaluates the fitted latency at `freq`.
    pub fn eval(&self, freq: Freq) -> TimeSpan {
        TimeSpan::from_secs(self.a_ghz_s / freq.as_ghz() + self.b_s)
    }

    /// Maximum relative error of the fit over the given anchors.
    pub fn max_rel_error(&self, anchors: &[(Freq, TimeSpan)]) -> f64 {
        anchors
            .iter()
            .map(|&(f, t)| {
                let predicted = self.eval(f).as_secs();
                ((predicted - t.as_secs()) / t.as_secs()).abs()
            })
            .fold(0.0, f64::max)
    }
}

/// Fits `t(f) = a/f + b` to the anchors by ordinary least squares in
/// `x = 1/f` (GHz⁻¹).
///
/// A single anchor yields an exact `a/f` model with `b = 0`; two or more
/// anchors yield the least-squares line. Negative intercepts (which can
/// arise from measurement noise) are clamped to zero and the slope re-fit
/// through the anchor mean, keeping the model physical (latency can never be
/// negative at high frequency).
///
/// # Errors
///
/// Returns [`PlatformError::InvalidModel`] when `anchors` is empty, contains
/// non-positive values, or contains duplicate frequencies (the fit would be
/// degenerate).
pub fn fit_inverse_affine(anchors: &[(Freq, TimeSpan)]) -> Result<InverseAffineFit> {
    if anchors.is_empty() {
        return Err(PlatformError::InvalidModel {
            reason: "latency fit requires at least one anchor".into(),
        });
    }
    for &(f, t) in anchors {
        if f.as_ghz() <= 0.0 || t.as_secs() <= 0.0 {
            return Err(PlatformError::InvalidModel {
                reason: format!(
                    "latency anchors must be positive, got ({:.3} GHz, {:.6} s)",
                    f.as_ghz(),
                    t.as_secs()
                ),
            });
        }
    }
    if anchors.len() == 1 {
        let (f, t) = anchors[0];
        return Ok(InverseAffineFit {
            a_ghz_s: t.as_secs() * f.as_ghz(),
            b_s: 0.0,
        });
    }

    let xs: Vec<f64> = anchors.iter().map(|&(f, _)| 1.0 / f.as_ghz()).collect();
    let ys: Vec<f64> = anchors.iter().map(|&(_, t)| t.as_secs()).collect();
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    if sxx <= f64::EPSILON {
        return Err(PlatformError::InvalidModel {
            reason: "latency anchors must span at least two distinct frequencies".into(),
        });
    }
    let sxy: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let mut a = sxy / sxx;
    let mut b = mean_y - a * mean_x;
    if b < 0.0 {
        // Re-fit through the origin: a = Σxy / Σx².
        b = 0.0;
        a = xs.iter().zip(&ys).map(|(x, y)| x * y).sum::<f64>()
            / xs.iter().map(|x| x * x).sum::<f64>();
    }
    if a < 0.0 {
        return Err(PlatformError::InvalidModel {
            reason: "latency anchors imply latency increasing with frequency".into(),
        });
    }
    Ok(InverseAffineFit { a_ghz_s: a, b_s: b })
}

/// Piecewise-linear interpolation of `y` over a strictly increasing `x`
/// grid, extrapolating with the first/last segment slopes.
///
/// Shared by the power model (x = `V²·f`) and other anchored curves.
///
/// # Panics
///
/// Panics if `points` is empty; callers validate at construction.
pub fn interp_extrapolate(points: &[(f64, f64)], x: f64) -> f64 {
    assert!(!points.is_empty(), "interpolation needs at least one point");
    if points.len() == 1 {
        // Single anchor: scale proportionally through the origin, which for
        // power-vs-V²f corresponds to pure dynamic scaling.
        let (x0, y0) = points[0];
        return if x0.abs() < f64::EPSILON {
            y0
        } else {
            y0 * x / x0
        };
    }
    let first = points[0];
    let last = points[points.len() - 1];
    let segment = |p0: (f64, f64), p1: (f64, f64), x: f64| {
        let t = (x - p0.0) / (p1.0 - p0.0);
        p0.1 + t * (p1.1 - p0.1)
    };
    if x <= first.0 {
        return segment(first, points[1], x);
    }
    if x >= last.0 {
        return segment(points[points.len() - 2], last, x);
    }
    for pair in points.windows(2) {
        if x >= pair[0].0 && x <= pair[1].0 {
            return segment(pair[0], pair[1], x);
        }
    }
    unreachable!("x within range must be bracketed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mhz(m: f64) -> Freq {
        Freq::from_mhz(m)
    }
    fn ms(m: f64) -> TimeSpan {
        TimeSpan::from_millis(m)
    }

    #[test]
    fn single_anchor_exact() {
        let fit = fit_inverse_affine(&[(mhz(1000.0), ms(204.0))]).unwrap();
        assert!((fit.eval(mhz(1000.0)).as_millis() - 204.0).abs() < 1e-9);
        assert!((fit.eval(mhz(500.0)).as_millis() - 408.0).abs() < 1e-9);
        assert_eq!(fit.b_s, 0.0);
    }

    #[test]
    fn fits_paper_a15_anchors_within_two_percent() {
        // Odroid XU3 A15 anchors from Table I of the paper.
        let anchors = [
            (mhz(200.0), ms(1020.0)),
            (mhz(1000.0), ms(204.0)),
            (mhz(1800.0), ms(117.0)),
        ];
        let fit = fit_inverse_affine(&anchors).unwrap();
        assert!(
            fit.max_rel_error(&anchors) < 0.02,
            "err = {}",
            fit.max_rel_error(&anchors)
        );
        assert!(fit.a_ghz_s > 0.19 && fit.a_ghz_s < 0.21);
        assert!(fit.b_s >= 0.0);
    }

    #[test]
    fn fits_paper_a7_anchors_within_two_percent() {
        let anchors = [
            (mhz(200.0), ms(1780.0)),
            (mhz(700.0), ms(504.0)),
            (mhz(1300.0), ms(280.0)),
        ];
        let fit = fit_inverse_affine(&anchors).unwrap();
        assert!(fit.max_rel_error(&anchors) < 0.02);
        assert!(fit.a_ghz_s > 0.34 && fit.a_ghz_s < 0.37);
    }

    #[test]
    fn negative_intercept_clamped_to_origin_fit() {
        // Data with slight super-linear speedup would yield b < 0; the fit
        // must clamp and stay positive everywhere.
        let anchors = [(mhz(500.0), ms(100.0)), (mhz(1000.0), ms(45.0))];
        let fit = fit_inverse_affine(&anchors).unwrap();
        assert!(fit.b_s >= 0.0);
        assert!(fit.eval(mhz(4000.0)).as_secs() > 0.0);
    }

    #[test]
    fn rejects_empty_and_degenerate_input() {
        assert!(fit_inverse_affine(&[]).is_err());
        assert!(fit_inverse_affine(&[(mhz(0.0), ms(1.0))]).is_err());
        assert!(fit_inverse_affine(&[(mhz(100.0), ms(0.0))]).is_err());
        assert!(fit_inverse_affine(&[(mhz(100.0), ms(1.0)), (mhz(100.0), ms(2.0))]).is_err());
    }

    #[test]
    fn interp_passes_through_anchors() {
        let pts = [(1.0, 10.0), (2.0, 30.0), (4.0, 50.0)];
        for &(x, y) in &pts {
            assert!((interp_extrapolate(&pts, x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn interp_linear_between_and_extrapolates_beyond() {
        let pts = [(1.0, 10.0), (2.0, 30.0), (4.0, 50.0)];
        assert!((interp_extrapolate(&pts, 1.5) - 20.0).abs() < 1e-12);
        assert!((interp_extrapolate(&pts, 3.0) - 40.0).abs() < 1e-12);
        // Extrapolation continues end segments.
        assert!((interp_extrapolate(&pts, 0.0) - (-10.0)).abs() < 1e-12);
        assert!((interp_extrapolate(&pts, 5.0) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn interp_single_point_scales_proportionally() {
        let pts = [(2.0, 8.0)];
        assert!((interp_extrapolate(&pts, 1.0) - 4.0).abs() < 1e-12);
        assert!((interp_extrapolate(&pts, 4.0) - 16.0).abs() < 1e-12);
    }
}
