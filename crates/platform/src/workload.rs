//! Platform-independent descriptions of the work an application submits.
//!
//! A [`Workload`] abstracts an inference (or other compute job) down to the
//! quantities the platform model needs: multiply-accumulate count, parameter
//! and activation footprints. The dynamic-DNN layer produces one `Workload`
//! per width level from its real per-layer cost model; the platform maps it
//! to latency/power/energy for a given placement and DVFS setting.

use std::fmt;

/// A compute job characterised by its arithmetic and memory demands.
///
/// # Examples
///
/// ```
/// use eml_platform::workload::Workload;
///
/// let w = Workload::new("cifar-cnn-100", 62.0e6)
///     .with_param_bytes(2.5e6)
///     .with_activation_bytes(1.2e6);
/// assert_eq!(w.macs(), 62.0e6);
/// assert_eq!(w.name(), "cifar-cnn-100");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    name: String,
    macs: f64,
    param_bytes: f64,
    activation_bytes: f64,
}

impl Workload {
    /// Creates a workload with the given name and multiply-accumulate count.
    ///
    /// # Panics
    ///
    /// Panics if `macs` is not finite and non-negative — a workload with
    /// negative arithmetic is meaningless and would poison every downstream
    /// latency prediction.
    pub fn new(name: impl Into<String>, macs: f64) -> Self {
        assert!(
            macs.is_finite() && macs >= 0.0,
            "workload MAC count must be finite and non-negative, got {macs}"
        );
        Self {
            name: name.into(),
            macs,
            param_bytes: 0.0,
            activation_bytes: 0.0,
        }
    }

    /// Sets the parameter (weight) footprint in bytes.
    #[must_use]
    pub fn with_param_bytes(mut self, bytes: f64) -> Self {
        assert!(bytes.is_finite() && bytes >= 0.0);
        self.param_bytes = bytes;
        self
    }

    /// Sets the peak activation footprint in bytes.
    #[must_use]
    pub fn with_activation_bytes(mut self, bytes: f64) -> Self {
        assert!(bytes.is_finite() && bytes >= 0.0);
        self.activation_bytes = bytes;
        self
    }

    /// The workload's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Multiply-accumulate operations per job.
    pub fn macs(&self) -> f64 {
        self.macs
    }

    /// Parameter (weight) footprint in bytes.
    pub fn param_bytes(&self) -> f64 {
        self.param_bytes
    }

    /// Peak activation footprint in bytes.
    pub fn activation_bytes(&self) -> f64 {
        self.activation_bytes
    }

    /// Total memory footprint (parameters + activations) in bytes.
    pub fn memory_bytes(&self) -> f64 {
        self.param_bytes + self.activation_bytes
    }

    /// Returns a copy scaled to `fraction` of the arithmetic and memory cost.
    ///
    /// Used to derive pruned-width workloads from a full-width reference.
    /// Prefer the exact per-layer cost model in `eml-dnn` when available —
    /// this is a convenience for synthetic experiments.
    #[must_use]
    pub fn scaled(&self, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "scale fraction must be finite and non-negative, got {fraction}"
        );
        Self {
            name: format!("{}@{:.0}%", self.name, fraction * 100.0),
            macs: self.macs * fraction,
            param_bytes: self.param_bytes * fraction,
            activation_bytes: self.activation_bytes * fraction,
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.2} MMACs, {:.1} KiB params)",
            self.name,
            self.macs / 1.0e6,
            self.param_bytes / 1024.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let w = Workload::new("w", 1.0e6)
            .with_param_bytes(10.0)
            .with_activation_bytes(20.0);
        assert_eq!(w.macs(), 1.0e6);
        assert_eq!(w.param_bytes(), 10.0);
        assert_eq!(w.activation_bytes(), 20.0);
        assert_eq!(w.memory_bytes(), 30.0);
    }

    #[test]
    fn scaled_workload_scales_all_costs() {
        let w = Workload::new("full", 100.0)
            .with_param_bytes(40.0)
            .with_activation_bytes(8.0);
        let half = w.scaled(0.5);
        assert_eq!(half.macs(), 50.0);
        assert_eq!(half.param_bytes(), 20.0);
        assert_eq!(half.activation_bytes(), 4.0);
        assert!(half.name().contains("50%"));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_macs_rejected() {
        let _ = Workload::new("bad", -1.0);
    }

    #[test]
    #[should_panic]
    fn nan_scale_rejected() {
        let _ = Workload::new("w", 1.0).scaled(f64::NAN);
    }

    #[test]
    fn display_mentions_mmacs() {
        let w = Workload::new("net", 62.0e6);
        assert!(format!("{w}").contains("62.00 MMACs"));
    }
}
