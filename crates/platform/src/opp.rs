//! Operating performance points (OPPs): the discrete (frequency, voltage)
//! pairs a DVFS domain can run at.
//!
//! Every cluster owns an [`OppTable`], sorted ascending by frequency. The
//! runtime manager treats the OPP index as a *device knob* (paper, Fig 5);
//! the power model uses the voltage column to interpolate between measured
//! anchors in `V²·f` space.

use std::fmt;

use crate::error::{PlatformError, Result};
use crate::units::{Freq, Voltage};

/// A single operating performance point: a frequency and the supply voltage
/// the domain requires to sustain it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Opp {
    freq: Freq,
    voltage: Voltage,
}

impl Opp {
    /// Creates an OPP from a frequency and voltage.
    pub fn new(freq: Freq, voltage: Voltage) -> Self {
        Self { freq, voltage }
    }

    /// The OPP's clock frequency.
    pub fn freq(self) -> Freq {
        self.freq
    }

    /// The OPP's supply voltage.
    pub fn voltage(self) -> Voltage {
        self.voltage
    }

    /// The `V²·f` product (GHz-normalised), the abscissa used for power
    /// interpolation between measured anchors.
    pub fn v2f(self) -> f64 {
        self.voltage.squared_times(self.freq)
    }
}

impl fmt::Display for Opp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} MHz @ {:.4} V",
            self.freq.as_mhz(),
            self.voltage.as_volts()
        )
    }
}

/// An ordered table of OPPs for one DVFS domain.
///
/// Invariants (enforced at construction):
/// - non-empty,
/// - strictly increasing in frequency,
/// - non-decreasing in voltage (higher frequency never needs *less* voltage).
///
/// # Examples
///
/// ```
/// use eml_platform::opp::OppTable;
/// use eml_platform::units::{Freq, Voltage};
///
/// let table = OppTable::from_mhz_mv(&[(200.0, 900.0), (400.0, 950.0)]).unwrap();
/// assert_eq!(table.len(), 2);
/// assert_eq!(table.max_freq(), Freq::from_mhz(400.0));
/// assert_eq!(table.get(0).unwrap().voltage(), Voltage::from_millivolts(900.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OppTable {
    opps: Vec<Opp>,
}

impl OppTable {
    /// Builds a table from `(frequency, voltage)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidModel`] if the table is empty, if
    /// frequencies are not strictly increasing, or if voltage decreases with
    /// frequency.
    pub fn new(opps: Vec<Opp>) -> Result<Self> {
        if opps.is_empty() {
            return Err(PlatformError::InvalidModel {
                reason: "OPP table must contain at least one point".into(),
            });
        }
        for pair in opps.windows(2) {
            if pair[1].freq() <= pair[0].freq() {
                return Err(PlatformError::InvalidModel {
                    reason: format!(
                        "OPP frequencies must be strictly increasing ({} then {})",
                        pair[0], pair[1]
                    ),
                });
            }
            if pair[1].voltage() < pair[0].voltage() {
                return Err(PlatformError::InvalidModel {
                    reason: format!(
                        "OPP voltage must be non-decreasing with frequency ({} then {})",
                        pair[0], pair[1]
                    ),
                });
            }
        }
        Ok(Self { opps })
    }

    /// Convenience constructor from `(MHz, mV)` pairs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`OppTable::new`].
    pub fn from_mhz_mv(points: &[(f64, f64)]) -> Result<Self> {
        Self::new(
            points
                .iter()
                .map(|&(mhz, mv)| Opp::new(Freq::from_mhz(mhz), Voltage::from_millivolts(mv)))
                .collect(),
        )
    }

    /// Number of OPPs in the table.
    pub fn len(&self) -> usize {
        self.opps.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.opps.is_empty()
    }

    /// Returns the OPP at `index`, if in range.
    pub fn get(&self, index: usize) -> Option<Opp> {
        self.opps.get(index).copied()
    }

    /// The lowest-frequency OPP.
    pub fn min_opp(&self) -> Opp {
        self.opps[0]
    }

    /// The highest-frequency OPP.
    pub fn max_opp(&self) -> Opp {
        *self.opps.last().expect("table is non-empty by invariant")
    }

    /// The lowest supported frequency.
    pub fn min_freq(&self) -> Freq {
        self.min_opp().freq()
    }

    /// The highest supported frequency.
    pub fn max_freq(&self) -> Freq {
        self.max_opp().freq()
    }

    /// Iterates over the OPPs in ascending frequency order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Opp> + '_ {
        self.opps.iter().copied()
    }

    /// Finds the index of the OPP with exactly this frequency (to within
    /// 0.5 MHz, absorbing floating-point noise in MHz-level tables).
    pub fn index_of(&self, freq: Freq) -> Option<usize> {
        self.opps
            .iter()
            .position(|o| (o.freq().as_mhz() - freq.as_mhz()).abs() < 0.5)
    }

    /// Returns the voltage the domain needs at `freq`.
    ///
    /// Exact-match OPPs return their table voltage; other frequencies within
    /// range are linearly interpolated, and out-of-range frequencies clamp to
    /// the end points. Interpolation supports power prediction at anchor
    /// frequencies that are not table entries.
    pub fn voltage_at(&self, freq: Freq) -> Voltage {
        let f = freq.as_mhz();
        if f <= self.min_freq().as_mhz() {
            return self.min_opp().voltage();
        }
        if f >= self.max_freq().as_mhz() {
            return self.max_opp().voltage();
        }
        // Find the bracketing pair and interpolate linearly in frequency.
        for pair in self.opps.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            if f >= lo.freq().as_mhz() && f <= hi.freq().as_mhz() {
                let span = hi.freq().as_mhz() - lo.freq().as_mhz();
                let t = if span > 0.0 {
                    (f - lo.freq().as_mhz()) / span
                } else {
                    0.0
                };
                let v = lo.voltage().as_volts()
                    + t * (hi.voltage().as_volts() - lo.voltage().as_volts());
                return Voltage::from_volts(v);
            }
        }
        unreachable!("frequency within [min, max] must be bracketed")
    }

    /// Returns the index of the slowest OPP whose frequency is at least
    /// `freq`, or `None` if even the fastest OPP is slower.
    ///
    /// This is the "minimum frequency that can meet a deadline" lookup used
    /// by DVFS governors.
    pub fn ceil_index(&self, freq: Freq) -> Option<usize> {
        self.opps.iter().position(|o| o.freq() >= freq)
    }

    /// Returns the index of the fastest OPP whose frequency is at most
    /// `freq`, or `None` if even the slowest OPP is faster.
    pub fn floor_index(&self, freq: Freq) -> Option<usize> {
        self.opps.iter().rposition(|o| o.freq() <= freq)
    }
}

impl<'a> IntoIterator for &'a OppTable {
    type Item = Opp;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Opp>>;

    fn into_iter(self) -> Self::IntoIter {
        self.opps.iter().copied()
    }
}

/// Builds the evenly spaced `(MHz, mV)` grid used by the XU3-style presets:
/// `count` points from `start_mhz` in steps of `step_mhz`, with voltages
/// linearly interpolated through the supplied `(MHz, mV)` key points.
///
/// # Panics
///
/// Panics if `count == 0` or `keys` is empty (programmer error in a preset).
pub fn grid_with_voltage_keys(
    start_mhz: f64,
    step_mhz: f64,
    count: usize,
    keys: &[(f64, f64)],
) -> Vec<(f64, f64)> {
    assert!(count > 0 && !keys.is_empty());
    (0..count)
        .map(|i| {
            let f = start_mhz + step_mhz * i as f64;
            let v = interp_keys(f, keys);
            (f, v)
        })
        .collect()
}

fn interp_keys(f: f64, keys: &[(f64, f64)]) -> f64 {
    if f <= keys[0].0 {
        return keys[0].1;
    }
    if f >= keys[keys.len() - 1].0 {
        return keys[keys.len() - 1].1;
    }
    for pair in keys.windows(2) {
        let (f0, v0) = pair[0];
        let (f1, v1) = pair[1];
        if f >= f0 && f <= f1 {
            let t = (f - f0) / (f1 - f0);
            return v0 + t * (v1 - v0);
        }
    }
    keys[keys.len() - 1].1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> OppTable {
        OppTable::from_mhz_mv(&[
            (200.0, 900.0),
            (600.0, 950.0),
            (1000.0, 1025.0),
            (1800.0, 1225.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_empty_table() {
        assert!(matches!(
            OppTable::new(vec![]),
            Err(PlatformError::InvalidModel { .. })
        ));
    }

    #[test]
    fn rejects_non_increasing_frequency() {
        let err = OppTable::from_mhz_mv(&[(400.0, 900.0), (400.0, 950.0)]);
        assert!(err.is_err());
        let err = OppTable::from_mhz_mv(&[(400.0, 900.0), (300.0, 950.0)]);
        assert!(err.is_err());
    }

    #[test]
    fn rejects_decreasing_voltage() {
        let err = OppTable::from_mhz_mv(&[(200.0, 950.0), (400.0, 900.0)]);
        assert!(err.is_err());
    }

    #[test]
    fn min_max_and_get() {
        let t = table();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.min_freq(), Freq::from_mhz(200.0));
        assert_eq!(t.max_freq(), Freq::from_mhz(1800.0));
        assert_eq!(t.get(1).unwrap().freq(), Freq::from_mhz(600.0));
        assert!(t.get(9).is_none());
    }

    #[test]
    fn index_of_tolerates_float_noise() {
        let t = table();
        assert_eq!(t.index_of(Freq::from_mhz(1000.0001)), Some(2));
        assert_eq!(t.index_of(Freq::from_mhz(1234.0)), None);
    }

    #[test]
    fn voltage_interpolation_at_and_between_points() {
        let t = table();
        assert_eq!(t.voltage_at(Freq::from_mhz(200.0)).as_volts(), 0.9);
        // Midpoint of 600 (0.95) and 1000 (1.025).
        let v = t.voltage_at(Freq::from_mhz(800.0)).as_volts();
        assert!((v - 0.9875).abs() < 1e-9);
        // Clamped outside range.
        assert_eq!(t.voltage_at(Freq::from_mhz(50.0)).as_volts(), 0.9);
        assert_eq!(t.voltage_at(Freq::from_mhz(2500.0)).as_volts(), 1.225);
    }

    #[test]
    fn ceil_and_floor_index() {
        let t = table();
        assert_eq!(t.ceil_index(Freq::from_mhz(700.0)), Some(2));
        assert_eq!(t.ceil_index(Freq::from_mhz(200.0)), Some(0));
        assert_eq!(t.ceil_index(Freq::from_mhz(2000.0)), None);
        assert_eq!(t.floor_index(Freq::from_mhz(700.0)), Some(1));
        assert_eq!(t.floor_index(Freq::from_mhz(1800.0)), Some(3));
        assert_eq!(t.floor_index(Freq::from_mhz(100.0)), None);
    }

    #[test]
    fn v2f_is_monotone_over_table() {
        let t = table();
        let v2fs: Vec<f64> = t.iter().map(Opp::v2f).collect();
        assert!(v2fs.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn grid_builder_produces_expected_points() {
        let grid = grid_with_voltage_keys(200.0, 100.0, 5, &[(200.0, 900.0), (600.0, 1000.0)]);
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0], (200.0, 900.0));
        assert_eq!(grid[4], (600.0, 1000.0));
        // Linear in between.
        assert!((grid[2].1 - 950.0).abs() < 1e-9);
    }

    #[test]
    fn into_iterator_for_reference() {
        let t = table();
        let count = (&t).into_iter().count();
        assert_eq!(count, 4);
    }
}
