//! Typed physical quantities used throughout the platform model.
//!
//! All platform-facing APIs trade in these newtypes rather than bare `f64`s
//! so that a frequency can never be passed where a voltage is expected
//! (C-NEWTYPE). Each type wraps an `f64` in SI base units and provides
//! domain-appropriate constructors and accessors.
//!
//! Arithmetic is implemented only where it is physically meaningful:
//! `Power * TimeSpan = Energy`, `Energy / TimeSpan = Power`, and so on.
//!
//! # Examples
//!
//! ```
//! use eml_platform::units::{Freq, Power, TimeSpan};
//!
//! let f = Freq::from_mhz(900.0);
//! assert_eq!(f.as_ghz(), 0.9);
//!
//! let e = Power::from_milliwatts(192.6) * TimeSpan::from_millis(397.0);
//! assert!((e.as_millijoules() - 76.46).abs() < 0.1);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared boilerplate for an `f64`-backed quantity newtype.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw value in SI base units.
            #[inline]
            pub const fn as_base(self) -> f64 {
                self.0
            }

            /// Creates a value from SI base units.
            ///
            /// # Examples
            ///
            /// ```
            /// # use eml_platform::units::*;
            #[doc = concat!("let q = ", stringify!($name), "::from_base(1.5);")]
            /// assert_eq!(q.as_base(), 1.5);
            /// ```
            #[inline]
            pub const fn from_base(value: f64) -> Self {
                Self(value)
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the value into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

quantity!(
    /// Clock frequency, stored in hertz.
    Freq,
    "Hz"
);
quantity!(
    /// Electrical potential, stored in volts.
    Voltage,
    "V"
);
quantity!(
    /// Instantaneous power, stored in watts.
    Power,
    "W"
);
quantity!(
    /// Energy, stored in joules.
    Energy,
    "J"
);
quantity!(
    /// A span of simulated time, stored in seconds.
    ///
    /// A dedicated type (rather than [`std::time::Duration`]) keeps the
    /// platform math in plain `f64` seconds and permits the negative
    /// intermediate values that arise in interpolation.
    TimeSpan,
    "s"
);
quantity!(
    /// Temperature, stored in degrees Celsius.
    ///
    /// The platform model only ever deals in temperature *differences*
    /// relative to ambient plus an ambient offset, so Celsius is used
    /// directly rather than Kelvin.
    Celsius,
    "°C"
);

impl Freq {
    /// Creates a frequency from megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Self::from_base(mhz * 1.0e6)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Self::from_base(ghz * 1.0e9)
    }

    /// Returns the frequency in hertz.
    #[inline]
    pub fn as_hz(self) -> f64 {
        self.as_base()
    }

    /// Returns the frequency in megahertz.
    #[inline]
    pub fn as_mhz(self) -> f64 {
        self.as_base() / 1.0e6
    }

    /// Returns the frequency in gigahertz.
    #[inline]
    pub fn as_ghz(self) -> f64 {
        self.as_base() / 1.0e9
    }
}

impl Voltage {
    /// Creates a voltage from volts.
    #[inline]
    pub fn from_volts(v: f64) -> Self {
        Self::from_base(v)
    }

    /// Creates a voltage from millivolts.
    #[inline]
    pub fn from_millivolts(mv: f64) -> Self {
        Self::from_base(mv / 1.0e3)
    }

    /// Returns the voltage in volts.
    #[inline]
    pub fn as_volts(self) -> f64 {
        self.as_base()
    }

    /// Returns `V²·f`, the quantity dynamic CMOS power is proportional to.
    ///
    /// Used as the interpolation abscissa by
    /// [`crate::power::AnchoredPowerModel`].
    #[inline]
    pub fn squared_times(self, f: Freq) -> f64 {
        self.as_base() * self.as_base() * f.as_ghz()
    }
}

impl Power {
    /// Creates a power from watts.
    #[inline]
    pub fn from_watts(w: f64) -> Self {
        Self::from_base(w)
    }

    /// Creates a power from milliwatts.
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        Self::from_base(mw / 1.0e3)
    }

    /// Returns the power in watts.
    #[inline]
    pub fn as_watts(self) -> f64 {
        self.as_base()
    }

    /// Returns the power in milliwatts.
    #[inline]
    pub fn as_milliwatts(self) -> f64 {
        self.as_base() * 1.0e3
    }
}

impl Energy {
    /// Creates an energy from joules.
    #[inline]
    pub fn from_joules(j: f64) -> Self {
        Self::from_base(j)
    }

    /// Creates an energy from millijoules.
    #[inline]
    pub fn from_millijoules(mj: f64) -> Self {
        Self::from_base(mj / 1.0e3)
    }

    /// Returns the energy in joules.
    #[inline]
    pub fn as_joules(self) -> f64 {
        self.as_base()
    }

    /// Returns the energy in millijoules.
    #[inline]
    pub fn as_millijoules(self) -> f64 {
        self.as_base() * 1.0e3
    }
}

impl TimeSpan {
    /// Creates a time span from seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        Self::from_base(s)
    }

    /// Creates a time span from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::from_base(ms / 1.0e3)
    }

    /// Creates a time span from microseconds (the scale measured
    /// serving latencies of small embedded models live on).
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::from_base(us / 1.0e6)
    }

    /// Returns the time span in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.as_base()
    }

    /// Returns the time span in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.as_base() * 1.0e3
    }

    /// Returns the time span in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.as_base() * 1.0e6
    }
}

impl Celsius {
    /// Creates a temperature from degrees Celsius.
    #[inline]
    pub fn from_celsius(c: f64) -> Self {
        Self::from_base(c)
    }

    /// Returns the temperature in degrees Celsius.
    #[inline]
    pub fn as_celsius(self) -> f64 {
        self.as_base()
    }
}

impl Mul<TimeSpan> for Power {
    type Output = Energy;
    /// `P · t = E`.
    #[inline]
    fn mul(self, rhs: TimeSpan) -> Energy {
        Energy::from_joules(self.as_watts() * rhs.as_secs())
    }
}

impl Mul<Power> for TimeSpan {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Power) -> Energy {
        rhs * self
    }
}

impl Div<TimeSpan> for Energy {
    type Output = Power;
    /// `E / t = P`.
    #[inline]
    fn div(self, rhs: TimeSpan) -> Power {
        Power::from_watts(self.as_joules() / rhs.as_secs())
    }
}

impl Div<Power> for Energy {
    type Output = TimeSpan;
    /// `E / P = t`.
    #[inline]
    fn div(self, rhs: Power) -> TimeSpan {
        TimeSpan::from_secs(self.as_joules() / rhs.as_watts())
    }
}

/// Orders two `f64`-backed quantities, treating NaN as greatest.
///
/// The platform model never produces NaN in normal operation; this is a
/// convenience for sorting operating points by a metric.
pub fn total_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_conversions_round_trip() {
        let f = Freq::from_mhz(1400.0);
        assert_eq!(f.as_hz(), 1.4e9);
        assert_eq!(f.as_ghz(), 1.4);
        assert_eq!(Freq::from_ghz(1.4), f);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_watts(2.0) * TimeSpan::from_secs(3.0);
        assert_eq!(e.as_joules(), 6.0);
        // And commuted.
        let e2 = TimeSpan::from_secs(3.0) * Power::from_watts(2.0);
        assert_eq!(e2, e);
    }

    #[test]
    fn energy_divided_recovers_factors() {
        let e = Energy::from_joules(6.0);
        assert_eq!((e / TimeSpan::from_secs(3.0)).as_watts(), 2.0);
        assert_eq!((e / Power::from_watts(2.0)).as_secs(), 3.0);
    }

    #[test]
    fn milli_unit_constructors() {
        assert!((Power::from_milliwatts(326.0).as_watts() - 0.326).abs() < 1e-12);
        assert!((Energy::from_millijoules(92.1).as_joules() - 0.0921).abs() < 1e-12);
        assert!((TimeSpan::from_millis(280.0).as_secs() - 0.28).abs() < 1e-12);
        assert!((Voltage::from_millivolts(912.5).as_volts() - 0.9125).abs() < 1e-12);
    }

    #[test]
    fn ratio_of_like_quantities_is_dimensionless() {
        let r = Freq::from_mhz(1800.0) / Freq::from_mhz(200.0);
        assert!((r - 9.0).abs() < 1e-12);
    }

    #[test]
    fn quantity_ordering_and_clamp() {
        let lo = TimeSpan::from_millis(100.0);
        let hi = TimeSpan::from_millis(200.0);
        assert!(lo < hi);
        assert_eq!(TimeSpan::from_millis(500.0).clamp(lo, hi), hi);
        assert_eq!(TimeSpan::from_millis(50.0).clamp(lo, hi), lo);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
    }

    #[test]
    fn v_squared_f_metric() {
        let v = Voltage::from_volts(1.0);
        assert!((v.squared_times(Freq::from_ghz(1.0)) - 1.0).abs() < 1e-12);
        let v = Voltage::from_volts(2.0);
        assert!((v.squared_times(Freq::from_ghz(0.5)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Power::from_watts(1.5)), "1.5 W");
        assert_eq!(format!("{}", Celsius::from_celsius(85.0)), "85 °C");
    }

    #[test]
    fn sum_of_quantities() {
        let total: Power = [1.0, 2.0, 3.5].into_iter().map(Power::from_watts).sum();
        assert_eq!(total.as_watts(), 6.5);
    }

    #[test]
    fn arithmetic_ops() {
        let mut p = Power::from_watts(1.0);
        p += Power::from_watts(0.5);
        assert_eq!(p.as_watts(), 1.5);
        p -= Power::from_watts(1.0);
        assert!((p.as_watts() - 0.5).abs() < 1e-12);
        assert_eq!((-p).as_watts(), -0.5);
        assert_eq!((p * 4.0).as_watts(), 2.0);
        assert_eq!((4.0 * p).as_watts(), 2.0);
        assert_eq!((p / 2.0).as_watts(), 0.25);
        assert_eq!(p.abs(), p);
        assert_eq!((-p).abs(), p);
    }
}
