//! Lumped-RC thermal model.
//!
//! The paper's runtime scenario (Fig 2, t = 15 s) hinges on a thermal
//! violation: when a DNN occupies all four big cores while a VR/AR workload
//! saturates the GPU, the SoC exceeds its thermal limit and the RTM must
//! compress the DNN and collapse it onto one core.
//!
//! We model the die as a single thermal capacitance coupled to ambient
//! through a thermal resistance (a first-order RC, as in lumped HotSpot
//! configurations), plus a small per-cluster self-heating resistance that
//! lets individual clusters run hotter than the die average:
//!
//! ```text
//! C · dT/dt = P_total − (T − T_ambient) / R
//! T_cluster = T + R_local · P_cluster
//! ```
//!
//! Integration uses the exact exponential step, so it is unconditionally
//! stable for any `dt`.

use crate::units::{Celsius, Power, TimeSpan};

/// Static thermal description of an SoC package.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Die-to-ambient thermal resistance in K/W.
    pub r_die_k_per_w: f64,
    /// Thermal time constant τ = R·C in seconds.
    pub tau_s: f64,
    /// Ambient temperature.
    pub ambient: Celsius,
    /// Junction temperature limit; the RTM throttles above this.
    pub limit: Celsius,
}

impl ThermalModel {
    /// A typical passively cooled mobile SoC: 6 K/W to ambient, τ = 4 s,
    /// 25 °C ambient, 75 °C throttle point.
    pub fn mobile_default() -> Self {
        Self {
            r_die_k_per_w: 6.0,
            tau_s: 4.0,
            ambient: Celsius::from_celsius(25.0),
            limit: Celsius::from_celsius(75.0),
        }
    }

    /// Steady-state die temperature under constant `power`.
    pub fn steady_state(&self, power: Power) -> Celsius {
        Celsius::from_celsius(self.ambient.as_celsius() + self.r_die_k_per_w * power.as_watts())
    }

    /// Headroom power: the largest sustained total power that keeps the die
    /// at or below the thermal limit.
    pub fn sustainable_power(&self) -> Power {
        Power::from_watts(
            (self.limit.as_celsius() - self.ambient.as_celsius()).max(0.0) / self.r_die_k_per_w,
        )
    }
}

/// Mutable thermal state advanced by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalState {
    die_temp: Celsius,
}

impl ThermalState {
    /// Starts at thermal equilibrium with ambient.
    pub fn at_ambient(model: &ThermalModel) -> Self {
        Self {
            die_temp: model.ambient,
        }
    }

    /// Current die temperature.
    pub fn die_temp(&self) -> Celsius {
        self.die_temp
    }

    /// Advances the die temperature by `dt` under constant total `power`,
    /// using the exact solution of the first-order RC:
    /// `T(t+dt) = T∞ + (T(t) − T∞)·exp(−dt/τ)`.
    pub fn step(&mut self, model: &ThermalModel, power: Power, dt: TimeSpan) {
        let t_inf = model.steady_state(power).as_celsius();
        let t = self.die_temp.as_celsius();
        let decay = (-dt.as_secs() / model.tau_s).exp();
        self.die_temp = Celsius::from_celsius(t_inf + (t - t_inf) * decay);
    }

    /// Temperature of one cluster given its own power draw (die temperature
    /// plus local self-heating through `r_local_k_per_w`).
    pub fn cluster_temp(&self, r_local_k_per_w: f64, cluster_power: Power) -> Celsius {
        Celsius::from_celsius(
            self.die_temp.as_celsius() + r_local_k_per_w * cluster_power.as_watts(),
        )
    }

    /// Whether the die exceeds the model's thermal limit.
    pub fn over_limit(&self, model: &ThermalModel) -> bool {
        self.die_temp > model.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThermalModel {
        ThermalModel::mobile_default()
    }

    #[test]
    fn starts_at_ambient() {
        let m = model();
        let s = ThermalState::at_ambient(&m);
        assert_eq!(s.die_temp(), m.ambient);
        assert!(!s.over_limit(&m));
    }

    #[test]
    fn converges_to_steady_state() {
        let m = model();
        let mut s = ThermalState::at_ambient(&m);
        let p = Power::from_watts(5.0);
        for _ in 0..1000 {
            s.step(&m, p, TimeSpan::from_millis(100.0));
        }
        let expected = m.steady_state(p).as_celsius(); // 25 + 30 = 55
        assert!((s.die_temp().as_celsius() - expected).abs() < 0.01);
    }

    #[test]
    fn steady_state_formula() {
        let m = model();
        assert_eq!(m.steady_state(Power::from_watts(10.0)).as_celsius(), 85.0);
        assert_eq!(m.steady_state(Power::ZERO), m.ambient);
    }

    #[test]
    fn heats_monotonically_toward_higher_power_target() {
        let m = model();
        let mut s = ThermalState::at_ambient(&m);
        let mut prev = s.die_temp().as_celsius();
        for _ in 0..50 {
            s.step(&m, Power::from_watts(8.0), TimeSpan::from_millis(200.0));
            let t = s.die_temp().as_celsius();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn cools_when_power_drops() {
        let m = model();
        let mut s = ThermalState::at_ambient(&m);
        for _ in 0..200 {
            s.step(&m, Power::from_watts(9.0), TimeSpan::from_millis(100.0));
        }
        let hot = s.die_temp().as_celsius();
        for _ in 0..200 {
            s.step(&m, Power::from_watts(1.0), TimeSpan::from_millis(100.0));
        }
        assert!(s.die_temp().as_celsius() < hot);
    }

    #[test]
    fn exponential_step_is_stable_for_huge_dt() {
        let m = model();
        let mut s = ThermalState::at_ambient(&m);
        // One enormous step lands exactly on steady state, no oscillation.
        s.step(&m, Power::from_watts(5.0), TimeSpan::from_secs(1.0e6));
        assert!((s.die_temp().as_celsius() - 55.0).abs() < 1e-6);
    }

    #[test]
    fn step_size_invariance() {
        // Two half-steps equal one full step (exact integrator property).
        let m = model();
        let p = Power::from_watts(6.0);
        let mut a = ThermalState::at_ambient(&m);
        a.step(&m, p, TimeSpan::from_secs(1.0));
        let mut b = ThermalState::at_ambient(&m);
        b.step(&m, p, TimeSpan::from_secs(0.5));
        b.step(&m, p, TimeSpan::from_secs(0.5));
        assert!((a.die_temp().as_celsius() - b.die_temp().as_celsius()).abs() < 1e-12);
    }

    #[test]
    fn over_limit_detection_and_sustainable_power() {
        let m = model();
        let mut s = ThermalState::at_ambient(&m);
        // 10 W steady state = 85 °C > 75 °C limit.
        for _ in 0..500 {
            s.step(&m, Power::from_watts(10.0), TimeSpan::from_millis(100.0));
        }
        assert!(s.over_limit(&m));
        // Sustainable power keeps us exactly at the limit.
        let ps = m.sustainable_power();
        assert!((ps.as_watts() - 50.0 / 6.0).abs() < 1e-9);
        assert!(m.steady_state(ps) <= m.limit);
    }

    #[test]
    fn cluster_temp_adds_local_self_heating() {
        let m = model();
        let s = ThermalState::at_ambient(&m);
        let t = s.cluster_temp(2.0, Power::from_watts(3.0));
        assert_eq!(t.as_celsius(), 25.0 + 6.0);
    }
}
