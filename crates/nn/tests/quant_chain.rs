//! Tests of the chained-int8 execution path: with frozen activation
//! scales, `Backend::QuantI8` forwards keep activations on the int8
//! grid across the whole network — one f32→i8 quantisation at the
//! input, one i8→f32 dequantisation at the logits, saturating-i8
//! requantisation (ReLU fused) at every layer edge in between — and
//! must match the per-layer round-trip path within an analytic,
//! scale-derived tolerance. See `Network::plan_quant_chain`.

use eml_nn::activation::{Flatten, Relu};
use eml_nn::arch::{build_group_cnn, CnnConfig};
use eml_nn::conv::{Conv2d, Conv2dConfig};
use eml_nn::gemm::Backend;
use eml_nn::layer::Layer;
use eml_nn::linear::Linear;
use eml_nn::pool::MaxPool2d;
use eml_nn::quant::{layer_io_events, reset_layer_io_events, QAct, QTensor};
use eml_nn::tensor::Tensor;
use eml_nn::Network;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A calibrated, frozen default CNN on the int8 backend.
fn calibrated_cnn(seed: u64) -> Network {
    let mut net = build_group_cnn(CnnConfig::default(), &mut StdRng::seed_from_u64(seed))
        .expect("valid arch");
    net.set_backend(Backend::QuantI8);
    let batches: Vec<Tensor> = (0..2)
        .map(|i| Tensor::random(&[2, 3, 16, 16], &mut StdRng::seed_from_u64(seed ^ (10 + i))))
        .collect();
    let report = net.calibrate(&batches).expect("calibration runs");
    assert_eq!(report.len(), 4, "conv1-3 + fc have observers");
    assert!(report.iter().all(|r| r.scale > 0.0), "scales resolved");
    net
}

/// The acceptance-criterion instrumentation test: with frozen scales,
/// a chained QuantI8 forward performs exactly one f32→i8 quantisation
/// (the network input) and one i32/i8→f32 dequantisation (the logits)
/// **regardless of depth**, at every width — while the per-layer
/// round-trip path pays one of each per quantised layer.
#[test]
fn chained_forward_quantises_once_and_dequantises_once() {
    let mut net = calibrated_cnn(1);
    let x = Tensor::random(&[1, 3, 16, 16], &mut StdRng::seed_from_u64(99));
    for width in 1..=4usize {
        net.set_active_groups(width).expect("valid width");
        reset_layer_io_events();
        let _ = net.forward(&x, false).expect("chained forward");
        assert_eq!(
            layer_io_events(),
            (1, 1),
            "width {width}: chained forward must quantise once and dequantise once"
        );
        // The per-layer path pays the round trip at all 4 quantised
        // layers (conv1, conv2, conv3, fc).
        net.set_quant_chain(false);
        reset_layer_io_events();
        let _ = net.forward(&x, false).expect("per-layer forward");
        assert_eq!(
            layer_io_events(),
            (4, 4),
            "width {width}: per-layer path round-trips at every quantised layer"
        );
        net.set_quant_chain(true);
    }
}

/// The plan itself: the reference CNN (conv-relu-pool ×2, conv-relu,
/// flatten, fc) resolves three quantised-to-quantised edges and folds
/// all three ReLUs into their convolutions' epilogues.
#[test]
fn plan_resolves_every_edge_and_fuses_relus() {
    let mut net = calibrated_cnn(2);
    let plan = net.plan_quant_chain();
    assert!(plan.engaged());
    assert_eq!(plan.edges(), 3, "conv1→conv2, conv2→conv3, conv3→fc");
    assert_eq!(plan.fused_relus(), 3);
    // Unfrozen scales disengage the whole plan.
    net.freeze_act_scales(false);
    let plan = net.plan_quant_chain();
    assert!(!plan.engaged());
    assert_eq!(plan.edges(), 0);
    // Refreezing re-engages (the ranges are still recorded).
    net.freeze_act_scales(true);
    assert!(net.plan_quant_chain().engaged());
    // The f32 backend never chains, frozen or not.
    net.set_backend(Backend::Gemm);
    assert!(!net.plan_quant_chain().engaged());
}

/// The chained path executes wide batches in cache-sized sample blocks
/// (`QuantChainPlan::block`); with frozen scales the split must be
/// bit-invisible — batch-N logits identical to N batch-1 forwards,
/// whatever the block boundaries.
#[test]
fn blocked_chained_batches_are_bit_identical_to_batch1() {
    let mut net = calibrated_cnn(77);
    let block = net.plan_quant_chain().block();
    assert!(
        (1..16).contains(&block),
        "default CNN must engage real blocking for a batch of 19 (block {block})"
    );
    let n = 19; // deliberately not a multiple of the block size
    let x = Tensor::random(&[n, 3, 16, 16], &mut StdRng::seed_from_u64(99));
    // Cap the planning-thread parallelism so `max(block, workers)`
    // cannot disable blocking on many-core machines.
    let y = eml_nn::workers::with_band_cap(1, || net.forward(&x, false)).expect("batched");
    let classes = y.shape()[1];
    let sample: usize = 3 * 16 * 16;
    for i in 0..n {
        let xi = Tensor::from_vec(
            &[1, 3, 16, 16],
            x.data()[i * sample..(i + 1) * sample].to_vec(),
        )
        .unwrap();
        let yi = net.forward(&xi, false).expect("batch-1");
        assert_eq!(
            &y.data()[i * classes..(i + 1) * classes],
            yi.data(),
            "sample {i} diverged across block boundaries"
        );
    }
}

/// Training forwards never chain: the backward pass needs the f32
/// activation caches, so `train = true` must take the per-layer path
/// even with a fully frozen int8 network.
#[test]
fn training_forward_bypasses_the_chain() {
    let mut net = calibrated_cnn(3);
    let x = Tensor::random(&[2, 3, 16, 16], &mut StdRng::seed_from_u64(5));
    reset_layer_io_events();
    let _ = net.forward(&x, true).expect("training forward");
    assert_eq!(
        layer_io_events(),
        (4, 4),
        "training forward must run the per-layer path"
    );
    // And training still works end to end on a frozen chained network.
    let labels = [0usize, 1];
    net.zero_grads();
    let out = net.train_batch(&x, &labels).expect("train batch");
    assert!(out.loss.is_finite());
    net.sgd_step(0.01, 0.0);
}

/// Chained vs per-layer equivalence on the full reference CNN at every
/// width, bounded analytically: the only divergence is the fused
/// requantisation multiplier's float rounding at each chain edge — at
/// most one grid step of that edge's scale — amplified downstream by
/// at most the product of the remaining layers' absolute weight-row
/// sums.
#[test]
fn chained_cnn_matches_per_layer_path_at_every_width() {
    let mut net = calibrated_cnn(4);
    let x = Tensor::random(&[2, 3, 16, 16], &mut StdRng::seed_from_u64(77));
    for width in 1..=4usize {
        net.set_active_groups(width).expect("valid width");
        let chained = net.forward(&x, false).expect("chained");
        net.set_quant_chain(false);
        let roundtrip = net.forward(&x, false).expect("per-layer");
        net.set_quant_chain(true);
        // Loose empirical-free bound: logits of this 16×16 CNN are
        // O(1); a one-step edge error amplified through ≤ 2 remaining
        // layers stays far below this.
        let max_abs = roundtrip.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let tol = (0.05 * max_abs).max(0.02);
        for (i, (&a, &b)) in chained.data().iter().zip(roundtrip.data()).enumerate() {
            assert!(
                (a - b).abs() <= tol,
                "width {width} logit[{i}]: chained {a} vs round-trip {b} (tol {tol})"
            );
        }
    }
}

/// Per-layer fallback: unfreezing one mid-network layer must split the
/// chain around it — the unfrozen layer keeps its dynamic-scale
/// semantics (and its f32 round trip), while the segments before and
/// after still chain.
#[test]
fn unfrozen_mid_layer_splits_the_chain() {
    let mut net = calibrated_cnn(6);
    // Layer index 3 is conv2 in the reference stack (conv1, relu,
    // pool, conv2, ...).
    net.layer_mut(3)
        .expect("conv2 exists")
        .freeze_act_scale(false);
    let plan = net.plan_quant_chain();
    assert_eq!(
        plan.edges(),
        1,
        "only conv3→fc survives: conv1 and conv2 are isolated"
    );
    let x = Tensor::random(&[1, 3, 16, 16], &mut StdRng::seed_from_u64(8));
    reset_layer_io_events();
    let y_split = net.forward(&x, false).expect("split-chain forward");
    // conv1 round-trips (1,1), conv2 round-trips dynamically (1,1),
    // conv3→fc chains (1,1).
    assert_eq!(layer_io_events(), (3, 3));
    // And the result still matches the fully per-layer path: conv2's
    // dynamic scale sees the same inputs either way.
    net.set_quant_chain(false);
    let y_flat = net.forward(&x, false).expect("per-layer forward");
    let max_abs = y_flat.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let tol = (0.05 * max_abs).max(0.02);
    for (i, (&a, &b)) in y_split.data().iter().zip(y_flat.data()).enumerate() {
        assert!(
            (a - b).abs() <= tol,
            "logit[{i}]: split {a} vs flat {b} (tol {tol})"
        );
    }
}

/// i8 ReLU order-preservation: on the positive-scale int8 grid,
/// `max(0)` commutes exactly with quantisation — the chained ReLU of a
/// quantised tensor equals quantising the f32 ReLU.
#[test]
fn relu_i8_fast_path_is_order_preserving() {
    let mut rng = StdRng::seed_from_u64(11);
    let x: Vec<f32> = (0..256).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let scale = 2.0 / 127.0;
    let mut q = QTensor::zeros(&[4, 64], scale);
    for (d, &v) in q.data_mut().iter_mut().zip(&x) {
        *d = (v / scale).round().clamp(-127.0, 127.0) as i16;
    }
    let q_in = q.clone();
    let mut relu = Relu::new("r");
    let QAct::I8(out) = relu
        .forward_chained(QAct::I8(q), None, false)
        .expect("chained relu")
    else {
        panic!("relu must stay quantised");
    };
    assert_eq!(out.scale(), scale);
    for (i, (&got, &was)) in out.data().iter().zip(q_in.data()).enumerate() {
        assert_eq!(got, was.max(0), "element {i}: q(relu(x)) == relu_i8(q(x))");
    }
}

/// i8 MaxPool order-preservation: max commutes with the monotone
/// round-and-clamp, so pooling on the grid equals quantising the f32
/// pool — exactly, element for element.
#[test]
fn maxpool_i8_fast_path_is_order_preserving() {
    let mut rng = StdRng::seed_from_u64(12);
    for window in [2usize, 3] {
        let (c, h, w) = (3usize, 6usize, 6usize);
        let xf = Tensor::random(&[1, c, h, w], &mut rng);
        let scale = 1.0 / 127.0;
        let mut q = QTensor::zeros(&[1, c, h, w], scale);
        for (d, &v) in q.data_mut().iter_mut().zip(xf.data()) {
            *d = (v / scale).round().clamp(-127.0, 127.0) as i16;
        }
        // f32 pool of the *dequantised* grid values, then requantise:
        // must equal the integer pool exactly.
        let mut pool_f = MaxPool2d::new("p", window);
        let y_f = pool_f.forward(&q.dequantize(), false).expect("f32 pool");
        let mut pool_q = MaxPool2d::new("p", window);
        let QAct::I8(y_q) = pool_q
            .forward_chained(QAct::I8(q), None, false)
            .expect("chained pool")
        else {
            panic!("pool must stay quantised");
        };
        assert_eq!(y_q.shape(), y_f.shape());
        assert_eq!(y_q.scale(), scale);
        for (i, (&qi, &fi)) in y_q.data().iter().zip(y_f.data()).enumerate() {
            let expect = (fi / scale).round() as i16;
            assert_eq!(qi, expect, "window {window} element {i}");
        }
    }
}

/// Calibration workflow contract: empty batch sets are rejected and
/// leave the network unfrozen; a real calibration freezes every
/// observer, reports positive scales, and restores the backend it
/// found.
#[test]
fn calibrate_reports_scales_and_restores_backend() {
    let mut net =
        build_group_cnn(CnnConfig::default(), &mut StdRng::seed_from_u64(20)).expect("valid arch");
    // Empty calibration: error, and the observers stay dynamic.
    let empty: Vec<Tensor> = Vec::new();
    assert!(net.calibrate(&empty).is_err());
    assert!(!net.plan_quant_chain().engaged());
    // Real calibration from the f32 backend: scales freeze, backend
    // comes back as Gemm.
    let batches = vec![Tensor::random(
        &[2, 3, 16, 16],
        &mut StdRng::seed_from_u64(21),
    )];
    let report = net.calibrate(&batches).expect("calibration runs");
    assert_eq!(net.backend(), Backend::Gemm, "backend restored");
    assert_eq!(report.len(), 4);
    for entry in &report {
        assert!(entry.max_abs > 0.0, "{}: observed range", entry.layer);
        assert!(
            (entry.scale - entry.max_abs / 127.0).abs() < 1e-9,
            "{}: scale = max_abs/127",
            entry.layer
        );
    }
    // The f32 backend ignores the frozen scales entirely…
    assert!(!net.plan_quant_chain().engaged());
    // …but switching the knob to int8 now engages the chain at once.
    net.set_backend(Backend::QuantI8);
    assert!(net.plan_quant_chain().engaged());
}

/// A calibration that fails mid-run (wrong-shaped batch) must leave
/// the observers **unfrozen**: freezing a never-observed range would
/// silently quantise every activation to zero on the next forward.
#[test]
fn failed_calibration_leaves_observers_dynamic() {
    let mut net =
        build_group_cnn(CnnConfig::default(), &mut StdRng::seed_from_u64(30)).expect("valid arch");
    net.set_backend(Backend::QuantI8);
    let bad = vec![Tensor::zeros(&[1, 5, 16, 16])]; // 5 channels: conv1 rejects
    assert!(net.calibrate(&bad).is_err());
    assert!(
        !net.plan_quant_chain().engaged(),
        "observers must stay dynamic after a failed calibration"
    );
    // And inference still works on the dynamic per-layer path.
    let x = Tensor::random(&[1, 3, 16, 16], &mut StdRng::seed_from_u64(31));
    let y = net.forward(&x, false).expect("dynamic forward");
    assert!(y.data().iter().any(|&v| v != 0.0), "logits carry signal");
}

/// A ReLU directly after the chain's *tail* (the layer that
/// dequantises to f32) folds into that layer's f32 epilogue too — no
/// separate whole-tensor ReLU pass, bit-identical result.
#[test]
fn tail_relu_fuses_into_the_dequantising_epilogue() {
    let mut rng = StdRng::seed_from_u64(33);
    let cfg = |cin: usize| Conv2dConfig {
        in_channels: cin,
        out_channels: 8,
        kernel: 3,
        stride: 1,
        padding: 1,
        conv_groups: 1,
        prune_groups: 1,
    };
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new("c1", cfg(3), &mut rng).unwrap()),
        Box::new(Relu::new("r1")),
        Box::new(Conv2d::new("c2", cfg(8), &mut rng).unwrap()),
        Box::new(Relu::new("r2")), // tail relu: c2 emits f32
    ];
    let mut net = Network::new(layers, 1, vec![3, 8, 8]).expect("stack builds");
    net.set_backend(Backend::QuantI8);
    let cal = vec![Tensor::random(
        &[2, 3, 8, 8],
        &mut StdRng::seed_from_u64(34),
    )];
    net.calibrate(&cal).expect("calibration runs");
    let plan = net.plan_quant_chain();
    assert_eq!(plan.edges(), 1, "c1→c2");
    assert_eq!(plan.fused_relus(), 2, "edge relu AND tail relu fold away");
    let x = Tensor::random(&[1, 3, 8, 8], &mut StdRng::seed_from_u64(35));
    reset_layer_io_events();
    let fused = net.forward(&x, false).expect("chained forward");
    assert_eq!(layer_io_events(), (1, 1));
    assert!(
        fused.data().iter().all(|&v| v >= 0.0),
        "tail relu still applied"
    );
    // Bit-identical to the per-layer path's separate f32 relu? The
    // chain differs by the usual edge rounding; pin non-negativity and
    // closeness instead.
    net.set_quant_chain(false);
    let flat = net.forward(&x, false).expect("per-layer forward");
    let max_abs = flat.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let tol = (0.05 * max_abs).max(0.02);
    for (i, (&a, &b)) in fused.data().iter().zip(flat.data()).enumerate() {
        assert!((a - b).abs() <= tol, "out[{i}]: fused {a} vs flat {b}");
    }
}

/// Builds a conv→relu→pool→conv→relu→flatten→fc stack with recorded
/// per-layer max absolute weight-row sums (the error-amplification
/// factors of the analytic bound).
#[allow(clippy::too_many_arguments)]
fn stack(
    seed: u64,
    groups: usize,
    cpg: usize,
    opg: usize,
    h: usize,
    w: usize,
    grouped: bool,
    pool: bool,
) -> (Network, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let c_in = groups * cpg;
    let c_mid = groups * opg;
    let conv1 = Conv2d::new(
        "c1",
        Conv2dConfig {
            in_channels: c_in,
            out_channels: c_mid,
            kernel: 3,
            stride: 1,
            padding: 1,
            conv_groups: 1,
            prune_groups: groups,
        },
        &mut rng,
    )
    .expect("conv1 cfg");
    let conv2 = Conv2d::new(
        "c2",
        Conv2dConfig {
            in_channels: c_mid,
            out_channels: c_mid,
            kernel: 3,
            stride: 1,
            padding: 1,
            conv_groups: if grouped { groups } else { 1 },
            prune_groups: groups,
        },
        &mut rng,
    )
    .expect("conv2 cfg");
    let (fh, fw) = if pool { (h / 2, w / 2) } else { (h, w) };
    let fc = Linear::new("fc", c_mid * fh * fw, 5, groups, &mut rng).expect("fc cfg");
    let rowsum = |w: &[f32], cols: usize| -> f32 {
        w.chunks(cols)
            .map(|row| row.iter().map(|v| v.abs()).sum::<f32>())
            .fold(0.0f32, f32::max)
    };
    let k1 = conv1.config().in_channels / conv1.config().conv_groups * 9;
    let k2 = conv2.config().in_channels / conv2.config().conv_groups * 9;
    let sums = vec![
        rowsum(conv1.weights(), k1),
        rowsum(conv2.weights(), k2),
        rowsum(fc.weights(), fc.in_features()),
    ];
    let mut layers: Vec<Box<dyn Layer>> = vec![Box::new(conv1), Box::new(Relu::new("r1"))];
    if pool {
        layers.push(Box::new(MaxPool2d::new("p1", 2)));
    }
    layers.push(Box::new(conv2));
    layers.push(Box::new(Relu::new("r2")));
    layers.push(Box::new(Flatten::new("fl")));
    layers.push(Box::new(fc));
    let net = Network::new(layers, groups, vec![c_in, h, w]).expect("stack builds");
    (net, sums)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chained output pinned against the per-layer f32-round-trip
    /// QuantI8 path within an analytic tolerance, across random
    /// conv/linear/pool stacks, widths and frozen scales: each chain
    /// edge contributes at most one grid step of its scale (the fused
    /// multiplier's float rounding), amplified by the absolute
    /// weight-row sums of everything downstream.
    #[test]
    fn chained_stack_matches_per_layer_roundtrip(
        seed in 0u64..10_000,
        groups in 1usize..=4,
        cpg in 1usize..=2,
        opg in 1usize..=2,
        h in 4usize..=6,
        w in 4usize..=6,
        grouped in proptest::bool::ANY,
        pool in proptest::bool::ANY,
        batch in 1usize..=3,
        active_pick in 0usize..100,
    ) {
        let (mut net, rowsums) = stack(seed, groups, cpg, opg, h, w, grouped, pool);
        net.set_backend(Backend::QuantI8);
        let c_in = groups * cpg;
        let cal: Vec<Tensor> = (0..2)
            .map(|i| Tensor::random(&[2, c_in, h, w], &mut StdRng::seed_from_u64(seed ^ (40 + i))))
            .collect();
        let report = net.calibrate(&cal).expect("calibration runs");
        // A dense (conv_groups = 1) second conv expects the full input
        // channel set, so width scaling below G only composes with the
        // grouped form — same constraint as the reference arch.
        let active = if grouped { active_pick % groups + 1 } else { groups };
        net.set_active_groups(active).expect("valid width");
        prop_assume!(net.plan_quant_chain().engaged());

        let x = Tensor::random(&[batch, c_in, h, w], &mut StdRng::seed_from_u64(seed ^ 0x5b));
        let chained = net.forward(&x, false).expect("chained forward");
        net.set_quant_chain(false);
        let roundtrip = net.forward(&x, false).expect("per-layer forward");

        // Edge scales: the frozen input scales of conv2 ("c2") and fc.
        let scale_of = |name: &str| {
            report
                .iter()
                .find(|r| r.layer == name)
                .map(|r| r.scale)
                .expect("layer in report")
        };
        let (s2, sfc) = (scale_of("c2"), scale_of("fc"));
        // One grid step per edge, amplified by everything downstream;
        // 1.5 margin for the row-sum proxy (f32 weights stand in for
        // their quantised panels) plus float slack.
        let tol = 1.5 * (s2 * rowsums[1] * rowsums[2] + sfc * rowsums[2]) + 1e-3;
        for (i, (&a, &b)) in chained.data().iter().zip(roundtrip.data()).enumerate() {
            prop_assert!(
                (a - b).abs() <= tol,
                "logit[{i}]: chained {a} vs round-trip {b}, tol {tol} \
                 (groups {groups}, active {active}, pool {pool}, grouped {grouped})"
            );
        }
    }
}
