//! Property tests pinning the GEMM backend to the reference backend:
//! on random shapes, strides, paddings, group structures and widths,
//! `Backend::Gemm` and `Backend::Reference` must agree to within 1e-4
//! on forward outputs, input gradients and post-step weights, and
//! frozen groups must stay bit-identical through a training step.
//!
//! The int8 path gets the same treatment with an analytic bound:
//! `Backend::QuantI8` forward must match the quant-simulated `f32`
//! forward (int8-grid weights, `f32` arithmetic) within a tolerance
//! *derived from the quantisation scales* — see
//! [`quant_tolerance`].

use eml_nn::arch::{build_group_cnn, CnnConfig};
use eml_nn::conv::{Conv2d, Conv2dConfig};
use eml_nn::gemm::{gemm, gemm_with, Backend, Epilogue, Lhs, MatRef, PackedA, PackedB, Rhs, Trans};
use eml_nn::layer::Layer;
use eml_nn::linear::Linear;
use eml_nn::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f32 = 1e-4;

/// Per-output-element error bound of the int8 path against the
/// quant-simulated `f32` reference, from first principles: with weight
/// scale `sw`, activation scale `sx`, reduction depth `k`, `Σ|w|` over
/// the output's weight row and `xmax` the activation range,
///
/// ```text
/// |Δy| ≤ sw/2 · k · xmax   (weight re-quantisation, ≤ half a step)
///      + sx/2 · Σ|w|       (activation quantisation, ≤ half a step)
///      + k · sw·sx/4       (cross term)
/// ```
///
/// plus a small float-reassociation slack.
fn quant_tolerance(sw: f32, sx: f32, k: usize, w_rowsum_abs: f32, xmax: f32) -> f32 {
    0.5 * sw * k as f32 * xmax + 0.5 * sx * w_rowsum_abs + 0.25 * k as f32 * sw * sx + 1e-4
}

fn assert_close(a: &Tensor, b: &Tensor, what: &str) -> Result<(), String> {
    if a.shape() != b.shape() {
        return Err(format!("{what}: shapes {:?} vs {:?}", a.shape(), b.shape()));
    }
    for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
        if (x - y).abs() > TOL {
            return Err(format!("{what}[{i}]: reference {x} vs gemm {y}"));
        }
    }
    Ok(())
}

/// The batch-parallel GEMM path (band splitting + per-band scratch
/// reuse) agrees with the reference backend on the full default
/// network. Batch 16 on `CnnConfig::default()` pushes every conv layer
/// past the parallel work threshold, which the small proptest shapes
/// below never reach.
#[test]
fn large_batch_parallel_path_matches_reference() {
    let batch = 16;
    let x = Tensor::random(&[batch, 3, 16, 16], &mut StdRng::seed_from_u64(11));
    let mut outputs = Vec::new();
    for backend in [Backend::Reference, Backend::Gemm] {
        let mut net =
            build_group_cnn(CnnConfig::default(), &mut StdRng::seed_from_u64(5)).expect("arch");
        net.set_backend(backend);
        let y = net.forward(&x, true).expect("forward");
        // Drive backward through the public training path too.
        let labels: Vec<usize> = (0..batch).map(|i| i % 10).collect();
        net.zero_grads();
        net.train_batch(&x, &labels).expect("train batch");
        net.sgd_step(0.05, 0.9);
        let y2 = net.forward(&x, false).expect("forward after step");
        outputs.push((y, y2));
    }
    let (ref_out, gemm_out) = (&outputs[0], &outputs[1]);
    for (a, b, what) in [
        (&ref_out.0, &gemm_out.0, "batch-16 forward"),
        (
            &ref_out.1,
            &gemm_out.1,
            "batch-16 forward after training step",
        ),
    ] {
        assert_close(a, b, what).unwrap_or_else(|e| panic!("{e}"));
    }
}

/// Two identically-initialised copies of a conv layer, one per backend.
fn conv_pair(cfg: Conv2dConfig, seed: u64) -> (Conv2d, Conv2d) {
    let mut reference = Conv2d::new("c", cfg, &mut StdRng::seed_from_u64(seed)).expect("cfg");
    let mut gemm = Conv2d::new("c", cfg, &mut StdRng::seed_from_u64(seed)).expect("cfg");
    reference.set_backend(Backend::Reference);
    gemm.set_backend(Backend::Gemm);
    (reference, gemm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fused GEMM epilogue (bias add, optional ReLU, folded into
    /// the last-slice write-back) matches the separate
    /// bias-then-activation passes to well under 1e-4 on random shapes
    /// (including k past one K-slice), bias orientations, transposes
    /// and pre-packed operands.
    #[test]
    fn fused_epilogue_matches_separate_passes(
        seed in 0u64..10_000,
        m in 1usize..24,
        n in 1usize..40,
        k in 1usize..300,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
        pack_a in proptest::bool::ANY,
        pack_b in proptest::bool::ANY,
        bias_kind in 0usize..3,
        relu in proptest::bool::ANY,
    ) {
        let a_data = Tensor::random(&[m, k], &mut StdRng::seed_from_u64(seed));
        let b_data = Tensor::random(&[k, n], &mut StdRng::seed_from_u64(seed ^ 0x11));
        let bias = Tensor::random(&[m.max(n)], &mut StdRng::seed_from_u64(seed ^ 0x22));
        let a = if ta {
            MatRef { data: a_data.data(), ld: m, trans: Trans::T }
        } else {
            MatRef::new(a_data.data(), k)
        };
        // A transposed view needs column-major storage; reusing the
        // same buffer just reinterprets it, which is fine for a
        // property test (the values are random either way).
        let b = if tb {
            MatRef { data: b_data.data(), ld: k, trans: Trans::T }
        } else {
            MatRef::new(b_data.data(), n)
        };

        // Plain product, then the separate passes.
        let mut expect = vec![0.0f32; m * n];
        gemm(m, n, k, a, b, 0.0, &mut expect, n, false);
        for (i, row) in expect.chunks_mut(n).enumerate() {
            match bias_kind {
                1 => row.iter_mut().for_each(|v| *v += bias.data()[i]),
                2 => row.iter_mut().zip(bias.data()).for_each(|(v, &bv)| *v += bv),
                _ => {}
            }
            if relu {
                row.iter_mut().for_each(|v| *v = v.max(0.0));
            }
        }

        let mut ep = match bias_kind {
            1 => Epilogue::bias_row(&bias.data()[..m]),
            2 => Epilogue::bias_col(&bias.data()[..n]),
            _ => Epilogue::none(),
        };
        if relu {
            ep = ep.with_relu();
        }
        let packed_a_op = PackedA::pack(a, m, k);
        let packed_b_op = PackedB::pack(b, k, n);
        let lhs = if pack_a { Lhs::Packed(packed_a_op.as_ref()) } else { Lhs::Mat(a) };
        let rhs = if pack_b { Rhs::Packed(packed_b_op.as_ref()) } else { Rhs::Mat(b) };
        let mut fused = vec![0.0f32; m * n];
        gemm_with(m, n, k, lhs, rhs, 0.0, &mut fused, n, false, ep);
        for (i, (&got, &want)) in fused.iter().zip(&expect).enumerate() {
            prop_assert!(
                (got - want).abs() <= TOL,
                "m{m} n{n} k{k} bias{bias_kind} relu{relu} c[{i}]: fused {got} vs separate {want}"
            );
        }
    }

    /// Conv2d: forward, input gradient and one SGD step agree across
    /// backends for random geometry, both group structures and every
    /// active width.
    #[test]
    fn conv_backends_agree(
        seed in 0u64..10_000,
        grouped in proptest::bool::ANY,
        groups in 2usize..=4,
        cpg in 1usize..=2,
        opg in 1usize..=2,
        kernel in 1usize..=5,
        stride in 1usize..=2,
        padding in 0usize..=2,
        h in 3usize..=6,
        w in 3usize..=6,
        batch in 1usize..=3,
        active_pick in 0usize..100,
    ) {
        // Keep the padded input at least kernel-sized (out_hw rejects
        // smaller), but deliberately include kernels that overhang the
        // whole row (kernel > w, valid with padding) — a class the
        // lowering once mishandled.
        let kernel = kernel.min(h.min(w) + 2 * padding);
        let cfg = Conv2dConfig {
            in_channels: groups * cpg,
            out_channels: groups * opg,
            kernel,
            stride,
            padding,
            conv_groups: if grouped { groups } else { 1 },
            prune_groups: groups,
        };
        let active = active_pick % groups + 1;
        let (mut reference, mut gemm) = conv_pair(cfg, seed);
        reference.set_active_groups(active).expect("valid width");
        gemm.set_active_groups(active).expect("valid width");

        let c_in = reference.expected_in_channels();
        let x = Tensor::random(&[batch, c_in, h, w], &mut StdRng::seed_from_u64(seed ^ 0xA5));
        let y_ref = reference.forward(&x, true).expect("reference forward");
        let y_gemm = gemm.forward(&x, true).expect("gemm forward");
        assert_close(&y_ref, &y_gemm, "conv forward")?;

        let go = Tensor::random(y_ref.shape(), &mut StdRng::seed_from_u64(seed ^ 0x5A));
        let gx_ref = reference.backward(&go).expect("reference backward");
        let gx_gemm = gemm.backward(&go).expect("gemm backward");
        assert_close(&gx_ref, &gx_gemm, "conv input gradient")?;

        // Weight/bias gradients agree iff the updated layers still
        // produce the same outputs after a step.
        reference.sgd_step(0.1, 0.0);
        gemm.sgd_step(0.1, 0.0);
        for (i, (&a, &b)) in reference.weights().iter().zip(gemm.weights()).enumerate() {
            prop_assert!(
                (a - b).abs() <= TOL,
                "post-step weight {i}: reference {a} vs gemm {b}"
            );
        }
        let y2_ref = reference.forward(&x, false).expect("reference forward");
        let y2_gemm = gemm.forward(&x, false).expect("gemm forward");
        assert_close(&y2_ref, &y2_gemm, "conv forward after step")?;
    }

    /// Linear: forward, input gradient and one SGD step agree across
    /// backends for random sizes and every active width.
    #[test]
    fn linear_backends_agree(
        seed in 0u64..10_000,
        groups in 1usize..=4,
        per_group in 1usize..=3,
        out_features in 1usize..=5,
        batch in 1usize..=4,
        active_pick in 0usize..100,
    ) {
        let in_features = groups * per_group;
        let active = active_pick % groups + 1;
        let mut reference =
            Linear::new("l", in_features, out_features, groups, &mut StdRng::seed_from_u64(seed))
                .expect("cfg");
        let mut gemm =
            Linear::new("l", in_features, out_features, groups, &mut StdRng::seed_from_u64(seed))
                .expect("cfg");
        reference.set_backend(Backend::Reference);
        gemm.set_backend(Backend::Gemm);
        reference.set_active_groups(active).expect("valid width");
        gemm.set_active_groups(active).expect("valid width");

        let f_active = reference.active_in_features();
        let x = Tensor::random(&[batch, f_active], &mut StdRng::seed_from_u64(seed ^ 0xA5));
        let y_ref = reference.forward(&x, true).expect("reference forward");
        let y_gemm = gemm.forward(&x, true).expect("gemm forward");
        assert_close(&y_ref, &y_gemm, "linear forward")?;

        let go = Tensor::random(y_ref.shape(), &mut StdRng::seed_from_u64(seed ^ 0x5A));
        let gx_ref = reference.backward(&go).expect("reference backward");
        let gx_gemm = gemm.backward(&go).expect("gemm backward");
        assert_close(&gx_ref, &gx_gemm, "linear input gradient")?;

        reference.sgd_step(0.1, 0.0);
        gemm.sgd_step(0.1, 0.0);
        let y2_ref = reference.forward(&x, false).expect("reference forward");
        let y2_gemm = gemm.forward(&x, false).expect("gemm forward");
        assert_close(&y2_ref, &y2_gemm, "linear forward after step")?;
    }

    /// `Backend::QuantI8` forward matches the quant-simulated `f32`
    /// reference (master weights snapped to the int8 grid, arithmetic
    /// in `f32`) within the scale-derived bound of [`quant_tolerance`],
    /// across conv geometry, group structure and every active width.
    #[test]
    fn conv_quant_i8_matches_quant_simulated_f32(
        seed in 0u64..10_000,
        grouped in proptest::bool::ANY,
        groups in 2usize..=4,
        cpg in 1usize..=2,
        opg in 1usize..=2,
        kernel in 1usize..=5,
        stride in 1usize..=2,
        padding in 0usize..=2,
        h in 3usize..=6,
        w in 3usize..=6,
        batch in 1usize..=3,
        active_pick in 0usize..100,
    ) {
        let kernel = kernel.min(h.min(w) + 2 * padding);
        let cfg = Conv2dConfig {
            in_channels: groups * cpg,
            out_channels: groups * opg,
            kernel,
            stride,
            padding,
            conv_groups: if grouped { groups } else { 1 },
            prune_groups: groups,
        };
        let active = active_pick % groups + 1;
        let (mut simulated, mut quant) = conv_pair(cfg, seed);
        simulated.set_backend(Backend::Gemm);
        quant.set_backend(Backend::QuantI8);
        // Snap both copies' master weights to the int8 grid: the f32
        // copy then *simulates* int8 weights, the QuantI8 copy
        // re-quantises them (an extra ≤ half-step of error when the
        // active prefix's scale differs from the full-tensor scale).
        simulated.quantize_weights(8);
        quant.quantize_weights(8);
        simulated.set_active_groups(active).expect("valid width");
        quant.set_active_groups(active).expect("valid width");

        let c_in = simulated.expected_in_channels();
        let x = Tensor::random(&[batch, c_in, h, w], &mut StdRng::seed_from_u64(seed ^ 0xA5));
        let y_sim = simulated.forward(&x, false).expect("simulated forward");
        let y_q = quant.forward(&x, false).expect("quant forward");
        prop_assert_eq!(y_sim.shape(), y_q.shape());

        // Scales exactly as the layer derives them.
        let icg = if grouped { cpg } else { groups * cpg };
        let kdim = icg * kernel * kernel;
        let active_w = quant.active_out_channels() * kdim;
        let sw = quant.weights()[..active_w]
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            / 127.0;
        let xmax = x.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let sx = xmax / 127.0;
        let (c_out, ohw) = (y_sim.shape()[1], y_sim.shape()[2] * y_sim.shape()[3]);
        for (i, (&a, &b)) in y_sim.data().iter().zip(y_q.data()).enumerate() {
            let oc = (i / ohw) % c_out;
            let rowsum: f32 = quant.weights()[oc * kdim..][..kdim]
                .iter()
                .map(|v| v.abs())
                .sum();
            let tol = quant_tolerance(sw, sx, kdim, rowsum, xmax);
            prop_assert!(
                (a - b).abs() <= tol,
                "y[{i}] (oc {oc}): simulated {a} vs int8 {b}, tol {tol}"
            );
        }
    }

    /// Linear: same scale-derived pin of `Backend::QuantI8` against the
    /// quant-simulated `f32` reference across sizes and widths.
    #[test]
    fn linear_quant_i8_matches_quant_simulated_f32(
        seed in 0u64..10_000,
        groups in 1usize..=4,
        per_group in 1usize..=3,
        out_features in 1usize..=5,
        batch in 1usize..=4,
        active_pick in 0usize..100,
    ) {
        let in_features = groups * per_group;
        let active = active_pick % groups + 1;
        let mut simulated =
            Linear::new("l", in_features, out_features, groups, &mut StdRng::seed_from_u64(seed))
                .expect("cfg");
        let mut quant =
            Linear::new("l", in_features, out_features, groups, &mut StdRng::seed_from_u64(seed))
                .expect("cfg");
        simulated.set_backend(Backend::Gemm);
        quant.set_backend(Backend::QuantI8);
        simulated.quantize_weights(8);
        quant.quantize_weights(8);
        simulated.set_active_groups(active).expect("valid width");
        quant.set_active_groups(active).expect("valid width");

        let f_active = simulated.active_in_features();
        let x = Tensor::random(&[batch, f_active], &mut StdRng::seed_from_u64(seed ^ 0xA5));
        let y_sim = simulated.forward(&x, false).expect("simulated forward");
        let y_q = quant.forward(&x, false).expect("quant forward");

        let sw = (0..out_features)
            .flat_map(|of| &quant.weights()[of * in_features..][..f_active])
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            / 127.0;
        let xmax = x.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let sx = xmax / 127.0;
        for (i, (&a, &b)) in y_sim.data().iter().zip(y_q.data()).enumerate() {
            let of = i % out_features;
            let rowsum: f32 = quant.weights()[of * in_features..][..f_active]
                .iter()
                .map(|v| v.abs())
                .sum();
            let tol = quant_tolerance(sw, sx, f_active, rowsum, xmax);
            prop_assert!(
                (a - b).abs() <= tol,
                "y[{i}] (of {of}): simulated {a} vs int8 {b}, tol {tol}"
            );
        }
    }

    /// Frozen groups stay bit-identical through a GEMM-backend training
    /// step (the paper's switch-without-retraining property must not
    /// depend on the compute backend).
    #[test]
    fn gemm_training_step_keeps_frozen_groups_bit_identical(
        seed in 0u64..10_000,
        grouped in proptest::bool::ANY,
        groups in 2usize..=4,
        train_from_pick in 0usize..100,
    ) {
        let cfg = Conv2dConfig {
            in_channels: groups * 2,
            out_channels: groups * 2,
            kernel: 3,
            stride: 1,
            padding: 1,
            conv_groups: if grouped { groups } else { 1 },
            prune_groups: groups,
        };
        let mut conv = Conv2d::new("c", cfg, &mut StdRng::seed_from_u64(seed)).expect("cfg");
        // Freeze groups 0..train_from, train train_from..groups.
        let train_from = train_from_pick % groups;
        conv.set_trainable_groups(train_from..groups);
        let before = conv.weights().to_vec();

        let c_in = conv.expected_in_channels();
        let x = Tensor::random(&[2, c_in, 5, 5], &mut StdRng::seed_from_u64(seed ^ 0x77));
        let y = conv.forward(&x, true).expect("forward");
        let go = Tensor::random(y.shape(), &mut StdRng::seed_from_u64(seed ^ 0x88));
        conv.backward(&go).expect("backward");
        conv.sgd_step(0.05, 0.9);

        let weights_per_oc = cfg.in_channels / cfg.conv_groups * cfg.kernel * cfg.kernel;
        let opg = cfg.out_channels / groups;
        for (wi, (&now, &was)) in conv.weights().iter().zip(&before).enumerate() {
            let group = wi / weights_per_oc / opg;
            if group < train_from {
                // Bit-identical: compare representations, not values.
                prop_assert!(
                    now.to_bits() == was.to_bits(),
                    "frozen group {group} weight {wi} changed: {was} -> {now}"
                );
            }
        }
    }
}
