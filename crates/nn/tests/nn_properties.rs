//! Property-based tests over the neural-network substrate: gradient
//! correctness on random configurations, dataset determinism, quantization
//! grids and the width-switching invariant.

use eml_nn::arch::{build_group_cnn, CnnConfig};
use eml_nn::conv::{Conv2d, Conv2dConfig};
use eml_nn::dataset::{DatasetConfig, SyntheticVision};
use eml_nn::layer::Layer;
use eml_nn::linear::Linear;
use eml_nn::loss::{cross_entropy, softmax};
use eml_nn::quant::quantize_network;
use eml_nn::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
    )
    .expect("shape matches")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Convolution weight gradients match finite differences for random
    /// shapes, strides, paddings and group structures.
    #[test]
    fn conv_gradients_match_finite_differences(
        seed in 0u64..1000,
        grouped in proptest::bool::ANY,
        kernel in 1usize..=3,
        padding in 0usize..=1,
        stride in 1usize..=2,
    ) {
        let groups = 2;
        let cfg = Conv2dConfig {
            in_channels: 2,
            out_channels: 4,
            kernel,
            stride,
            padding,
            conv_groups: if grouped { groups } else { 1 },
            prune_groups: groups,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut conv = Conv2d::new("c", cfg, &mut rng).expect("valid cfg");
        let x = random_tensor(&[1, 2, 5, 5], seed ^ 0xABCD);
        let y = conv.forward(&x, true).expect("forward");
        let grad_out = Tensor::full(y.shape(), 1.0);
        let gx = conv.backward(&grad_out).expect("backward");

        // Numeric input-gradient check on a few positions.
        let eps = 1e-2f32;
        for &xi in &[0usize, 13, 24, 49] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let lp = conv.forward(&xp, false).expect("fwd").sum();
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let lm = conv.forward(&xm, false).expect("fwd").sum();
            let numeric = (lp - lm) / (2.0 * eps);
            prop_assert!(
                (numeric - gx.data()[xi]).abs() < 5e-2,
                "input {xi}: numeric {numeric} vs analytic {}",
                gx.data()[xi]
            );
        }
    }

    /// Linear layers: output is linear in the input (additivity check on
    /// random widths).
    #[test]
    fn linear_layer_is_linear(seed in 0u64..1000, out_features in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut l = Linear::new("l", 8, out_features, 4, &mut rng).expect("valid");
        let a = random_tensor(&[1, 8], seed ^ 1);
        let b = random_tensor(&[1, 8], seed ^ 2);
        let sum = Tensor::from_vec(
            &[1, 8],
            a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect(),
        )
        .expect("shape");
        let ya = l.forward(&a, false).expect("fwd");
        let yb = l.forward(&b, false).expect("fwd");
        let ys = l.forward(&sum, false).expect("fwd");
        // f(a) + f(b) - f(0) = f(a + b) for affine f.
        let zero = Tensor::zeros(&[1, 8]);
        let y0 = l.forward(&zero, false).expect("fwd");
        for i in 0..out_features {
            let lhs = ya.data()[i] + yb.data()[i] - y0.data()[i];
            prop_assert!((lhs - ys.data()[i]).abs() < 1e-4);
        }
    }

    /// Softmax + cross-entropy: loss is non-negative and gradient rows sum
    /// to zero for arbitrary logits.
    #[test]
    fn loss_invariants(seed in 0u64..5000, classes in 2usize..8, n in 1usize..5) {
        let logits = random_tensor(&[n, classes], seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 7);
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..classes)).collect();
        let out = cross_entropy(&logits, &labels).expect("valid");
        prop_assert!(out.loss >= 0.0);
        for ni in 0..n {
            let row_sum: f32 = (0..classes).map(|k| out.grad_logits.at(&[ni, k])).sum();
            prop_assert!(row_sum.abs() < 1e-5, "gradient rows must sum to zero");
        }
        let probs = softmax(&logits).expect("valid");
        prop_assert!(probs.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Dataset generation is a pure function of its configuration.
    #[test]
    fn dataset_determinism(seed in 0u64..200) {
        let cfg = DatasetConfig { seed, ..DatasetConfig::tiny() };
        let a = SyntheticVision::generate(cfg.clone());
        let b = SyntheticVision::generate(cfg);
        prop_assert_eq!(a.train().len(), b.train().len());
        for (x, y) in a.train().iter().zip(b.train()) {
            prop_assert_eq!(x.label, y.label);
            prop_assert_eq!(x.image.data(), y.image.data());
        }
    }

    /// The width-switch invariant holds for arbitrary untrained networks:
    /// visiting other widths never changes full-width outputs.
    #[test]
    fn width_switching_is_pure(seed in 0u64..500, base_width in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = build_group_cnn(
            CnnConfig {
                input: (3, 8, 8),
                classes: 4,
                groups: 4,
                base_width: base_width * 4,
            },
            &mut rng,
        )
        .expect("valid");
        let x = random_tensor(&[1, 3, 8, 8], seed ^ 99);
        let before = net.forward(&x, false).expect("fwd");
        for g in [1, 3, 2, 4, 1, 4] {
            net.set_active_groups(g).expect("valid");
            let _ = net.forward(&x, false).expect("fwd");
        }
        net.set_active_groups(4).expect("valid");
        let after = net.forward(&x, false).expect("fwd");
        prop_assert_eq!(before.data(), after.data());
    }

    /// Quantization always produces weights on the advertised grid and is
    /// idempotent at the network level.
    #[test]
    fn quantization_grid_property(seed in 0u64..300, bits in 2u32..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = build_group_cnn(
            CnnConfig { input: (3, 8, 8), classes: 4, groups: 2, base_width: 8 },
            &mut rng,
        )
        .expect("valid");
        let x = random_tensor(&[1, 3, 8, 8], seed ^ 3);
        quantize_network(&mut net, bits).expect("valid bits");
        let once = net.forward(&x, false).expect("fwd");
        quantize_network(&mut net, bits).expect("valid bits");
        let twice = net.forward(&x, false).expect("fwd");
        prop_assert_eq!(once.data(), twice.data(), "idempotent quantization");
    }

    /// Cost model consistency: MACs at width g are exactly g/G of the full
    /// cost for the reference architecture, for arbitrary widths.
    #[test]
    fn cost_fraction_property(seed in 0u64..100, groups in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base_width = groups * 4;
        let mut net = build_group_cnn(
            CnnConfig { input: (3, 8, 8), classes: 4, groups, base_width },
            &mut rng,
        )
        .expect("valid");
        let full = net.cost_at(groups).expect("valid").macs;
        for g in 1..=groups {
            let c = net.cost_at(g).expect("valid").macs;
            let frac = c / full;
            let expect = g as f64 / groups as f64;
            prop_assert!((frac - expect).abs() < 0.02, "width {g}/{groups}: {frac}");
        }
    }
}
