//! Sequential networks of [`Layer`]s with shared width control.
//!
//! [`Network`] owns the layer stack and propagates the dynamic-DNN group
//! state (active width, trainable range) to every layer, so the rest of the
//! system can treat "the model" as a single object with a width knob — the
//! *application knob* of the paper's Fig 5.

use std::fmt;
use std::ops::Range;

use crate::error::{NnError, Result};
use crate::gemm::Backend;
use crate::layer::{ChainSupport, Layer, LayerCost};
use crate::loss::{cross_entropy, LossOutput};
use crate::quant::{ActScaleReport, QAct};
use crate::tensor::Tensor;

/// Aggregate cost of a forward pass at some width.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkCost {
    /// Total multiply-accumulates per sample.
    pub macs: f64,
    /// Parameters actually used at this width.
    pub params: usize,
    /// Parameters stored in memory regardless of width (single-model
    /// footprint).
    pub params_total: usize,
    /// Per-layer breakdown `(layer name, cost)`.
    pub per_layer: Vec<(String, LayerCost)>,
}

/// How one layer executes inside a chained-int8 forward pass (the
/// resolved form of [`ChainSupport`], computed by
/// [`Network::plan_quant_chain`]).
#[derive(Debug, Clone, Copy, PartialEq)]
enum ChainMode {
    /// Run the ordinary [`Layer::forward`] on an `f32` activation
    /// (outside any chain segment, or a quantised layer falling back
    /// to its per-layer round-trip path).
    F32,
    /// A quantised layer inside a chain: emit int8 at `out_scale`
    /// (the next quantised layer's frozen input scale) or `f32` when
    /// `None` (tail of the chain); ReLU fused when `fuse_relu`.
    Quant {
        out_scale: Option<f32>,
        fuse_relu: bool,
    },
    /// An order-preserving layer passing a quantised activation
    /// through on its int8 fast path.
    PassI8,
    /// A ReLU folded into the preceding quantised layer's epilogue:
    /// skipped entirely.
    FusedRelu,
}

/// Per-forward sample-block budget of the chained path, in activation
/// *elements* (~128 KiB as i16): a chained batch is processed in blocks
/// of `budget / peak_per_sample_activation` samples so the whole
/// inter-layer working set of a block stays cache-resident. Measured on
/// the bench CNN (serial): unblocked batch-32 loses its batching gain
/// at the widest width (per-sample ≈ batch-1), while 4–8-sample blocks
/// hold a 5–10% per-sample win at every width.
const CHAIN_BLOCK_ELEMS: usize = 1 << 16;

/// The resolved chained-int8 execution plan of a network (see
/// [`Network::plan_quant_chain`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantChainPlan {
    modes: Vec<ChainMode>,
    edges: usize,
    block: usize,
}

impl QuantChainPlan {
    /// Whether any chain segment engaged — if not, forwards take the
    /// ordinary per-layer path.
    pub fn engaged(&self) -> bool {
        self.edges > 0
    }

    /// Cache-blocking granularity: chained batches are executed in
    /// blocks of at most this many samples (widened to the worker
    /// count at run time so blocking never starves band parallelism).
    pub fn block(&self) -> usize {
        self.block
    }

    /// Number of quantised-to-quantised edges the plan resolved (each
    /// one is a dequantise/requantise round trip eliminated).
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// Number of ReLU layers folded into a predecessor's epilogue.
    pub fn fused_relus(&self) -> usize {
        self.modes
            .iter()
            .filter(|m| matches!(m, ChainMode::FusedRelu))
            .count()
    }
}

/// A feed-forward stack of layers ending in logits.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    groups: usize,
    active: usize,
    input_shape: Vec<usize>,
    /// The backend last pushed via [`Network::set_backend`] (layers
    /// start on [`Backend::Gemm`], the layer default).
    backend: Backend,
    /// Cached chained-int8 plan; `None` until planned and after every
    /// invalidation (see [`Network::invalidate_chain_plan`]).
    chain_plan: Option<QuantChainPlan>,
    /// Measurement/debug escape: `false` forces the per-layer
    /// round-trip path even when a chain could engage.
    chain_enabled: bool,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Network({} layers, {}/{} groups active, input {:?})",
            self.layers.len(),
            self.active,
            self.groups,
            self.input_shape
        )
    }
}

impl Network {
    /// Builds a network from layers.
    ///
    /// `groups` is the dynamic-DNN partition count `G`; `input_shape` is the
    /// per-sample input shape (no batch axis), used for cost computation and
    /// input validation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if no layers are given or
    /// `groups == 0`.
    pub fn new(
        layers: Vec<Box<dyn Layer>>,
        groups: usize,
        input_shape: Vec<usize>,
    ) -> Result<Self> {
        if layers.is_empty() {
            return Err(NnError::InvalidConfig {
                reason: "network has no layers".into(),
            });
        }
        if groups == 0 {
            return Err(NnError::InvalidConfig {
                reason: "groups must be positive".into(),
            });
        }
        Ok(Self {
            layers,
            groups,
            active: groups,
            input_shape,
            backend: Backend::default(),
            chain_plan: None,
            chain_enabled: true,
        })
    }

    /// The group partition count `G`.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Currently active group count `g ∈ 1..=G`.
    pub fn active_groups(&self) -> usize {
        self.active
    }

    /// Per-sample input shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Sets the active width on every layer (the runtime knob of Fig 3c).
    ///
    /// Switching width never touches parameters: it is free of retraining
    /// by construction.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidGroup`] if `active` is zero or greater
    /// than `G`.
    pub fn set_active_groups(&mut self, active: usize) -> Result<()> {
        if active == 0 || active > self.groups {
            return Err(NnError::InvalidGroup {
                reason: format!("active groups {active} not in 1..={}", self.groups),
            });
        }
        for layer in &mut self.layers {
            layer.set_active_groups(active)?;
        }
        self.active = active;
        // Per-prefix weight scales (and therefore every requantisation
        // multiplier) change with the active group set — the cached
        // chain plan must be re-resolved.
        self.invalidate_chain_plan();
        Ok(())
    }

    /// Sets the trainable group range on every layer (the freeze schedule
    /// of Fig 3b).
    pub fn set_trainable_groups(&mut self, range: Range<usize>) {
        for layer in &mut self.layers {
            layer.set_trainable_groups(range.clone());
        }
    }

    /// Selects the compute backend on every layer (see
    /// [`crate::gemm::Backend`]). For `Reference`/`Gemm` this is purely
    /// an implementation switch (outputs equal to within float
    /// re-association, pinned by the equivalence property tests);
    /// `QuantI8` changes the numerics — forward passes run real int8
    /// arithmetic, trading a small, measurable accuracy cost for
    /// latency.
    pub fn set_backend(&mut self, backend: crate::gemm::Backend) {
        for layer in &mut self.layers {
            layer.set_backend(backend);
        }
        self.backend = backend;
        self.invalidate_chain_plan();
    }

    /// The backend last set via [`Network::set_backend`] (layers start
    /// on [`Backend::Gemm`]).
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Sets the data-precision knob (the second application knob of the
    /// paper's Fig 5, next to width): [`crate::quant::Precision::F32`]
    /// runs the `f32` GEMM backend,
    /// [`crate::quant::Precision::Int8`] the real int8 kernel path.
    ///
    /// With unfrozen activation observers (the default) the int8 scale
    /// is *dynamic*: each batch quantises against its own max-abs, so a
    /// sample's output depends on which other samples share its batch —
    /// batch-1 and batch-N inference of the same input can differ
    /// slightly, and accuracy numbers taken at different eval batch
    /// sizes are not directly comparable. For reproducible serving, run
    /// representative data through the network and then
    /// [`Self::freeze_act_scales`] to pin static per-layer scales.
    pub fn set_precision(&mut self, precision: crate::quant::Precision) {
        self.set_backend(precision.backend());
    }

    /// Freezes (or unfreezes) every layer's int8 activation scale at
    /// the range observed so far — run representative data through the
    /// network first (at any precision the layers observe, i.e.
    /// `QuantI8`), then freeze for batch-to-batch consistent
    /// quantisation. See [`crate::quant::ActObserver`].
    pub fn freeze_act_scales(&mut self, frozen: bool) {
        for layer in &mut self.layers {
            layer.freeze_act_scale(frozen);
        }
        // Freezing is when per-edge scales become resolvable (and
        // unfreezing is when they stop being): re-plan either way.
        self.invalidate_chain_plan();
    }

    /// Drops the cached chained-int8 plan; the next inference forward
    /// re-plans lazily. Called on every mutation that can change chain
    /// structure or per-edge scales: backend/precision switches, width
    /// switches (per-prefix weight scales), observer freezes and
    /// direct layer access.
    fn invalidate_chain_plan(&mut self) {
        self.chain_plan = None;
    }

    /// Enables or disables chained-int8 execution (enabled by
    /// default). With chaining disabled, a frozen `QuantI8` network
    /// runs the per-layer round-trip path — each layer dequantises to
    /// `f32` and the next re-quantises — which is the measurement
    /// baseline the chained path is benchmarked against, and the
    /// reference the chain equivalence tests pin against.
    pub fn set_quant_chain(&mut self, enabled: bool) {
        self.chain_enabled = enabled;
        self.invalidate_chain_plan();
    }

    /// Resolves the chained-int8 execution plan from the layers'
    /// current [`ChainSupport`] — the planning pass of the quantised
    /// pipeline (see the chaining section of [`crate::quant`]'s module
    /// docs).
    ///
    /// For every maximal run `Q₀ T… Q₁ T… Q₂ …` of frozen quantised
    /// layers `Qᵢ` separated only by order-preserving transparent
    /// layers `T`, each `Qᵢ` (except the last) is scheduled to emit
    /// int8 directly on `Qᵢ₊₁`'s frozen input grid, a ReLU immediately
    /// following a `Qᵢ` is folded into its epilogue, the remaining
    /// transparent layers take their int8 fast paths, and the last
    /// quantised layer of the run dequantises to `f32`. Layers outside
    /// any run — including quantised layers with dynamic (unfrozen)
    /// scales — keep the ordinary per-layer path, so a single unfrozen
    /// mid-network layer splits the chain around itself without
    /// changing its own dynamic-scale semantics.
    ///
    /// The plan is cached; inference forwards re-plan lazily after any
    /// invalidating mutation (see [`Network::set_active_groups`] et
    /// al.). Chaining never engages for training forwards.
    pub fn plan_quant_chain(&mut self) -> &QuantChainPlan {
        let caps: Vec<ChainSupport> = if self.chain_enabled {
            self.layers.iter().map(|l| l.chain_support()).collect()
        } else {
            vec![ChainSupport::Breaks; self.layers.len()]
        };
        let n = caps.len();
        let mut modes = vec![ChainMode::F32; n];
        let mut edges = 0;
        let mut receives_i8 = false;
        let mut i = 0;
        while i < n {
            let ChainSupport::Quantised { .. } = caps[i] else {
                receives_i8 = false;
                i += 1;
                continue;
            };
            // Scan ahead through order-preserving layers for the next
            // frozen quantised layer — the edge target whose input
            // scale this layer would emit on.
            let mut j = i + 1;
            while j < n
                && matches!(
                    caps[j],
                    ChainSupport::Transparent | ChainSupport::TransparentRelu
                )
            {
                j += 1;
            }
            let next_scale = match caps.get(j) {
                Some(&ChainSupport::Quantised { in_scale }) => Some(in_scale),
                _ => None,
            };
            if next_scale.is_some() || receives_i8 {
                // A directly-following ReLU folds into this layer's
                // epilogue either way: `max(0)` before the saturating
                // round on an i8 edge, before the store on the f32
                // tail (bit-identical to the separate pass).
                let fuse_relu = matches!(caps.get(i + 1), Some(ChainSupport::TransparentRelu));
                modes[i] = ChainMode::Quant {
                    out_scale: next_scale,
                    fuse_relu,
                };
                if fuse_relu {
                    modes[i + 1] = ChainMode::FusedRelu;
                }
                if next_scale.is_some() {
                    edges += 1;
                    for mode in &mut modes[(i + 1 + usize::from(fuse_relu))..j] {
                        *mode = ChainMode::PassI8;
                    }
                }
            }
            receives_i8 = next_scale.is_some();
            i = j;
        }
        // Sample-block size from the peak per-sample activation
        // footprint (inputs and every layer output), so one block's
        // inter-layer traffic stays cache-resident. Cost-model failure
        // (inconsistent architecture) just disables blocking.
        let block = if edges > 0 {
            let peak = self.cost().ok().map_or(0, |c| {
                c.per_layer
                    .iter()
                    .map(|(_, l)| l.out_shape.iter().product::<usize>())
                    .chain(std::iter::once(self.input_shape.iter().product()))
                    .max()
                    .unwrap_or(0)
            });
            match peak {
                0 => usize::MAX,
                p => (CHAIN_BLOCK_ELEMS / p).max(1),
            }
        } else {
            usize::MAX
        };
        self.chain_plan = Some(QuantChainPlan {
            modes,
            edges,
            block,
        });
        self.chain_plan.as_ref().expect("just planned")
    }

    /// Runs the network forward. `input` is `[N, …input_shape]` except that
    /// channel-partitioned inputs are *not* width-scaled (the image always
    /// has 3 channels); width applies to internal layers.
    ///
    /// Inference forwards (`train = false`) execute the chained-int8
    /// plan when one engages — see [`Network::plan_quant_chain`];
    /// training forwards always take the per-layer path (backward
    /// needs the `f32` caches).
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        if !train {
            if self.chain_plan.is_none() {
                self.plan_quant_chain();
            }
            let plan = self.chain_plan.as_ref().expect("planned above");
            if plan.engaged() {
                // Cache-blocked execution: run the batch in sample
                // blocks sized by the plan, widened to the worker
                // count so blocking never shrinks band parallelism.
                // Frozen scales make chained inference per-sample
                // independent, so the split is bit-invisible.
                let block = plan.block.max(crate::workers::worker_count());
                let n = input.shape()[0];
                if n > block {
                    return self.forward_chained_blocked(input, block);
                }
                return self.forward_chained(input);
            }
        }
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train)?;
        }
        Ok(x)
    }

    /// Blocked chained execution: slices the batch into `block`-sample
    /// sub-batches, runs each through the whole chained stack, and
    /// stitches the logits back together. One block's activations fit
    /// in cache; an unblocked wide batch streams every layer's output
    /// through memory and loses the batching win (see
    /// [`CHAIN_BLOCK_ELEMS`]).
    fn forward_chained_blocked(&mut self, input: &Tensor, block: usize) -> Result<Tensor> {
        let n = input.shape()[0];
        let sample: usize = input.shape()[1..].iter().product();
        let mut out: Option<Tensor> = None;
        let mut row = 0usize;
        let mut i0 = 0;
        while i0 < n {
            let b = block.min(n - i0);
            let mut shape = input.shape().to_vec();
            shape[0] = b;
            let xb = Tensor::from_vec(
                &shape,
                input.data()[i0 * sample..(i0 + b) * sample].to_vec(),
            )?;
            let yb = self.forward_chained(&xb)?;
            let out_t = match &mut out {
                Some(t) => t,
                None => {
                    row = yb.shape()[1..].iter().product();
                    let mut s = yb.shape().to_vec();
                    s[0] = n;
                    out.insert(Tensor::zeros(&s))
                }
            };
            out_t.data_mut()[i0 * row..(i0 + b) * row].copy_from_slice(yb.data());
            i0 += b;
        }
        out.ok_or_else(|| NnError::ShapeMismatch {
            context: "chained blocked forward on an empty batch".into(),
            expected: vec![1],
            actual: vec![0],
        })
    }

    /// The chained-int8 executor: walks the layers under the resolved
    /// plan, handing each one either an `f32` tensor or a quantised
    /// activation per its [`ChainMode`]. The plan is taken out of the
    /// cache for the walk (no per-forward clone) and restored after.
    fn forward_chained(&mut self, input: &Tensor) -> Result<Tensor> {
        let plan = self.chain_plan.take().expect("planned by forward");
        let result = self.run_chained(input, &plan);
        self.chain_plan = Some(plan);
        result
    }

    fn run_chained(&mut self, input: &Tensor, plan: &QuantChainPlan) -> Result<Tensor> {
        let mut val = QAct::F32(input.clone());
        for (layer, mode) in self.layers.iter_mut().zip(&plan.modes) {
            val = match *mode {
                ChainMode::F32 => match val {
                    QAct::F32(t) => QAct::F32(layer.forward(&t, false)?),
                    QAct::I8(_) => {
                        return Err(NnError::InvalidConfig {
                            reason: format!(
                                "chain plan handed layer `{}` a quantised activation \
                                 outside a chain segment (planner bug)",
                                layer.name()
                            ),
                        })
                    }
                },
                ChainMode::FusedRelu => val,
                ChainMode::Quant {
                    out_scale,
                    fuse_relu,
                } => layer.forward_chained(val, out_scale, fuse_relu)?,
                ChainMode::PassI8 => layer.forward_chained(val, None, false)?,
            };
        }
        match val {
            QAct::F32(t) => Ok(t),
            // A well-formed plan always dequantises at the last
            // quantised layer; cover a chain that runs off the end of
            // the network anyway.
            QAct::I8(q) => Ok(q.dequantize()),
        }
    }

    /// Static calibration workflow for int8 serving: runs every batch
    /// through a `QuantI8` forward with the activation observers
    /// recording (unfrozen), then freezes the observed ranges as
    /// static scales — after which chained execution can engage — and
    /// returns the per-layer scale report. The network's backend is
    /// restored afterwards, so calling this on an `f32`-serving
    /// network only spends the calibration passes.
    ///
    /// Ranges accumulate across calls: calibrating twice widens scales
    /// to cover both datasets. Unfreeze via
    /// [`Network::freeze_act_scales`]`(false)` to resume dynamic
    /// scaling.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when `batches` is empty and
    /// propagates forward errors; on any error the observers are left
    /// **unfrozen** (dynamic) — freezing an unobserved or
    /// partially-observed range would silently collapse activations to
    /// zero on the next quantised forward.
    pub fn calibrate<I>(&mut self, batches: I) -> Result<Vec<ActScaleReport>>
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<Tensor>,
    {
        let prev = self.backend;
        self.set_backend(Backend::QuantI8);
        self.freeze_act_scales(false);
        let mut count = 0usize;
        let run = || -> Result<()> {
            for batch in batches {
                self.forward(std::borrow::Borrow::borrow(&batch), false)?;
                count += 1;
            }
            Ok(())
        };
        let result = run();
        // Freeze only a successful calibration; a failed or empty one
        // leaves the observers dynamic rather than frozen at a range
        // they never (fully) observed.
        self.freeze_act_scales(result.is_ok() && count > 0);
        self.set_backend(prev);
        result?;
        if count == 0 {
            return Err(NnError::InvalidConfig {
                reason: "calibration needs at least one batch".into(),
            });
        }
        Ok(self
            .layers
            .iter()
            .filter_map(|layer| {
                layer.quant_observer().map(|obs| ActScaleReport {
                    layer: layer.name().to_string(),
                    max_abs: obs.max_abs(),
                    scale: obs.scale_for(0.0),
                })
            })
            .collect())
    }

    /// Direct mutable access to layer `index` (testing and advanced
    /// surgery). Conservatively drops the cached chain plan — the
    /// caller can mutate anything the plan depends on.
    pub fn layer_mut(&mut self, index: usize) -> Option<&mut (dyn Layer + '_)> {
        self.invalidate_chain_plan();
        self.layers
            .get_mut(index)
            .map(|b| &mut **b as &mut (dyn Layer + '_))
    }

    /// Forward + loss + full backward pass; returns the loss output.
    ///
    /// Gradients accumulate in the layers; call [`Network::sgd_step`] then
    /// [`Network::zero_grads`] (or use [`crate::train`]).
    ///
    /// # Errors
    ///
    /// Propagates layer and loss errors.
    pub fn train_batch(&mut self, input: &Tensor, labels: &[usize]) -> Result<LossOutput> {
        let logits = self.forward(input, true)?;
        let out = cross_entropy(&logits, labels)?;
        let mut grad = out.grad_logits.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            if i == 0 {
                // The first layer's input gradient (w.r.t. the image)
                // is never consumed: take the parameters-only path.
                layer.backward_params(&grad)?;
            } else {
                grad = layer.backward(&grad)?;
            }
        }
        Ok(out)
    }

    /// Applies one SGD-with-momentum step to every layer.
    pub fn sgd_step(&mut self, lr: f32, momentum: f32) {
        for layer in &mut self.layers {
            layer.sgd_step(lr, momentum);
        }
    }

    /// Clears accumulated gradients in every layer.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Predicts class indices for a batch.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn predict(&mut self, input: &Tensor) -> Result<Vec<usize>> {
        let logits = self.forward(input, false)?;
        let shape = logits.shape();
        let (n, k) = (shape[0], shape[1]);
        let data = logits.data();
        Ok((0..n)
            .map(|ni| {
                let row = &data[ni * k..(ni + 1) * k];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty logits row")
            })
            .collect())
    }

    /// Cost of one forward pass at the current width.
    ///
    /// # Errors
    ///
    /// Propagates layer cost errors (shape-propagation failures indicate an
    /// inconsistent architecture).
    pub fn cost(&self) -> Result<NetworkCost> {
        let mut shape = self.input_shape.clone();
        let mut macs = 0.0;
        let mut params = 0;
        let mut params_total = 0;
        let mut per_layer = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let c = layer.cost(&shape)?;
            macs += c.macs;
            params += c.params;
            params_total += layer.param_count_total();
            shape = c.out_shape.clone();
            per_layer.push((layer.name().to_string(), c));
        }
        Ok(NetworkCost {
            macs,
            params,
            params_total,
            per_layer,
        })
    }

    /// Applies weight quantization to every layer (used by
    /// [`crate::quant::quantize_network`], which validates `bits`).
    pub(crate) fn quantize_weights_internal(&mut self, bits: u32) {
        for layer in &mut self.layers {
            layer.quantize_weights(bits);
        }
    }

    /// Cost at a specific width without disturbing the current width.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::set_active_groups`] and
    /// [`Network::cost`].
    pub fn cost_at(&mut self, active: usize) -> Result<NetworkCost> {
        let prev = self.active;
        self.set_active_groups(active)?;
        let cost = self.cost();
        self.set_active_groups(prev)?;
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{Flatten, Relu};
    use crate::conv::{Conv2d, Conv2dConfig};
    use crate::linear::Linear;
    use crate::pool::MaxPool2d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(groups: usize) -> Network {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::new(
            "conv1",
            Conv2dConfig {
                in_channels: 1,
                out_channels: 4,
                kernel: 3,
                stride: 1,
                padding: 1,
                conv_groups: 1,
                prune_groups: groups,
            },
            &mut rng,
        )
        .unwrap();
        let fc = Linear::new("fc", 4 * 4 * 4, 3, groups, &mut rng).unwrap();
        Network::new(
            vec![
                Box::new(conv),
                Box::new(Relu::new("relu1")),
                Box::new(MaxPool2d::new("pool1", 2)),
                Box::new(Flatten::new("flatten")),
                Box::new(fc),
            ],
            groups,
            vec![1, 8, 8],
        )
        .unwrap()
    }

    #[test]
    fn forward_produces_logits() {
        let mut net = tiny_net(2);
        let x = Tensor::zeros(&[2, 1, 8, 8]);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
    }

    #[test]
    fn width_switch_propagates_to_all_layers() {
        let mut net = tiny_net(2);
        net.set_active_groups(1).unwrap();
        let y = net.forward(&Tensor::zeros(&[1, 1, 8, 8]), false).unwrap();
        assert_eq!(y.shape(), &[1, 3]);
        assert_eq!(net.active_groups(), 1);
        assert!(net.set_active_groups(0).is_err());
        assert!(net.set_active_groups(3).is_err());
    }

    #[test]
    fn train_batch_reduces_loss() {
        let mut net = tiny_net(2);
        let mut rng = StdRng::seed_from_u64(9);
        use rand::Rng;
        let x = Tensor::from_vec(
            &[4, 1, 8, 8],
            (0..256).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        )
        .unwrap();
        let labels = [0usize, 1, 2, 0];
        let first = net.train_batch(&x, &labels).unwrap().loss;
        for _ in 0..30 {
            net.zero_grads();
            let _ = net.train_batch(&x, &labels).unwrap();
            net.sgd_step(0.05, 0.9);
        }
        net.zero_grads();
        let last = net.train_batch(&x, &labels).unwrap().loss;
        assert!(
            last < first * 0.5,
            "loss should halve when overfitting 4 samples: {first} -> {last}"
        );
    }

    #[test]
    fn predict_matches_argmax_of_forward() {
        let mut net = tiny_net(2);
        let x = Tensor::full(&[2, 1, 8, 8], 0.3);
        let logits = net.forward(&x, false).unwrap();
        let preds = net.predict(&x).unwrap();
        for (ni, &p) in preds.iter().enumerate() {
            for k in 0..3 {
                assert!(logits.at(&[ni, p]) >= logits.at(&[ni, k]));
            }
        }
    }

    #[test]
    fn cost_shape_propagation() {
        let mut net = tiny_net(2);
        let full = net.cost().unwrap();
        assert!(full.macs > 0.0);
        assert_eq!(full.per_layer.len(), 5);
        // conv: 4*8*8*1*9 = 2304 MACs, fc: 64*3 = 192.
        assert_eq!(full.macs, 2304.0 + 192.0);
        let half = net.cost_at(1).unwrap();
        assert!(half.macs < full.macs);
        // cost_at restores the previous width.
        assert_eq!(net.active_groups(), 2);
        // Total (stored) params don't depend on width.
        assert_eq!(half.params_total, full.params_total);
        assert!(half.params < full.params);
    }

    #[test]
    fn empty_network_rejected() {
        assert!(Network::new(vec![], 4, vec![1]).is_err());
        let mut rng = StdRng::seed_from_u64(0);
        let fc = Linear::new("fc", 4, 2, 1, &mut rng).unwrap();
        assert!(Network::new(vec![Box::new(fc)], 0, vec![4]).is_err());
    }

    #[test]
    fn debug_shows_width_state() {
        let net = tiny_net(2);
        let s = format!("{net:?}");
        assert!(s.contains("2/2 groups"));
    }
}
