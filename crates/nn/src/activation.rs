//! Parameter-free layers: ReLU and Flatten.

use crate::error::{NnError, Result};
use crate::layer::{ChainSupport, Layer, LayerCost};
use crate::quant::QAct;
use crate::tensor::Tensor;

/// Rectified linear unit, applied element-wise.
#[derive(Debug, Default)]
pub struct Relu {
    name: String,
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a named ReLU layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            mask: None,
        }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let mut out = input.clone();
        if train {
            // One fused pass computes output and mask together; the
            // mask buffer is reused across steps (no per-call alloc).
            let mask = self.mask.get_or_insert_with(Vec::new);
            mask.clear();
            mask.resize(out.len(), false);
            for (v, m) in out.data_mut().iter_mut().zip(mask.iter_mut()) {
                if *v > 0.0 {
                    *m = true;
                } else {
                    *v = 0.0;
                }
            }
        } else {
            for v in out.data_mut() {
                *v = v.max(0.0);
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self.mask.as_ref().ok_or_else(|| NnError::InvalidConfig {
            reason: format!("relu `{}`: backward before training forward", self.name),
        })?;
        if mask.len() != grad_out.len() {
            return Err(NnError::ShapeMismatch {
                context: format!("relu `{}` backward", self.name),
                expected: vec![mask.len()],
                actual: vec![grad_out.len()],
            });
        }
        let mut grad = grad_out.clone();
        for (g, &m) in grad.data_mut().iter_mut().zip(mask) {
            if !m {
                *g = 0.0;
            }
        }
        Ok(grad)
    }

    fn cost(&self, in_shape: &[usize]) -> Result<LayerCost> {
        Ok(LayerCost {
            macs: 0.0,
            params: 0,
            out_shape: in_shape.to_vec(),
        })
    }

    fn chain_support(&self) -> ChainSupport {
        // ReLU commutes exactly with the monotone round-and-clamp of
        // requantisation (round(0) = 0), so on the int8 grid it is a
        // plain `max(0)` — and when it directly follows a quantised
        // layer the planner folds it into that layer's epilogue for
        // free.
        ChainSupport::TransparentRelu
    }

    /// Int8 fast path: `max(0)` on the grid values, in place — scale
    /// is positive, so the clamp is order-preserving and exactly
    /// equivalent to f32 ReLU before quantisation.
    fn forward_chained(
        &mut self,
        input: QAct,
        _out_scale: Option<f32>,
        _fuse_relu: bool,
    ) -> Result<QAct> {
        match input {
            QAct::I8(mut q) => {
                for v in q.data_mut() {
                    *v = (*v).max(0);
                }
                Ok(QAct::I8(q))
            }
            QAct::F32(_) => Err(NnError::InvalidConfig {
                reason: format!(
                    "relu `{}`: chained forward needs quantised input",
                    self.name
                ),
            }),
        }
    }
}

/// Flattens `[N, C, H, W]` (or any rank ≥ 2) into `[N, F]`.
///
/// Channel-major flattening is what makes width pruning compose with the
/// classifier: the first `C_active·H·W` features of the flattened vector
/// are exactly the features of the active channel groups.
#[derive(Debug, Default)]
pub struct Flatten {
    name: String,
    in_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a named Flatten layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            in_shape: None,
        }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let shape = input.shape();
        if shape.len() < 2 {
            return Err(NnError::ShapeMismatch {
                context: format!("flatten `{}` forward", self.name),
                expected: vec![0, 0],
                actual: shape.to_vec(),
            });
        }
        if train {
            self.in_shape = Some(shape.to_vec());
        }
        let n = shape[0];
        let f: usize = shape[1..].iter().product();
        input.reshaped(&[n, f])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape = self
            .in_shape
            .as_ref()
            .ok_or_else(|| NnError::InvalidConfig {
                reason: format!("flatten `{}`: backward before training forward", self.name),
            })?;
        grad_out.reshaped(shape)
    }

    fn cost(&self, in_shape: &[usize]) -> Result<LayerCost> {
        Ok(LayerCost {
            macs: 0.0,
            params: 0,
            out_shape: vec![in_shape.iter().product()],
        })
    }

    fn chain_support(&self) -> ChainSupport {
        // A pure metadata change: quantised values pass through
        // untouched at their incoming scale.
        ChainSupport::Transparent
    }

    fn forward_chained(
        &mut self,
        input: QAct,
        _out_scale: Option<f32>,
        _fuse_relu: bool,
    ) -> Result<QAct> {
        match input {
            QAct::I8(mut q) => {
                let shape = q.shape();
                if shape.len() < 2 {
                    return Err(NnError::ShapeMismatch {
                        context: format!("flatten `{}` chained forward", self.name),
                        expected: vec![0, 0],
                        actual: shape.to_vec(),
                    });
                }
                let n = shape[0];
                let f: usize = shape[1..].iter().product();
                q.reshape(&[n, f])?;
                Ok(QAct::I8(q))
            }
            QAct::F32(_) => Err(NnError::InvalidConfig {
                reason: format!(
                    "flatten `{}`: chained forward needs quantised input",
                    self.name
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_clamps_negatives() {
        let mut relu = Relu::new("r");
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let y = relu.forward(&x, false).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut relu = Relu::new("r");
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.5, 2.0, -3.0]).unwrap();
        let _ = relu.forward(&x, true).unwrap();
        let g = Tensor::full(&[4], 1.0);
        let gi = relu.backward(&g).unwrap();
        assert_eq!(gi.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn relu_backward_without_forward_errors() {
        let mut relu = Relu::new("r");
        assert!(relu.backward(&Tensor::zeros(&[1])).is_err());
    }

    #[test]
    fn relu_backward_shape_checked() {
        let mut relu = Relu::new("r");
        let _ = relu.forward(&Tensor::zeros(&[4]), true).unwrap();
        assert!(relu.backward(&Tensor::zeros(&[5])).is_err());
    }

    #[test]
    fn flatten_round_trip() {
        let mut fl = Flatten::new("f");
        let x = Tensor::from_vec(&[2, 3, 2, 2], (0..24).map(|i| i as f32).collect()).unwrap();
        let y = fl.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 12]);
        // Channel-major ordering preserved.
        assert_eq!(y.at(&[0, 0]), x.at(&[0, 0, 0, 0]));
        assert_eq!(y.at(&[0, 4]), x.at(&[0, 1, 0, 0]));
        let g = fl.backward(&y).unwrap();
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn flatten_rejects_rank_one() {
        let mut fl = Flatten::new("f");
        assert!(fl.forward(&Tensor::zeros(&[4]), false).is_err());
    }

    #[test]
    fn parameter_free_costs() {
        let relu = Relu::new("r");
        let c = relu.cost(&[8, 4, 4]).unwrap();
        assert_eq!(c.macs, 0.0);
        assert_eq!(c.params, 0);
        assert_eq!(c.out_shape, vec![8, 4, 4]);
        let fl = Flatten::new("f");
        let c = fl.cost(&[8, 4, 4]).unwrap();
        assert_eq!(c.out_shape, vec![128]);
    }
}
