//! Cache-blocked, register-tiled `f32` matrix multiplication — the
//! shared compute kernel behind [`crate::conv::Conv2d`] and
//! [`crate::linear::Linear`] when they run on [`Backend::Gemm`].
//!
//! # Layout
//!
//! All matrices are row-major slices with an explicit leading dimension
//! (`ld` = elements between consecutive rows), so sub-matrices and
//! transposed views cost nothing: a [`MatRef`] with [`Trans::T`] reads
//! `A[i][p]` from `data[p * ld + i]`, and transposition is absorbed by
//! the packing step below rather than strided inner loops.
//!
//! # Blocking
//!
//! The kernel follows the classic three-level GEMM structure
//! (Goto/BLIS; the same shape TFLite Micro's optimised kernels use):
//!
//! ```text
//!        N                 for pc in K step KC:        ┌── packed B panel
//!   ┌─────────┐              pack B[pc..pc+KC][0..N]   │   KC × N, NR-wide
//!   │    B    │ K            for ic in M step MC:      │   column strips
//!   └─────────┘                pack A[ic..+MC][pc..]   ├── packed A block
//! M ┌──┐┌─────────┐            for each MR×NR tile:    │   MC × KC, MR-tall
//!   │A ││    C    │              micro-kernel          │   row strips
//!   └──┘└─────────┘                                    └── both zero-padded
//! ```
//!
//! Blocking parameters: `MR×NR = 4×16` register tile (8 accumulator
//! vectors of 8 `f32` on AVX2-class hardware, written as plain arrays so
//! safe Rust auto-vectorises), `MC = 64` rows, `KC = 256` — an A block
//! of 64 KiB and a B panel that stays resident in L1/L2 for the matrix
//! sizes this crate meets. Panels are padded to multiples of `MR`/`NR`
//! with zeros so the micro-kernel has no edge cases; the write-back
//! masks the padding.
//!
//! Pack buffers are thread-local and only ever grow, so steady-state
//! *serial* calls do no heap allocation. Large products split their
//! `M` range across workers (see [`crate::workers`]); each worker
//! packs into its own thread-local buffers and writes a disjoint band
//! of `C`. Under the vendored `rayon` (fresh scoped threads per
//! region, no pool) those worker thread-locals start empty each time,
//! so the parallel path re-allocates its pack blocks per spawn — a
//! persistent pool restores the zero-allocation property there (see
//! ROADMAP open items).

use std::cell::RefCell;

/// Which implementation a layer uses for its forward/backward math.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The original nested-loop implementation. Slow, but simple enough
    /// to audit by eye — kept as the correctness oracle for the
    /// equivalence tests and as a fallback.
    Reference,
    /// im2col + blocked GEMM (this module). The default.
    #[default]
    Gemm,
}

/// Register tile height (rows of C per micro-kernel call).
pub const MR: usize = 4;
/// Register tile width (columns of C per micro-kernel call).
pub const NR: usize = 16;
/// Rows of A packed per block.
pub const MC: usize = 64;
/// Depth (K) packed per block.
pub const KC: usize = 256;

/// Minimum `m·n·k` (MAC count) before a product is worth splitting
/// across workers; also used by the layers to gate batch parallelism.
pub(crate) const PAR_MIN_WORK: usize = 1 << 21;

/// Whether a matrix operand is read as stored or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// `A[i][p] = data[i * ld + p]`.
    N,
    /// `A[i][p] = data[p * ld + i]`.
    T,
}

/// A borrowed row-major matrix view with leading dimension and
/// optional transposition.
#[derive(Debug, Clone, Copy)]
pub struct MatRef<'a> {
    /// Underlying elements.
    pub data: &'a [f32],
    /// Elements between consecutive stored rows.
    pub ld: usize,
    /// How logical indices map onto storage.
    pub trans: Trans,
}

impl<'a> MatRef<'a> {
    /// A non-transposed view.
    pub fn new(data: &'a [f32], ld: usize) -> Self {
        Self {
            data,
            ld,
            trans: Trans::N,
        }
    }

    /// A transposed view.
    pub fn t(data: &'a [f32], ld: usize) -> Self {
        Self {
            data,
            ld,
            trans: Trans::T,
        }
    }

    #[inline]
    fn at(&self, i: usize, p: usize) -> f32 {
        match self.trans {
            Trans::N => self.data[i * self.ld + p],
            Trans::T => self.data[p * self.ld + i],
        }
    }
}

thread_local! {
    /// Per-thread (packed A, packed B) buffers; grown once, then reused.
    static PACK_BUFS: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// `C = A·B + beta·C` for logical shapes `A: m×k`, `B: k×n`, `C: m×n`.
///
/// `beta` must be `0.0` (overwrite `C`) or `1.0` (accumulate into `C`);
/// those are the only modes the layers need. `c` is a row-major view
/// with leading dimension `ldc ≥ n`. When `parallel` is true and the
/// product is large enough, the `M` range is split across workers —
/// pass `false` from code that already parallelises an outer dimension.
///
/// # Panics
///
/// Debug-asserts shape/stride consistency; out-of-bounds operands panic
/// via slice indexing.
#[allow(clippy::too_many_arguments)] // GEMM is inherently (m, n, k, A, B, beta, C)-shaped
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    parallel: bool,
) {
    debug_assert!(beta == 0.0 || beta == 1.0, "beta must be 0 or 1");
    debug_assert!(ldc >= n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if beta == 0.0 {
            for row in c.chunks_mut(ldc).take(m) {
                row[..n].fill(0.0);
            }
        }
        return;
    }
    let workers = crate::workers::worker_count();
    if parallel && workers > 1 && m * n * k >= PAR_MIN_WORK && m >= 2 * MR {
        gemm_parallel(m, n, k, a, b, beta, c, ldc, workers);
    } else {
        gemm_serial(0, m, n, k, a, b, beta, c, ldc);
    }
}

/// Parallel blocked GEMM: per K-slice, the calling thread packs the B
/// panel once, then `M` bands fan out across workers, each packing its
/// own A blocks and writing a disjoint band of `C`.
#[allow(clippy::too_many_arguments)]
fn gemm_parallel(
    m: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    workers: usize,
) {
    // Band height: even split over workers, rounded up to MR.
    let band = m.div_ceil(workers).div_ceil(MR) * MR;
    // Take the B buffer *out* of the thread-local rather than holding a
    // RefCell borrow across the scope: with a work-stealing runtime the
    // calling thread may execute one of its own `band_tiles` tasks,
    // which borrows the same thread-local cell.
    let mut pb = PACK_BUFS.with(|bufs| std::mem::take(&mut bufs.borrow_mut().1));
    let n_pad = n.div_ceil(NR) * NR;
    pb.resize((KC * n_pad).max(pb.len()), 0.0);

    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        pack_b(b, pc, kc, n, &mut pb);
        // Accumulate after the first K-slice regardless of beta.
        let slice_beta = if pc == 0 { beta } else { 1.0 };
        let pb_shared: &[f32] = &pb;
        rayon::scope(|s| {
            let mut rest = &mut c[..];
            let mut i0 = 0;
            while i0 < m {
                let rows = band.min(m - i0);
                let split = (rows * ldc).min(rest.len());
                let (band_c, tail) = rest.split_at_mut(split);
                s.spawn(move |_| {
                    band_tiles(i0, rows, n, pc, kc, a, pb_shared, slice_beta, band_c, ldc);
                });
                rest = tail;
                i0 += rows;
            }
        });
        pc += kc;
    }
    PACK_BUFS.with(|bufs| bufs.borrow_mut().1 = pb);
}

/// One worker's share of a K-slice: packs its own A blocks (worker
/// thread-locals) against the shared, already-packed B panel.
#[allow(clippy::too_many_arguments)]
fn band_tiles(
    i0: usize,
    m: usize,
    n: usize,
    pc: usize,
    kc: usize,
    a: MatRef<'_>,
    pb: &[f32],
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    PACK_BUFS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        let (pa, _) = &mut *bufs;
        pa.resize((MC * KC).max(pa.len()), 0.0);
        let mut ic = 0;
        while ic < m {
            let mc = MC.min(m - ic);
            pack_a(a, i0 + ic, mc, pc, kc, pa);
            macro_tile(pa, pb, mc, n, kc, beta, &mut c[ic * ldc..], ldc);
            ic += mc;
        }
    });
}

/// The single-threaded blocked GEMM over rows `i0..i0+m` of the logical
/// product; `c` starts at row `i0`.
#[allow(clippy::too_many_arguments)]
fn gemm_serial(
    i0: usize,
    m: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    PACK_BUFS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        let (pa, pb) = &mut *bufs;
        let n_pad = n.div_ceil(NR) * NR;
        pa.resize((MC * KC).max(pa.len()), 0.0);
        pb.resize((KC * n_pad).max(pb.len()), 0.0);

        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(b, pc, kc, n, pb);
            // Accumulate after the first K-slice regardless of beta.
            let slice_beta = if pc == 0 { beta } else { 1.0 };
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a(a, i0 + ic, mc, pc, kc, pa);
                macro_tile(pa, pb, mc, n, kc, slice_beta, &mut c[ic * ldc..], ldc);
                ic += mc;
            }
            pc += kc;
        }
    });
}

/// Packs `A[i0..i0+mc][pc..pc+kc]` into MR-tall row strips:
/// `pa[strip][p][r]`, zero-padding the last strip.
fn pack_a(a: MatRef<'_>, i0: usize, mc: usize, pc: usize, kc: usize, pa: &mut [f32]) {
    let strips = mc.div_ceil(MR);
    for strip in 0..strips {
        let base = strip * kc * MR;
        for p in 0..kc {
            for r in 0..MR {
                let i = strip * MR + r;
                pa[base + p * MR + r] = if i < mc { a.at(i0 + i, pc + p) } else { 0.0 };
            }
        }
    }
}

/// Packs `B[pc..pc+kc][0..n]` into NR-wide column strips:
/// `pb[strip][p][c]`, zero-padding the last strip.
fn pack_b(b: MatRef<'_>, pc: usize, kc: usize, n: usize, pb: &mut [f32]) {
    let strips = n.div_ceil(NR);
    match b.trans {
        Trans::N => {
            for p in 0..kc {
                let row = &b.data[(pc + p) * b.ld..][..n];
                for strip in 0..strips {
                    let j0 = strip * NR;
                    let width = NR.min(n - j0);
                    let dst = &mut pb[strip * kc * NR + p * NR..][..NR];
                    dst[..width].copy_from_slice(&row[j0..j0 + width]);
                    dst[width..].fill(0.0);
                }
            }
        }
        Trans::T => {
            for strip in 0..strips {
                let j0 = strip * NR;
                let width = NR.min(n - j0);
                let base = strip * kc * NR;
                for p in 0..kc {
                    let dst = &mut pb[base + p * NR..][..NR];
                    for (j, d) in dst[..width].iter_mut().enumerate() {
                        *d = b.data[(j0 + j) * b.ld + pc + p];
                    }
                    dst[width..].fill(0.0);
                }
            }
        }
    }
}

/// Runs the micro-kernel over every MR×NR tile of an `mc × n` block of
/// `C` (rows start at `c[0]`).
#[allow(clippy::too_many_arguments)]
fn macro_tile(
    pa: &[f32],
    pb: &[f32],
    mc: usize,
    n: usize,
    kc: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    let row_strips = mc.div_ceil(MR);
    let col_strips = n.div_ceil(NR);
    for rs in 0..row_strips {
        let pa_strip = &pa[rs * kc * MR..][..kc * MR];
        let rows = MR.min(mc - rs * MR);
        for cs in 0..col_strips {
            let pb_strip = &pb[cs * kc * NR..][..kc * NR];
            let cols = NR.min(n - cs * NR);
            let acc = micro_kernel(pa_strip, pb_strip);
            // Write-back masks the zero padding.
            for r in 0..rows {
                let row = &mut c[(rs * MR + r) * ldc + cs * NR..][..cols];
                if beta == 0.0 {
                    row.copy_from_slice(&acc[r][..cols]);
                } else {
                    for (dst, &v) in row.iter_mut().zip(&acc[r][..cols]) {
                        *dst += v;
                    }
                }
            }
        }
    }
}

/// The register-tiled core: one MR×NR tile of `A_strip · B_strip`.
///
/// Written over `chunks_exact` so the compiler sees fixed trip counts
/// and vectorises the NR-wide FMA rows without bounds checks.
#[inline]
fn micro_kernel(pa_strip: &[f32], pb_strip: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (ap, bp) in pa_strip.chunks_exact(MR).zip(pb_strip.chunks_exact(NR)) {
        for r in 0..MR {
            let av = ap[r];
            for (x, &bv) in acc[r].iter_mut().zip(bp) {
                *x += av * bv;
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[allow(clippy::too_many_arguments)]
    fn naive(
        m: usize,
        n: usize,
        k: usize,
        a: MatRef<'_>,
        b: MatRef<'_>,
        beta: f32,
        c: &mut [f32],
        ldc: usize,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += f64::from(a.at(i, p)) * f64::from(b.at(p, j));
                }
                let prev = if beta == 0.0 {
                    0.0
                } else {
                    f64::from(c[i * ldc + j])
                };
                c[i * ldc + j] = (prev + acc) as f32;
            }
        }
    }

    fn random_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn check_case(m: usize, n: usize, k: usize, ta: Trans, tb: Trans, beta: f32) {
        let a_data = random_vec(m * k, 1 + m as u64 * 31 + k as u64);
        let b_data = random_vec(k * n, 2 + n as u64 * 17);
        let (a_ld, b_ld) = (
            if ta == Trans::N { k } else { m },
            if tb == Trans::N { n } else { k },
        );
        let a = MatRef {
            data: &a_data,
            ld: a_ld,
            trans: ta,
        };
        let b = MatRef {
            data: &b_data,
            ld: b_ld,
            trans: tb,
        };
        let mut c = random_vec(m * n, 3);
        let mut expect = c.clone();
        gemm(m, n, k, a, b, beta, &mut c, n, false);
        naive(m, n, k, a, b, beta, &mut expect, n);
        for (i, (&got, &want)) in c.iter().zip(&expect).enumerate() {
            assert!(
                (got - want).abs() < 1e-4,
                "({m}x{n}x{k} {ta:?}{tb:?} beta={beta}) c[{i}]: {got} vs {want}"
            );
        }
    }

    #[test]
    fn matches_naive_across_shapes_and_transposes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 16, 8),
            (5, 17, 9),
            (32, 64, 27),
            (65, 33, 300),
        ] {
            for &ta in &[Trans::N, Trans::T] {
                for &tb in &[Trans::N, Trans::T] {
                    check_case(m, n, k, ta, tb, 0.0);
                    check_case(m, n, k, ta, tb, 1.0);
                }
            }
        }
    }

    #[test]
    fn respects_leading_dimension_on_c() {
        // C wider than n: untouched columns must keep their values.
        let (m, n, k, ldc) = (3usize, 4usize, 5usize, 7usize);
        let a_data = random_vec(m * k, 4);
        let b_data = random_vec(k * n, 5);
        let mut c = vec![9.0f32; m * ldc];
        gemm(
            m,
            n,
            k,
            MatRef::new(&a_data, k),
            MatRef::new(&b_data, n),
            0.0,
            &mut c,
            ldc,
            false,
        );
        for row in c.chunks(ldc) {
            for &v in &row[n..] {
                assert_eq!(v, 9.0, "columns beyond n must not be written");
            }
        }
    }

    #[test]
    fn parallel_split_matches_serial() {
        let (m, n, k) = (256, 128, 96);
        let a_data = random_vec(m * k, 6);
        let b_data = random_vec(k * n, 7);
        let a = MatRef::new(&a_data, k);
        let b = MatRef::new(&b_data, n);
        let mut serial = vec![0.0f32; m * n];
        let mut par = vec![0.0f32; m * n];
        gemm(m, n, k, a, b, 0.0, &mut serial, n, false);
        gemm(m, n, k, a, b, 0.0, &mut par, n, true);
        assert_eq!(serial, par, "banding must not change row results");
    }

    #[test]
    fn k_zero_clears_or_keeps_c() {
        let mut c = vec![5.0f32; 6];
        gemm(
            2,
            3,
            0,
            MatRef::new(&[], 1),
            MatRef::new(&[], 1),
            1.0,
            &mut c,
            3,
            false,
        );
        assert!(c.iter().all(|&v| v == 5.0));
        gemm(
            2,
            3,
            0,
            MatRef::new(&[], 1),
            MatRef::new(&[], 1),
            0.0,
            &mut c,
            3,
            false,
        );
        assert!(c.iter().all(|&v| v == 0.0));
    }
}
