//! Cache-blocked, register-tiled `f32` matrix multiplication — the
//! shared compute kernel behind [`crate::conv::Conv2d`] and
//! [`crate::linear::Linear`] when they run on [`Backend::Gemm`]. The
//! quantised sibling behind [`Backend::QuantI8`] lives in [`int8`]
//! (same blocked structure, `i8`-grid operands, exact `i32`
//! accumulation, fused requantisation).
//!
//! # Layout
//!
//! All matrices are row-major slices with an explicit leading dimension
//! (`ld` = elements between consecutive rows), so sub-matrices and
//! transposed views cost nothing: a [`MatRef`] with [`Trans::T`] reads
//! `A[i][p]` from `data[p * ld + i]`, and transposition is absorbed by
//! the packing step below rather than strided inner loops.
//!
//! # Blocking
//!
//! The kernel follows the classic three-level GEMM structure
//! (Goto/BLIS; the same shape TFLite Micro's optimised kernels use):
//!
//! ```text
//!        N                 for pc in K step KC:        ┌── packed B panel
//!   ┌─────────┐              pack B[pc..pc+KC][0..N]   │   KC × N, NR-wide
//!   │    B    │ K            for ic in M step MC:      │   column strips
//!   └─────────┘                pack A[ic..+MC][pc..]   ├── packed A block
//! M ┌──┐┌─────────┐            for each MR×NR tile:    │   MC × KC, MR-tall
//!   │A ││    C    │              micro-kernel          │   row strips
//!   └──┘└─────────┘                                    └── both zero-padded
//! ```
//!
//! Blocking parameters: `MR×NR = 4×16` register tile (8 accumulator
//! vectors of 8 `f32` on AVX2-class hardware), `MC = 64` rows,
//! `KC = 256` — an A block of 64 KiB and a B panel that stays resident
//! in L1/L2 for the matrix sizes this crate meets. The tile itself
//! runs through [`eml_simd::madd_tile_f32`]: a runtime-dispatched AVX2
//! kernel where the CPU has it (the baseline x86-64 target only
//! auto-vectorises 4-wide), with the original safe scalar formulation
//! as fallback and oracle — every tier issues the identical
//! multiply/add sequence, so tier selection never changes results. Panels are padded to multiples of `MR`/`NR`
//! with zeros so the micro-kernel has no edge cases; the write-back
//! masks the padding.
//!
//! # Pre-packed operands
//!
//! Packing is where small products spend most of their time, so either
//! operand can be supplied **already packed**: [`PackedA`]/[`PackedB`]
//! hold a whole matrix in panel layout and [`gemm_with`] consumes them
//! through [`Lhs`]/[`Rhs`] without touching the pack buffers. The
//! layers exploit this twice — weight matrices are packed once per
//! weight version and cached (invalidated on update/width/backend
//! changes), and [`crate::im2col::im2col_packed`] lowers convolution
//! inputs *directly* into packed-B layout, eliminating the separate
//! `pack_b` pass from the convolution hot path entirely.
//!
//! # Fused epilogue
//!
//! [`Epilogue`] folds the per-row or per-column bias add (and
//! optionally a ReLU) into the final write-back of the last K-slice, so
//! `Out = W·im2col(x) + b` is one pass over the output instead of two.
//! The fused result is bit-identical to the separate passes: the write
//! back performs the same `acc` store followed by the same `+ bias` add
//! the standalone pass would.
//!
//! Pack buffers for [`MatRef`] operands are thread-local and only ever
//! grow. Under the pooled `rayon` stand-in worker threads are
//! persistent, so steady-state calls — serial *and* parallel — do no
//! heap allocation beyond what the caller passes in.

use std::cell::RefCell;

pub mod int8;

pub use int8::{
    gemm_i8, gemm_i8_q, pack_a8_i16, pack_a8_quantized, packed_a8_len, packed_b8_len,
    requantize_i8, PackedA8, PackedA8Ref, PackedB8, PackedB8Ref, QEpilogue, QEpilogueI8,
};

/// Which implementation a layer uses for its forward/backward math.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The original nested-loop implementation. Slow, but simple enough
    /// to audit by eye — kept as the correctness oracle for the
    /// equivalence tests and as a fallback.
    Reference,
    /// im2col + blocked GEMM (this module). The default.
    #[default]
    Gemm,
    /// Quantised int8 inference ([`int8`]): forward passes run
    /// `i8×i8→i32` on packed quantised panels with a fused
    /// requantisation epilogue — the executed form of the paper's
    /// data-precision knob. Backward passes (training) still run the
    /// `f32` GEMM path against the master weights, so a network can
    /// train in `f32` and serve in int8 without a backend round-trip.
    QuantI8,
}

/// Register tile height (rows of C per micro-kernel call).
pub const MR: usize = 4;
/// Register tile width (columns of C per micro-kernel call).
pub const NR: usize = 16;
/// Rows of A packed per block.
pub const MC: usize = 64;
/// Depth (K) packed per block.
pub const KC: usize = 256;

/// Minimum `m·n·k` (MAC count) before a product is worth splitting
/// across workers; also used by the layers to gate batch parallelism.
pub(crate) const PAR_MIN_WORK: usize = 1 << 21;

/// Int8 counterpart of [`PAR_MIN_WORK`]: the `pmaddwd` tiles retire
/// MACs ~1.6× faster than the f32 kernel, so a band must carry
/// proportionally more of them before the fixed dispatch cost (queue
/// push + wakeup per band) amortises. Batched int8 serving sits right
/// at this boundary — micro-batches of a small model are exactly the
/// workloads the f32 threshold over-eagerly splits.
pub(crate) const PAR_MIN_WORK_I8: usize = PAR_MIN_WORK * 2;

/// Whether a matrix operand is read as stored or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// `A[i][p] = data[i * ld + p]`.
    N,
    /// `A[i][p] = data[p * ld + i]`.
    T,
}

/// A borrowed row-major matrix view with leading dimension and
/// optional transposition.
#[derive(Debug, Clone, Copy)]
pub struct MatRef<'a> {
    /// Underlying elements.
    pub data: &'a [f32],
    /// Elements between consecutive stored rows.
    pub ld: usize,
    /// How logical indices map onto storage.
    pub trans: Trans,
}

impl<'a> MatRef<'a> {
    /// A non-transposed view.
    pub fn new(data: &'a [f32], ld: usize) -> Self {
        Self {
            data,
            ld,
            trans: Trans::N,
        }
    }

    /// A transposed view.
    pub fn t(data: &'a [f32], ld: usize) -> Self {
        Self {
            data,
            ld,
            trans: Trans::T,
        }
    }

    #[inline]
    fn at(&self, i: usize, p: usize) -> f32 {
        match self.trans {
            Trans::N => self.data[i * self.ld + p],
            Trans::T => self.data[p * self.ld + i],
        }
    }
}

/// Buffer length of a packed `m × k` A operand (see [`PackedA`]).
pub fn packed_a_len(m: usize, k: usize) -> usize {
    m.div_ceil(MR) * MR * k
}

/// Buffer length of a packed `k × n` B operand (see [`PackedB`]).
pub fn packed_b_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * NR * k
}

/// An owned, fully packed A (left-hand) operand: MR-tall row strips per
/// K-slice, zero-padded to a multiple of `MR` rows. K-slice `s` (rows
/// `s·KC..` of the logical matrix) lives at offset `m_pad · s · KC`;
/// within a slice, strip `st` occupies `kc·MR` elements.
#[derive(Clone)]
pub struct PackedA {
    buf: Vec<f32>,
    m: usize,
    k: usize,
}

impl std::fmt::Debug for PackedA {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PackedA({}x{})", self.m, self.k)
    }
}

impl PackedA {
    /// Packs the `m × k` logical matrix `a`.
    pub fn pack(a: MatRef<'_>, m: usize, k: usize) -> Self {
        let m_pad = m.div_ceil(MR) * MR;
        let mut buf = vec![0.0f32; packed_a_len(m, k)];
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_a(a, 0, m, pc, kc, &mut buf[m_pad * pc..]);
            pc += kc;
        }
        Self { buf, m, k }
    }

    /// A borrowed view for [`gemm_with`].
    pub fn as_ref(&self) -> PackedARef<'_> {
        PackedARef {
            data: &self.buf,
            m: self.m,
            k: self.k,
        }
    }
}

/// A borrowed packed A operand (see [`PackedA`]).
#[derive(Debug, Clone, Copy)]
pub struct PackedARef<'a> {
    data: &'a [f32],
    m: usize,
    k: usize,
}

impl<'a> PackedARef<'a> {
    /// Wraps an externally built packed buffer (layout of [`PackedA`]).
    pub fn new(data: &'a [f32], m: usize, k: usize) -> Self {
        debug_assert!(data.len() >= packed_a_len(m, k));
        Self { data, m, k }
    }

    /// The strips of rows `i0..i0+mc` (with `i0 % MR == 0`) of K-slice
    /// `pc..pc+kc`, in exactly the layout `macro_tile` consumes.
    #[inline]
    fn block(&self, i0: usize, pc: usize, kc: usize) -> &'a [f32] {
        debug_assert_eq!(i0 % MR, 0);
        let m_pad = self.m.div_ceil(MR) * MR;
        &self.data[m_pad * pc + (i0 / MR) * kc * MR..]
    }
}

/// An owned, fully packed B (right-hand) operand: NR-wide column strips
/// per K-slice, zero-padded to a multiple of `NR` columns. K-slice `s`
/// lives at offset `n_pad · s · KC`; within a slice, strip `st`
/// occupies `kc·NR` elements.
#[derive(Clone)]
pub struct PackedB {
    buf: Vec<f32>,
    k: usize,
    n: usize,
}

impl std::fmt::Debug for PackedB {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PackedB({}x{})", self.k, self.n)
    }
}

impl PackedB {
    /// Packs the `k × n` logical matrix `b`.
    pub fn pack(b: MatRef<'_>, k: usize, n: usize) -> Self {
        let n_pad = n.div_ceil(NR) * NR;
        let mut buf = vec![0.0f32; packed_b_len(k, n)];
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(b, pc, kc, n, &mut buf[n_pad * pc..]);
            pc += kc;
        }
        Self { buf, k, n }
    }

    /// A borrowed view for [`gemm_with`].
    pub fn as_ref(&self) -> PackedBRef<'_> {
        PackedBRef {
            data: &self.buf,
            k: self.k,
            n: self.n,
        }
    }
}

/// A borrowed packed B operand (see [`PackedB`]). Also constructible
/// over an external buffer, e.g. one filled by
/// [`crate::im2col::im2col_packed`].
#[derive(Debug, Clone, Copy)]
pub struct PackedBRef<'a> {
    data: &'a [f32],
    k: usize,
    n: usize,
}

impl<'a> PackedBRef<'a> {
    /// Wraps an externally built packed buffer (layout of [`PackedB`]).
    pub fn new(data: &'a [f32], k: usize, n: usize) -> Self {
        debug_assert!(data.len() >= packed_b_len(k, n));
        Self { data, k, n }
    }

    /// The panel of K-slice `pc..pc+kc`.
    #[inline]
    fn panel(&self, pc: usize, kc: usize) -> &'a [f32] {
        let n_pad = self.n.div_ceil(NR) * NR;
        &self.data[n_pad * pc..][..n_pad * kc]
    }
}

/// The left-hand operand of [`gemm_with`].
#[derive(Debug, Clone, Copy)]
pub enum Lhs<'a> {
    /// A plain matrix view; packed internally per block.
    Mat(MatRef<'a>),
    /// An already packed operand; used as-is.
    Packed(PackedARef<'a>),
}

/// The right-hand operand of [`gemm_with`].
#[derive(Debug, Clone, Copy)]
pub enum Rhs<'a> {
    /// A plain matrix view; packed internally per K-slice.
    Mat(MatRef<'a>),
    /// An already packed operand; used as-is.
    Packed(PackedBRef<'a>),
}

/// Bias orientation of a fused [`Epilogue`].
#[derive(Debug, Clone, Copy)]
pub enum Bias<'a> {
    /// `C[i][j] += bias[i]` — one bias per output row (convolution:
    /// per output channel).
    Row(&'a [f32]),
    /// `C[i][j] += bias[j]` — one bias per output column (linear:
    /// per output feature).
    Col(&'a [f32]),
}

/// An operation fused into the final write-back of [`gemm_with`]:
/// optional bias add, optional ReLU, applied in that order once the
/// full `k` reduction is complete.
#[derive(Debug, Clone, Copy, Default)]
pub struct Epilogue<'a> {
    bias: Option<Bias<'a>>,
    relu: bool,
}

impl<'a> Epilogue<'a> {
    /// No fused work: plain `C = A·B + beta·C`.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fuses a per-row bias add.
    pub fn bias_row(bias: &'a [f32]) -> Self {
        Self {
            bias: Some(Bias::Row(bias)),
            relu: false,
        }
    }

    /// Fuses a per-column bias add.
    pub fn bias_col(bias: &'a [f32]) -> Self {
        Self {
            bias: Some(Bias::Col(bias)),
            relu: false,
        }
    }

    /// Additionally clamps the final value at zero (ReLU), after the
    /// bias add.
    pub fn with_relu(mut self) -> Self {
        self.relu = true;
        self
    }

    fn is_some(&self) -> bool {
        self.bias.is_some() || self.relu
    }

    /// [`Epilogue::apply`] on one full register-tile row; the fixed
    /// width lets the compiler vectorise the adds.
    #[inline]
    fn apply_tile_row(&self, seg: &mut [f32; NR], row: usize, col0: usize) {
        match self.bias {
            Some(Bias::Row(b)) => {
                let bv = b[row];
                for v in seg.iter_mut() {
                    *v += bv;
                }
            }
            Some(Bias::Col(b)) => {
                let b: &[f32; NR] = b[col0..col0 + NR].try_into().expect("NR columns");
                for (v, &bv) in seg.iter_mut().zip(b) {
                    *v += bv;
                }
            }
            None => {}
        }
        if self.relu {
            for v in seg.iter_mut() {
                *v = v.max(0.0);
            }
        }
    }

    /// Applies the epilogue to one already-written row segment. `row`
    /// is the global row index, `col0` the global column of `seg[0]`.
    #[inline]
    fn apply(&self, seg: &mut [f32], row: usize, col0: usize) {
        match self.bias {
            Some(Bias::Row(b)) => {
                let bv = b[row];
                for v in seg.iter_mut() {
                    *v += bv;
                }
            }
            Some(Bias::Col(b)) => {
                for (v, &bv) in seg.iter_mut().zip(&b[col0..]) {
                    *v += bv;
                }
            }
            None => {}
        }
        if self.relu {
            for v in seg.iter_mut() {
                *v = v.max(0.0);
            }
        }
    }
}

thread_local! {
    /// Per-thread (packed A, packed B) buffers; grown once, then reused.
    static PACK_BUFS: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// `C = A·B + beta·C` for logical shapes `A: m×k`, `B: k×n`, `C: m×n`.
///
/// `beta` must be `0.0` (overwrite `C`) or `1.0` (accumulate into `C`);
/// those are the only modes the layers need. `c` is a row-major view
/// with leading dimension `ldc ≥ n`. When `parallel` is true and the
/// product is large enough, the `M` range is split across workers —
/// pass `false` from code that already parallelises an outer dimension.
///
/// # Panics
///
/// Debug-asserts shape/stride consistency; out-of-bounds operands panic
/// via slice indexing.
#[allow(clippy::too_many_arguments)] // GEMM is inherently (m, n, k, A, B, beta, C)-shaped
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    parallel: bool,
) {
    gemm_with(
        m,
        n,
        k,
        Lhs::Mat(a),
        Rhs::Mat(b),
        beta,
        c,
        ldc,
        parallel,
        Epilogue::none(),
    );
}

/// [`gemm`] generalised over pre-packed operands and a fused epilogue:
/// `C = epilogue(A·B + beta·C)`.
///
/// Packed operands skip the internal pack step entirely — with both
/// operands packed the hot loop is the micro-kernel plus the masked
/// write-back and nothing else.
///
/// # Panics
///
/// Debug-asserts that packed operand dimensions match `m`/`n`/`k`, and
/// shape/stride consistency as in [`gemm`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_with(
    m: usize,
    n: usize,
    k: usize,
    a: Lhs<'_>,
    b: Rhs<'_>,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    parallel: bool,
    ep: Epilogue<'_>,
) {
    debug_assert!(beta == 0.0 || beta == 1.0, "beta must be 0 or 1");
    debug_assert!(ldc >= n);
    if let Lhs::Packed(p) = &a {
        debug_assert!(p.m == m && p.k == k, "packed A is {}x{}", p.m, p.k);
    }
    if let Rhs::Packed(p) = &b {
        debug_assert!(p.k == k && p.n == n, "packed B is {}x{}", p.k, p.n);
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for (i, row) in c.chunks_mut(ldc).take(m).enumerate() {
            if beta == 0.0 {
                row[..n].fill(0.0);
            }
            if ep.is_some() {
                ep.apply(&mut row[..n], i, 0);
            }
        }
        return;
    }
    let workers = crate::workers::worker_count();
    if parallel && workers > 1 && m * n * k >= PAR_MIN_WORK && m >= 2 * MR {
        gemm_parallel(m, n, k, a, b, beta, c, ldc, workers, ep);
    } else {
        gemm_serial(0, m, n, k, a, b, beta, c, ldc, ep);
    }
}

/// Parallel blocked GEMM: per K-slice, the calling thread provides the
/// B panel (packing it first unless pre-packed), then `M` bands fan out
/// across workers, each packing (or slicing) its own A blocks and
/// writing a disjoint band of `C`.
#[allow(clippy::too_many_arguments)]
fn gemm_parallel(
    m: usize,
    n: usize,
    k: usize,
    a: Lhs<'_>,
    b: Rhs<'_>,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    workers: usize,
    ep: Epilogue<'_>,
) {
    // Band height: even split over workers, rounded up to MR.
    let band = m.div_ceil(workers).div_ceil(MR) * MR;
    // Take the B buffer *out* of the thread-local rather than holding a
    // RefCell borrow across the scope: with a work-stealing runtime the
    // calling thread may execute one of its own `band_tiles` tasks,
    // which borrows the same thread-local cell.
    let n_pad = n.div_ceil(NR) * NR;
    let mut pb = match b {
        Rhs::Mat(_) => {
            let mut pb = PACK_BUFS.with(|bufs| std::mem::take(&mut bufs.borrow_mut().1));
            pb.resize((KC * n_pad).max(pb.len()), 0.0);
            pb
        }
        Rhs::Packed(_) => Vec::new(),
    };

    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        let pb_shared: &[f32] = match b {
            Rhs::Packed(p) => p.panel(pc, kc),
            Rhs::Mat(mat) => {
                pack_b(mat, pc, kc, n, &mut pb);
                &pb
            }
        };
        // Accumulate after the first K-slice regardless of beta.
        let slice_beta = if pc == 0 { beta } else { 1.0 };
        let last = pc + kc == k;
        rayon::scope(|s| {
            let mut rest = &mut c[..];
            let mut i0 = 0;
            while i0 < m {
                let rows = band.min(m - i0);
                let split = (rows * ldc).min(rest.len());
                let (band_c, tail) = rest.split_at_mut(split);
                s.spawn(move |_| {
                    band_tiles(
                        i0, rows, n, pc, kc, a, pb_shared, slice_beta, band_c, ldc, last, ep,
                    );
                });
                rest = tail;
                i0 += rows;
            }
        });
        pc += kc;
    }
    if let Rhs::Mat(_) = b {
        PACK_BUFS.with(|bufs| bufs.borrow_mut().1 = pb);
    }
}

/// One worker's share of a K-slice: packs (or slices) its own A blocks
/// against the shared B panel.
#[allow(clippy::too_many_arguments)]
fn band_tiles(
    i0: usize,
    m: usize,
    n: usize,
    pc: usize,
    kc: usize,
    a: Lhs<'_>,
    pb: &[f32],
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    last: bool,
    ep: Epilogue<'_>,
) {
    match a {
        Lhs::Packed(p) => {
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                macro_tile(
                    p.block(i0 + ic, pc, kc),
                    pb,
                    mc,
                    n,
                    kc,
                    beta,
                    &mut c[ic * ldc..],
                    ldc,
                    last,
                    i0 + ic,
                    ep,
                );
                ic += mc;
            }
        }
        Lhs::Mat(mat) => PACK_BUFS.with(|bufs| {
            let mut bufs = bufs.borrow_mut();
            let (pa, _) = &mut *bufs;
            pa.resize((MC * KC).max(pa.len()), 0.0);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a(mat, i0 + ic, mc, pc, kc, pa);
                macro_tile(
                    pa,
                    pb,
                    mc,
                    n,
                    kc,
                    beta,
                    &mut c[ic * ldc..],
                    ldc,
                    last,
                    i0 + ic,
                    ep,
                );
                ic += mc;
            }
        }),
    }
}

/// The single-threaded blocked GEMM over rows `i0..i0+m` of the logical
/// product; `c` starts at row `i0`.
#[allow(clippy::too_many_arguments)]
fn gemm_serial(
    i0: usize,
    m: usize,
    n: usize,
    k: usize,
    a: Lhs<'_>,
    b: Rhs<'_>,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    ep: Epilogue<'_>,
) {
    // Fast path: both operands pre-packed — no thread-local traffic.
    if let (Lhs::Packed(pa), Rhs::Packed(pb)) = (&a, &b) {
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            let slice_beta = if pc == 0 { beta } else { 1.0 };
            let last = pc + kc == k;
            let panel = pb.panel(pc, kc);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                macro_tile(
                    pa.block(i0 + ic, pc, kc),
                    panel,
                    mc,
                    n,
                    kc,
                    slice_beta,
                    &mut c[ic * ldc..],
                    ldc,
                    last,
                    i0 + ic,
                    ep,
                );
                ic += mc;
            }
            pc += kc;
        }
        return;
    }
    PACK_BUFS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        let (pa_buf, pb_buf) = &mut *bufs;
        let n_pad = n.div_ceil(NR) * NR;
        if matches!(a, Lhs::Mat(_)) {
            pa_buf.resize((MC * KC).max(pa_buf.len()), 0.0);
        }
        if matches!(b, Rhs::Mat(_)) {
            pb_buf.resize((KC * n_pad).max(pb_buf.len()), 0.0);
        }

        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            let panel: &[f32] = match b {
                Rhs::Packed(p) => p.panel(pc, kc),
                Rhs::Mat(mat) => {
                    pack_b(mat, pc, kc, n, pb_buf);
                    pb_buf
                }
            };
            // Accumulate after the first K-slice regardless of beta.
            let slice_beta = if pc == 0 { beta } else { 1.0 };
            let last = pc + kc == k;
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                let block: &[f32] = match a {
                    Lhs::Packed(p) => p.block(i0 + ic, pc, kc),
                    Lhs::Mat(mat) => {
                        pack_a(mat, i0 + ic, mc, pc, kc, pa_buf);
                        pa_buf
                    }
                };
                macro_tile(
                    block,
                    panel,
                    mc,
                    n,
                    kc,
                    slice_beta,
                    &mut c[ic * ldc..],
                    ldc,
                    last,
                    i0 + ic,
                    ep,
                );
                ic += mc;
            }
            pc += kc;
        }
    });
}

/// Packs `A[i0..i0+mc][pc..pc+kc]` into MR-tall row strips:
/// `pa[strip][p][r]`, zero-padding the last strip.
fn pack_a(a: MatRef<'_>, i0: usize, mc: usize, pc: usize, kc: usize, pa: &mut [f32]) {
    let strips = mc.div_ceil(MR);
    for strip in 0..strips {
        let base = strip * kc * MR;
        for p in 0..kc {
            for r in 0..MR {
                let i = strip * MR + r;
                pa[base + p * MR + r] = if i < mc { a.at(i0 + i, pc + p) } else { 0.0 };
            }
        }
    }
}

/// Packs `B[pc..pc+kc][0..n]` into NR-wide column strips:
/// `pb[strip][p][c]`, zero-padding the last strip.
fn pack_b(b: MatRef<'_>, pc: usize, kc: usize, n: usize, pb: &mut [f32]) {
    let strips = n.div_ceil(NR);
    match b.trans {
        Trans::N => {
            for p in 0..kc {
                let row = &b.data[(pc + p) * b.ld..][..n];
                for strip in 0..strips {
                    let j0 = strip * NR;
                    let width = NR.min(n - j0);
                    let dst = &mut pb[strip * kc * NR + p * NR..][..NR];
                    dst[..width].copy_from_slice(&row[j0..j0 + width]);
                    dst[width..].fill(0.0);
                }
            }
        }
        Trans::T => {
            for strip in 0..strips {
                let j0 = strip * NR;
                let width = NR.min(n - j0);
                let base = strip * kc * NR;
                for p in 0..kc {
                    let dst = &mut pb[base + p * NR..][..NR];
                    for (j, d) in dst[..width].iter_mut().enumerate() {
                        *d = b.data[(j0 + j) * b.ld + pc + p];
                    }
                    dst[width..].fill(0.0);
                }
            }
        }
    }
}

/// Runs the micro-kernel over every MR×NR tile of an `mc × n` block of
/// `C` (rows start at `c[0]`). `row0` is the global row index of
/// `c[0]`; when `last` is set the epilogue is applied to each row
/// segment right after its write-back.
#[allow(clippy::too_many_arguments)]
fn macro_tile(
    pa: &[f32],
    pb: &[f32],
    mc: usize,
    n: usize,
    kc: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    last: bool,
    row0: usize,
    ep: Epilogue<'_>,
) {
    let row_strips = mc.div_ceil(MR);
    let col_strips = n.div_ceil(NR);
    let apply_ep = last && ep.is_some();
    for rs in 0..row_strips {
        let pa_strip = &pa[rs * kc * MR..][..kc * MR];
        let rows = MR.min(mc - rs * MR);
        for cs in 0..col_strips {
            let pb_strip = &pb[cs * kc * NR..][..kc * NR];
            let cols = NR.min(n - cs * NR);
            let mut acc = micro_kernel(pa_strip, pb_strip, kc);
            if rows == MR && cols == NR {
                // Full-tile fast path: fixed-size rows, so the copies
                // and adds compile to straight vector code instead of
                // length-dispatched `memmove`s.
                for (r, vals) in acc.iter_mut().enumerate() {
                    let dst: &mut [f32; NR] = (&mut c[(rs * MR + r) * ldc + cs * NR..][..NR])
                        .try_into()
                        .expect("NR-wide row");
                    if beta != 0.0 {
                        for (v, &d) in vals.iter_mut().zip(dst.iter()) {
                            *v += d;
                        }
                    }
                    if apply_ep {
                        ep.apply_tile_row(vals, row0 + rs * MR + r, cs * NR);
                    }
                    *dst = *vals;
                }
                continue;
            }
            // Edge tiles: write-back masks the zero padding.
            for r in 0..rows {
                let row = &mut c[(rs * MR + r) * ldc + cs * NR..][..cols];
                if beta == 0.0 {
                    row.copy_from_slice(&acc[r][..cols]);
                } else {
                    for (dst, &v) in row.iter_mut().zip(&acc[r][..cols]) {
                        *dst += v;
                    }
                }
                if apply_ep {
                    ep.apply(row, row0 + rs * MR + r, cs * NR);
                }
            }
        }
    }
}

/// The register-tiled core: one MR×NR tile of `A_strip · B_strip`,
/// dispatched through [`eml_simd::madd_tile_f32`] — the runtime-picked
/// AVX2 tier on CPUs that have it, otherwise the scalar form that is
/// this kernel's original safe-Rust formulation (the baseline x86-64
/// target auto-vectorises it 4-wide). Every tier issues the identical
/// multiply/add sequence, so the tile is bit-identical across tiers.
#[inline]
fn micro_kernel(pa_strip: &[f32], pb_strip: &[f32], kc: usize) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    eml_simd::madd_tile_f32(pa_strip, pb_strip, kc, &mut acc);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[allow(clippy::too_many_arguments)]
    fn naive(
        m: usize,
        n: usize,
        k: usize,
        a: MatRef<'_>,
        b: MatRef<'_>,
        beta: f32,
        c: &mut [f32],
        ldc: usize,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += f64::from(a.at(i, p)) * f64::from(b.at(p, j));
                }
                let prev = if beta == 0.0 {
                    0.0
                } else {
                    f64::from(c[i * ldc + j])
                };
                c[i * ldc + j] = (prev + acc) as f32;
            }
        }
    }

    fn random_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn check_case(m: usize, n: usize, k: usize, ta: Trans, tb: Trans, beta: f32) {
        let a_data = random_vec(m * k, 1 + m as u64 * 31 + k as u64);
        let b_data = random_vec(k * n, 2 + n as u64 * 17);
        let (a_ld, b_ld) = (
            if ta == Trans::N { k } else { m },
            if tb == Trans::N { n } else { k },
        );
        let a = MatRef {
            data: &a_data,
            ld: a_ld,
            trans: ta,
        };
        let b = MatRef {
            data: &b_data,
            ld: b_ld,
            trans: tb,
        };
        let mut c = random_vec(m * n, 3);
        let mut expect = c.clone();
        gemm(m, n, k, a, b, beta, &mut c, n, false);
        naive(m, n, k, a, b, beta, &mut expect, n);
        for (i, (&got, &want)) in c.iter().zip(&expect).enumerate() {
            assert!(
                (got - want).abs() < 1e-4,
                "({m}x{n}x{k} {ta:?}{tb:?} beta={beta}) c[{i}]: {got} vs {want}"
            );
        }
        // The same product with either or both operands pre-packed
        // must be *bit-identical* to the all-MatRef path: packing is a
        // layout change, not a numerical one.
        let pa = PackedA::pack(a, m, k);
        let pb = PackedB::pack(b, k, n);
        for (name, lhs, rhs) in [
            ("packed A", Lhs::Packed(pa.as_ref()), Rhs::Mat(b)),
            ("packed B", Lhs::Mat(a), Rhs::Packed(pb.as_ref())),
            (
                "packed AB",
                Lhs::Packed(pa.as_ref()),
                Rhs::Packed(pb.as_ref()),
            ),
        ] {
            let mut c2 = random_vec(m * n, 3);
            gemm_with(m, n, k, lhs, rhs, beta, &mut c2, n, false, Epilogue::none());
            assert!(
                c.iter().zip(&c2).all(|(x, y)| x.to_bits() == y.to_bits()),
                "({m}x{n}x{k} {ta:?}{tb:?} beta={beta}) {name} differs from MatRef path"
            );
        }
    }

    #[test]
    fn matches_naive_across_shapes_and_transposes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 16, 8),
            (5, 17, 9),
            (32, 64, 27),
            (65, 33, 300),
        ] {
            for &ta in &[Trans::N, Trans::T] {
                for &tb in &[Trans::N, Trans::T] {
                    check_case(m, n, k, ta, tb, 0.0);
                    check_case(m, n, k, ta, tb, 1.0);
                }
            }
        }
    }

    #[test]
    fn respects_leading_dimension_on_c() {
        // C wider than n: untouched columns must keep their values.
        let (m, n, k, ldc) = (3usize, 4usize, 5usize, 7usize);
        let a_data = random_vec(m * k, 4);
        let b_data = random_vec(k * n, 5);
        let mut c = vec![9.0f32; m * ldc];
        gemm(
            m,
            n,
            k,
            MatRef::new(&a_data, k),
            MatRef::new(&b_data, n),
            0.0,
            &mut c,
            ldc,
            false,
        );
        for row in c.chunks(ldc) {
            for &v in &row[n..] {
                assert_eq!(v, 9.0, "columns beyond n must not be written");
            }
        }
    }

    #[test]
    fn parallel_split_matches_serial() {
        let (m, n, k) = (256, 128, 96);
        let a_data = random_vec(m * k, 6);
        let b_data = random_vec(k * n, 7);
        let a = MatRef::new(&a_data, k);
        let b = MatRef::new(&b_data, n);
        let mut serial = vec![0.0f32; m * n];
        let mut par = vec![0.0f32; m * n];
        gemm(m, n, k, a, b, 0.0, &mut serial, n, false);
        gemm(m, n, k, a, b, 0.0, &mut par, n, true);
        assert_eq!(serial, par, "banding must not change row results");
    }

    #[test]
    fn parallel_split_with_packed_operands_matches_serial() {
        let (m, n, k) = (256, 128, 96);
        let a_data = random_vec(m * k, 8);
        let b_data = random_vec(k * n, 9);
        let a = MatRef::new(&a_data, k);
        let b = MatRef::new(&b_data, n);
        let pa = PackedA::pack(a, m, k);
        let pb = PackedB::pack(b, k, n);
        let mut serial = vec![0.0f32; m * n];
        let mut par = vec![0.0f32; m * n];
        gemm(m, n, k, a, b, 0.0, &mut serial, n, false);
        gemm_with(
            m,
            n,
            k,
            Lhs::Packed(pa.as_ref()),
            Rhs::Packed(pb.as_ref()),
            0.0,
            &mut par,
            n,
            true,
            Epilogue::none(),
        );
        assert_eq!(serial, par);
    }

    /// The banded parallel path must apply the epilogue exactly like
    /// the serial path — per band with global row offsets, once, after
    /// the last K-slice. This is the production path of a batch-1 conv
    /// forward on a multi-core host (fused bias, work above the
    /// parallel threshold), so it is pinned here with a forced worker
    /// count rather than left to whatever the test machine has; k is
    /// chosen to span several K-slices.
    #[test]
    fn parallel_split_applies_epilogue_like_serial() {
        let (m, n, k) = (96usize, 64usize, KC + 90);
        let a_data = random_vec(m * k, 20);
        let b_data = random_vec(k * n, 21);
        let row_bias = random_vec(m, 22);
        let a = MatRef::new(&a_data, k);
        let b = MatRef::new(&b_data, n);
        let pa = PackedA::pack(a, m, k);
        let pb = PackedB::pack(b, k, n);
        let ep = Epilogue::bias_row(&row_bias).with_relu();
        let mut serial = vec![0.0f32; m * n];
        gemm_with(
            m,
            n,
            k,
            Lhs::Packed(pa.as_ref()),
            Rhs::Packed(pb.as_ref()),
            0.0,
            &mut serial,
            n,
            false,
            ep,
        );
        for (workers, lhs, rhs) in [
            (2, Lhs::Packed(pa.as_ref()), Rhs::Packed(pb.as_ref())),
            (4, Lhs::Packed(pa.as_ref()), Rhs::Packed(pb.as_ref())),
            (4, Lhs::Mat(a), Rhs::Mat(b)),
        ] {
            crate::workers::FORCE_WORKERS.with(|f| f.set(Some(workers)));
            let mut par = vec![0.0f32; m * n];
            gemm_with(m, n, k, lhs, rhs, 0.0, &mut par, n, true, ep);
            crate::workers::FORCE_WORKERS.with(|f| f.set(None));
            assert!(
                serial
                    .iter()
                    .zip(&par)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "workers={workers}: banded epilogue differs from serial"
            );
        }
    }

    #[test]
    fn k_zero_clears_or_keeps_c() {
        let mut c = vec![5.0f32; 6];
        gemm(
            2,
            3,
            0,
            MatRef::new(&[], 1),
            MatRef::new(&[], 1),
            1.0,
            &mut c,
            3,
            false,
        );
        assert!(c.iter().all(|&v| v == 5.0));
        gemm(
            2,
            3,
            0,
            MatRef::new(&[], 1),
            MatRef::new(&[], 1),
            0.0,
            &mut c,
            3,
            false,
        );
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn epilogue_matches_separate_passes() {
        let (m, n, k) = (7usize, 21usize, 40usize);
        let a_data = random_vec(m * k, 10);
        let b_data = random_vec(k * n, 11);
        let row_bias = random_vec(m, 12);
        let col_bias = random_vec(n, 13);
        let a = MatRef::new(&a_data, k);
        let b = MatRef::new(&b_data, n);
        let mut plain = vec![0.0f32; m * n];
        gemm(m, n, k, a, b, 0.0, &mut plain, n, false);
        for (relu, bias) in [
            (false, Some(Bias::Row(&row_bias[..]))),
            (true, Some(Bias::Row(&row_bias[..]))),
            (false, Some(Bias::Col(&col_bias[..]))),
            (true, Some(Bias::Col(&col_bias[..]))),
            (true, None),
        ] {
            let mut ep = match bias {
                Some(Bias::Row(bv)) => Epilogue::bias_row(bv),
                Some(Bias::Col(bv)) => Epilogue::bias_col(bv),
                None => Epilogue::none(),
            };
            if relu {
                ep = ep.with_relu();
            }
            let mut fused = vec![0.0f32; m * n];
            gemm_with(
                m,
                n,
                k,
                Lhs::Mat(a),
                Rhs::Mat(b),
                0.0,
                &mut fused,
                n,
                false,
                ep,
            );
            // Separate passes over the plain product.
            let mut expect = plain.clone();
            for (i, row) in expect.chunks_mut(n).enumerate() {
                match bias {
                    Some(Bias::Row(bv)) => row.iter_mut().for_each(|v| *v += bv[i]),
                    Some(Bias::Col(bv)) => row.iter_mut().zip(bv).for_each(|(v, &bv)| *v += bv),
                    None => {}
                }
                if relu {
                    row.iter_mut().for_each(|v| *v = v.max(0.0));
                }
            }
            for (i, (&got, &want)) in fused.iter().zip(&expect).enumerate() {
                assert!(
                    got.to_bits() == want.to_bits(),
                    "relu={relu} c[{i}]: fused {got} vs separate {want}"
                );
            }
        }
    }

    #[test]
    fn epilogue_applies_on_k_zero() {
        let bias = [1.0f32, 2.0];
        let mut c = vec![5.0f32; 6];
        gemm_with(
            2,
            3,
            0,
            Lhs::Mat(MatRef::new(&[], 1)),
            Rhs::Mat(MatRef::new(&[], 1)),
            0.0,
            &mut c,
            3,
            false,
            Epilogue::bias_row(&bias),
        );
        assert_eq!(c, &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn epilogue_applies_once_across_k_slices() {
        // k > KC forces multiple K-slices; the bias must be added
        // exactly once (after the last slice), not once per slice.
        let (m, n, k) = (5usize, 9usize, KC + 37);
        let a_data = random_vec(m * k, 14);
        let b_data = random_vec(k * n, 15);
        let bias = random_vec(m, 16);
        let a = MatRef::new(&a_data, k);
        let b = MatRef::new(&b_data, n);
        let mut plain = vec![0.0f32; m * n];
        gemm(m, n, k, a, b, 0.0, &mut plain, n, false);
        let mut fused = vec![0.0f32; m * n];
        gemm_with(
            m,
            n,
            k,
            Lhs::Mat(a),
            Rhs::Mat(b),
            0.0,
            &mut fused,
            n,
            false,
            Epilogue::bias_row(&bias),
        );
        for i in 0..m {
            for j in 0..n {
                let want = plain[i * n + j] + bias[i];
                let got = fused[i * n + j];
                assert!(
                    got.to_bits() == want.to_bits(),
                    "c[{i}][{j}]: {got} vs {want}"
                );
            }
        }
    }
}
