//! Evaluation metrics: top-1 accuracy, per-class breakdown (for the
//! Fig 4(b) error bars) and softmax confidence (a platform-independent
//! monitor in the paper's Fig 5).

use crate::dataset::{make_batch, Sample};
use crate::error::Result;
use crate::loss::softmax;
use crate::network::Network;

/// Result of evaluating a network on a labelled sample set.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Overall top-1 accuracy in `[0, 1]`.
    pub top1: f64,
    /// Per-class top-1 accuracy (index = class).
    pub per_class: Vec<f64>,
    /// Confusion matrix: `confusion[truth][prediction]` counts.
    pub confusion: Vec<Vec<usize>>,
    /// Number of evaluated samples.
    pub n: usize,
}

impl Evaluation {
    /// Population variance of the per-class accuracies — the error bar of
    /// the paper's Fig 4(b).
    pub fn class_variance(&self) -> f64 {
        if self.per_class.is_empty() {
            return 0.0;
        }
        let mean = self.per_class.iter().sum::<f64>() / self.per_class.len() as f64;
        self.per_class
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f64>()
            / self.per_class.len() as f64
    }

    /// Standard deviation of per-class accuracies.
    pub fn class_std(&self) -> f64 {
        self.class_variance().sqrt()
    }
}

/// Evaluates top-1 accuracy over `samples` in mini-batches of `batch`.
///
/// # Errors
///
/// Propagates network shape errors; returns an all-zero evaluation for an
/// empty sample set.
pub fn evaluate(net: &mut Network, samples: &[Sample], batch: usize) -> Result<Evaluation> {
    let classes = samples.iter().map(|s| s.label + 1).max().unwrap_or(0);
    let mut confusion = vec![vec![0usize; classes]; classes];
    let mut correct = 0usize;
    let batch = batch.max(1);
    let mut i = 0;
    while i < samples.len() {
        let hi = (i + batch).min(samples.len());
        let indices: Vec<usize> = (i..hi).collect();
        let (x, labels) = make_batch(samples, &indices);
        let preds = net.predict(&x)?;
        for (p, t) in preds.iter().zip(&labels) {
            if classes > 0 && *p < classes {
                confusion[*t][*p] += 1;
            }
            if p == t {
                correct += 1;
            }
        }
        i = hi;
    }
    let per_class: Vec<f64> = (0..classes)
        .map(|c| {
            let total: usize = confusion[c].iter().sum();
            if total == 0 {
                0.0
            } else {
                confusion[c][c] as f64 / total as f64
            }
        })
        .collect();
    Ok(Evaluation {
        top1: if samples.is_empty() {
            0.0
        } else {
            correct as f64 / samples.len() as f64
        },
        per_class,
        confusion,
        n: samples.len(),
    })
}

/// Mean softmax confidence (probability of the predicted class) over
/// `samples` — the paper's platform-independent *confidence* monitor.
///
/// # Errors
///
/// Propagates network shape errors.
pub fn mean_confidence(net: &mut Network, samples: &[Sample], batch: usize) -> Result<f64> {
    if samples.is_empty() {
        return Ok(0.0);
    }
    let batch = batch.max(1);
    let mut total = 0.0f64;
    let mut i = 0;
    while i < samples.len() {
        let hi = (i + batch).min(samples.len());
        let indices: Vec<usize> = (i..hi).collect();
        let (x, _) = make_batch(samples, &indices);
        let logits = net.forward(&x, false)?;
        let probs = softmax(&logits)?;
        let (n, k) = (probs.shape()[0], probs.shape()[1]);
        for ni in 0..n {
            let row = &probs.data()[ni * k..(ni + 1) * k];
            total += row.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
        }
        i = hi;
    }
    Ok(total / samples.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build_group_cnn, CnnConfig};
    use crate::dataset::{DatasetConfig, SyntheticVision};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net_and_data() -> (Network, SyntheticVision) {
        let data = SyntheticVision::generate(DatasetConfig::tiny());
        let mut rng = StdRng::seed_from_u64(5);
        let net = build_group_cnn(
            CnnConfig {
                input: (3, 8, 8),
                classes: 4,
                groups: 2,
                base_width: 8,
            },
            &mut rng,
        )
        .unwrap();
        (net, data)
    }

    #[test]
    fn evaluation_fields_consistent() {
        let (mut net, data) = net_and_data();
        let ev = evaluate(&mut net, data.test(), 16).unwrap();
        assert_eq!(ev.n, data.test().len());
        assert!((0.0..=1.0).contains(&ev.top1));
        assert_eq!(ev.per_class.len(), 4);
        // Confusion row sums equal per-class sample counts.
        for (c, row) in ev.confusion.iter().enumerate() {
            let total: usize = row.iter().sum();
            let expected = data.test().iter().filter(|s| s.label == c).count();
            assert_eq!(total, expected);
        }
        // Overall accuracy equals confusion-diagonal ratio.
        let diag: usize = (0..4).map(|c| ev.confusion[c][c]).sum();
        assert!((ev.top1 - diag as f64 / ev.n as f64).abs() < 1e-12);
    }

    #[test]
    fn per_class_accuracy_matches_confusion() {
        let (mut net, data) = net_and_data();
        let ev = evaluate(&mut net, data.test(), 16).unwrap();
        for c in 0..4 {
            let total: usize = ev.confusion[c].iter().sum();
            let expect = ev.confusion[c][c] as f64 / total as f64;
            assert!((ev.per_class[c] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn variance_of_identical_accuracies_is_zero() {
        let ev = Evaluation {
            top1: 0.5,
            per_class: vec![0.5; 4],
            confusion: vec![vec![0; 4]; 4],
            n: 0,
        };
        assert_eq!(ev.class_variance(), 0.0);
        assert_eq!(ev.class_std(), 0.0);
    }

    #[test]
    fn variance_formula() {
        let ev = Evaluation {
            top1: 0.5,
            per_class: vec![0.0, 1.0],
            confusion: vec![],
            n: 0,
        };
        assert!((ev.class_variance() - 0.25).abs() < 1e-12);
        assert!((ev.class_std() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn confidence_in_unit_interval() {
        let (mut net, data) = net_and_data();
        let c = mean_confidence(&mut net, data.test(), 16).unwrap();
        assert!((0.0..=1.0).contains(&c));
        // With 4 classes, confidence can never drop below 1/4.
        assert!(c >= 0.25 - 1e-6);
    }

    #[test]
    fn empty_sample_sets() {
        let (mut net, _) = net_and_data();
        let ev = evaluate(&mut net, &[], 8).unwrap();
        assert_eq!(ev.top1, 0.0);
        assert_eq!(ev.n, 0);
        assert_eq!(mean_confidence(&mut net, &[], 8).unwrap(), 0.0);
    }
}
