//! 2-D convolution with structural groups and runtime width scaling.
//!
//! This layer implements both halves of the paper's Fig 3:
//!
//! - **Group convolution** (Fig 3a): with `conv_groups = G`, input and
//!   output channels are partitioned into `G` independent paths.
//! - **Runtime group pruning** (Fig 3c): [`Conv2d::set_active_groups`]
//!   restricts execution to the first `g` groups — later groups are simply
//!   not computed, giving a real latency/energy reduction (unlike
//!   unstructured weight pruning, which most hardware cannot exploit —
//!   paper §III-B).
//!
//! Incremental training (Fig 3b) is supported through
//! [`Conv2d::set_trainable_groups`]: frozen groups keep their parameters
//! bit-identical while later groups learn.
//!
//! Two compute backends share this layer's semantics (see
//! [`crate::gemm`]): the default [`Backend::Gemm`] lowers each
//! (sample, group) pair to `Out = W · im2col(x)` on the blocked GEMM
//! kernel with a reusable scratch arena, parallelising over the batch;
//! [`Backend::Reference`] is the original nested loop, retained as the
//! correctness oracle for the equivalence property tests.

use std::ops::Range;

use rand::Rng;

use crate::error::{NnError, Result};
use crate::gemm::{gemm, Backend, MatRef};
use crate::im2col::{col2im_add, im2col, ConvGeom};
use crate::layer::{sgd_update, Layer, LayerCost};
use crate::tensor::Tensor;
use crate::workers;

/// Configuration of a [`Conv2d`] layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dConfig {
    /// Nominal (full-width) input channel count.
    pub in_channels: usize,
    /// Nominal (full-width) output channel count.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride (same both axes).
    pub stride: usize,
    /// Zero padding (same all sides).
    pub padding: usize,
    /// Structural connectivity groups: `1` for a dense convolution, equal
    /// to `prune_groups` for the paper's group convolution.
    pub conv_groups: usize,
    /// Width-scaling partition `G` of the output channels.
    pub prune_groups: usize,
}

impl Conv2dConfig {
    fn validate(&self) -> Result<()> {
        let c = |ok: bool, reason: String| {
            if ok {
                Ok(())
            } else {
                Err(NnError::InvalidConfig { reason })
            }
        };
        c(
            self.in_channels > 0 && self.out_channels > 0,
            "channel counts must be positive".into(),
        )?;
        c(
            self.kernel > 0 && self.stride > 0,
            "kernel and stride must be positive".into(),
        )?;
        c(
            self.prune_groups > 0,
            "prune_groups must be positive".into(),
        )?;
        c(
            self.out_channels.is_multiple_of(self.prune_groups),
            format!(
                "out_channels {} not divisible by prune_groups {}",
                self.out_channels, self.prune_groups
            ),
        )?;
        c(
            self.conv_groups == 1 || self.conv_groups == self.prune_groups,
            format!(
                "conv_groups must be 1 (dense) or equal to prune_groups {} , got {}",
                self.prune_groups, self.conv_groups
            ),
        )?;
        c(
            self.in_channels.is_multiple_of(self.conv_groups),
            format!(
                "in_channels {} not divisible by conv_groups {}",
                self.in_channels, self.conv_groups
            ),
        )?;
        if self.conv_groups > 1 {
            c(
                self.in_channels.is_multiple_of(self.prune_groups),
                format!(
                    "grouped conv requires in_channels {} divisible by prune_groups {}",
                    self.in_channels, self.prune_groups
                ),
            )?;
        }
        Ok(())
    }
}

/// A 2-D convolution layer (see module docs).
#[derive(Debug)]
pub struct Conv2d {
    name: String,
    cfg: Conv2dConfig,
    /// Weights, laid out `[out_ch][in_per_group][k][k]` row-major.
    w: Vec<f32>,
    /// Per-output-channel bias.
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    vw: Vec<f32>,
    vb: Vec<f32>,
    active: usize,
    trainable: Range<usize>,
    cache: Option<Tensor>,
    backend: Backend,
    scratch: Scratch,
}

/// Reusable per-layer buffers for the GEMM backend; they only grow, so
/// steady-state forward/backward does no transient heap allocation
/// beyond the output tensor. Sized one column-matrix slot per worker
/// band ([`workers::band_count`]), so peak scratch is bounded by the
/// machine's parallelism, not the batch size.
#[derive(Default)]
struct Scratch {
    /// im2col matrices, one slot per worker band.
    col: Vec<f32>,
    /// Gradient column matrices, one slot per worker band.
    dcol: Vec<f32>,
}

impl std::fmt::Debug for Scratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Scratch(col: {}, dcol: {})",
            self.col.len(),
            self.dcol.len()
        )
    }
}

impl Conv2d {
    /// Creates the layer with Kaiming-uniform initial weights drawn from
    /// `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for inconsistent configurations
    /// (zero sizes, indivisible group counts, unsupported `conv_groups`).
    pub fn new(name: impl Into<String>, cfg: Conv2dConfig, rng: &mut impl Rng) -> Result<Self> {
        cfg.validate()?;
        let in_per_group = cfg.in_channels / cfg.conv_groups;
        let fan_in = (in_per_group * cfg.kernel * cfg.kernel) as f32;
        let limit = (6.0 / fan_in).sqrt();
        let w_len = cfg.out_channels * in_per_group * cfg.kernel * cfg.kernel;
        let w = (0..w_len).map(|_| rng.gen_range(-limit..limit)).collect();
        Ok(Self {
            name: name.into(),
            cfg,
            w,
            b: vec![0.0; cfg.out_channels],
            gw: vec![0.0; w_len],
            gb: vec![0.0; cfg.out_channels],
            vw: vec![0.0; w_len],
            vb: vec![0.0; cfg.out_channels],
            active: cfg.prune_groups,
            trainable: 0..cfg.prune_groups,
            cache: None,
            backend: Backend::default(),
            scratch: Scratch::default(),
        })
    }

    /// The currently selected compute backend (see
    /// [`Layer::set_backend`]).
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The layer's configuration.
    pub fn config(&self) -> Conv2dConfig {
        self.cfg
    }

    /// Currently active group count.
    pub fn active_groups(&self) -> usize {
        self.active
    }

    /// Raw weight slice (testing/inspection).
    pub fn weights(&self) -> &[f32] {
        &self.w
    }

    fn out_per_group(&self) -> usize {
        self.cfg.out_channels / self.cfg.prune_groups
    }

    fn in_per_group(&self) -> usize {
        self.cfg.in_channels / self.cfg.conv_groups
    }

    /// Output channels at the current width.
    pub fn active_out_channels(&self) -> usize {
        self.out_per_group() * self.active
    }

    /// Input channels the layer expects at the current width.
    pub fn expected_in_channels(&self) -> usize {
        if self.cfg.conv_groups == 1 {
            self.cfg.in_channels
        } else {
            (self.cfg.in_channels / self.cfg.prune_groups) * self.active
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let k = self.cfg.kernel;
        let p = self.cfg.padding;
        let s = self.cfg.stride;
        if h + 2 * p < k || w + 2 * p < k {
            return Err(NnError::ShapeMismatch {
                context: format!("conv `{}`: input smaller than kernel", self.name),
                expected: vec![k, k],
                actual: vec![h + 2 * p, w + 2 * p],
            });
        }
        Ok(((h + 2 * p - k) / s + 1, (w + 2 * p - k) / s + 1))
    }

    /// Base input-channel index (within the *active* input tensor) for
    /// output channel `oc`.
    fn input_base(&self, oc: usize) -> usize {
        if self.cfg.conv_groups == 1 {
            0
        } else {
            let group = oc / self.out_per_group();
            group * (self.cfg.in_channels / self.cfg.prune_groups)
        }
    }

    fn weight_offset(&self, oc: usize, icg: usize, ky: usize, kx: usize) -> usize {
        let k = self.cfg.kernel;
        ((oc * self.in_per_group() + icg) * k + ky) * k + kx
    }

    /// Input channels each output channel reads (shared by both
    /// backends and the cost model).
    fn icg_count(&self) -> usize {
        if self.cfg.conv_groups == 1 {
            self.cfg.in_channels
        } else {
            self.in_per_group()
        }
    }

    /// `(groups to execute, output channels per executed group)` at the
    /// current width: a dense conv is one GEMM over all active output
    /// channels, a grouped conv is one GEMM per active group.
    fn exec_groups(&self) -> (usize, usize) {
        if self.cfg.conv_groups == 1 {
            (1, self.active_out_channels())
        } else {
            (self.active, self.out_per_group())
        }
    }

    /// Lowering geometry for executed group `g` of a sample with input
    /// `h × w` and output `oh × ow`.
    fn geom(&self, g: usize, h: usize, w: usize, oh: usize, ow: usize) -> ConvGeom {
        ConvGeom {
            channels: self.icg_count(),
            ch_base: if self.cfg.conv_groups == 1 {
                0
            } else {
                g * (self.cfg.in_channels / self.cfg.prune_groups)
            },
            h,
            w,
            k: self.cfg.kernel,
            stride: self.cfg.stride,
            padding: self.cfg.padding,
            oh,
            ow,
        }
    }

    /// GEMM-backend forward: per sample and group,
    /// `Out_g = W_g · im2col(x_g)`, batch-parallel when the work pays
    /// for it.
    fn forward_gemm(&mut self, input: &Tensor, out: &mut Tensor) {
        let (n, c_in, h, w) = {
            let s = input.shape();
            (s[0], s[1], s[2], s[3])
        };
        let (c_out, oh, ow) = {
            let s = out.shape();
            (s[1], s[2], s[3])
        };
        let (groups_exec, opg) = self.exec_groups();
        let kdim = self.icg_count() * self.cfg.kernel * self.cfg.kernel;
        let ohw = oh * ow;
        let col_slot = kdim * ohw;
        let sample_in = c_in * h * w;
        let sample_out = c_out * ohw;
        let per_sample_macs = groups_exec * opg * ohw * kdim;
        let batch_par = n > 1 && n * per_sample_macs >= crate::gemm::PAR_MIN_WORK;

        // One column-matrix slot per band (bounded by the worker count,
        // not the batch size); each band reuses its slot across samples.
        let bands = workers::band_count(n, batch_par);
        self.scratch
            .col
            .resize((bands * col_slot).max(self.scratch.col.len()), 0.0);
        let geoms: Vec<ConvGeom> = (0..groups_exec)
            .map(|g| self.geom(g, h, w, oh, ow))
            .collect();
        let (weights, bias) = (&self.w, &self.b);
        let x = input.data();
        workers::for_each_band(
            out.data_mut(),
            n,
            sample_out,
            &mut self.scratch.col,
            col_slot,
            batch_par,
            |n0, out_band, col| {
                for (bi, out_s) in out_band.chunks_mut(sample_out).enumerate() {
                    let x_s = &x[(n0 + bi) * sample_in..][..sample_in];
                    for (g, geom) in geoms.iter().enumerate() {
                        im2col(x_s, geom, col);
                        gemm(
                            opg,
                            ohw,
                            kdim,
                            MatRef::new(&weights[g * opg * kdim..][..opg * kdim], kdim),
                            MatRef::new(col, ohw),
                            0.0,
                            &mut out_s[g * opg * ohw..][..opg * ohw],
                            ohw,
                            !batch_par,
                        );
                    }
                    for (oc, row) in out_s.chunks_mut(ohw).enumerate() {
                        let b = bias[oc];
                        for v in row {
                            *v += b;
                        }
                    }
                }
            },
        );
    }

    /// GEMM-backend backward: bias sums, then batch-parallel
    /// `grad_in = col2im(W_gᵀ · dOut_g)`, then serial weight-gradient
    /// accumulation `gW_g += dOut_g · im2col(x)ᵀ` (serial because every
    /// sample adds into the same gradient buffer; the GEMM itself still
    /// splits across workers).
    fn backward_gemm(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        let input = self.cache.as_ref().expect("checked by backward");
        let (n, c_in, h, w) = {
            let s = input.shape();
            (s[0], s[1], s[2], s[3])
        };
        let (c_out, oh, ow) = {
            let s = grad_out.shape();
            (s[1], s[2], s[3])
        };
        let (groups_exec, opg) = self.exec_groups();
        let kdim = self.icg_count() * self.cfg.kernel * self.cfg.kernel;
        let ohw = oh * ow;
        let col_slot = kdim * ohw;
        let sample_in = c_in * h * w;
        let sample_out = c_out * ohw;
        let go = grad_out.data();

        for (oc, gb) in self.gb.iter_mut().enumerate().take(c_out) {
            for ni in 0..n {
                let row = &go[ni * sample_out + oc * ohw..][..ohw];
                *gb += row.iter().sum::<f32>();
            }
        }

        let geoms: Vec<ConvGeom> = (0..groups_exec)
            .map(|g| self.geom(g, h, w, oh, ow))
            .collect();
        let per_sample_macs = groups_exec * opg * ohw * kdim;
        let batch_par = n > 1 && n * per_sample_macs >= crate::gemm::PAR_MIN_WORK;
        let bands = workers::band_count(n, batch_par);
        self.scratch
            .dcol
            .resize((bands * col_slot).max(self.scratch.dcol.len()), 0.0);
        let weights = &self.w;
        workers::for_each_band(
            grad_in.data_mut(),
            n,
            sample_in,
            &mut self.scratch.dcol,
            col_slot,
            batch_par,
            |n0, gi_band, dcol| {
                for (bi, gi_s) in gi_band.chunks_mut(sample_in).enumerate() {
                    let go_s = &go[(n0 + bi) * sample_out..][..sample_out];
                    for (g, geom) in geoms.iter().enumerate() {
                        gemm(
                            kdim,
                            ohw,
                            opg,
                            MatRef::t(&weights[g * opg * kdim..][..opg * kdim], kdim),
                            MatRef::new(&go_s[g * opg * ohw..][..opg * ohw], ohw),
                            0.0,
                            dcol,
                            ohw,
                            !batch_par,
                        );
                        col2im_add(dcol, geom, gi_s);
                    }
                }
            },
        );

        self.scratch
            .col
            .resize(col_slot.max(self.scratch.col.len()), 0.0);
        let (col, gw) = (&mut self.scratch.col, &mut self.gw);
        let x = input.data();
        for ni in 0..n {
            let x_s = &x[ni * sample_in..][..sample_in];
            let go_s = &go[ni * sample_out..][..sample_out];
            for (g, geom) in geoms.iter().enumerate() {
                im2col(x_s, geom, &mut col[..col_slot]);
                gemm(
                    opg,
                    kdim,
                    ohw,
                    MatRef::new(&go_s[g * opg * ohw..][..opg * ohw], ohw),
                    MatRef::t(&col[..col_slot], ohw),
                    1.0,
                    &mut gw[g * opg * kdim..][..opg * kdim],
                    kdim,
                    true,
                );
            }
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let shape = input.shape();
        let expected_c = self.expected_in_channels();
        if shape.len() != 4 || shape[1] != expected_c {
            return Err(NnError::ShapeMismatch {
                context: format!("conv `{}` forward", self.name),
                expected: vec![0, expected_c, 0, 0],
                actual: shape.to_vec(),
            });
        }
        let (n, h, w) = (shape[0], shape[2], shape[3]);
        let (oh, ow) = self.out_hw(h, w)?;
        let c_out = self.active_out_channels();
        let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
        match self.backend {
            Backend::Reference => self.forward_reference(input, &mut out),
            Backend::Gemm => self.forward_gemm(input, &mut out),
        }
        if train {
            self.cache = Some(input.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self.cache.as_ref().ok_or_else(|| NnError::InvalidConfig {
            reason: format!("conv `{}`: backward before training forward", self.name),
        })?;
        let in_shape = input.shape().to_vec();
        let (n, h, w) = (in_shape[0], in_shape[2], in_shape[3]);
        let (oh, ow) = self.out_hw(h, w)?;
        let c_out = self.active_out_channels();
        grad_out.expect_shape(&[n, c_out, oh, ow], "conv backward")?;
        let mut grad_in = Tensor::zeros(&in_shape);
        match self.backend {
            Backend::Reference => self.backward_reference(grad_out, &mut grad_in),
            Backend::Gemm => self.backward_gemm(grad_out, &mut grad_in),
        }
        Ok(grad_in)
    }

    fn sgd_step(&mut self, lr: f32, momentum: f32) {
        let out_per_group = self.out_per_group();
        let weights_per_oc = self.in_per_group() * self.cfg.kernel * self.cfg.kernel;
        let trainable = self.trainable.clone();
        let active = self.active;
        let frozen_oc = |oc: usize| {
            let g = oc / out_per_group;
            g >= active || !trainable.contains(&g)
        };
        sgd_update(&mut self.w, &self.gw, &mut self.vw, lr, momentum, |wi| {
            frozen_oc(wi / weights_per_oc)
        });
        sgd_update(&mut self.b, &self.gb, &mut self.vb, lr, momentum, frozen_oc);
    }

    fn zero_grads(&mut self) {
        self.gw.fill(0.0);
        self.gb.fill(0.0);
    }

    fn set_active_groups(&mut self, active: usize) -> Result<()> {
        if active == 0 || active > self.cfg.prune_groups {
            return Err(NnError::InvalidGroup {
                reason: format!(
                    "conv `{}`: active groups {} not in 1..={}",
                    self.name, active, self.cfg.prune_groups
                ),
            });
        }
        self.active = active;
        // A cached activation from a different width must not be reused.
        self.cache = None;
        Ok(())
    }

    fn set_trainable_groups(&mut self, groups: Range<usize>) {
        self.trainable = groups;
    }

    fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    fn cost(&self, in_shape: &[usize]) -> Result<LayerCost> {
        let expected_c = self.expected_in_channels();
        if in_shape.len() != 3 || in_shape[0] != expected_c {
            return Err(NnError::ShapeMismatch {
                context: format!("conv `{}` cost", self.name),
                expected: vec![expected_c, 0, 0],
                actual: in_shape.to_vec(),
            });
        }
        let (oh, ow) = self.out_hw(in_shape[1], in_shape[2])?;
        let c_out = self.active_out_channels();
        let icg_count = self.icg_count();
        let k2 = self.cfg.kernel * self.cfg.kernel;
        Ok(LayerCost {
            macs: (c_out * oh * ow * icg_count * k2) as f64,
            params: c_out * icg_count * k2 + c_out,
            out_shape: vec![c_out, oh, ow],
        })
    }

    fn param_count_total(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn quantize_weights(&mut self, bits: u32) {
        crate::quant::quantize_slice(&mut self.w, bits);
        crate::quant::quantize_slice(&mut self.b, bits);
    }
}

impl Conv2d {
    /// Reference-backend forward: the original scalar loop nest, kept
    /// as the correctness oracle.
    fn forward_reference(&self, input: &Tensor, out: &mut Tensor) {
        let shape = input.shape();
        let (n, c_in, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (c_out, oh, ow) = {
            let s = out.shape();
            (s[1], s[2], s[3])
        };
        let k = self.cfg.kernel;
        let s = self.cfg.stride;
        let p = self.cfg.padding as isize;
        let icg_count = self.icg_count();

        let x = input.data();
        let o = out.data_mut();
        for ni in 0..n {
            for oc in 0..c_out {
                let base = self.input_base(oc);
                let bias = self.b[oc];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias;
                        for icg in 0..icg_count {
                            let ic = base + icg;
                            let plane = (ni * c_in + ic) * h * w;
                            for ky in 0..k {
                                let iy = (oy * s + ky) as isize - p;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                let row = plane + iy as usize * w;
                                for kx in 0..k {
                                    let ix = (ox * s + kx) as isize - p;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += self.w[self.weight_offset(oc, icg, ky, kx)]
                                        * x[row + ix as usize];
                                }
                            }
                        }
                        o[((ni * c_out + oc) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
    }

    /// Reference-backend backward: the original scalar loop nest.
    fn backward_reference(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        let input = self.cache.as_ref().expect("checked by backward");
        let in_shape = input.shape();
        let (n, c_in, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        let (c_out, oh, ow) = {
            let s = grad_out.shape();
            (s[1], s[2], s[3])
        };

        let k = self.cfg.kernel;
        let s = self.cfg.stride;
        let p = self.cfg.padding as isize;
        let icg_count = self.icg_count();

        let x = input.data();
        let go = grad_out.data();
        let gi = grad_in.data_mut();
        for ni in 0..n {
            for oc in 0..c_out {
                let base = self.input_base(oc);
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[((ni * c_out + oc) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        self.gb[oc] += g;
                        for icg in 0..icg_count {
                            let ic = base + icg;
                            let plane = (ni * c_in + ic) * h * w;
                            for ky in 0..k {
                                let iy = (oy * s + ky) as isize - p;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                let row = plane + iy as usize * w;
                                for kx in 0..k {
                                    let ix = (ox * s + kx) as isize - p;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let woff = self.weight_offset(oc, icg, ky, kx);
                                    let xoff = row + ix as usize;
                                    self.gw[woff] += g * x[xoff];
                                    gi[xoff] += g * self.w[woff];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn dense_cfg() -> Conv2dConfig {
        Conv2dConfig {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            conv_groups: 1,
            prune_groups: 4,
        }
    }

    fn grouped_cfg() -> Conv2dConfig {
        Conv2dConfig {
            in_channels: 8,
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            conv_groups: 4,
            prune_groups: 4,
        }
    }

    #[test]
    fn config_validation() {
        let mut bad = dense_cfg();
        bad.out_channels = 6; // not divisible by 4
        assert!(Conv2d::new("c", bad, &mut rng()).is_err());
        let mut bad = grouped_cfg();
        bad.conv_groups = 2; // neither 1 nor prune_groups
        assert!(Conv2d::new("c", bad, &mut rng()).is_err());
        let mut bad = grouped_cfg();
        bad.in_channels = 6; // not divisible by conv_groups=4
        assert!(Conv2d::new("c", bad, &mut rng()).is_err());
        let mut bad = dense_cfg();
        bad.kernel = 0;
        assert!(Conv2d::new("c", bad, &mut rng()).is_err());
    }

    #[test]
    fn forward_shape_dense_same_padding() {
        let mut c = Conv2d::new("c", dense_cfg(), &mut rng()).unwrap();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = c.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &[2, 8, 16, 16]);
    }

    #[test]
    fn forward_rejects_wrong_channels() {
        let mut c = Conv2d::new("c", dense_cfg(), &mut rng()).unwrap();
        assert!(c.forward(&Tensor::zeros(&[1, 4, 8, 8]), false).is_err());
    }

    #[test]
    fn known_value_identity_kernel() {
        // 1x1 kernel, single in/out channel, weight = 2, bias = 1.
        let cfg = Conv2dConfig {
            in_channels: 1,
            out_channels: 1,
            kernel: 1,
            stride: 1,
            padding: 0,
            conv_groups: 1,
            prune_groups: 1,
        };
        let mut c = Conv2d::new("c", cfg, &mut rng()).unwrap();
        c.w[0] = 2.0;
        c.b[0] = 1.0;
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = c.forward(&x, false).unwrap();
        assert_eq!(y.data(), &[3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn width_scaling_shrinks_output_channels() {
        let mut c = Conv2d::new("c", dense_cfg(), &mut rng()).unwrap();
        c.set_active_groups(2).unwrap();
        let y = c.forward(&Tensor::zeros(&[1, 3, 8, 8]), false).unwrap();
        assert_eq!(y.shape(), &[1, 4, 8, 8]);
        assert_eq!(c.active_out_channels(), 4);
        assert_eq!(c.expected_in_channels(), 3, "dense conv keeps full input");
    }

    #[test]
    fn grouped_width_scaling_shrinks_input_too() {
        let mut c = Conv2d::new("c", grouped_cfg(), &mut rng()).unwrap();
        c.set_active_groups(1).unwrap();
        assert_eq!(c.expected_in_channels(), 2);
        let y = c.forward(&Tensor::zeros(&[1, 2, 8, 8]), false).unwrap();
        assert_eq!(y.shape(), &[1, 2, 8, 8]);
    }

    #[test]
    fn pruned_output_prefix_matches_full_model() {
        // The defining property of group pruning (Fig 3c): running the
        // first g groups produces *exactly* the same values as the full
        // model's first g groups — switching widths needs no retraining.
        let mut c = Conv2d::new("c", grouped_cfg(), &mut rng()).unwrap();
        let mut r = rng();
        let x_full = Tensor::from_vec(
            &[1, 8, 4, 4],
            (0..128).map(|_| r.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap();
        let y_full = c.forward(&x_full, false).unwrap();

        c.set_active_groups(2).unwrap();
        // Active input = first 4 channels.
        let x_half = Tensor::from_vec(&[1, 4, 4, 4], x_full.data()[..64].to_vec()).unwrap();
        let y_half = c.forward(&x_half, false).unwrap();
        assert_eq!(y_half.shape(), &[1, 4, 4, 4]);
        for oc in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    assert!((y_half.at(&[0, oc, y, x]) - y_full.at(&[0, oc, y, x])).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn invalid_active_groups_rejected() {
        let mut c = Conv2d::new("c", dense_cfg(), &mut rng()).unwrap();
        assert!(c.set_active_groups(0).is_err());
        assert!(c.set_active_groups(5).is_err());
        assert!(c.set_active_groups(4).is_ok());
    }

    /// Finite-difference gradient check for weights, bias and input.
    #[test]
    fn gradient_check() {
        let cfg = Conv2dConfig {
            in_channels: 2,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
            conv_groups: 1,
            prune_groups: 2,
        };
        let mut c = Conv2d::new("c", cfg, &mut rng()).unwrap();
        let mut r = rng();
        let x = Tensor::from_vec(
            &[1, 2, 4, 4],
            (0..32).map(|_| r.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap();

        // Loss = sum(output); dL/dy = 1.
        let y = c.forward(&x, true).unwrap();
        let grad_out = Tensor::full(y.shape(), 1.0);
        let gx = c.backward(&grad_out).unwrap();

        let eps = 1e-3_f32;
        // Check a sample of weight gradients.
        for &wi in &[0usize, 5, 17, 23] {
            let orig = c.w[wi];
            c.w[wi] = orig + eps;
            let lp = c.forward(&x, false).unwrap().sum();
            c.w[wi] = orig - eps;
            let lm = c.forward(&x, false).unwrap().sum();
            c.w[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - c.gw[wi]).abs() < 2e-2,
                "weight {wi}: numeric {numeric} vs analytic {}",
                c.gw[wi]
            );
        }
        // Check a sample of input gradients.
        let mut x2 = x.clone();
        for &xi in &[0usize, 9, 31] {
            let orig = x2.data()[xi];
            x2.data_mut()[xi] = orig + eps;
            let lp = c.forward(&x2, false).unwrap().sum();
            x2.data_mut()[xi] = orig - eps;
            let lm = c.forward(&x2, false).unwrap().sum();
            x2.data_mut()[xi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gx.data()[xi]).abs() < 2e-2,
                "input {xi}: numeric {numeric} vs analytic {}",
                gx.data()[xi]
            );
        }
        // Bias gradient: dL/db = number of output positions.
        assert!((c.gb[0] - 16.0).abs() < 1e-4);
    }

    #[test]
    fn sgd_step_freezes_inactive_and_non_trainable_groups() {
        let mut c = Conv2d::new("c", grouped_cfg(), &mut rng()).unwrap();
        let w_before = c.w.clone();
        // Active = 2 groups; trainable = group 1 only.
        c.set_active_groups(2).unwrap();
        c.set_trainable_groups(1..2);
        let x = Tensor::full(&[1, 4, 4, 4], 1.0);
        let y = c.forward(&x, true).unwrap();
        let _ = c.backward(&Tensor::full(y.shape(), 1.0)).unwrap();
        c.sgd_step(0.1, 0.0);

        let weights_per_oc = 2 * 9; // in_per_group=2, k=3
                                    // Group 0 (oc 0..2) frozen.
        for (wi, (&now, &was)) in
            c.w.iter()
                .zip(&w_before)
                .enumerate()
                .take(2 * weights_per_oc)
        {
            assert_eq!(now, was, "group 0 weight {wi} must be frozen");
        }
        // Group 1 (oc 2..4) updated.
        let updated = (2 * weights_per_oc..4 * weights_per_oc).any(|wi| c.w[wi] != w_before[wi]);
        assert!(updated, "group 1 weights must update");
        // Groups 2-3 inactive: no gradient, no update.
        for (wi, (&now, &was)) in
            c.w.iter()
                .zip(&w_before)
                .enumerate()
                .skip(4 * weights_per_oc)
        {
            assert_eq!(now, was, "inactive group weight {wi}");
        }
    }

    #[test]
    fn cost_scales_with_active_groups() {
        let mut c = Conv2d::new("c", grouped_cfg(), &mut rng()).unwrap();
        let full = c.cost(&[8, 16, 16]).unwrap();
        c.set_active_groups(1).unwrap();
        let quarter = c.cost(&[2, 16, 16]).unwrap();
        assert!((quarter.macs / full.macs - 0.25).abs() < 1e-9);
        assert_eq!(full.out_shape, vec![8, 16, 16]);
        assert_eq!(quarter.out_shape, vec![2, 16, 16]);
        // Total params independent of width.
        assert_eq!(c.param_count_total(), 8 * 2 * 9 + 8);
    }

    #[test]
    fn dense_cost_formula() {
        let c = Conv2d::new("c", dense_cfg(), &mut rng()).unwrap();
        let cost = c.cost(&[3, 16, 16]).unwrap();
        // 8 out * 16*16 positions * 3 in * 9 kernel
        assert_eq!(cost.macs, (8 * 256 * 3 * 9) as f64);
        assert_eq!(cost.params, 8 * 3 * 9 + 8);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut c = Conv2d::new("c", dense_cfg(), &mut rng()).unwrap();
        assert!(c.backward(&Tensor::zeros(&[1, 8, 16, 16])).is_err());
    }

    #[test]
    fn stride_two_output_shape() {
        let cfg = Conv2dConfig {
            stride: 2,
            ..dense_cfg()
        };
        let mut c = Conv2d::new("c", cfg, &mut rng()).unwrap();
        let y = c.forward(&Tensor::zeros(&[1, 3, 16, 16]), false).unwrap();
        // (16 + 2 - 3)/2 + 1 = 8
        assert_eq!(y.shape(), &[1, 8, 8, 8]);
    }
}
