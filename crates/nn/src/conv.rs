//! 2-D convolution with structural groups and runtime width scaling.
//!
//! This layer implements both halves of the paper's Fig 3:
//!
//! - **Group convolution** (Fig 3a): with `conv_groups = G`, input and
//!   output channels are partitioned into `G` independent paths.
//! - **Runtime group pruning** (Fig 3c): [`Conv2d::set_active_groups`]
//!   restricts execution to the first `g` groups — later groups are simply
//!   not computed, giving a real latency/energy reduction (unlike
//!   unstructured weight pruning, which most hardware cannot exploit —
//!   paper §III-B).
//!
//! Incremental training (Fig 3b) is supported through
//! [`Conv2d::set_trainable_groups`]: frozen groups keep their parameters
//! bit-identical while later groups learn.
//!
//! Three compute backends share this layer's semantics (see
//! [`crate::gemm`]): the default [`Backend::Gemm`] lowers each
//! (sample, group) pair to `Out = W · im2col(x)` on the blocked GEMM
//! kernel with a reusable scratch arena, parallelising over the batch;
//! [`Backend::QuantI8`] runs the same structure on the quantised int8
//! kernel ([`crate::gemm::int8`]) — cached int8 weight panels, a
//! one-pass quantise-and-lower of the input, exact `i32` accumulation
//! and a fused requantisation epilogue (the executed form of the
//! paper's data-precision knob); [`Backend::Reference`] is the
//! original nested loop, retained as the correctness oracle for the
//! equivalence property tests.
//!
//! The GEMM path keeps per-call overhead off the hot loop three ways:
//! weight panels are packed once per weight version and cached
//! ([`Conv2d`]`::packed_w`, invalidated on any parameter update, width
//! switch or backend change), the input lowering writes the kernel's
//! packed layout directly ([`crate::im2col::im2col_packed`]), and the
//! bias add is fused into the GEMM epilogue. The backward pass shards
//! weight-gradient accumulation per worker band (transposed shards, so
//! the products need no strided packing) and reduces the shards after
//! the parallel scope.

use std::ops::Range;

use rand::Rng;

use crate::error::{NnError, Result};
use crate::gemm::int8::{gemm_i8_with, QWriteback};
use crate::gemm::{
    gemm_with, packed_b8_len, packed_b_len, Backend, Epilogue, Lhs, MatRef, PackedA, PackedA8,
    PackedARef, PackedB8Ref, PackedBRef, QEpilogue, QEpilogueI8, Rhs,
};
use crate::im2col::{col2im_add, im2col_packed, im2col_packed_i8, im2col_packed_lhs, ConvGeom};
use crate::layer::{sgd_update_span, ChainSupport, Layer, LayerCost};
use crate::quant::{
    finite_max_abs, inv_or_zero, quantize_slice_i16, ActObserver, QAct, QTensor, I8_LEVELS,
};
use crate::tensor::Tensor;
use crate::workers;

/// Configuration of a [`Conv2d`] layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dConfig {
    /// Nominal (full-width) input channel count.
    pub in_channels: usize,
    /// Nominal (full-width) output channel count.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride (same both axes).
    pub stride: usize,
    /// Zero padding (same all sides).
    pub padding: usize,
    /// Structural connectivity groups: `1` for a dense convolution, equal
    /// to `prune_groups` for the paper's group convolution.
    pub conv_groups: usize,
    /// Width-scaling partition `G` of the output channels.
    pub prune_groups: usize,
}

impl Conv2dConfig {
    fn validate(&self) -> Result<()> {
        let c = |ok: bool, reason: String| {
            if ok {
                Ok(())
            } else {
                Err(NnError::InvalidConfig { reason })
            }
        };
        c(
            self.in_channels > 0 && self.out_channels > 0,
            "channel counts must be positive".into(),
        )?;
        c(
            self.kernel > 0 && self.stride > 0,
            "kernel and stride must be positive".into(),
        )?;
        c(
            self.prune_groups > 0,
            "prune_groups must be positive".into(),
        )?;
        c(
            self.out_channels.is_multiple_of(self.prune_groups),
            format!(
                "out_channels {} not divisible by prune_groups {}",
                self.out_channels, self.prune_groups
            ),
        )?;
        c(
            self.conv_groups == 1 || self.conv_groups == self.prune_groups,
            format!(
                "conv_groups must be 1 (dense) or equal to prune_groups {} , got {}",
                self.prune_groups, self.conv_groups
            ),
        )?;
        c(
            self.in_channels.is_multiple_of(self.conv_groups),
            format!(
                "in_channels {} not divisible by conv_groups {}",
                self.in_channels, self.conv_groups
            ),
        )?;
        if self.conv_groups > 1 {
            c(
                self.in_channels.is_multiple_of(self.prune_groups),
                format!(
                    "grouped conv requires in_channels {} divisible by prune_groups {}",
                    self.in_channels, self.prune_groups
                ),
            )?;
        }
        Ok(())
    }
}

/// A 2-D convolution layer (see module docs).
#[derive(Debug)]
pub struct Conv2d {
    name: String,
    cfg: Conv2dConfig,
    /// Weights, laid out `[out_ch][in_per_group][k][k]` row-major.
    w: Vec<f32>,
    /// Per-output-channel bias.
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    vw: Vec<f32>,
    vb: Vec<f32>,
    active: usize,
    trainable: Range<usize>,
    cache: Option<Tensor>,
    backend: Backend,
    scratch: Scratch,
    /// Weight panels pre-packed for the forward GEMM, one per executed
    /// group at the current width; `None` until the first forward and
    /// after every invalidation (see [`Conv2d::invalidate_packed`]).
    packed_w: Option<Vec<PackedA>>,
    /// `Wᵀ` panels for the backward input-gradient GEMM, cached and
    /// invalidated exactly like [`Conv2d::packed_w`].
    packed_wt: Option<Vec<PackedA>>,
    /// Quantised int8 weight panels for [`Backend::QuantI8`] forward
    /// (per-tensor weight scale + one packed panel per executed
    /// group), cached and invalidated exactly like
    /// [`Conv2d::packed_w`].
    packed_w8: Option<(f32, Vec<PackedA8>)>,
    /// Input-activation range observer for the int8 path (see
    /// [`ActObserver`]).
    act_obs: ActObserver,
}

/// Reusable per-layer buffers for the GEMM backend; they only grow, so
/// steady-state forward/backward does no transient heap allocation
/// beyond the output tensor. Sized one column-matrix slot per worker
/// band ([`workers::band_count`]), so peak scratch is bounded by the
/// machine's parallelism, not the batch size.
#[derive(Default)]
struct Scratch {
    /// Packed im2col matrices (forward), one slot per worker band.
    col: Vec<f32>,
    /// Int8-forward band buffers: the packed quantised im2col matrix,
    /// preceded by a quantised copy of the sample when the input
    /// arrives as `f32` (chained layers hand over already-quantised
    /// activations and skip that slot); one slot per worker band.
    col8: Vec<i16>,
    /// Column matrices (backward: im2col then gradient columns), one
    /// slot per worker band.
    dcol: Vec<f32>,
    /// Transposed weight-gradient shards, one per worker band; reduced
    /// into the gradient buffer after the parallel scope.
    gw_shards: Vec<f32>,
    /// Bias pre-divided by the chain-edge output scale (the
    /// [`QEpilogueI8`] operand), rebuilt per chained forward without
    /// reallocating.
    qbias: Vec<f32>,
}

impl std::fmt::Debug for Scratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Scratch(col: {}, col8: {}, dcol: {}, gw_shards: {}, qbias: {})",
            self.col.len(),
            self.col8.len(),
            self.dcol.len(),
            self.gw_shards.len(),
            self.qbias.len()
        )
    }
}

impl Conv2d {
    /// Creates the layer with Kaiming-uniform initial weights drawn from
    /// `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for inconsistent configurations
    /// (zero sizes, indivisible group counts, unsupported `conv_groups`).
    pub fn new(name: impl Into<String>, cfg: Conv2dConfig, rng: &mut impl Rng) -> Result<Self> {
        cfg.validate()?;
        let in_per_group = cfg.in_channels / cfg.conv_groups;
        let fan_in = (in_per_group * cfg.kernel * cfg.kernel) as f32;
        let limit = (6.0 / fan_in).sqrt();
        let w_len = cfg.out_channels * in_per_group * cfg.kernel * cfg.kernel;
        let w = (0..w_len).map(|_| rng.gen_range(-limit..limit)).collect();
        Ok(Self {
            name: name.into(),
            cfg,
            w,
            b: vec![0.0; cfg.out_channels],
            gw: vec![0.0; w_len],
            gb: vec![0.0; cfg.out_channels],
            vw: vec![0.0; w_len],
            vb: vec![0.0; cfg.out_channels],
            active: cfg.prune_groups,
            trainable: 0..cfg.prune_groups,
            cache: None,
            backend: Backend::default(),
            scratch: Scratch::default(),
            packed_w: None,
            packed_wt: None,
            packed_w8: None,
            act_obs: ActObserver::default(),
        })
    }

    /// Drops the cached packed weight panels (f32 and int8). Must be
    /// called whenever the weights, the active width or the backend
    /// change; the next GEMM forward re-packs lazily.
    fn invalidate_packed(&mut self) {
        self.packed_w = None;
        self.packed_wt = None;
        self.packed_w8 = None;
    }

    /// The int8 input-activation observer (range seen so far, frozen
    /// state); see [`ActObserver`].
    pub fn act_observer(&self) -> ActObserver {
        self.act_obs
    }

    /// The currently selected compute backend (see
    /// [`Layer::set_backend`]).
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The layer's configuration.
    pub fn config(&self) -> Conv2dConfig {
        self.cfg
    }

    /// Currently active group count.
    pub fn active_groups(&self) -> usize {
        self.active
    }

    /// Raw weight slice (testing/inspection).
    pub fn weights(&self) -> &[f32] {
        &self.w
    }

    fn out_per_group(&self) -> usize {
        self.cfg.out_channels / self.cfg.prune_groups
    }

    fn in_per_group(&self) -> usize {
        self.cfg.in_channels / self.cfg.conv_groups
    }

    /// Output channels at the current width.
    pub fn active_out_channels(&self) -> usize {
        self.out_per_group() * self.active
    }

    /// Input channels the layer expects at the current width.
    pub fn expected_in_channels(&self) -> usize {
        if self.cfg.conv_groups == 1 {
            self.cfg.in_channels
        } else {
            (self.cfg.in_channels / self.cfg.prune_groups) * self.active
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let k = self.cfg.kernel;
        let p = self.cfg.padding;
        let s = self.cfg.stride;
        if h + 2 * p < k || w + 2 * p < k {
            return Err(NnError::ShapeMismatch {
                context: format!("conv `{}`: input smaller than kernel", self.name),
                expected: vec![k, k],
                actual: vec![h + 2 * p, w + 2 * p],
            });
        }
        Ok(((h + 2 * p - k) / s + 1, (w + 2 * p - k) / s + 1))
    }

    /// Base input-channel index (within the *active* input tensor) for
    /// output channel `oc`.
    fn input_base(&self, oc: usize) -> usize {
        if self.cfg.conv_groups == 1 {
            0
        } else {
            let group = oc / self.out_per_group();
            group * (self.cfg.in_channels / self.cfg.prune_groups)
        }
    }

    fn weight_offset(&self, oc: usize, icg: usize, ky: usize, kx: usize) -> usize {
        let k = self.cfg.kernel;
        ((oc * self.in_per_group() + icg) * k + ky) * k + kx
    }

    /// Input channels each output channel reads (shared by both
    /// backends and the cost model).
    fn icg_count(&self) -> usize {
        if self.cfg.conv_groups == 1 {
            self.cfg.in_channels
        } else {
            self.in_per_group()
        }
    }

    /// `(groups to execute, output channels per executed group)` at the
    /// current width: a dense conv is one GEMM over all active output
    /// channels, a grouped conv is one GEMM per active group.
    fn exec_groups(&self) -> (usize, usize) {
        if self.cfg.conv_groups == 1 {
            (1, self.active_out_channels())
        } else {
            (self.active, self.out_per_group())
        }
    }

    /// Lowering geometry for executed group `g` of a sample with input
    /// `h × w` and output `oh × ow`.
    fn geom(&self, g: usize, h: usize, w: usize, oh: usize, ow: usize) -> ConvGeom {
        ConvGeom {
            channels: self.icg_count(),
            ch_base: if self.cfg.conv_groups == 1 {
                0
            } else {
                g * (self.cfg.in_channels / self.cfg.prune_groups)
            },
            h,
            w,
            k: self.cfg.kernel,
            stride: self.cfg.stride,
            padding: self.cfg.padding,
            oh,
            ow,
        }
    }

    /// GEMM-backend forward: per sample and group,
    /// `Out_g = W_g · im2col(x_g) + b_g`, batch-parallel when the work
    /// pays for it. The weight operand comes pre-packed from the
    /// per-layer cache, the lowering writes the kernel's packed layout
    /// directly, and the bias add rides the GEMM epilogue — the hot
    /// loop packs nothing.
    fn forward_gemm(&mut self, input: &Tensor, out: &mut Tensor) {
        let (n, c_in, h, w) = {
            let s = input.shape();
            (s[0], s[1], s[2], s[3])
        };
        let (c_out, oh, ow) = {
            let s = out.shape();
            (s[1], s[2], s[3])
        };
        let (groups_exec, opg) = self.exec_groups();
        let kdim = self.icg_count() * self.cfg.kernel * self.cfg.kernel;
        let ohw = oh * ow;
        let col_slot = packed_b_len(kdim, ohw);
        let sample_in = c_in * h * w;
        let sample_out = c_out * ohw;
        let per_sample_macs = groups_exec * opg * ohw * kdim;
        let batch_par = n > 1 && n * per_sample_macs >= crate::gemm::PAR_MIN_WORK;

        // Pack the active weight panels once per weight version.
        if self.packed_w.is_none() {
            let weights = &self.w;
            self.packed_w = Some(
                (0..groups_exec)
                    .map(|g| {
                        PackedA::pack(
                            MatRef::new(&weights[g * opg * kdim..][..opg * kdim], kdim),
                            opg,
                            kdim,
                        )
                    })
                    .collect(),
            );
        }
        let packed_w = self.packed_w.as_ref().expect("packed above");

        // One column-matrix slot per band (bounded by the worker count,
        // not the batch size); each band reuses its slot across samples.
        let bands = workers::band_count(n, batch_par);
        self.scratch
            .col
            .resize((bands * col_slot).max(self.scratch.col.len()), 0.0);
        let geoms: Vec<ConvGeom> = (0..groups_exec)
            .map(|g| self.geom(g, h, w, oh, ow))
            .collect();
        let bias = &self.b;
        let x = input.data();
        workers::for_each_band(
            out.data_mut(),
            n,
            sample_out,
            &mut self.scratch.col,
            col_slot,
            &mut [],
            0,
            batch_par,
            |n0, out_band, col, _| {
                for (bi, out_s) in out_band.chunks_mut(sample_out).enumerate() {
                    let x_s = &x[(n0 + bi) * sample_in..][..sample_in];
                    for (g, geom) in geoms.iter().enumerate() {
                        im2col_packed(x_s, geom, col);
                        gemm_with(
                            opg,
                            ohw,
                            kdim,
                            Lhs::Packed(packed_w[g].as_ref()),
                            Rhs::Packed(PackedBRef::new(&col[..col_slot], kdim, ohw)),
                            0.0,
                            &mut out_s[g * opg * ohw..][..opg * ohw],
                            ohw,
                            !batch_par,
                            Epilogue::bias_row(&bias[g * opg..][..opg]),
                        );
                    }
                }
            },
        );
    }

    /// Quantises + packs the active weight panels once per weight
    /// version; the per-tensor scale spans every active weight.
    fn ensure_packed_w8(&mut self, groups_exec: usize, opg: usize, kdim: usize) {
        if self.packed_w8.is_none() {
            let active_w = groups_exec * opg * kdim;
            let w_scale = finite_max_abs(&self.w[..active_w]) / I8_LEVELS;
            let inv_w = inv_or_zero(w_scale);
            let weights = &self.w;
            self.packed_w8 = Some((
                w_scale,
                (0..groups_exec)
                    .map(|g| {
                        PackedA8::pack_quantized(
                            MatRef::new(&weights[g * opg * kdim..][..opg * kdim], kdim),
                            opg,
                            kdim,
                            inv_w,
                        )
                    })
                    .collect(),
            ));
        }
    }

    /// Int8-backend forward: the same per-sample, per-group structure
    /// as [`Conv2d::forward_gemm`], but on the quantised kernel — the
    /// active weights are quantised per-tensor and packed into int8
    /// panels once per weight version; each sample is quantised in one
    /// vectorised pass (scale from the layer's [`ActObserver`]) and
    /// lowered by pure integer copies into packed int8 panel layout
    /// ([`im2col_packed_i8`]); and the `i8×i8→i32` product requantises
    /// through a fused epilogue (`out = acc·scale_x·scale_w + bias`,
    /// in `f32`).
    fn forward_quant(&mut self, input: &Tensor, out: &mut Tensor, train: bool) {
        let (n, c_in, h, w) = {
            let s = input.shape();
            (s[0], s[1], s[2], s[3])
        };
        let (c_out, oh, ow) = {
            let s = out.shape();
            (s[1], s[2], s[3])
        };
        let (groups_exec, opg) = self.exec_groups();
        let kdim = self.icg_count() * self.cfg.kernel * self.cfg.kernel;
        let ohw = oh * ow;
        let sample_in = c_in * h * w;
        let sample_out = c_out * ohw;
        let per_sample_macs = groups_exec * opg * ohw * kdim;
        let batch_par = n > 1 && n * per_sample_macs >= crate::gemm::PAR_MIN_WORK_I8;
        self.ensure_packed_w8(groups_exec, opg, kdim);

        // Per-tensor activation scale: the batch's own range when the
        // observer is dynamic, the calibrated range when frozen.
        let (x_scale, inv_x) = self.act_obs.observe_scale(input.data(), train);
        crate::quant::count_quantise_pass();
        crate::quant::count_dequantise_pass();
        let (w_scale, packed_w8) = self.packed_w8.as_ref().expect("packed above");
        let q_scale = x_scale * w_scale;
        let geoms: Vec<ConvGeom> = (0..groups_exec)
            .map(|g| self.geom(g, h, w, oh, ow))
            .collect();
        let bias = &self.b;
        quant_conv_pass(
            QConvInput::F32 {
                x: input.data(),
                inv_scale: inv_x,
            },
            out.data_mut(),
            n,
            sample_in,
            sample_out,
            &geoms,
            packed_w8,
            opg,
            ohw,
            kdim,
            batch_par,
            &mut self.scratch.col8,
            |g| QEpilogue::scaled(q_scale).with_bias_row(&bias[g * opg..][..opg]),
        );
    }

    /// GEMM-backend backward, one batch-parallel pass: per sample and
    /// group, the weight gradient accumulates **transposed** into the
    /// band's private shard (`gWᵀ_g += im2col(x) · dOut_gᵀ` — the
    /// transposed form keeps both operands sequentially packable) and,
    /// when `grad_in` is wanted, the input gradient scatters back
    /// through `grad_in = col2im(W_gᵀ · dOut_g)` with a pre-packed
    /// `Wᵀ`. The shards are reduced (and transposed) into the gradient
    /// buffer after the scope; bias gradients are summed up front.
    ///
    /// `grad_in = None` is the first-layer fast path
    /// ([`Layer::backward_params`]): the input-gradient GEMM and the
    /// adjoint scatter are skipped entirely.
    fn backward_gemm(&mut self, grad_out: &Tensor, grad_in: Option<&mut Tensor>) {
        let input = self.cache.as_ref().expect("checked by backward");
        let (n, c_in, h, w) = {
            let s = input.shape();
            (s[0], s[1], s[2], s[3])
        };
        let (c_out, oh, ow) = {
            let s = grad_out.shape();
            (s[1], s[2], s[3])
        };
        let (groups_exec, opg) = self.exec_groups();
        let kdim = self.icg_count() * self.cfg.kernel * self.cfg.kernel;
        let ohw = oh * ow;
        // The band buffer first holds the packed-A column matrix for
        // the weight-gradient product, then is overwritten with the
        // plain gradient columns for the adjoint scatter; the packed
        // length (rows padded to MR) also covers the plain kdim×ohw
        // layout.
        let col_slot = crate::gemm::packed_a_len(kdim, ohw);
        let sample_in = c_in * h * w;
        let sample_out = c_out * ohw;
        let go = grad_out.data();

        for (oc, gb) in self.gb.iter_mut().enumerate().take(c_out) {
            for ni in 0..n {
                let row = &go[ni * sample_out + oc * ohw..][..ohw];
                *gb += row.iter().sum::<f32>();
            }
        }

        // Wᵀ panels for the input-gradient products, packed once per
        // weight version (cache invalidated with `packed_w`) and shared
        // by every band (not needed on the first-layer fast path).
        let compute_gi = grad_in.is_some();
        if compute_gi && self.packed_wt.is_none() {
            let weights = &self.w;
            self.packed_wt = Some(
                (0..groups_exec)
                    .map(|g| {
                        PackedA::pack(
                            MatRef::t(&weights[g * opg * kdim..][..opg * kdim], kdim),
                            kdim,
                            opg,
                        )
                    })
                    .collect(),
            );
        }
        let packed_wt: &[PackedA] = self.packed_wt.as_deref().unwrap_or(&[]);

        let geoms: Vec<ConvGeom> = (0..groups_exec)
            .map(|g| self.geom(g, h, w, oh, ow))
            .collect();
        let per_sample_macs = groups_exec * opg * ohw * kdim;
        let batch_par = n > 1 && n * per_sample_macs >= crate::gemm::PAR_MIN_WORK;
        let bands = workers::band_count(n, batch_par);
        let shard_len = groups_exec * kdim * opg;
        let Scratch {
            dcol, gw_shards, ..
        } = &mut self.scratch;
        dcol.resize((bands * col_slot).max(dcol.len()), 0.0);
        gw_shards.resize((bands * shard_len).max(gw_shards.len()), 0.0);
        // Shards accumulate across the band's samples: start from zero.
        gw_shards[..bands * shard_len].fill(0.0);
        let x = input.data();
        // Without an input gradient the band pass still needs a slice
        // to split the batch over; one element per sample stands in.
        let mut dummy: Vec<f32>;
        let (band_data, item_len): (&mut [f32], usize) = match grad_in {
            Some(gi) => (gi.data_mut(), sample_in),
            None => {
                dummy = vec![0.0; n];
                (&mut dummy, 1)
            }
        };
        workers::for_each_band(
            band_data,
            n,
            item_len,
            dcol,
            col_slot,
            gw_shards,
            shard_len,
            batch_par,
            |n0, gi_band, colbuf, shard| {
                for (bi, gi_s) in gi_band.chunks_mut(item_len).enumerate() {
                    let x_s = &x[(n0 + bi) * sample_in..][..sample_in];
                    let go_s = &go[(n0 + bi) * sample_out..][..sample_out];
                    for (g, geom) in geoms.iter().enumerate() {
                        let go_g = &go_s[g * opg * ohw..][..opg * ohw];
                        // Weight gradient, transposed: shard_g has one
                        // row per kdim entry, one column per channel.
                        // The lowering writes packed-A layout directly,
                        // so the product packs nothing for its left
                        // operand.
                        im2col_packed_lhs(x_s, geom, colbuf);
                        gemm_with(
                            kdim,
                            opg,
                            ohw,
                            Lhs::Packed(PackedARef::new(&colbuf[..col_slot], kdim, ohw)),
                            Rhs::Mat(MatRef::t(go_g, ohw)),
                            1.0,
                            &mut shard[g * kdim * opg..][..kdim * opg],
                            opg,
                            // The shard is band-private, so when the
                            // batch itself is not split the product may
                            // still fan out over its rows.
                            !batch_par,
                            Epilogue::none(),
                        );
                        if compute_gi {
                            // Input gradient: dcol = Wᵀ·dOut, reusing
                            // the column buffer, then the adjoint
                            // scatter.
                            gemm_with(
                                kdim,
                                ohw,
                                opg,
                                Lhs::Packed(packed_wt[g].as_ref()),
                                Rhs::Mat(MatRef::new(go_g, ohw)),
                                0.0,
                                colbuf,
                                ohw,
                                !batch_par,
                                Epilogue::none(),
                            );
                            col2im_add(colbuf, geom, gi_s);
                        }
                    }
                }
            },
        );

        // Reduce the transposed shards into the gradient buffer, band
        // by band (deterministic order).
        let gw = &mut self.gw;
        for band in 0..bands {
            let shard = &gw_shards[band * shard_len..][..shard_len];
            for g in 0..groups_exec {
                let shard_g = &shard[g * kdim * opg..][..kdim * opg];
                for r in 0..opg {
                    let grow = &mut gw[(g * opg + r) * kdim..][..kdim];
                    for (j, gv) in grow.iter_mut().enumerate() {
                        *gv += shard_g[j * opg + r];
                    }
                }
            }
        }
    }
}

/// The activation operand of one quantised conv pass: a raw `f32`
/// sample batch to be quantised per band, or an already-quantised
/// batch handed over by the previous layer of an int8 chain.
#[derive(Clone, Copy)]
enum QConvInput<'a> {
    /// `f32` activations, quantised per sample with `inv_scale`.
    F32 { x: &'a [f32], inv_scale: f32 },
    /// Int8-grid activations (`i16` storage) — lowered as-is.
    I8(&'a [i16]),
}

/// The shared band loop of every quantised conv forward, generic over
/// the write-back: per sample, the (possibly pre-quantised) input is
/// lowered by pure integer copies into packed int8 panels and each
/// executed group runs one `i8×i8→i32` product whose epilogue either
/// dequantises to `f32` ([`QEpilogue`]) or requantises onto the next
/// layer's int8 grid ([`QEpilogueI8`]). `make_ep` builds the epilogue
/// for executed group `g` (the bias slice differs per group).
#[allow(clippy::too_many_arguments)]
fn quant_conv_pass<E: QWriteback>(
    input: QConvInput<'_>,
    out: &mut [E::Out],
    n: usize,
    sample_in: usize,
    sample_out: usize,
    geoms: &[ConvGeom],
    packed_w8: &[PackedA8],
    opg: usize,
    ohw: usize,
    kdim: usize,
    batch_par: bool,
    scratch: &mut Vec<i16>,
    make_ep: impl Fn(usize) -> E + Sync,
) {
    let col_slot = packed_b8_len(kdim, ohw);
    // Band slot: the packed panel, preceded by a quantised sample copy
    // only when the input still needs quantising.
    let q_slot = match input {
        QConvInput::F32 { .. } => sample_in,
        QConvInput::I8(_) => 0,
    };
    let slot = q_slot + col_slot;
    let bands = workers::band_count(n, batch_par);
    scratch.resize((bands * slot).max(scratch.len()), 0);
    workers::for_each_band(
        out,
        n,
        sample_out,
        scratch,
        slot,
        &mut [],
        0,
        batch_par,
        |n0, out_band, buf, _| {
            let (qx, col) = buf.split_at_mut(q_slot);
            for (bi, out_s) in out_band.chunks_mut(sample_out).enumerate() {
                let qx_s: &[i16] = match input {
                    QConvInput::F32 { x, inv_scale } => {
                        let x_s = &x[(n0 + bi) * sample_in..][..sample_in];
                        quantize_slice_i16(x_s, inv_scale, qx);
                        qx
                    }
                    QConvInput::I8(q) => &q[(n0 + bi) * sample_in..][..sample_in],
                };
                for (g, geom) in geoms.iter().enumerate() {
                    im2col_packed_i8(qx_s, geom, col);
                    gemm_i8_with(
                        opg,
                        ohw,
                        kdim,
                        packed_w8[g].as_ref(),
                        PackedB8Ref::new(&col[..col_slot], kdim, ohw),
                        &mut out_s[g * opg * ohw..][..opg * ohw],
                        ohw,
                        !batch_par,
                        make_ep(g),
                    );
                }
            }
        },
    );
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let shape = input.shape();
        let expected_c = self.expected_in_channels();
        if shape.len() != 4 || shape[1] != expected_c {
            return Err(NnError::ShapeMismatch {
                context: format!("conv `{}` forward", self.name),
                expected: vec![0, expected_c, 0, 0],
                actual: shape.to_vec(),
            });
        }
        let (n, h, w) = (shape[0], shape[2], shape[3]);
        let (oh, ow) = self.out_hw(h, w)?;
        let c_out = self.active_out_channels();
        let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
        match self.backend {
            Backend::Reference => self.forward_reference(input, &mut out),
            Backend::Gemm => self.forward_gemm(input, &mut out),
            Backend::QuantI8 => self.forward_quant(input, &mut out, train),
        }
        if train {
            self.cache = Some(input.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self.cache.as_ref().ok_or_else(|| NnError::InvalidConfig {
            reason: format!("conv `{}`: backward before training forward", self.name),
        })?;
        let in_shape = input.shape().to_vec();
        let (n, h, w) = (in_shape[0], in_shape[2], in_shape[3]);
        let (oh, ow) = self.out_hw(h, w)?;
        let c_out = self.active_out_channels();
        grad_out.expect_shape(&[n, c_out, oh, ow], "conv backward")?;
        let mut grad_in = Tensor::zeros(&in_shape);
        match self.backend {
            Backend::Reference => self.backward_reference(grad_out, &mut grad_in),
            // Training under QuantI8 runs the f32 backward against the
            // master weights: the forward cache holds the f32 input, so
            // gradients are full-precision.
            Backend::Gemm | Backend::QuantI8 => self.backward_gemm(grad_out, Some(&mut grad_in)),
        }
        Ok(grad_in)
    }

    fn backward_params(&mut self, grad_out: &Tensor) -> Result<()> {
        if self.backend == Backend::Reference {
            // The oracle loop computes everything at once; keep it
            // untouched and drop the input gradient.
            return self.backward(grad_out).map(|_| ());
        }
        let input = self.cache.as_ref().ok_or_else(|| NnError::InvalidConfig {
            reason: format!("conv `{}`: backward before training forward", self.name),
        })?;
        let in_shape = input.shape().to_vec();
        let (n, h, w) = (in_shape[0], in_shape[2], in_shape[3]);
        let (oh, ow) = self.out_hw(h, w)?;
        let c_out = self.active_out_channels();
        grad_out.expect_shape(&[n, c_out, oh, ow], "conv backward")?;
        self.backward_gemm(grad_out, None);
        Ok(())
    }

    fn sgd_step(&mut self, lr: f32, momentum: f32) {
        // A channel trains iff its group is both active and trainable;
        // with `trainable` contiguous that is one output-channel span,
        // so the update runs slice-wise (no per-weight predicate).
        let out_per_group = self.out_per_group();
        let weights_per_oc = self.in_per_group() * self.cfg.kernel * self.cfg.kernel;
        let g_lo = self.trainable.start.min(self.active);
        let g_hi = self.trainable.end.min(self.active);
        let (oc_lo, oc_hi) = (g_lo * out_per_group, g_hi.max(g_lo) * out_per_group);
        sgd_update_span(
            &mut self.w,
            &self.gw,
            &mut self.vw,
            lr,
            momentum,
            oc_lo * weights_per_oc..oc_hi * weights_per_oc,
        );
        sgd_update_span(
            &mut self.b,
            &self.gb,
            &mut self.vb,
            lr,
            momentum,
            oc_lo..oc_hi,
        );
        // The packed panels now describe stale weights.
        self.invalidate_packed();
    }

    fn zero_grads(&mut self) {
        self.gw.fill(0.0);
        self.gb.fill(0.0);
    }

    fn set_active_groups(&mut self, active: usize) -> Result<()> {
        if active == 0 || active > self.cfg.prune_groups {
            return Err(NnError::InvalidGroup {
                reason: format!(
                    "conv `{}`: active groups {} not in 1..={}",
                    self.name, active, self.cfg.prune_groups
                ),
            });
        }
        self.active = active;
        // A cached activation from a different width must not be
        // reused, and the packed panels cover the wrong group set.
        self.cache = None;
        self.invalidate_packed();
        Ok(())
    }

    fn set_trainable_groups(&mut self, groups: Range<usize>) {
        self.trainable = groups;
    }

    fn set_backend(&mut self, backend: Backend) {
        // Re-selecting the current backend keeps the packed caches:
        // an RTM policy may issue its precision choice every control
        // epoch, and a no-op switch must not force a re-pack.
        if backend == self.backend {
            return;
        }
        self.backend = backend;
        // Also frees the panel memory when leaving the GEMM backend.
        self.invalidate_packed();
    }

    fn freeze_act_scale(&mut self, frozen: bool) {
        self.act_obs.freeze(frozen);
    }

    fn quant_observer(&self) -> Option<ActObserver> {
        Some(self.act_obs)
    }

    fn chain_support(&self) -> ChainSupport {
        if self.backend == Backend::QuantI8
            && self.act_obs.is_frozen()
            && self.act_obs.max_abs() > 0.0
        {
            ChainSupport::Quantised {
                in_scale: self.act_obs.scale_for(0.0),
            }
        } else {
            ChainSupport::Breaks
        }
    }

    /// Chained int8 forward: the same lowering/GEMM structure as the
    /// per-layer quantised path, but the input may arrive already on
    /// this layer's frozen int8 grid (no quantisation pass, no `f32`
    /// intermediate) and the output can leave on the *next* layer's
    /// grid through the saturating [`QEpilogueI8`] write-back, with
    /// ReLU fused as a free `max(0)`.
    fn forward_chained(
        &mut self,
        input: QAct,
        out_scale: Option<f32>,
        fuse_relu: bool,
    ) -> Result<QAct> {
        let shape = input.shape().to_vec();
        let expected_c = self.expected_in_channels();
        if shape.len() != 4 || shape[1] != expected_c {
            return Err(NnError::ShapeMismatch {
                context: format!("conv `{}` chained forward", self.name),
                expected: vec![0, expected_c, 0, 0],
                actual: shape,
            });
        }
        let (n, h, w) = (shape[0], shape[2], shape[3]);
        let (oh, ow) = self.out_hw(h, w)?;
        let c_out = self.active_out_channels();
        let (groups_exec, opg) = self.exec_groups();
        let kdim = self.icg_count() * self.cfg.kernel * self.cfg.kernel;
        let ohw = oh * ow;
        let sample_in = shape[1] * h * w;
        let sample_out = c_out * ohw;
        let per_sample_macs = groups_exec * opg * ohw * kdim;
        let batch_par = n > 1 && n * per_sample_macs >= crate::gemm::PAR_MIN_WORK_I8;
        self.ensure_packed_w8(groups_exec, opg, kdim);
        let (x_scale, qin) = match &input {
            QAct::F32(t) => {
                // Head of the chain: the one f32→i8 quantisation of the
                // whole forward, at this layer's frozen scale.
                let (scale, inv) = self.act_obs.observe_scale(t.data(), false);
                crate::quant::count_quantise_pass();
                (
                    scale,
                    QConvInput::F32 {
                        x: t.data(),
                        inv_scale: inv,
                    },
                )
            }
            // Mid-chain: the predecessor already requantised onto this
            // layer's frozen grid.
            QAct::I8(q) => (q.scale(), QConvInput::I8(q.data())),
        };
        let (w_scale, packed_w8) = self.packed_w8.as_ref().expect("packed above");
        let q_scale = x_scale * w_scale;
        let geoms: Vec<ConvGeom> = (0..groups_exec)
            .map(|g| self.geom(g, h, w, oh, ow))
            .collect();
        match out_scale {
            None => {
                // Tail of the chain: dequantise to f32 logits.
                crate::quant::count_dequantise_pass();
                let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
                let bias = &self.b;
                quant_conv_pass(
                    qin,
                    out.data_mut(),
                    n,
                    sample_in,
                    sample_out,
                    &geoms,
                    packed_w8,
                    opg,
                    ohw,
                    kdim,
                    batch_par,
                    &mut self.scratch.col8,
                    |g| {
                        let ep = QEpilogue::scaled(q_scale).with_bias_row(&bias[g * opg..][..opg]);
                        if fuse_relu {
                            ep.with_relu()
                        } else {
                            ep
                        }
                    },
                );
                Ok(QAct::F32(out))
            }
            Some(s_out) => {
                // Chain edge: emit saturating i8 on the next quantised
                // layer's frozen grid. The whole epilogue runs on that
                // grid: multiplier s_x·s_w/s_out, bias pre-divided
                // (into a reused scratch vector — no per-call alloc).
                let inv_out = inv_or_zero(s_out);
                let requant_scale = q_scale * inv_out;
                let mut out = QTensor::zeros(&[n, c_out, oh, ow], s_out);
                let Scratch { col8, qbias, .. } = &mut self.scratch;
                qbias.clear();
                qbias.extend(self.b.iter().map(|&b| b * inv_out));
                let qbias: &[f32] = qbias;
                quant_conv_pass(
                    qin,
                    out.data_mut(),
                    n,
                    sample_in,
                    sample_out,
                    &geoms,
                    packed_w8,
                    opg,
                    ohw,
                    kdim,
                    batch_par,
                    col8,
                    |g| {
                        let ep = QEpilogueI8::scaled(requant_scale)
                            .with_bias_row(&qbias[g * opg..][..opg]);
                        if fuse_relu {
                            ep.with_relu()
                        } else {
                            ep
                        }
                    },
                );
                Ok(QAct::I8(out))
            }
        }
    }

    fn cost(&self, in_shape: &[usize]) -> Result<LayerCost> {
        let expected_c = self.expected_in_channels();
        if in_shape.len() != 3 || in_shape[0] != expected_c {
            return Err(NnError::ShapeMismatch {
                context: format!("conv `{}` cost", self.name),
                expected: vec![expected_c, 0, 0],
                actual: in_shape.to_vec(),
            });
        }
        let (oh, ow) = self.out_hw(in_shape[1], in_shape[2])?;
        let c_out = self.active_out_channels();
        let icg_count = self.icg_count();
        let k2 = self.cfg.kernel * self.cfg.kernel;
        Ok(LayerCost {
            macs: (c_out * oh * ow * icg_count * k2) as f64,
            params: c_out * icg_count * k2 + c_out,
            out_shape: vec![c_out, oh, ow],
        })
    }

    fn param_count_total(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn quantize_weights(&mut self, bits: u32) {
        crate::quant::quantize_slice(&mut self.w, bits);
        crate::quant::quantize_slice(&mut self.b, bits);
        self.invalidate_packed();
    }
}

impl Conv2d {
    /// Reference-backend forward: the original scalar loop nest, kept
    /// as the correctness oracle.
    fn forward_reference(&self, input: &Tensor, out: &mut Tensor) {
        let shape = input.shape();
        let (n, c_in, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (c_out, oh, ow) = {
            let s = out.shape();
            (s[1], s[2], s[3])
        };
        let k = self.cfg.kernel;
        let s = self.cfg.stride;
        let p = self.cfg.padding as isize;
        let icg_count = self.icg_count();

        let x = input.data();
        let o = out.data_mut();
        for ni in 0..n {
            for oc in 0..c_out {
                let base = self.input_base(oc);
                let bias = self.b[oc];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias;
                        for icg in 0..icg_count {
                            let ic = base + icg;
                            let plane = (ni * c_in + ic) * h * w;
                            for ky in 0..k {
                                let iy = (oy * s + ky) as isize - p;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                let row = plane + iy as usize * w;
                                for kx in 0..k {
                                    let ix = (ox * s + kx) as isize - p;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += self.w[self.weight_offset(oc, icg, ky, kx)]
                                        * x[row + ix as usize];
                                }
                            }
                        }
                        o[((ni * c_out + oc) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
    }

    /// Reference-backend backward: the original scalar loop nest.
    fn backward_reference(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        let input = self.cache.as_ref().expect("checked by backward");
        let in_shape = input.shape();
        let (n, c_in, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        let (c_out, oh, ow) = {
            let s = grad_out.shape();
            (s[1], s[2], s[3])
        };

        let k = self.cfg.kernel;
        let s = self.cfg.stride;
        let p = self.cfg.padding as isize;
        let icg_count = self.icg_count();

        let x = input.data();
        let go = grad_out.data();
        let gi = grad_in.data_mut();
        for ni in 0..n {
            for oc in 0..c_out {
                let base = self.input_base(oc);
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[((ni * c_out + oc) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        self.gb[oc] += g;
                        for icg in 0..icg_count {
                            let ic = base + icg;
                            let plane = (ni * c_in + ic) * h * w;
                            for ky in 0..k {
                                let iy = (oy * s + ky) as isize - p;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                let row = plane + iy as usize * w;
                                for kx in 0..k {
                                    let ix = (ox * s + kx) as isize - p;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let woff = self.weight_offset(oc, icg, ky, kx);
                                    let xoff = row + ix as usize;
                                    self.gw[woff] += g * x[xoff];
                                    gi[xoff] += g * self.w[woff];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn dense_cfg() -> Conv2dConfig {
        Conv2dConfig {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            conv_groups: 1,
            prune_groups: 4,
        }
    }

    fn grouped_cfg() -> Conv2dConfig {
        Conv2dConfig {
            in_channels: 8,
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            conv_groups: 4,
            prune_groups: 4,
        }
    }

    #[test]
    fn config_validation() {
        let mut bad = dense_cfg();
        bad.out_channels = 6; // not divisible by 4
        assert!(Conv2d::new("c", bad, &mut rng()).is_err());
        let mut bad = grouped_cfg();
        bad.conv_groups = 2; // neither 1 nor prune_groups
        assert!(Conv2d::new("c", bad, &mut rng()).is_err());
        let mut bad = grouped_cfg();
        bad.in_channels = 6; // not divisible by conv_groups=4
        assert!(Conv2d::new("c", bad, &mut rng()).is_err());
        let mut bad = dense_cfg();
        bad.kernel = 0;
        assert!(Conv2d::new("c", bad, &mut rng()).is_err());
    }

    #[test]
    fn forward_shape_dense_same_padding() {
        let mut c = Conv2d::new("c", dense_cfg(), &mut rng()).unwrap();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = c.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &[2, 8, 16, 16]);
    }

    #[test]
    fn forward_rejects_wrong_channels() {
        let mut c = Conv2d::new("c", dense_cfg(), &mut rng()).unwrap();
        assert!(c.forward(&Tensor::zeros(&[1, 4, 8, 8]), false).is_err());
    }

    #[test]
    fn known_value_identity_kernel() {
        // 1x1 kernel, single in/out channel, weight = 2, bias = 1.
        let cfg = Conv2dConfig {
            in_channels: 1,
            out_channels: 1,
            kernel: 1,
            stride: 1,
            padding: 0,
            conv_groups: 1,
            prune_groups: 1,
        };
        let mut c = Conv2d::new("c", cfg, &mut rng()).unwrap();
        c.w[0] = 2.0;
        c.b[0] = 1.0;
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = c.forward(&x, false).unwrap();
        assert_eq!(y.data(), &[3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn width_scaling_shrinks_output_channels() {
        let mut c = Conv2d::new("c", dense_cfg(), &mut rng()).unwrap();
        c.set_active_groups(2).unwrap();
        let y = c.forward(&Tensor::zeros(&[1, 3, 8, 8]), false).unwrap();
        assert_eq!(y.shape(), &[1, 4, 8, 8]);
        assert_eq!(c.active_out_channels(), 4);
        assert_eq!(c.expected_in_channels(), 3, "dense conv keeps full input");
    }

    #[test]
    fn grouped_width_scaling_shrinks_input_too() {
        let mut c = Conv2d::new("c", grouped_cfg(), &mut rng()).unwrap();
        c.set_active_groups(1).unwrap();
        assert_eq!(c.expected_in_channels(), 2);
        let y = c.forward(&Tensor::zeros(&[1, 2, 8, 8]), false).unwrap();
        assert_eq!(y.shape(), &[1, 2, 8, 8]);
    }

    #[test]
    fn pruned_output_prefix_matches_full_model() {
        // The defining property of group pruning (Fig 3c): running the
        // first g groups produces *exactly* the same values as the full
        // model's first g groups — switching widths needs no retraining.
        let mut c = Conv2d::new("c", grouped_cfg(), &mut rng()).unwrap();
        let mut r = rng();
        let x_full = Tensor::from_vec(
            &[1, 8, 4, 4],
            (0..128).map(|_| r.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap();
        let y_full = c.forward(&x_full, false).unwrap();

        c.set_active_groups(2).unwrap();
        // Active input = first 4 channels.
        let x_half = Tensor::from_vec(&[1, 4, 4, 4], x_full.data()[..64].to_vec()).unwrap();
        let y_half = c.forward(&x_half, false).unwrap();
        assert_eq!(y_half.shape(), &[1, 4, 4, 4]);
        for oc in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    assert!((y_half.at(&[0, oc, y, x]) - y_full.at(&[0, oc, y, x])).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn invalid_active_groups_rejected() {
        let mut c = Conv2d::new("c", dense_cfg(), &mut rng()).unwrap();
        assert!(c.set_active_groups(0).is_err());
        assert!(c.set_active_groups(5).is_err());
        assert!(c.set_active_groups(4).is_ok());
    }

    /// Finite-difference gradient check for weights, bias and input.
    #[test]
    fn gradient_check() {
        let cfg = Conv2dConfig {
            in_channels: 2,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
            conv_groups: 1,
            prune_groups: 2,
        };
        let mut c = Conv2d::new("c", cfg, &mut rng()).unwrap();
        let mut r = rng();
        let x = Tensor::from_vec(
            &[1, 2, 4, 4],
            (0..32).map(|_| r.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap();

        // Loss = sum(output); dL/dy = 1.
        let y = c.forward(&x, true).unwrap();
        let grad_out = Tensor::full(y.shape(), 1.0);
        let gx = c.backward(&grad_out).unwrap();

        let eps = 1e-3_f32;
        // Check a sample of weight gradients. Direct weight pokes
        // bypass the layer API, so drop the packed panels by hand.
        for &wi in &[0usize, 5, 17, 23] {
            let orig = c.w[wi];
            c.w[wi] = orig + eps;
            c.invalidate_packed();
            let lp = c.forward(&x, false).unwrap().sum();
            c.w[wi] = orig - eps;
            c.invalidate_packed();
            let lm = c.forward(&x, false).unwrap().sum();
            c.w[wi] = orig;
            c.invalidate_packed();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - c.gw[wi]).abs() < 2e-2,
                "weight {wi}: numeric {numeric} vs analytic {}",
                c.gw[wi]
            );
        }
        // Check a sample of input gradients.
        let mut x2 = x.clone();
        for &xi in &[0usize, 9, 31] {
            let orig = x2.data()[xi];
            x2.data_mut()[xi] = orig + eps;
            let lp = c.forward(&x2, false).unwrap().sum();
            x2.data_mut()[xi] = orig - eps;
            let lm = c.forward(&x2, false).unwrap().sum();
            x2.data_mut()[xi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gx.data()[xi]).abs() < 2e-2,
                "input {xi}: numeric {numeric} vs analytic {}",
                gx.data()[xi]
            );
        }
        // Bias gradient: dL/db = number of output positions.
        assert!((c.gb[0] - 16.0).abs() < 1e-4);
    }

    #[test]
    fn sgd_step_freezes_inactive_and_non_trainable_groups() {
        let mut c = Conv2d::new("c", grouped_cfg(), &mut rng()).unwrap();
        let w_before = c.w.clone();
        // Active = 2 groups; trainable = group 1 only.
        c.set_active_groups(2).unwrap();
        c.set_trainable_groups(1..2);
        let x = Tensor::full(&[1, 4, 4, 4], 1.0);
        let y = c.forward(&x, true).unwrap();
        let _ = c.backward(&Tensor::full(y.shape(), 1.0)).unwrap();
        c.sgd_step(0.1, 0.0);

        let weights_per_oc = 2 * 9; // in_per_group=2, k=3
                                    // Group 0 (oc 0..2) frozen.
        for (wi, (&now, &was)) in
            c.w.iter()
                .zip(&w_before)
                .enumerate()
                .take(2 * weights_per_oc)
        {
            assert_eq!(now, was, "group 0 weight {wi} must be frozen");
        }
        // Group 1 (oc 2..4) updated.
        let updated = (2 * weights_per_oc..4 * weights_per_oc).any(|wi| c.w[wi] != w_before[wi]);
        assert!(updated, "group 1 weights must update");
        // Groups 2-3 inactive: no gradient, no update.
        for (wi, (&now, &was)) in
            c.w.iter()
                .zip(&w_before)
                .enumerate()
                .skip(4 * weights_per_oc)
        {
            assert_eq!(now, was, "inactive group weight {wi}");
        }
    }

    /// The sharded parallel backward (per-band transposed gradient
    /// shards, reduced after the scope) must agree with the reference
    /// loops whatever the band count. The machine's real worker count
    /// is irrelevant here: the test pins it, so multi-band splitting
    /// and the shard reduction run even on a single-core host.
    #[test]
    fn sharded_backward_matches_reference_across_band_counts() {
        // Large enough that `batch_par` passes the work threshold:
        // 16·196·72 MACs/sample × batch 10 ≈ 2.8M ≥ 2^21.
        let cfg = Conv2dConfig {
            in_channels: 8,
            out_channels: 16,
            kernel: 3,
            stride: 1,
            padding: 1,
            conv_groups: 1,
            prune_groups: 2,
        };
        let x = Tensor::random(&[10, 8, 14, 14], &mut rng());
        let mut reference = Conv2d::new("c", cfg, &mut rng()).unwrap();
        reference.set_backend(Backend::Reference);
        let y = reference.forward(&x, true).unwrap();
        let go = Tensor::random(y.shape(), &mut rng());
        let gx_ref = reference.backward(&go).unwrap();

        for bands in [1usize, 2, 3, 8] {
            crate::workers::FORCE_WORKERS.with(|f| f.set(Some(bands)));
            let mut gemm = Conv2d::new("c", cfg, &mut rng()).unwrap();
            let _ = gemm.forward(&x, true).unwrap();
            let gx = gemm.backward(&go).unwrap();
            crate::workers::FORCE_WORKERS.with(|f| f.set(None));
            for (i, (&a, &b)) in gx_ref.data().iter().zip(gx.data()).enumerate() {
                assert!(
                    (a - b).abs() < 1e-4,
                    "bands {bands}: grad_in[{i}] {a} vs {b}"
                );
            }
            for (i, (&a, &b)) in reference.gw.iter().zip(&gemm.gw).enumerate() {
                assert!((a - b).abs() < 1e-3, "bands {bands}: gw[{i}] {a} vs {b}");
            }
            for (i, (&a, &b)) in reference.gb.iter().zip(&gemm.gb).enumerate() {
                assert!((a - b).abs() < 1e-3, "bands {bands}: gb[{i}] {a} vs {b}");
            }
        }
    }

    /// `backward_params` (the first-layer fast path) must accumulate
    /// exactly the same parameter gradients as full `backward`.
    #[test]
    fn backward_params_matches_full_backward_gradients() {
        let cfg = dense_cfg();
        let x = Tensor::random(&[3, 3, 8, 8], &mut rng());
        let mut full = Conv2d::new("c", cfg, &mut rng()).unwrap();
        let y = full.forward(&x, true).unwrap();
        let go = Tensor::random(y.shape(), &mut rng());
        let _ = full.backward(&go).unwrap();

        let mut fast = Conv2d::new("c", cfg, &mut rng()).unwrap();
        let _ = fast.forward(&x, true).unwrap();
        fast.backward_params(&go).unwrap();
        assert_eq!(full.gw, fast.gw, "weight gradients must be identical");
        assert_eq!(full.gb, fast.gb, "bias gradients must be identical");
    }

    /// Every public mutation of the weights or the execution geometry
    /// must drop the packed-panel cache: after each one, the GEMM
    /// forward has to agree with a reference forward of the same layer.
    #[test]
    fn packed_weight_cache_tracks_every_mutation() {
        let mut c = Conv2d::new("c", grouped_cfg(), &mut rng()).unwrap();
        let x_full = Tensor::random(&[2, 8, 6, 6], &mut rng());
        let check = |c: &mut Conv2d, x: &Tensor, what: &str| {
            let y_gemm = c.forward(x, false).unwrap();
            c.set_backend(Backend::Reference);
            let y_ref = c.forward(x, false).unwrap();
            c.set_backend(Backend::Gemm);
            for (i, (&a, &b)) in y_gemm.data().iter().zip(y_ref.data()).enumerate() {
                assert!(
                    (a - b).abs() < 1e-5,
                    "{what}[{i}]: gemm {a} vs reference {b}"
                );
            }
        };
        check(&mut c, &x_full, "initial");
        // Weight update through the training API.
        let y = c.forward(&x_full, true).unwrap();
        c.backward(&Tensor::full(y.shape(), 0.5)).unwrap();
        c.sgd_step(0.1, 0.0);
        check(&mut c, &x_full, "after sgd_step");
        // Width switch repacks the group panels.
        c.set_active_groups(2).unwrap();
        let x_half = Tensor::random(&[2, 4, 6, 6], &mut rng());
        check(&mut c, &x_half, "after width switch");
        // Quantisation rewrites the weights in place.
        c.quantize_weights(6);
        check(&mut c, &x_half, "after quantisation");
    }

    /// The int8 weight-panel cache must track every mutation exactly
    /// like the f32 cache: after each one, a cached QuantI8 forward has
    /// to equal the forward of a freshly-built layer with identical
    /// weights (which packs from scratch), bit for bit.
    #[test]
    fn quant_packed_cache_tracks_every_mutation() {
        let mut c = Conv2d::new("c", grouped_cfg(), &mut rng()).unwrap();
        c.set_backend(Backend::QuantI8);
        let check = |c: &mut Conv2d, x: &Tensor, what: &str| {
            let y_cached = c.forward(x, false).unwrap();
            let mut fresh = Conv2d::new("c", c.config(), &mut rng()).unwrap();
            fresh.w.copy_from_slice(&c.w);
            fresh.b.copy_from_slice(&c.b);
            fresh.set_active_groups(c.active_groups()).unwrap();
            fresh.set_backend(Backend::QuantI8);
            let y_fresh = fresh.forward(x, false).unwrap();
            assert_eq!(y_cached.data(), y_fresh.data(), "{what}: stale int8 panels");
        };
        let x_full = Tensor::random(&[2, 8, 6, 6], &mut rng());
        check(&mut c, &x_full, "initial");
        // Weight update through the training API (QuantI8 backward runs
        // the f32 gradient path against the master weights).
        let y = c.forward(&x_full, true).unwrap();
        c.backward(&Tensor::full(y.shape(), 0.5)).unwrap();
        c.sgd_step(0.1, 0.0);
        check(&mut c, &x_full, "after sgd_step");
        // Width switch re-quantises for the new active prefix.
        c.set_active_groups(2).unwrap();
        let x_half = Tensor::random(&[2, 4, 6, 6], &mut rng());
        check(&mut c, &x_half, "after width switch");
        // Weight-grid quantisation rewrites the masters in place.
        c.quantize_weights(6);
        check(&mut c, &x_half, "after quantisation");
    }

    /// The chained forward's batch-parallel band split must be
    /// bit-identical to the serial pass for both input forms (f32 head
    /// of a chain, pre-quantised mid-chain) and both output forms
    /// (requantised i8 edge, dequantised f32 tail): bands are fully
    /// independent row ranges over pre-packed operands.
    #[test]
    fn chained_band_split_matches_serial() {
        use crate::quant::{QAct, QTensor};
        // Big enough that `batch_par` passes the work threshold:
        // 16·196·72 MACs/sample × batch 10 ≈ 2.3M ≥ 2^21.
        let cfg = Conv2dConfig {
            in_channels: 8,
            out_channels: 16,
            kernel: 3,
            stride: 1,
            padding: 1,
            conv_groups: 1,
            prune_groups: 2,
        };
        let mut c = Conv2d::new("c", cfg, &mut rng()).unwrap();
        c.set_backend(Backend::QuantI8);
        let xf = Tensor::random(&[10, 8, 14, 14], &mut rng());
        let _ = c.forward(&xf, false).unwrap();
        c.freeze_act_scale(true);
        let mut qx = QTensor::zeros(xf.shape(), c.act_observer().scale_for(0.0));
        let inv = 1.0 / qx.scale();
        crate::quant::quantize_slice_i16(xf.data(), inv, qx.data_mut());
        for (input, what) in [
            (QAct::F32(xf.clone()), "f32 input"),
            (QAct::I8(qx.clone()), "i8 input"),
        ] {
            for (out_scale, fuse) in [(None, false), (Some(0.05), true)] {
                let serial = c
                    .forward_chained(input.clone(), out_scale, fuse)
                    .expect("serial chained forward");
                crate::workers::FORCE_WORKERS.with(|f| f.set(Some(4)));
                let banded = c
                    .forward_chained(input.clone(), out_scale, fuse)
                    .expect("banded chained forward");
                crate::workers::FORCE_WORKERS.with(|f| f.set(None));
                match (serial, banded) {
                    (QAct::F32(a), QAct::F32(b)) => {
                        assert!(
                            a.data()
                                .iter()
                                .zip(b.data())
                                .all(|(x, y)| x.to_bits() == y.to_bits()),
                            "{what}, f32 out: banded differs from serial"
                        );
                    }
                    (QAct::I8(a), QAct::I8(b)) => {
                        assert_eq!(a.data(), b.data(), "{what}, i8 out");
                        assert_eq!(a.scale(), b.scale());
                    }
                    _ => panic!("{what}: output form changed with banding"),
                }
            }
        }
    }

    /// Re-selecting the current backend keeps the packed caches — an
    /// RTM policy may re-issue its precision choice every control
    /// epoch, and a no-op switch must not force a per-layer re-pack.
    #[test]
    fn reselecting_backend_keeps_packed_caches() {
        let mut c = Conv2d::new("c", dense_cfg(), &mut rng()).unwrap();
        c.set_backend(Backend::QuantI8);
        let x = Tensor::full(&[1, 3, 8, 8], 0.5);
        let _ = c.forward(&x, false).unwrap();
        assert!(c.packed_w8.is_some());
        c.set_backend(Backend::QuantI8);
        assert!(c.packed_w8.is_some(), "no-op switch dropped the panels");
        c.set_backend(Backend::Gemm);
        assert!(c.packed_w8.is_none(), "real switch must invalidate");
    }

    /// The activation observer records the ranges QuantI8 forwards see,
    /// and freezing pins the quantisation scale: inputs beyond the
    /// frozen range saturate instead of rescaling.
    #[test]
    fn act_observer_records_and_freezes() {
        let mut c = Conv2d::new("c", dense_cfg(), &mut rng()).unwrap();
        c.set_backend(Backend::QuantI8);
        assert_eq!(c.act_observer().max_abs(), 0.0);
        let _ = c.forward(&Tensor::full(&[1, 3, 8, 8], 0.5), false).unwrap();
        assert_eq!(c.act_observer().max_abs(), 0.5);
        let _ = c
            .forward(&Tensor::full(&[1, 3, 8, 8], -2.0), false)
            .unwrap();
        assert_eq!(c.act_observer().max_abs(), 2.0);
        // Freeze at the observed range; a 4x larger input now saturates
        // at ±127 of the frozen scale, so the output equals that of an
        // input clamped to the frozen range.
        c.freeze_act_scale(true);
        assert!(c.act_observer().is_frozen());
        let y_big = c.forward(&Tensor::full(&[1, 3, 8, 8], 8.0), false).unwrap();
        let y_clamped = c.forward(&Tensor::full(&[1, 3, 8, 8], 2.0), false).unwrap();
        assert_eq!(y_big.data(), y_clamped.data(), "beyond-range saturates");
        // Unfreeze: dynamic scaling resumes and the outputs differ.
        c.freeze_act_scale(false);
        let y_dyn = c.forward(&Tensor::full(&[1, 3, 8, 8], 8.0), false).unwrap();
        assert_ne!(y_dyn.data(), y_clamped.data());
    }

    /// Training with the QuantI8 backend selected: forward runs int8,
    /// backward accumulates full-precision gradients from the cached
    /// f32 input — the loss must still fall.
    #[test]
    fn quant_i8_training_reduces_loss() {
        let mut c = Conv2d::new("c", dense_cfg(), &mut rng()).unwrap();
        c.set_backend(Backend::QuantI8);
        let x = Tensor::random(&[2, 3, 6, 6], &mut rng());
        let loss = |y: &Tensor| y.data().iter().map(|v| v * v).sum::<f32>();
        let y0 = c.forward(&x, true).unwrap();
        let first = loss(&y0);
        let mut y = y0;
        for _ in 0..8 {
            // dL/dy = 2y for L = Σy².
            let grad =
                Tensor::from_vec(y.shape(), y.data().iter().map(|v| 2.0 * v).collect()).unwrap();
            c.zero_grads();
            c.backward(&grad).unwrap();
            c.sgd_step(0.01, 0.0);
            y = c.forward(&x, true).unwrap();
        }
        let last = loss(&y);
        assert!(
            last < first * 0.5,
            "squared-output loss should fall: {first} -> {last}"
        );
    }

    #[test]
    fn cost_scales_with_active_groups() {
        let mut c = Conv2d::new("c", grouped_cfg(), &mut rng()).unwrap();
        let full = c.cost(&[8, 16, 16]).unwrap();
        c.set_active_groups(1).unwrap();
        let quarter = c.cost(&[2, 16, 16]).unwrap();
        assert!((quarter.macs / full.macs - 0.25).abs() < 1e-9);
        assert_eq!(full.out_shape, vec![8, 16, 16]);
        assert_eq!(quarter.out_shape, vec![2, 16, 16]);
        // Total params independent of width.
        assert_eq!(c.param_count_total(), 8 * 2 * 9 + 8);
    }

    #[test]
    fn dense_cost_formula() {
        let c = Conv2d::new("c", dense_cfg(), &mut rng()).unwrap();
        let cost = c.cost(&[3, 16, 16]).unwrap();
        // 8 out * 16*16 positions * 3 in * 9 kernel
        assert_eq!(cost.macs, (8 * 256 * 3 * 9) as f64);
        assert_eq!(cost.params, 8 * 3 * 9 + 8);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut c = Conv2d::new("c", dense_cfg(), &mut rng()).unwrap();
        assert!(c.backward(&Tensor::zeros(&[1, 8, 16, 16])).is_err());
    }

    #[test]
    fn stride_two_output_shape() {
        let cfg = Conv2dConfig {
            stride: 2,
            ..dense_cfg()
        };
        let mut c = Conv2d::new("c", cfg, &mut rng()).unwrap();
        let y = c.forward(&Tensor::zeros(&[1, 3, 16, 16]), false).unwrap();
        // (16 + 2 - 3)/2 + 1 = 8
        assert_eq!(y.shape(), &[1, 8, 8, 8]);
    }
}
