//! A minimal dense `f32` tensor.
//!
//! Row-major (C-order) layout; the last axis is contiguous. The layer
//! implementations index the raw data slice directly for speed, while tests
//! and user code can use the checked [`Tensor::at`]/[`Tensor::at_mut`]
//! accessors.

use std::fmt;

use rand::Rng;

use crate::error::{NnError, Result};

/// A dense, row-major `f32` tensor of arbitrary rank.
///
/// # Examples
///
/// ```
/// use eml_nn::tensor::Tensor;
///
/// let mut t = Tensor::zeros(&[2, 3]);
/// *t.at_mut(&[1, 2]) = 5.0;
/// assert_eq!(t.at(&[1, 2]), 5.0);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape has a zero-sized axis; empty tensors are never
    /// meaningful in this library and always indicate a bug.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(
            !shape.is_empty() && shape.iter().all(|&d| d > 0),
            "tensor shape must be non-empty with positive axes, got {shape:?}"
        );
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let mut t = Self::zeros(shape);
        t.data.fill(value);
        t
    }

    /// Creates a tensor of uniform random values in `[-1, 1)` — the
    /// standard probe input of the test and benchmark suites.
    ///
    /// # Panics
    ///
    /// Panics on invalid shapes (see [`Tensor::zeros`]).
    pub fn random(shape: &[usize], rng: &mut impl Rng) -> Self {
        let mut t = Self::zeros(shape);
        for v in &mut t.data {
            *v = rng.gen_range(-1.0..1.0);
        }
        t
    }

    /// Overwrites every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len()` does not equal the
    /// product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self> {
        let len: usize = shape.iter().product();
        if len != data.len() || shape.is_empty() {
            return Err(NnError::ShapeMismatch {
                context: "Tensor::from_vec".into(),
                expected: shape.to_vec(),
                actual: vec![data.len()],
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
        })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the raw data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Computes the linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any component is out of range.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.shape.len(),
            "index rank {} does not match tensor rank {}",
            index.len(),
            self.shape.len()
        );
        let mut off = 0;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(
                ix < dim,
                "index {ix} out of bounds for axis {i} (size {dim})"
            );
            off = off * dim + ix;
        }
        off
    }

    /// Checked element read.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices (see [`Tensor::offset`]).
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Checked mutable element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices (see [`Tensor::offset`]).
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.offset(index);
        &mut self.data[off]
    }

    /// Returns a copy reshaped to `shape` (same element count).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the element counts differ.
    pub fn reshaped(&self, shape: &[usize]) -> Result<Self> {
        Self::from_vec(shape, self.data.clone())
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum element (NaN-free data assumed).
    ///
    /// # Panics
    ///
    /// Never panics for constructed tensors (non-empty by invariant).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element in the flattened data.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Verifies the tensor has the expected shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] with the given context on failure.
    pub fn expect_shape(&self, shape: &[usize], context: &str) -> Result<()> {
        if self.shape != shape {
            return Err(NnError::ShapeMismatch {
                context: context.into(),
                expected: shape.to_vec(),
                actual: self.shape.clone(),
            });
        }
        Ok(())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Avoid dumping megabytes of floats: show shape and a data preview.
        let preview: Vec<f32> = self.data.iter().copied().take(8).collect();
        let ellipsis = if self.data.len() > 8 { ", …" } else { "" };
        write!(f, "Tensor{:?} {preview:?}{ellipsis}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 2]);
        assert_eq!(z.data(), &[0.0; 4]);
        let f = Tensor::full(&[3], 2.5);
        assert_eq!(f.data(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn random_is_bounded_and_seeded() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let a = Tensor::random(&[4, 5], &mut StdRng::seed_from_u64(3));
        let b = Tensor::random(&[4, 5], &mut StdRng::seed_from_u64(3));
        assert_eq!(a.data(), b.data(), "same seed, same tensor");
        assert!(a.data().iter().all(|v| (-1.0..1.0).contains(v)));
        assert!(a.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn fill_overwrites() {
        let mut t = Tensor::random(&[3], &mut {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(1)
        });
        t.fill(7.0);
        assert_eq!(t.data(), &[7.0, 7.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "positive axes")]
    fn zero_axis_rejected() {
        let _ = Tensor::zeros(&[2, 0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 4]).is_ok());
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(&[], vec![]).is_err());
    }

    #[test]
    fn row_major_offsets() {
        let t = Tensor::from_vec(&[2, 3, 4], (0..24).map(|i| i as f32).collect()).unwrap();
        // offset(i,j,k) = i*12 + j*4 + k
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[1, 0, 0]), 12.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
        assert_eq!(t.offset(&[1, 1, 1]), 17);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn wrong_rank_index_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[0]);
    }

    #[test]
    fn map_and_reduce() {
        let t = Tensor::from_vec(&[4], vec![1.0, -2.0, 3.0, -4.0]).unwrap();
        let relu = t.map(|x| x.max(0.0));
        assert_eq!(relu.data(), &[1.0, 0.0, 3.0, 0.0]);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.mean(), -0.5);
    }

    #[test]
    fn map_inplace_mutates() {
        let mut t = Tensor::full(&[2], 2.0);
        t.map_inplace(|x| x * x);
        assert_eq!(t.data(), &[4.0, 4.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshaped(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshaped(&[4, 2]).is_err());
    }

    #[test]
    fn expect_shape_reports_context() {
        let t = Tensor::zeros(&[1, 2]);
        let err = t.expect_shape(&[2, 1], "unit test").unwrap_err();
        assert!(err.to_string().contains("unit test"));
        assert!(t.expect_shape(&[1, 2], "ok").is_ok());
    }

    #[test]
    fn debug_output_is_bounded() {
        let t = Tensor::zeros(&[100, 100]);
        let s = format!("{t:?}");
        assert!(s.len() < 200, "debug output should preview, not dump: {s}");
        assert!(s.contains("[100, 100]"));
    }
}
