//! Error types for the neural-network library.

use std::error::Error;
use std::fmt;

/// Errors returned by network construction and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// Tensor shapes are incompatible with the requested operation.
    ShapeMismatch {
        /// What was being attempted.
        context: String,
        /// Shape that was expected.
        expected: Vec<usize>,
        /// Shape that was provided.
        actual: Vec<usize>,
    },
    /// A layer or network was configured with invalid hyper-parameters.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A group index or count is inconsistent with the network's partition.
    InvalidGroup {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch in {context}: expected {expected:?}, got {actual:?}"
            ),
            Self::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Self::InvalidGroup { reason } => write!(f, "invalid group: {reason}"),
        }
    }
}

impl Error for NnError {}

/// Convenience alias for NN results.
pub type Result<T> = std::result::Result<T, NnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NnError::ShapeMismatch {
            context: "conv2d forward".into(),
            expected: vec![1, 3, 16, 16],
            actual: vec![1, 1, 16, 16],
        };
        let s = e.to_string();
        assert!(s.contains("conv2d forward"));
        assert!(s.contains("[1, 3, 16, 16]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
