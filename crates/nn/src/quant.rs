//! Quantization — the *data precision* application knob of the paper's
//! Fig 5, in both of its forms.
//!
//! Alongside the width knob, the paper lists "data precision" among the
//! application knobs an RTM can turn. This module implements symmetric
//! uniform quantization two ways:
//!
//! 1. **Simulation** ([`quantize_network`]): layer weights are snapped
//!    in place to a `2^(bits−1) − 1`-step grid scaled to the layer's
//!    absolute maximum, while arithmetic stays `f32` — the standard way
//!    to measure PTQ accuracy impact at *any* bit width.
//! 2. **Execution** ([`Precision::Int8`] /
//!    [`crate::gemm::Backend::QuantI8`]): `Conv2d`/`Linear` forward
//!    passes run on the real int8 kernel ([`crate::gemm::int8`]) —
//!    per-tensor int8 weights packed and cached per weight version,
//!    activations quantised through a per-layer [`ActObserver`] scale,
//!    exact `i32` accumulation and a fused requantisation epilogue. The
//!    precision knob then trades **measured** latency against
//!    **measured** accuracy instead of simulating it.
//!
//! Combined with [`crate::metrics::evaluate`], either path yields the
//! accuracy-vs-precision trade-off curve the RTM exploits.
//!
//! # Chained int8 execution
//!
//! With **frozen** activation scales (static quantisation, see
//! [`ActObserver::freeze`]), the executed path goes one step further:
//! [`crate::network::Network::plan_quant_chain`] resolves, per edge
//! between quantised layers, the requantisation multiplier that lets
//! each layer emit **saturating int8 activations straight from the
//! GEMM write-back** ([`crate::gemm::QEpilogueI8`]) instead of
//! dequantising to `f32` and re-quantising at the next layer.
//!
//! The chained-scale algebra: a quantised layer sees input on the int8
//! grid at scale `s_x` and weights at scale `s_w`, so its exact `i32`
//! accumulator carries real value `acc · s_x·s_w` — the **accumulator
//! scale is `s_x · s_w`**. To hand the next quantised layer input on
//! *its* frozen grid `s_out`, the epilogue applies one multiplier:
//!
//! ```text
//! q_out = round_sat(acc · (s_x·s_w / s_out) + b/s_out)     [± ReLU]
//! ```
//!
//! ReLU rides along as a free `max(0)` before the round, and MaxPool
//! commutes exactly with the (monotone) round-and-clamp, so the
//! ReLU/pool layers between two convolutions run order-preserving
//! integer fast paths on the [`QTensor`] — the whole forward performs
//! exactly **one** `f32`→int8 quantisation (the network input) and
//! **one** int8→`f32` dequantisation (the logits), regardless of
//! depth. Chaining only engages where scales are frozen: any layer
//! with a dynamic (unfrozen) observer falls back to the per-layer
//! `f32` round-trip path for itself, splitting the chain around it and
//! keeping the dynamic-scale semantics intact. The [`layer_io_events`]
//! counters instrument exactly this invariant.

use std::cell::Cell;

use crate::error::{NnError, Result};
use crate::gemm::Backend;
use crate::network::Network;
use crate::tensor::Tensor;

/// Number of positive levels of the symmetric int8 grid.
pub(crate) const I8_LEVELS: f32 = 127.0;

/// Largest finite absolute value in `w`; `0.0` for an empty or
/// all-non-finite slice. The non-finite guard keeps a single NaN/inf
/// from poisoning a whole tensor's quantisation scale.
///
/// Runs per batch on the int8 forward path (activation range), so it
/// is written as eight independent branchless max lanes — a
/// `filter(is_finite)` fold compiles to a scalar compare-and-branch
/// loop, while this form vectorises (`cmpps`/`andps`/`maxps`).
pub(crate) fn finite_max_abs(w: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 8];
    let mut it = w.chunks_exact(8);
    for chunk in &mut it {
        for (m, &x) in lanes.iter_mut().zip(chunk) {
            let a = x.abs();
            // `a <= MAX` is false for NaN and +inf: both lower to 0,
            // i.e. they are ignored by the running max.
            let a = if a <= f32::MAX { a } else { 0.0 };
            if a > *m {
                *m = a;
            }
        }
    }
    let mut m = 0.0f32;
    for &l in &lanes {
        if l > m {
            m = l;
        }
    }
    for &x in it.remainder() {
        let a = x.abs();
        if a <= f32::MAX && a > m {
            m = a;
        }
    }
    m
}

/// Quantises one value to the symmetric int8 grid:
/// `round(x · inv_scale)` (ties to even) clamped to `[-127, 127]`.
/// Saturates instead of wrapping; NaN and −inf map to `−127`, +inf to
/// `+127` (through the clamp, whose `max` resolves NaN to its limit).
///
/// Written clamp-first with the classic `+1.5·2²³` magic-bias round
/// rather than `f32::round` + saturating cast, because on the baseline
/// x86-64 target `round()` is a libm call and the saturating cast
/// needs per-lane fix-up branches — both defeat vectorisation of the
/// packing loops, which this form keeps branchless (`mulps`/`maxps`/
/// `minps`/`addps` + integer subtract).
#[inline]
#[cfg(test)] // production packing stores i16 (quantize_i8w); the i8 form is the test oracle
pub(crate) fn quantize_i8(x: f32, inv_scale: f32) -> i8 {
    quantize_grid(x, inv_scale) as i8
}

/// [`quantize_i8`], widened to the `i16` storage the packed int8
/// panels use (values stay on the `[-127, 127]` grid).
#[inline]
pub(crate) fn quantize_i8w(x: f32, inv_scale: f32) -> i16 {
    quantize_grid(x, inv_scale) as i16
}

/// Rounds an already-scaled value onto the int8 grid in `i16` storage:
/// `round(v)` (ties to even) clamped to `[-127, 127]`. The
/// requantisation epilogues of [`crate::gemm::int8`] use this on the
/// hot write-back path — same branchless magic-bias core as the input
/// quantisers, so chained-layer rounding policy cannot diverge from
/// input-quantisation policy.
#[inline]
pub(crate) fn round_clamp_i8w(v: f32) -> i16 {
    quantize_grid(v, 1.0) as i16
}

/// [`round_clamp_i8w`] in `i8` storage, for the scalar requantisation
/// primitive [`crate::gemm::int8::requantize_i8`].
#[inline]
pub(crate) fn round_clamp_i8(v: f32) -> i8 {
    quantize_grid(v, 1.0) as i8
}

/// Shared core of the int8-grid quantisers: after the magic bias the
/// low bits hold the rounded value in two's complement, so a
/// truncating cast to `i8`/`i16` recovers it exactly on the clamped
/// range.
#[inline]
#[allow(clippy::manual_clamp)] // f32::clamp propagates NaN into the bit tricks below; max-then-min resolves NaN to a grid edge
fn quantize_grid(x: f32, inv_scale: f32) -> u32 {
    /// `1.5 · 2²³`: adding it to a value in `[-127, 127]` pushes the
    /// rounded value into the low mantissa bits.
    const MAGIC: f32 = 12_582_912.0;
    let v = (x * inv_scale).max(-I8_LEVELS).min(I8_LEVELS);
    (v + MAGIC).to_bits().wrapping_sub(MAGIC.to_bits())
}

/// [`finite_max_abs`] for the quantised forward path's *activation*
/// inputs, with a debug-build finiteness guard. Masking non-finite
/// values is the right policy for weights (regression-tested), but a
/// non-finite *activation* means an upstream data-pipeline defect: the
/// f32 backends would propagate the NaN and make it visible, whereas
/// the int8 grid clamp maps NaN to `−127` and yields finite,
/// plausible-looking outputs. Release builds keep the silent clamp (no
/// panics in production); debug builds fail loudly at the defect.
pub(crate) fn act_max_abs(x: &[f32]) -> f32 {
    debug_assert!(
        x.iter().all(|v| v.is_finite()),
        "non-finite activation input on the QuantI8 forward path: the int8 clamp \
         (NaN → −127) would mask a defect the f32 backends would propagate"
    );
    finite_max_abs(x)
}

/// The multiplier that quantises against `scale`, with the degenerate
/// all-zero (or all-non-finite) range mapping to `0` — every value
/// then quantises to exactly `0` instead of dividing by zero. Shared
/// by all weight- and activation-scale call sites so the zero-scale
/// policy cannot diverge between layers.
#[inline]
pub(crate) fn inv_or_zero(scale: f32) -> f32 {
    if scale > 0.0 {
        1.0 / scale
    } else {
        0.0
    }
}

/// Quantises a contiguous `f32` slice onto the int8 grid in `i16`
/// storage — the branchless per-element form vectorises, so this is
/// one cheap pass even over whole input tensors. Only the first
/// `src.len()` elements of `dst` are written.
pub(crate) fn quantize_slice_i16(src: &[f32], inv_scale: f32, dst: &mut [i16]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = quantize_i8w(x, inv_scale);
    }
}

/// Quantizes a weight slice in place: symmetric uniform, per-tensor scale.
///
/// `bits` counts the sign bit, so `bits = 8` yields the `[-127, 127]` int8
/// grid. Zero weights stay exactly zero; an all-zero tensor is unchanged.
///
/// Non-finite weights are clamped rather than propagated: the scale is
/// computed over finite values only (a single NaN/inf would otherwise
/// silently zero — or NaN — every other weight through an infinite
/// scale), then NaN snaps to `0` and ±inf to the grid ends `±max_abs`.
pub(crate) fn quantize_slice(w: &mut [f32], bits: u32) {
    debug_assert!(bits >= 2);
    let max_abs = finite_max_abs(w);
    if max_abs == 0.0 {
        // Nothing finite and non-zero to derive a scale from; still
        // scrub non-finite values so they cannot leak downstream.
        for x in w.iter_mut() {
            if !x.is_finite() {
                *x = 0.0;
            }
        }
        return;
    }
    let levels = ((1u32 << (bits - 1)) - 1) as f32;
    let scale = max_abs / levels;
    for x in w.iter_mut() {
        let v = if x.is_finite() {
            *x
        } else if *x == f32::INFINITY {
            max_abs
        } else if *x == f32::NEG_INFINITY {
            -max_abs
        } else {
            0.0
        };
        *x = (v / scale).round() * scale;
    }
}

/// Quantizes every parameterised layer of `net` to `bits`-bit weights.
///
/// This is destructive (the `f32` master weights are overwritten with
/// their quantized values); rebuild and retrain (deterministically, from
/// the same seed) to recover a full-precision model.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for `bits < 2` (a 1-bit symmetric
/// grid has no non-zero levels) or `bits > 32`.
pub fn quantize_network(net: &mut Network, bits: u32) -> Result<()> {
    if !(2..=32).contains(&bits) {
        return Err(NnError::InvalidConfig {
            reason: format!("weight precision must be 2..=32 bits, got {bits}"),
        });
    }
    net.quantize_weights_internal(bits);
    Ok(())
}

/// The data-precision execution modes of the RTM's knob: full `f32`
/// compute, or the real int8 kernel path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// `f32` arithmetic throughout ([`Backend::Gemm`]). The default.
    #[default]
    F32,
    /// int8 storage and arithmetic with `i32` accumulation on the
    /// quantised kernel path ([`Backend::QuantI8`]): lower latency and
    /// memory traffic for a small, measurable accuracy cost.
    Int8,
}

impl Precision {
    /// The compute backend that realises this precision.
    pub fn backend(self) -> Backend {
        match self {
            Self::F32 => Backend::Gemm,
            Self::Int8 => Backend::QuantI8,
        }
    }
}

/// Tracks the dynamic range of a layer's input activations for int8
/// quantisation. Each `Conv2d`/`Linear` owns one; every `QuantI8`
/// forward pass feeds it the batch's absolute maximum.
///
/// Unfrozen (the default), the quantisation scale is *dynamic*: each
/// batch uses its own max-abs, so no calibration pass is required and
/// identical inputs always produce identical outputs. [`ActObserver::freeze`]
/// switches to *static* scales — the running maximum observed so far
/// becomes the fixed scale (activations beyond it saturate at ±127),
/// which makes quantisation consistent across batches after a
/// calibration run over representative data.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ActObserver {
    max_abs: f32,
    frozen: bool,
}

impl ActObserver {
    /// Records one batch's absolute maximum (ignored when frozen or
    /// non-finite).
    pub fn observe(&mut self, batch_max_abs: f32) {
        if !self.frozen && batch_max_abs.is_finite() {
            self.max_abs = self.max_abs.max(batch_max_abs);
        }
    }

    /// The largest activation magnitude observed so far.
    pub fn max_abs(&self) -> f32 {
        self.max_abs
    }

    /// Freezes (or unfreezes) the observed range as the static
    /// quantisation scale.
    pub fn freeze(&mut self, frozen: bool) {
        self.frozen = frozen;
    }

    /// Whether the scale is static (frozen) rather than per-batch.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// The quantisation scale to use for a batch with the given
    /// max-abs: the frozen range when static, the batch's own range
    /// when dynamic.
    pub fn scale_for(&self, batch_max_abs: f32) -> f32 {
        let amax = if self.frozen {
            self.max_abs
        } else {
            batch_max_abs
        };
        amax / I8_LEVELS
    }

    /// One-call form of the per-batch observe/derive sequence the
    /// quantised layer forwards run: sweeps the batch's max-abs from
    /// the raw activation slice, records it, then returns
    /// `(scale, inv_scale)` with the shared zero-range policy of
    /// [`inv_or_zero`]. When the scale is frozen, release builds skip
    /// the sweep entirely — the static scale ignores the batch range,
    /// so the pass would be pure waste on the batch-1 latency path.
    ///
    /// Two debug-build guards fire here (release keeps the silent
    /// clamps):
    /// - non-finite activations assert on the *inference* path
    ///   (`train = false`) via [`act_max_abs`]; training is exempt —
    ///   divergence legitimately produces inf/NaN activations, and the
    ///   f32 loss surfaces them either way;
    /// - a frozen observer whose recorded range is still zero asserts
    ///   when the batch carries signal: [`ActObserver::freeze`] ran
    ///   before any calibration forward observed this layer, so every
    ///   activation would quantise to 0 and the layer output silently
    ///   collapse to its bias.
    pub(crate) fn observe_scale(&mut self, x: &[f32], train: bool) -> (f32, f32) {
        let batch_max_abs = if self.frozen && !cfg!(debug_assertions) {
            0.0
        } else if train {
            finite_max_abs(x)
        } else {
            act_max_abs(x)
        };
        debug_assert!(
            !self.frozen || self.max_abs > 0.0 || batch_max_abs == 0.0,
            "frozen activation scale is zero: freeze ran before any calibration \
             forward observed this layer, so every activation quantises to 0 and \
             the layer output collapses to its bias"
        );
        self.observe(batch_max_abs);
        let scale = self.scale_for(batch_max_abs);
        (scale, inv_or_zero(scale))
    }
}

/// A quantised activation tensor: int8-grid values (`[-127, 127]`) in
/// `i16` storage — the operand form of the packed int8 kernels, so
/// chained layers lower it straight into packed panels — plus the
/// per-tensor dequantisation scale (`real ≈ value · scale`).
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    shape: Vec<usize>,
    data: Vec<i16>,
    scale: f32,
}

impl QTensor {
    /// An all-zero quantised tensor of the given shape and scale.
    pub fn zeros(shape: &[usize], scale: f32) -> Self {
        Self {
            data: vec![0; shape.iter().product()],
            shape: shape.to_vec(),
            scale,
        }
    }

    /// The tensor shape (batch axis first, like [`Tensor`]).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The int8-grid values (`i16` storage).
    pub fn data(&self) -> &[i16] {
        &self.data
    }

    /// Mutable access to the values.
    pub fn data_mut(&mut self) -> &mut [i16] {
        &mut self.data
    }

    /// The dequantisation scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Reinterprets the tensor with a new shape of the same element
    /// count (the chained Flatten path — a metadata change, no copy).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(&mut self, shape: &[usize]) -> Result<()> {
        if shape.iter().product::<usize>() != self.data.len() {
            return Err(NnError::ShapeMismatch {
                context: "qtensor reshape".into(),
                expected: self.shape.clone(),
                actual: shape.to_vec(),
            });
        }
        self.shape = shape.to_vec();
        Ok(())
    }

    /// Dequantises to an `f32` [`Tensor`] (`value · scale`).
    pub fn dequantize(&self) -> Tensor {
        let data = self
            .data
            .iter()
            .map(|&v| f32::from(v) * self.scale)
            .collect();
        Tensor::from_vec(&self.shape, data).expect("shape matches data by construction")
    }
}

/// An activation flowing through a chained-int8 forward pass: either a
/// plain `f32` [`Tensor`] (outside any chain segment) or a quantised
/// [`QTensor`] (inside one). See
/// [`crate::network::Network::plan_quant_chain`].
#[derive(Debug, Clone)]
pub enum QAct {
    /// Full-precision activation.
    F32(Tensor),
    /// Int8-grid activation with its dequantisation scale.
    I8(QTensor),
}

impl QAct {
    /// The activation's shape, whichever form it is in.
    pub fn shape(&self) -> &[usize] {
        match self {
            Self::F32(t) => t.shape(),
            Self::I8(q) => q.shape(),
        }
    }
}

/// One layer's entry in the calibration report of
/// [`crate::network::Network::calibrate`]: the activation range the
/// calibration pass observed and the static int8 scale frozen from it.
#[derive(Debug, Clone, PartialEq)]
pub struct ActScaleReport {
    /// The layer's name.
    pub layer: String,
    /// Largest input-activation magnitude observed during calibration.
    pub max_abs: f32,
    /// The frozen quantisation scale (`max_abs / 127`).
    pub scale: f32,
}

thread_local! {
    /// Layer-IO instrumentation: (f32→i8 quantisation passes, i32/i8→f32
    /// dequantisation passes), counted once per layer forward on the
    /// calling thread. See [`layer_io_events`].
    static LAYER_IO_EVENTS: Cell<(u32, u32)> = const { Cell::new((0, 0)) };
}

/// Resets the [`layer_io_events`] counters to zero.
pub fn reset_layer_io_events() {
    LAYER_IO_EVENTS.with(|c| c.set((0, 0)));
}

/// Layer-IO instrumentation for the quantised forward path:
/// `(quantise_passes, dequantise_passes)` since the last
/// [`reset_layer_io_events`], counted **per layer forward** on the
/// calling thread — a layer that quantises its `f32` input counts one
/// quantise pass (however many samples the batch holds), a layer that
/// dequantises its accumulators to `f32` output counts one dequantise
/// pass. A fully chained forward therefore reports exactly `(1, 1)`
/// regardless of network depth, while the per-layer round-trip path
/// reports one of each per quantised layer. Cost: two thread-local
/// increments per layer forward — cheap enough to stay compiled in.
pub fn layer_io_events() -> (u32, u32) {
    LAYER_IO_EVENTS.with(Cell::get)
}

/// Records one layer-forward f32→i8 input-quantisation pass.
pub(crate) fn count_quantise_pass() {
    LAYER_IO_EVENTS.with(|c| {
        let (q, d) = c.get();
        c.set((q + 1, d));
    });
}

/// Records one layer-forward i32/i8→f32 output-dequantisation pass.
pub(crate) fn count_dequantise_pass() {
    LAYER_IO_EVENTS.with(|c| {
        let (q, d) = c.get();
        c.set((q, d + 1));
    });
}

/// Number of positive quantization levels of a `bits`-bit symmetric grid
/// (`2^(bits−1) − 1`, e.g. 127 for int8).
///
/// # Errors
///
/// Same bit-width conditions as [`quantize_network`].
pub fn quantized_bits_grid(bits: u32) -> Result<usize> {
    if !(2..=32).contains(&bits) {
        return Err(NnError::InvalidConfig {
            reason: format!("weight precision must be 2..=32 bits, got {bits}"),
        });
    }
    Ok(((1u64 << (bits - 1)) - 1) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build_group_cnn, CnnConfig};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn slice_quantization_snaps_to_grid() {
        let mut w = vec![0.5f32, -1.0, 0.26, 0.0];
        quantize_slice(&mut w, 3); // levels = 3, scale = 1/3
        let scale = 1.0f32 / 3.0;
        for x in &w {
            let q = x / scale;
            assert!((q - q.round()).abs() < 1e-5, "{x} not on grid");
        }
        assert_eq!(w[3], 0.0, "zeros stay zero");
        assert_eq!(w[1], -1.0, "max magnitude preserved");
    }

    #[test]
    fn eight_bit_error_is_small() {
        let mut w: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin()).collect();
        let orig = w.clone();
        quantize_slice(&mut w, 8);
        let max_err = w
            .iter()
            .zip(&orig)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // Half a step of the 127-level grid.
        assert!(max_err <= 1.0 / 127.0 / 2.0 + 1e-6, "max err {max_err}");
    }

    #[test]
    fn all_zero_slice_unchanged() {
        let mut w = vec![0.0f32; 8];
        quantize_slice(&mut w, 8);
        assert!(w.iter().all(|&x| x == 0.0));
    }

    /// Regression: a single NaN or inf used to flow into `max_abs`,
    /// producing a NaN/inf scale that silently poisoned (zeroed or
    /// NaN-ed) every other weight in the tensor.
    #[test]
    fn non_finite_weights_cannot_poison_the_tensor() {
        let mut w = vec![
            0.5f32,
            f32::NAN,
            -1.0,
            f32::INFINITY,
            0.25,
            f32::NEG_INFINITY,
        ];
        quantize_slice(&mut w, 8);
        assert!(w.iter().all(|x| x.is_finite()), "no non-finite survives");
        // Finite values quantise against the finite max (1.0), as if the
        // bad values were absent.
        let scale = 1.0f32 / 127.0;
        assert!((w[0] - (0.5f32 / scale).round() * scale).abs() < 1e-6);
        assert_eq!(w[2], -1.0, "finite max magnitude preserved");
        // NaN snaps to zero, ±inf clamps to the grid ends.
        assert_eq!(w[1], 0.0);
        assert_eq!(w[3], 1.0);
        assert_eq!(w[5], -1.0);
        // All-non-finite tensor: scrubbed to zero, not left poisoned.
        let mut bad = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
        quantize_slice(&mut bad, 8);
        assert_eq!(bad, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn act_max_abs_matches_finite_max_on_clean_input() {
        let x = [0.5f32, -3.0, 2.0, -0.25];
        assert_eq!(act_max_abs(&x), 3.0);
    }

    /// A NaN activation must fail loudly (debug builds) instead of
    /// being silently clamped onto the int8 grid where the f32
    /// backends would have propagated it.
    #[test]
    #[should_panic(expected = "non-finite activation")]
    #[cfg(debug_assertions)]
    fn act_max_abs_rejects_non_finite_in_debug() {
        act_max_abs(&[0.5f32, f32::NAN, 1.0]);
    }

    #[test]
    fn observe_scale_sweeps_dynamic_and_respects_frozen() {
        let mut obs = ActObserver::default();
        // Dynamic: the batch's own range sets the scale.
        let (scale, inv) = obs.observe_scale(&[0.5, -2.0, 1.0], false);
        assert_eq!(scale, 2.0 / 127.0);
        assert_eq!(inv, 127.0 / 2.0);
        // Frozen after calibration: the recorded range wins regardless
        // of the batch (and release builds skip the sweep entirely —
        // same result either way, which is what this pins).
        obs.freeze(true);
        let (scale, _) = obs.observe_scale(&[9.0, -9.0], false);
        assert_eq!(scale, 2.0 / 127.0);
    }

    /// Training is exempt from the non-finite guard: divergence can
    /// legitimately push activations to inf/NaN, and the f32 loss
    /// surfaces them either way — the sweep just ignores them.
    #[test]
    fn observe_scale_tolerates_non_finite_when_training() {
        let mut obs = ActObserver::default();
        let (scale, _) = obs.observe_scale(&[0.5, f32::NAN, f32::INFINITY, -1.0], true);
        assert_eq!(scale, 1.0 / 127.0);
    }

    /// Freezing before any calibration forward would silently quantise
    /// every activation to 0 (output collapses to the bias); debug
    /// builds must fail loudly instead.
    #[test]
    #[should_panic(expected = "frozen activation scale is zero")]
    #[cfg(debug_assertions)]
    fn observe_scale_rejects_unfed_frozen_observer_in_debug() {
        let mut obs = ActObserver::default();
        obs.freeze(true);
        let _ = obs.observe_scale(&[1.0, -0.5], false);
    }

    #[test]
    fn act_observer_dynamic_and_frozen_scales() {
        let mut obs = ActObserver::default();
        assert!(!obs.is_frozen());
        // Dynamic: the batch's own range wins, observation just records.
        obs.observe(2.0);
        obs.observe(f32::NAN); // ignored
        obs.observe(1.0);
        assert_eq!(obs.max_abs(), 2.0);
        assert_eq!(obs.scale_for(4.0), 4.0 / 127.0);
        // Frozen: the recorded range becomes the static scale.
        obs.freeze(true);
        assert_eq!(obs.scale_for(4.0), 2.0 / 127.0);
        obs.observe(10.0); // frozen observers stop recording
        assert_eq!(obs.max_abs(), 2.0);
        obs.freeze(false);
        obs.observe(10.0);
        assert_eq!(obs.max_abs(), 10.0);
    }

    #[test]
    fn precision_maps_to_backends() {
        assert_eq!(Precision::default(), Precision::F32);
        assert_eq!(Precision::F32.backend(), Backend::Gemm);
        assert_eq!(Precision::Int8.backend(), Backend::QuantI8);
    }

    #[test]
    fn quantize_i8_saturates_and_handles_non_finite() {
        assert_eq!(quantize_i8(0.5, 127.0), 64); // 63.5 rounds to even 64
        assert_eq!(quantize_i8(0.25, 2.0), 0); // 0.5 ties to even 0
        assert_eq!(quantize_i8(0.75, 2.0), 2); // 1.5 ties to even 2
        assert_eq!(quantize_i8(1.0, 127.0), 127);
        assert_eq!(quantize_i8(-1.0, 127.0), -127);
        assert_eq!(quantize_i8(40.0, 127.0), 127, "saturates, never wraps");
        assert_eq!(quantize_i8(-40.0, 127.0), -127);
        // Non-finite values land on the grid, never escape it.
        assert_eq!(quantize_i8(f32::NAN, 127.0), -127);
        assert_eq!(quantize_i8(f32::INFINITY, 127.0), 127);
        assert_eq!(quantize_i8(f32::NEG_INFINITY, 127.0), -127);
        assert_eq!(quantize_i8(0.3, 0.0), 0, "zero inv-scale quantises to 0");
    }

    #[test]
    fn quantization_is_idempotent() {
        let mut w = vec![0.9f32, -0.4, 0.1];
        quantize_slice(&mut w, 6);
        let once = w.clone();
        quantize_slice(&mut w, 6);
        assert_eq!(w, once);
    }

    #[test]
    fn invalid_bit_widths_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = build_group_cnn(CnnConfig::default(), &mut rng).unwrap();
        assert!(quantize_network(&mut net, 1).is_err());
        assert!(quantize_network(&mut net, 33).is_err());
        assert!(quantize_network(&mut net, 8).is_ok());
        assert!(quantized_bits_grid(1).is_err());
        assert_eq!(quantized_bits_grid(8).unwrap(), 127);
    }

    #[test]
    fn eight_bit_network_outputs_stay_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = build_group_cnn(
            CnnConfig {
                base_width: 8,
                ..CnnConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let x = Tensor::full(&[2, 3, 16, 16], 0.2);
        let before = net.forward(&x, false).unwrap();
        quantize_network(&mut net, 8).unwrap();
        let after = net.forward(&x, false).unwrap();
        let max_out = before.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let max_diff = before
            .data()
            .iter()
            .zip(after.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 0.1 * max_out.max(1.0),
            "8-bit quantization should barely perturb logits: {max_diff}"
        );
        // But 2-bit quantization visibly changes them.
        quantize_network(&mut net, 2).unwrap();
        let coarse = net.forward(&x, false).unwrap();
        let coarse_diff = before
            .data()
            .iter()
            .zip(coarse.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(coarse_diff > max_diff, "2-bit must hurt more than 8-bit");
    }

    #[test]
    fn quantization_respects_width_switching() {
        // Quantized weights still honour the no-retraining switch property.
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = build_group_cnn(
            CnnConfig {
                base_width: 8,
                ..CnnConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        quantize_network(&mut net, 8).unwrap();
        let x = Tensor::full(&[1, 3, 16, 16], 0.3);
        let full_before = net.forward(&x, false).unwrap();
        net.set_active_groups(1).unwrap();
        let _ = net.forward(&x, false).unwrap();
        net.set_active_groups(4).unwrap();
        let full_after = net.forward(&x, false).unwrap();
        assert_eq!(full_before.data(), full_after.data());
    }
}
