//! Post-training weight quantization — the *data precision* application
//! knob of the paper's Fig 5.
//!
//! Alongside the width knob, the paper lists "data precision" among the
//! application knobs an RTM can turn. This module implements symmetric
//! uniform post-training quantization of layer weights: each layer's
//! weights are snapped to a `2^(bits−1) − 1`-step grid scaled to the
//! layer's absolute maximum. Inference then *simulates* reduced-precision
//! execution (weights carry quantization error while arithmetic stays
//! `f32`), which is the standard way to measure PTQ accuracy impact
//! without integer kernels.
//!
//! Combined with [`crate::metrics::evaluate`], this yields the
//! accuracy-vs-precision trade-off curve that an RTM could exploit on
//! platforms with fast low-precision paths.

use crate::error::{NnError, Result};
use crate::network::Network;

/// Quantizes a weight slice in place: symmetric uniform, per-tensor scale.
///
/// `bits` counts the sign bit, so `bits = 8` yields the `[-127, 127]` int8
/// grid. Zero weights stay exactly zero; an all-zero tensor is unchanged.
pub(crate) fn quantize_slice(w: &mut [f32], bits: u32) {
    debug_assert!(bits >= 2);
    let max_abs = w.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max_abs == 0.0 {
        return;
    }
    let levels = ((1u32 << (bits - 1)) - 1) as f32;
    let scale = max_abs / levels;
    for x in w.iter_mut() {
        *x = (*x / scale).round() * scale;
    }
}

/// Quantizes every parameterised layer of `net` to `bits`-bit weights.
///
/// This is destructive (the `f32` master weights are overwritten with
/// their quantized values); rebuild and retrain (deterministically, from
/// the same seed) to recover a full-precision model.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for `bits < 2` (a 1-bit symmetric
/// grid has no non-zero levels) or `bits > 32`.
pub fn quantize_network(net: &mut Network, bits: u32) -> Result<()> {
    if !(2..=32).contains(&bits) {
        return Err(NnError::InvalidConfig {
            reason: format!("weight precision must be 2..=32 bits, got {bits}"),
        });
    }
    net.quantize_weights_internal(bits);
    Ok(())
}

/// Number of positive quantization levels of a `bits`-bit symmetric grid
/// (`2^(bits−1) − 1`, e.g. 127 for int8).
///
/// # Errors
///
/// Same bit-width conditions as [`quantize_network`].
pub fn quantized_bits_grid(bits: u32) -> Result<usize> {
    if !(2..=32).contains(&bits) {
        return Err(NnError::InvalidConfig {
            reason: format!("weight precision must be 2..=32 bits, got {bits}"),
        });
    }
    Ok(((1u64 << (bits - 1)) - 1) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{build_group_cnn, CnnConfig};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn slice_quantization_snaps_to_grid() {
        let mut w = vec![0.5f32, -1.0, 0.26, 0.0];
        quantize_slice(&mut w, 3); // levels = 3, scale = 1/3
        let scale = 1.0f32 / 3.0;
        for x in &w {
            let q = x / scale;
            assert!((q - q.round()).abs() < 1e-5, "{x} not on grid");
        }
        assert_eq!(w[3], 0.0, "zeros stay zero");
        assert_eq!(w[1], -1.0, "max magnitude preserved");
    }

    #[test]
    fn eight_bit_error_is_small() {
        let mut w: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin()).collect();
        let orig = w.clone();
        quantize_slice(&mut w, 8);
        let max_err = w
            .iter()
            .zip(&orig)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // Half a step of the 127-level grid.
        assert!(max_err <= 1.0 / 127.0 / 2.0 + 1e-6, "max err {max_err}");
    }

    #[test]
    fn all_zero_slice_unchanged() {
        let mut w = vec![0.0f32; 8];
        quantize_slice(&mut w, 8);
        assert!(w.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn quantization_is_idempotent() {
        let mut w = vec![0.9f32, -0.4, 0.1];
        quantize_slice(&mut w, 6);
        let once = w.clone();
        quantize_slice(&mut w, 6);
        assert_eq!(w, once);
    }

    #[test]
    fn invalid_bit_widths_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = build_group_cnn(CnnConfig::default(), &mut rng).unwrap();
        assert!(quantize_network(&mut net, 1).is_err());
        assert!(quantize_network(&mut net, 33).is_err());
        assert!(quantize_network(&mut net, 8).is_ok());
        assert!(quantized_bits_grid(1).is_err());
        assert_eq!(quantized_bits_grid(8).unwrap(), 127);
    }

    #[test]
    fn eight_bit_network_outputs_stay_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = build_group_cnn(
            CnnConfig {
                base_width: 8,
                ..CnnConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let x = Tensor::full(&[2, 3, 16, 16], 0.2);
        let before = net.forward(&x, false).unwrap();
        quantize_network(&mut net, 8).unwrap();
        let after = net.forward(&x, false).unwrap();
        let max_out = before.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let max_diff = before
            .data()
            .iter()
            .zip(after.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 0.1 * max_out.max(1.0),
            "8-bit quantization should barely perturb logits: {max_diff}"
        );
        // But 2-bit quantization visibly changes them.
        quantize_network(&mut net, 2).unwrap();
        let coarse = net.forward(&x, false).unwrap();
        let coarse_diff = before
            .data()
            .iter()
            .zip(coarse.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(coarse_diff > max_diff, "2-bit must hurt more than 8-bit");
    }

    #[test]
    fn quantization_respects_width_switching() {
        // Quantized weights still honour the no-retraining switch property.
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = build_group_cnn(
            CnnConfig {
                base_width: 8,
                ..CnnConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        quantize_network(&mut net, 8).unwrap();
        let x = Tensor::full(&[1, 3, 16, 16], 0.3);
        let full_before = net.forward(&x, false).unwrap();
        net.set_active_groups(1).unwrap();
        let _ = net.forward(&x, false).unwrap();
        net.set_active_groups(4).unwrap();
        let full_after = net.forward(&x, false).unwrap();
        assert_eq!(full_before.data(), full_after.data());
    }
}
