//! A small worker abstraction over `rayon` for batch-parallel layer
//! math.
//!
//! The layers parallelise over the batch (and the GEMM over its `M`
//! dimension, see [`crate::gemm`]); both funnel through
//! [`for_each_band`], which splits a mutable output slice into
//! contiguous per-worker bands of whole items and runs a closure per
//! band inside a `rayon::scope`. Under the pooled `rayon` stand-in the
//! scope dispatches onto persistent, parked workers, so a parallel
//! region costs a queue push per band rather than an OS thread spawn.
//! Small workloads stay on the calling thread — dispatching is only
//! worth it when each band carries real work.
//!
//! Each band receives two private scratch slices: a general per-band
//! buffer (im2col/column matrices, reused across the band's items) and
//! an *aux* buffer used by reductions — [`crate::conv::Conv2d`]'s
//! backward pass accumulates per-band weight-gradient shards there and
//! folds them together after the scope, so gradient accumulation
//! parallelises without any shared mutable state. Both are sized per
//! band, so peak scratch is bounded by the worker count, not the batch
//! size.
//!
//! A multi-tenant serving layer can restrict how much of the pool one
//! inference may claim with [`with_band_cap`]: the cap bounds the band
//! count every parallel region planned inside the closure targets, so a
//! model allocated `c` cores by the resource manager occupies at most
//! `c` workers per forward even though the pool itself is shared.

#[cfg(test)]
thread_local! {
    /// Test-only override of [`worker_count`], so band splitting and
    /// shard reduction can be exercised deterministically on machines
    /// with any core count. Only read on the thread that *plans* the
    /// bands; closures running on pool workers see the real count.
    pub(crate) static FORCE_WORKERS: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

thread_local! {
    /// Per-thread parallelism budget: `0` = uncapped, `n` = plan at
    /// most `n` bands per region. Set scoped via [`with_band_cap`];
    /// read on the thread that *plans* a parallel region (band
    /// closures running on pool workers never re-split).
    static BAND_CAP: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Runs `f` with this thread's parallel regions capped at `cap` bands
/// (`0` removes the cap). The previous cap is restored on exit, even
/// on panic, so nested scopes compose.
///
/// This is the core-allocation knob of a multi-tenant executor: the
/// runtime manager grants an application `c` cores, the serving thread
/// wraps every forward pass in `with_band_cap(c, ..)`, and the layers'
/// band math ([`band_count`]) plans at most `c` parallel work units —
/// the app cannot flood the shared worker pool past its allocation.
/// The cap only bounds *this* thread's fan-out; band outputs are
/// bit-identical across cap values (bands partition whole items and
/// per-item arithmetic order never depends on the split).
pub fn with_band_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            BAND_CAP.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(BAND_CAP.with(|c| c.replace(cap)));
    f()
}

/// Number of workers parallel regions should target — taken from the
/// executor itself so band math stays correct if a configured rayon
/// pool (smaller or larger than the machine) is swapped in, clamped
/// by this thread's [`with_band_cap`] budget.
pub(crate) fn worker_count() -> usize {
    #[cfg(test)]
    if let Some(n) = FORCE_WORKERS.with(std::cell::Cell::get) {
        return apply_cap(n);
    }
    apply_cap(rayon::current_num_threads().max(1))
}

fn apply_cap(n: usize) -> usize {
    match BAND_CAP.with(std::cell::Cell::get) {
        0 => n,
        cap => n.min(cap).max(1),
    }
}

/// Number of bands [`for_each_band`] will split `items` into — callers
/// size their per-band scratch with this, so peak scratch is bounded by
/// the worker count, not the batch size.
pub(crate) fn band_count(items: usize, parallel: bool) -> usize {
    if parallel {
        worker_count().min(items).max(1)
    } else {
        1
    }
}

/// Splits `data` — `items` logical items of `item_len` elements each —
/// into at most [`band_count`] contiguous bands of whole items and
/// invokes `f(first_item_index, band, band_scratch, band_aux)` for
/// each, in parallel when more than one band results. Every band gets
/// its own `scratch_per_band`-element slice of `scratch` and
/// `aux_per_band`-element slice of `aux` to reuse across its items
/// (each buffer must hold at least `band_count(items, parallel)` times
/// its per-band length; pass an empty `aux` with `aux_per_band == 0`
/// when unused). The data and scratch element types are generic so the
/// quantised forward paths can split `i16` outputs and hand out
/// per-band `i16` column buffers through the same mechanism as the
/// `f32` paths.
#[allow(clippy::too_many_arguments)]
pub(crate) fn for_each_band<T, S, F>(
    data: &mut [T],
    items: usize,
    item_len: usize,
    scratch: &mut [S],
    scratch_per_band: usize,
    aux: &mut [f32],
    aux_per_band: usize,
    parallel: bool,
    f: F,
) where
    T: Send,
    S: Send,
    F: Fn(usize, &mut [T], &mut [S], &mut [f32]) + Sync,
{
    let bands = band_count(items, parallel);
    debug_assert!(data.len() >= items * item_len);
    debug_assert!(scratch.len() >= bands * scratch_per_band);
    debug_assert!(aux.len() >= bands * aux_per_band);
    if bands <= 1 {
        f(
            0,
            &mut data[..items * item_len],
            &mut scratch[..scratch_per_band],
            &mut aux[..aux_per_band],
        );
        return;
    }
    // Balanced split: the first `items % bands` bands carry one extra
    // item. The old `ceil(items / bands)`-sized bands could leave the
    // tail band with a fraction of the work (e.g. 32 items on 5 workers
    // → 7,7,7,7,4), idling its worker for up to a band's worth of time
    // per region; the balanced split (7,7,6,6,6) bounds the spread to
    // one item. Matters most for batched int8 serving, where a
    // micro-batch rarely divides the allocated core count.
    let base = items / bands;
    let extra = items % bands;
    rayon::scope(|s| {
        let mut rest = &mut data[..items * item_len];
        let mut rest_scratch = &mut scratch[..];
        let mut rest_aux = &mut aux[..];
        let mut item0 = 0;
        for band_idx in 0..bands {
            let band_items = base + usize::from(band_idx < extra);
            let (band, tail) = rest.split_at_mut(band_items * item_len);
            let (band_scratch, tail_scratch) = rest_scratch.split_at_mut(scratch_per_band);
            let (band_aux, tail_aux) = rest_aux.split_at_mut(aux_per_band);
            let f = &f;
            s.spawn(move |_| f(item0, band, band_scratch, band_aux));
            rest = tail;
            rest_scratch = tail_scratch;
            rest_aux = tail_aux;
            item0 += band_items;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_item_with_private_scratch() {
        let items = 7;
        let mut data = vec![0.0f32; items * 3];
        let mut scratch = vec![0.0f32; band_count(items, true) * 2];
        let mut aux = vec![0.0f32; band_count(items, true)];
        for_each_band(
            &mut data,
            items,
            3,
            &mut scratch,
            2,
            &mut aux,
            1,
            true,
            |item0, band, s, aux| {
                assert_eq!(s.len(), 2, "one scratch slot per band");
                assert_eq!(aux.len(), 1, "one aux slot per band");
                for (i, item) in band.chunks_mut(3).enumerate() {
                    // Reuse the slot per item, as the layers do.
                    s.fill((item0 + i) as f32);
                    for (v, sv) in item.iter_mut().zip(s.iter()) {
                        *v = *sv;
                    }
                    item[2] = s[0];
                    aux[0] += 1.0;
                }
            },
        );
        for (i, item) in data.chunks(3).enumerate() {
            assert!(item.iter().all(|&v| v == i as f32), "item {i}: {item:?}");
        }
        // Aux slots accumulated one count per item, band by band.
        assert_eq!(aux.iter().sum::<f32>(), items as f32);
    }

    #[test]
    fn serial_mode_is_one_band() {
        let mut data = vec![0.0f32; 4 * 2];
        let mut scratch = vec![0.0f32; 5];
        let mut bands_seen = 0;
        // Serial closure runs inline, so a mutable counter is fine.
        let counter = std::sync::Mutex::new(&mut bands_seen);
        for_each_band(
            &mut data,
            4,
            2,
            &mut scratch,
            5,
            &mut [],
            0,
            false,
            |item0, band, _, aux| {
                assert_eq!(item0, 0);
                assert_eq!(band.len(), 8, "serial = every item in one band");
                assert!(aux.is_empty());
                **counter.lock().expect("no poisoning") += 1;
            },
        );
        assert_eq!(bands_seen, 1);
    }

    #[test]
    fn band_cap_limits_planned_bands_and_restores() {
        FORCE_WORKERS.with(|w| w.set(Some(8)));
        assert_eq!(band_count(32, true), 8);
        with_band_cap(3, || {
            assert_eq!(band_count(32, true), 3, "cap bounds the plan");
            with_band_cap(0, || {
                assert_eq!(band_count(32, true), 8, "0 lifts the cap");
            });
            assert_eq!(band_count(32, true), 3, "inner scope restored");
        });
        assert_eq!(band_count(32, true), 8, "outer scope restored");
        // The cap survives a panic inside the closure.
        let _ = std::panic::catch_unwind(|| with_band_cap(2, || panic!("boom")));
        assert_eq!(band_count(32, true), 8);
        FORCE_WORKERS.with(|w| w.set(None));
    }

    #[test]
    fn bands_are_balanced_to_within_one_item() {
        // 32 items on 5 workers must split 7,7,6,6,6 — not 7,7,7,7,4.
        FORCE_WORKERS.with(|w| w.set(Some(5)));
        let items = 32;
        let mut data = vec![0u32; items];
        let bands = band_count(items, true);
        assert_eq!(bands, 5);
        let mut scratch = vec![0.0f32; bands];
        let sizes = std::sync::Mutex::new(Vec::new());
        for_each_band(
            &mut data,
            items,
            1,
            &mut scratch,
            1,
            &mut [],
            0,
            true,
            |item0, band, _, _| {
                band.fill(1);
                sizes
                    .lock()
                    .expect("no poisoning")
                    .push((item0, band.len()));
            },
        );
        FORCE_WORKERS.with(|w| w.set(None));
        assert!(data.iter().all(|&v| v == 1), "every item covered once");
        let mut sizes = sizes.into_inner().expect("no poisoning");
        sizes.sort_unstable();
        let lens: Vec<usize> = sizes.iter().map(|&(_, l)| l).collect();
        assert_eq!(lens.iter().sum::<usize>(), items);
        let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        assert!(max - min <= 1, "unbalanced bands: {lens:?}");
        // Bands tile the items contiguously in order.
        let mut next = 0;
        for &(item0, len) in &sizes {
            assert_eq!(item0, next);
            next += len;
        }
    }

    #[test]
    fn handles_single_item() {
        let mut data = vec![1.0f32; 5];
        let mut scratch = vec![0.0f32; 1];
        for_each_band(
            &mut data,
            1,
            5,
            &mut scratch,
            1,
            &mut [],
            0,
            true,
            |item0, band, _, _| {
                assert_eq!(item0, 0);
                band.fill(2.0);
            },
        );
        assert!(data.iter().all(|&v| v == 2.0));
    }
}
