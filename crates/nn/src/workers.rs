//! A small worker abstraction over `rayon` for batch-parallel layer
//! math.
//!
//! The layers parallelise over the batch (and the GEMM over its `M`
//! dimension, see [`crate::gemm`]); both funnel through
//! [`for_each_band`], which splits a mutable output slice into
//! contiguous per-worker bands of whole items and runs a closure per
//! band inside a `rayon::scope`. Under the pooled `rayon` stand-in the
//! scope dispatches onto persistent, parked workers, so a parallel
//! region costs a queue push per band rather than an OS thread spawn.
//! Small workloads stay on the calling thread — dispatching is only
//! worth it when each band carries real work.
//!
//! Each band receives two private scratch slices: a general per-band
//! buffer (im2col/column matrices, reused across the band's items) and
//! an *aux* buffer used by reductions — [`crate::conv::Conv2d`]'s
//! backward pass accumulates per-band weight-gradient shards there and
//! folds them together after the scope, so gradient accumulation
//! parallelises without any shared mutable state. Both are sized per
//! band, so peak scratch is bounded by the worker count, not the batch
//! size.

#[cfg(test)]
thread_local! {
    /// Test-only override of [`worker_count`], so band splitting and
    /// shard reduction can be exercised deterministically on machines
    /// with any core count. Only read on the thread that *plans* the
    /// bands; closures running on pool workers see the real count.
    pub(crate) static FORCE_WORKERS: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// Number of workers parallel regions should target — taken from the
/// executor itself so band math stays correct if a configured rayon
/// pool (smaller or larger than the machine) is swapped in.
pub(crate) fn worker_count() -> usize {
    #[cfg(test)]
    if let Some(n) = FORCE_WORKERS.with(std::cell::Cell::get) {
        return n;
    }
    rayon::current_num_threads().max(1)
}

/// Number of bands [`for_each_band`] will split `items` into — callers
/// size their per-band scratch with this, so peak scratch is bounded by
/// the worker count, not the batch size.
pub(crate) fn band_count(items: usize, parallel: bool) -> usize {
    if parallel {
        worker_count().min(items).max(1)
    } else {
        1
    }
}

/// Splits `data` — `items` logical items of `item_len` elements each —
/// into at most [`band_count`] contiguous bands of whole items and
/// invokes `f(first_item_index, band, band_scratch, band_aux)` for
/// each, in parallel when more than one band results. Every band gets
/// its own `scratch_per_band`-element slice of `scratch` and
/// `aux_per_band`-element slice of `aux` to reuse across its items
/// (each buffer must hold at least `band_count(items, parallel)` times
/// its per-band length; pass an empty `aux` with `aux_per_band == 0`
/// when unused). The data and scratch element types are generic so the
/// quantised forward paths can split `i16` outputs and hand out
/// per-band `i16` column buffers through the same mechanism as the
/// `f32` paths.
#[allow(clippy::too_many_arguments)]
pub(crate) fn for_each_band<T, S, F>(
    data: &mut [T],
    items: usize,
    item_len: usize,
    scratch: &mut [S],
    scratch_per_band: usize,
    aux: &mut [f32],
    aux_per_band: usize,
    parallel: bool,
    f: F,
) where
    T: Send,
    S: Send,
    F: Fn(usize, &mut [T], &mut [S], &mut [f32]) + Sync,
{
    let bands = band_count(items, parallel);
    debug_assert!(data.len() >= items * item_len);
    debug_assert!(scratch.len() >= bands * scratch_per_band);
    debug_assert!(aux.len() >= bands * aux_per_band);
    if bands <= 1 {
        f(
            0,
            &mut data[..items * item_len],
            &mut scratch[..scratch_per_band],
            &mut aux[..aux_per_band],
        );
        return;
    }
    let per_band = items.div_ceil(bands);
    rayon::scope(|s| {
        let mut rest = &mut data[..items * item_len];
        let mut rest_scratch = &mut scratch[..];
        let mut rest_aux = &mut aux[..];
        let mut item0 = 0;
        while item0 < items {
            let band_items = per_band.min(items - item0);
            let (band, tail) = rest.split_at_mut(band_items * item_len);
            let (band_scratch, tail_scratch) = rest_scratch.split_at_mut(scratch_per_band);
            let (band_aux, tail_aux) = rest_aux.split_at_mut(aux_per_band);
            let f = &f;
            s.spawn(move |_| f(item0, band, band_scratch, band_aux));
            rest = tail;
            rest_scratch = tail_scratch;
            rest_aux = tail_aux;
            item0 += band_items;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_item_with_private_scratch() {
        let items = 7;
        let mut data = vec![0.0f32; items * 3];
        let mut scratch = vec![0.0f32; band_count(items, true) * 2];
        let mut aux = vec![0.0f32; band_count(items, true)];
        for_each_band(
            &mut data,
            items,
            3,
            &mut scratch,
            2,
            &mut aux,
            1,
            true,
            |item0, band, s, aux| {
                assert_eq!(s.len(), 2, "one scratch slot per band");
                assert_eq!(aux.len(), 1, "one aux slot per band");
                for (i, item) in band.chunks_mut(3).enumerate() {
                    // Reuse the slot per item, as the layers do.
                    s.fill((item0 + i) as f32);
                    for (v, sv) in item.iter_mut().zip(s.iter()) {
                        *v = *sv;
                    }
                    item[2] = s[0];
                    aux[0] += 1.0;
                }
            },
        );
        for (i, item) in data.chunks(3).enumerate() {
            assert!(item.iter().all(|&v| v == i as f32), "item {i}: {item:?}");
        }
        // Aux slots accumulated one count per item, band by band.
        assert_eq!(aux.iter().sum::<f32>(), items as f32);
    }

    #[test]
    fn serial_mode_is_one_band() {
        let mut data = vec![0.0f32; 4 * 2];
        let mut scratch = vec![0.0f32; 5];
        let mut bands_seen = 0;
        // Serial closure runs inline, so a mutable counter is fine.
        let counter = std::sync::Mutex::new(&mut bands_seen);
        for_each_band(
            &mut data,
            4,
            2,
            &mut scratch,
            5,
            &mut [],
            0,
            false,
            |item0, band, _, aux| {
                assert_eq!(item0, 0);
                assert_eq!(band.len(), 8, "serial = every item in one band");
                assert!(aux.is_empty());
                **counter.lock().expect("no poisoning") += 1;
            },
        );
        assert_eq!(bands_seen, 1);
    }

    #[test]
    fn handles_single_item() {
        let mut data = vec![1.0f32; 5];
        let mut scratch = vec![0.0f32; 1];
        for_each_band(
            &mut data,
            1,
            5,
            &mut scratch,
            1,
            &mut [],
            0,
            true,
            |item0, band, _, _| {
                assert_eq!(item0, 0);
                band.fill(2.0);
            },
        );
        assert!(data.iter().all(|&v| v == 2.0));
    }
}
