//! `SyntheticVision`: a procedural stand-in for CIFAR-10.
//!
//! The paper trains its dynamic DNN on CIFAR-10, which is unavailable in
//! this offline reproduction. This module generates a deterministic
//! 10-class image-classification dataset that exercises the identical code
//! path (grouped convolutions, incremental training, per-class accuracy
//! variance) and preserves the property the RTM consumes: *accuracy rises
//! monotonically with model width, with diminishing returns*.
//!
//! Each class is a mixture of `modes_per_class` prototype patterns —
//! an oriented sinusoidal grating plus a Gaussian colour blob — sampled
//! with random phase, translation jitter, per-channel amplitude jitter and
//! additive Gaussian noise. More modes and noise make the task harder, so
//! capacity (width) matters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::Result;
use crate::tensor::Tensor;

/// Configuration of the synthetic dataset generator.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Number of classes (the paper uses the 10 CIFAR classes).
    pub classes: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Colour channels.
    pub channels: usize,
    /// Training samples generated per class.
    pub train_per_class: usize,
    /// Held-out test samples per class.
    pub test_per_class: usize,
    /// Distinct prototype patterns per class; more modes need more model
    /// capacity.
    pub modes_per_class: usize,
    /// Standard deviation of the additive Gaussian pixel noise.
    pub noise: f32,
    /// Maximum absolute translation jitter in pixels.
    pub jitter: usize,
    /// PRNG seed; the same seed always yields the same dataset.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            classes: 10,
            height: 16,
            width: 16,
            channels: 3,
            train_per_class: 200,
            test_per_class: 50,
            modes_per_class: 3,
            noise: 0.55,
            jitter: 2,
            seed: 2020,
        }
    }
}

impl DatasetConfig {
    /// A miniature configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            classes: 4,
            height: 8,
            width: 8,
            train_per_class: 20,
            test_per_class: 10,
            modes_per_class: 2,
            ..Self::default()
        }
    }
}

/// One labelled image.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Image tensor `[C, H, W]`.
    pub image: Tensor,
    /// Class index in `0..classes`.
    pub label: usize,
}

/// One prototype pattern: grating + blob parameters.
#[derive(Debug, Clone, Copy)]
struct Mode {
    theta: f32,
    freq: f32,
    phase0: f32,
    grating_color: [f32; 3],
    blob_cy: f32,
    blob_cx: f32,
    blob_r: f32,
    blob_color: [f32; 3],
}

/// A generated dataset split into train and test sets.
#[derive(Debug, Clone)]
pub struct SyntheticVision {
    cfg: DatasetConfig,
    train: Vec<Sample>,
    test: Vec<Sample>,
}

impl SyntheticVision {
    /// Generates the dataset deterministically from `cfg.seed`.
    pub fn generate(cfg: DatasetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let modes: Vec<Vec<Mode>> = (0..cfg.classes)
            .map(|class| {
                (0..cfg.modes_per_class)
                    .map(|_| Self::draw_mode(&cfg, class, &mut rng))
                    .collect()
            })
            .collect();
        let mut train = Vec::with_capacity(cfg.classes * cfg.train_per_class);
        let mut test = Vec::with_capacity(cfg.classes * cfg.test_per_class);
        for (class, class_modes) in modes.iter().enumerate() {
            for _ in 0..cfg.train_per_class {
                train.push(Self::draw_sample(&cfg, class, class_modes, &mut rng));
            }
            for _ in 0..cfg.test_per_class {
                test.push(Self::draw_sample(&cfg, class, class_modes, &mut rng));
            }
        }
        Self { cfg, train, test }
    }

    fn draw_mode(cfg: &DatasetConfig, class: usize, rng: &mut StdRng) -> Mode {
        // Anchor orientation per class so classes are separable in
        // principle, with per-mode variation around it.
        let base_theta = class as f32 / cfg.classes as f32 * std::f32::consts::PI;
        let color = |rng: &mut StdRng| {
            let mut c = [0.0f32; 3];
            for v in &mut c {
                *v = rng.gen_range(-1.0..1.0);
            }
            let norm = (c.iter().map(|v| v * v).sum::<f32>()).sqrt().max(1e-6);
            c.map(|v| v / norm)
        };
        Mode {
            theta: base_theta + rng.gen_range(-0.25..0.25),
            freq: rng.gen_range(1.5..4.0),
            phase0: rng.gen_range(0.0..std::f32::consts::TAU),
            grating_color: color(rng),
            blob_cy: rng.gen_range(0.25..0.75),
            blob_cx: rng.gen_range(0.25..0.75),
            blob_r: rng.gen_range(0.12..0.3),
            blob_color: color(rng),
        }
    }

    fn draw_sample(cfg: &DatasetConfig, class: usize, modes: &[Mode], rng: &mut StdRng) -> Sample {
        let mode = modes[rng.gen_range(0..modes.len())];
        let (h, w, c) = (cfg.height, cfg.width, cfg.channels);
        let phase = mode.phase0 + rng.gen_range(-0.6..0.6);
        let amp: f32 = rng.gen_range(0.7..1.3);
        let dy = rng.gen_range(-(cfg.jitter as isize)..=cfg.jitter as isize) as f32;
        let dx = rng.gen_range(-(cfg.jitter as isize)..=cfg.jitter as isize) as f32;
        let (sin_t, cos_t) = mode.theta.sin_cos();
        let mut image = Tensor::zeros(&[c, h, w]);
        let data = image.data_mut();
        for y in 0..h {
            for x in 0..w {
                let yn = (y as f32 + dy) / h as f32;
                let xn = (x as f32 + dx) / w as f32;
                let grating =
                    (std::f32::consts::TAU * mode.freq * (xn * cos_t + yn * sin_t) + phase).sin();
                let ry = yn - mode.blob_cy;
                let rx = xn - mode.blob_cx;
                let blob = (-(ry * ry + rx * rx) / (2.0 * mode.blob_r * mode.blob_r)).exp();
                for ch in 0..c.min(3) {
                    let signal = 0.7 * amp * grating * mode.grating_color[ch]
                        + 0.9 * blob * mode.blob_color[ch];
                    data[(ch * h + y) * w + x] = signal + cfg.noise * gauss(rng);
                }
            }
        }
        Sample {
            image,
            label: class,
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.cfg
    }

    /// Training samples (class-contiguous order; shuffle per epoch).
    pub fn train(&self) -> &[Sample] {
        &self.train
    }

    /// Held-out test samples.
    pub fn test(&self) -> &[Sample] {
        &self.test
    }
}

/// Standard-normal sample via Box–Muller.
fn gauss(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Assembles samples (by index) into a `[N, C, H, W]` batch tensor plus a
/// label vector.
///
/// # Panics
///
/// Panics if `indices` is empty or contains out-of-range values; callers
/// control both.
pub fn make_batch(samples: &[Sample], indices: &[usize]) -> (Tensor, Vec<usize>) {
    assert!(
        !indices.is_empty(),
        "batch must contain at least one sample"
    );
    let shape = samples[indices[0]].image.shape().to_vec();
    let per = samples[indices[0]].image.len();
    let mut batch_shape = vec![indices.len()];
    batch_shape.extend_from_slice(&shape);
    let mut data = Vec::with_capacity(indices.len() * per);
    let mut labels = Vec::with_capacity(indices.len());
    for &i in indices {
        data.extend_from_slice(samples[i].image.data());
        labels.push(samples[i].label);
    }
    let tensor = Tensor::from_vec(&batch_shape, data).expect("shapes are uniform");
    (tensor, labels)
}

/// Result alias re-export for doc examples.
pub type DatasetResult<T> = Result<T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticVision::generate(DatasetConfig::tiny());
        let b = SyntheticVision::generate(DatasetConfig::tiny());
        assert_eq!(a.train().len(), b.train().len());
        for (x, y) in a.train().iter().zip(b.train()) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.image.data(), y.image.data());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticVision::generate(DatasetConfig::tiny());
        let b = SyntheticVision::generate(DatasetConfig {
            seed: 999,
            ..DatasetConfig::tiny()
        });
        let same = a
            .train()
            .iter()
            .zip(b.train())
            .all(|(x, y)| x.image.data() == y.image.data());
        assert!(!same);
    }

    #[test]
    fn sizes_and_labels() {
        let cfg = DatasetConfig::tiny();
        let d = SyntheticVision::generate(cfg.clone());
        assert_eq!(d.train().len(), cfg.classes * cfg.train_per_class);
        assert_eq!(d.test().len(), cfg.classes * cfg.test_per_class);
        for s in d.train().iter().chain(d.test()) {
            assert!(s.label < cfg.classes);
            assert_eq!(s.image.shape(), &[cfg.channels, cfg.height, cfg.width]);
            assert!(s.image.data().iter().all(|v| v.is_finite()));
        }
        // Every class is represented.
        for class in 0..cfg.classes {
            assert!(d.train().iter().any(|s| s.label == class));
            assert!(d.test().iter().any(|s| s.label == class));
        }
    }

    #[test]
    fn images_have_signal_not_just_noise() {
        // Noise-free images of one class should correlate across samples of
        // the same mode more than across classes on average; as a cheap
        // proxy, check non-trivial per-image variance.
        let cfg = DatasetConfig {
            noise: 0.0,
            ..DatasetConfig::tiny()
        };
        let d = SyntheticVision::generate(cfg);
        for s in d.train().iter().take(10) {
            let mean = s.image.mean();
            let var: f32 = s
                .image
                .data()
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / s.image.len() as f32;
            assert!(var > 1e-3, "image should contain structured signal");
        }
    }

    #[test]
    fn make_batch_layout() {
        let d = SyntheticVision::generate(DatasetConfig::tiny());
        let (batch, labels) = make_batch(d.train(), &[0, 5, 11]);
        assert_eq!(batch.shape(), &[3, 3, 8, 8]);
        assert_eq!(labels.len(), 3);
        assert_eq!(
            &batch.data()[..d.train()[0].image.len()],
            d.train()[0].image.data()
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_batch_panics() {
        let d = SyntheticVision::generate(DatasetConfig::tiny());
        let _ = make_batch(d.train(), &[]);
    }

    #[test]
    fn gauss_is_roughly_standard_normal() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gauss(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
