//! Softmax cross-entropy loss with a numerically stable fused
//! implementation.

use crate::error::{NnError, Result};
use crate::tensor::Tensor;

/// Output of a loss evaluation: scalar loss plus gradient w.r.t. logits.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the logits, `[N, K]`.
    pub grad_logits: Tensor,
    /// Softmax probabilities, `[N, K]` (useful as a confidence monitor).
    pub probs: Tensor,
}

/// Computes softmax probabilities row-wise for logits `[N, K]`.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] if `logits` is not rank 2.
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    let shape = logits.shape();
    if shape.len() != 2 {
        return Err(NnError::ShapeMismatch {
            context: "softmax".into(),
            expected: vec![0, 0],
            actual: shape.to_vec(),
        });
    }
    let (n, k) = (shape[0], shape[1]);
    let mut probs = logits.clone();
    let data = probs.data_mut();
    for ni in 0..n {
        let row = &mut data[ni * k..(ni + 1) * k];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Ok(probs)
}

/// Mean softmax cross-entropy of `logits` `[N, K]` against integer
/// `labels` (length `N`), with gradient.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] for rank/length mismatches and
/// [`NnError::InvalidConfig`] for out-of-range labels.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
    let shape = logits.shape();
    if shape.len() != 2 || shape[0] != labels.len() {
        return Err(NnError::ShapeMismatch {
            context: "cross_entropy".into(),
            expected: vec![labels.len(), 0],
            actual: shape.to_vec(),
        });
    }
    let (n, k) = (shape[0], shape[1]);
    for (i, &l) in labels.iter().enumerate() {
        if l >= k {
            return Err(NnError::InvalidConfig {
                reason: format!("label {l} at index {i} out of range for {k} classes"),
            });
        }
    }
    let probs = softmax(logits)?;
    let mut grad = probs.clone();
    let g = grad.data_mut();
    let mut loss = 0.0;
    let inv_n = 1.0 / n as f32;
    for (ni, &label) in labels.iter().enumerate() {
        let p = probs.at(&[ni, label]).max(1e-12);
        loss -= p.ln();
        g[ni * k + label] -= 1.0;
    }
    for v in g.iter_mut() {
        *v *= inv_n;
    }
    Ok(LossOutput {
        loss: loss * inv_n,
        grad_logits: grad,
        probs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let p = softmax(&logits).unwrap();
        for ni in 0..2 {
            let s: f32 = (0..3).map(|k| p.at(&[ni, k])).sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Larger logit ⇒ larger probability.
        assert!(p.at(&[0, 2]) > p.at(&[0, 1]));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(&[1, 2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(&[1, 2], vec![1001.0, 1002.0]).unwrap();
        let pa = softmax(&a).unwrap();
        let pb = softmax(&b).unwrap();
        assert!((pa.at(&[0, 0]) - pb.at(&[0, 0])).abs() < 1e-6);
        assert!(pb.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn uniform_logits_give_ln_k_loss() {
        let logits = Tensor::zeros(&[4, 10]);
        let labels = [0, 3, 7, 9];
        let out = cross_entropy(&logits, &labels).unwrap();
        assert!((out.loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_gives_near_zero_loss() {
        let mut logits = Tensor::zeros(&[1, 3]);
        *logits.at_mut(&[0, 1]) = 50.0;
        let out = cross_entropy(&logits, &[1]).unwrap();
        assert!(out.loss < 1e-5);
    }

    #[test]
    fn gradient_matches_softmax_minus_onehot() {
        let logits = Tensor::from_vec(&[1, 3], vec![0.5, 1.5, -0.5]).unwrap();
        let out = cross_entropy(&logits, &[2]).unwrap();
        let p = softmax(&logits).unwrap();
        assert!((out.grad_logits.at(&[0, 0]) - p.at(&[0, 0])).abs() < 1e-6);
        assert!((out.grad_logits.at(&[0, 2]) - (p.at(&[0, 2]) - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn gradient_finite_difference_check() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.1, -0.2, 0.3, 1.0, 0.0, -1.0]).unwrap();
        let labels = [2, 0];
        let out = cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let numeric = (cross_entropy(&lp, &labels).unwrap().loss
                - cross_entropy(&lm, &labels).unwrap().loss)
                / (2.0 * eps);
            assert!(
                (numeric - out.grad_logits.data()[i]).abs() < 1e-3,
                "logit {i}: numeric {numeric} vs {}",
                out.grad_logits.data()[i]
            );
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(
            cross_entropy(&logits, &[0]).is_err(),
            "label count mismatch"
        );
        assert!(
            cross_entropy(&logits, &[0, 3]).is_err(),
            "label out of range"
        );
        assert!(softmax(&Tensor::zeros(&[3])).is_err(), "rank-1 logits");
    }
}
