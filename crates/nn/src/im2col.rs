//! im2col/col2im lowering: turns convolution into matrix
//! multiplication.
//!
//! # Layout
//!
//! For one sample and one channel group, [`im2col`] writes the column
//! matrix `Col` with one **row per (channel, ky, kx) weight position**
//! and one **column per output pixel**:
//!
//! ```text
//! row (icg·k + ky)·k + kx, column oy·ow + ox
//!     = x[ch_base + icg][oy·s + ky − p][ox·s + kx − p]   (0 if padded)
//!
//!            ┌───────────── oh·ow ─────────────┐
//!            │ x(c0, shifted by ky=0,kx=0) ... │
//!  icg·k·k   │ x(c0, shifted by ky=0,kx=1) ... │
//!   rows     │           ...                   │
//!            │ x(c_last, ky=k−1, kx=k−1)   ... │
//!            └─────────────────────────────────┘
//! ```
//!
//! The convolution then becomes `Out = W · Col` where `W` is the
//! layer's weight matrix (`out_channels × icg·k·k`, already stored
//! row-major in exactly that order), computed by [`crate::gemm`].
//! [`col2im_add`] is the adjoint scatter used by the backward pass.
//!
//! Rows are filled segment-wise: for each row the valid `ox` interval
//! is computed once from the padding arithmetic, the out-of-image
//! margins are zero-filled, and the in-image span is a `memcpy` for
//! stride 1 (the common case) or a short strided loop otherwise — no
//! per-element bounds branching.

/// Geometry of one conv lowering (per sample, per group).
#[derive(Debug, Clone, Copy)]
pub struct ConvGeom {
    /// Channels read by this group.
    pub channels: usize,
    /// First input channel of the group within the sample.
    pub ch_base: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Square kernel size.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
    /// Output height.
    pub oh: usize,
    /// Output width.
    pub ow: usize,
}

impl ConvGeom {
    /// Rows of the column matrix (`channels · k²`).
    pub fn rows(&self) -> usize {
        self.channels * self.k * self.k
    }

    /// Columns of the column matrix (`oh · ow`).
    pub fn cols(&self) -> usize {
        self.oh * self.ow
    }

    /// Required `col` buffer length.
    pub fn col_len(&self) -> usize {
        self.rows() * self.cols()
    }

    /// The valid `ox` range `[lo, hi)` for kernel column `kx`, i.e.
    /// where `0 ≤ ox·s + kx − p < w`.
    #[inline]
    fn ox_range(&self, kx: usize) -> (usize, usize) {
        let (s, p, w) = (self.stride, self.padding as isize, self.w as isize);
        let kx = kx as isize;
        // ox ≥ (p − kx) / s, rounded up.
        let lo = ((p - kx).max(0) as usize).div_ceil(s);
        // ox ≤ (w − 1 − kx + p) / s, rounded down — floor division, not
        // Rust's toward-zero `/`: the numerator is negative when the
        // kernel overhangs the whole row (kernel > w + padding).
        let hi_excl = ((w - 1 - kx + p).div_euclid(s as isize) + 1).max(0) as usize;
        (lo.min(self.ow), hi_excl.min(self.ow))
    }

    /// The input row index for output row `oy` and kernel row `ky`, or
    /// `None` when it falls in the padding.
    #[inline]
    fn iy(&self, oy: usize, ky: usize) -> Option<usize> {
        let iy = (oy * self.stride + ky) as isize - self.padding as isize;
        (iy >= 0 && iy < self.h as isize).then_some(iy as usize)
    }
}

/// Fills `col` (length [`ConvGeom::col_len`]) from one sample's input
/// plane `x` (`≥ (ch_base + channels)·h·w` elements).
pub fn im2col(x: &[f32], g: &ConvGeom, col: &mut [f32]) {
    let (k, s, ow) = (g.k, g.stride, g.ow);
    let plane = g.h * g.w;
    let cols = g.cols();
    for icg in 0..g.channels {
        let xc = &x[(g.ch_base + icg) * plane..][..plane];
        for ky in 0..k {
            for kx in 0..k {
                let row = ((icg * k + ky) * k + kx) * cols;
                let dst = &mut col[row..][..cols];
                let (lo, hi) = g.ox_range(kx);
                for oy in 0..g.oh {
                    let seg = &mut dst[oy * ow..][..ow];
                    match g.iy(oy, ky) {
                        None => seg.fill(0.0),
                        Some(iy) => {
                            seg[..lo].fill(0.0);
                            seg[hi..].fill(0.0);
                            if lo < hi {
                                let ix0 = lo * s + kx - g.padding;
                                let src = &xc[iy * g.w..][..g.w];
                                if s == 1 {
                                    seg[lo..hi].copy_from_slice(&src[ix0..ix0 + (hi - lo)]);
                                } else {
                                    for (i, v) in seg[lo..hi].iter_mut().enumerate() {
                                        *v = src[ix0 + i * s];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-adds `col` back into the gradient
/// plane `gx` (same layout as the input sample).
pub fn col2im_add(col: &[f32], g: &ConvGeom, gx: &mut [f32]) {
    let (k, s, ow) = (g.k, g.stride, g.ow);
    let plane = g.h * g.w;
    let cols = g.cols();
    for icg in 0..g.channels {
        let gc = &mut gx[(g.ch_base + icg) * plane..][..plane];
        for ky in 0..k {
            for kx in 0..k {
                let row = ((icg * k + ky) * k + kx) * cols;
                let src_row = &col[row..][..cols];
                let (lo, hi) = g.ox_range(kx);
                if lo >= hi {
                    continue;
                }
                for oy in 0..g.oh {
                    let Some(iy) = g.iy(oy, ky) else { continue };
                    let seg = &src_row[oy * ow..][..ow];
                    let ix0 = lo * s + kx - g.padding;
                    let dst = &mut gc[iy * g.w..][..g.w];
                    if s == 1 {
                        for (d, &v) in dst[ix0..ix0 + (hi - lo)].iter_mut().zip(&seg[lo..hi]) {
                            *d += v;
                        }
                    } else {
                        for (i, &v) in seg[lo..hi].iter().enumerate() {
                            dst[ix0 + i * s] += v;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_im2col(x: &[f32], g: &ConvGeom) -> Vec<f32> {
        let mut col = vec![0.0f32; g.col_len()];
        let cols = g.cols();
        for icg in 0..g.channels {
            for ky in 0..g.k {
                for kx in 0..g.k {
                    for oy in 0..g.oh {
                        for ox in 0..g.ow {
                            let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                            let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                            let v = if iy >= 0
                                && (iy as usize) < g.h
                                && ix >= 0
                                && (ix as usize) < g.w
                            {
                                x[(g.ch_base + icg) * g.h * g.w + iy as usize * g.w + ix as usize]
                            } else {
                                0.0
                            };
                            col[((icg * g.k + ky) * g.k + kx) * cols + oy * g.ow + ox] = v;
                        }
                    }
                }
            }
        }
        col
    }

    fn geom(h: usize, w: usize, k: usize, s: usize, p: usize, ch: usize, base: usize) -> ConvGeom {
        ConvGeom {
            channels: ch,
            ch_base: base,
            h,
            w,
            k,
            stride: s,
            padding: p,
            oh: (h + 2 * p - k) / s + 1,
            ow: (w + 2 * p - k) / s + 1,
        }
    }

    #[test]
    fn matches_naive_lowering() {
        for &(h, w, k, s, p) in &[
            (5, 5, 3, 1, 1),
            (5, 7, 3, 2, 1),
            (4, 4, 1, 1, 0),
            (6, 6, 3, 1, 0),
            (8, 5, 2, 2, 0),
            (3, 3, 3, 1, 2),
            // Kernel overhangs the whole input row (regression: the
            // valid-ox interval must be empty, not [0, 1)).
            (2, 2, 4, 2, 1),
            (3, 3, 5, 2, 1),
        ] {
            let g = geom(h, w, k, s, p, 2, 1);
            let x: Vec<f32> = (0..(g.ch_base + g.channels) * h * w)
                .map(|i| i as f32 * 0.25 - 3.0)
                .collect();
            let mut col = vec![f32::NAN; g.col_len()];
            im2col(&x, &g, &mut col);
            assert_eq!(col, naive_im2col(&x, &g), "geom h{h} w{w} k{k} s{s} p{p}");
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), c> == <x, col2im(c)> for all x, c — the defining
        // property of the adjoint, checked on a dense basis-free probe.
        let g = geom(5, 6, 3, 2, 1, 2, 0);
        let x: Vec<f32> = (0..g.channels * g.h * g.w)
            .map(|i| (i as f32).sin())
            .collect();
        let c: Vec<f32> = (0..g.col_len()).map(|i| (i as f32 * 0.7).cos()).collect();
        let mut col = vec![0.0f32; g.col_len()];
        im2col(&x, &g, &mut col);
        let lhs: f64 = col
            .iter()
            .zip(&c)
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        let mut gx = vec![0.0f32; x.len()];
        col2im_add(&c, &g, &mut gx);
        let rhs: f64 = x
            .iter()
            .zip(&gx)
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn col2im_accumulates() {
        let g = geom(4, 4, 3, 1, 1, 1, 0);
        let col = vec![1.0f32; g.col_len()];
        let mut gx = vec![0.5f32; g.h * g.w];
        col2im_add(&col, &g, &mut gx);
        // Centre pixels are touched by all 9 kernel offsets.
        assert_eq!(gx[4 + 1], 0.5 + 9.0);
    }
}
